// gemrec — command-line front end for the library.
//
//   gemrec generate  --city beijing --scale 0.5 --out DIR
//   gemrec profile   --data DIR
//   gemrec train     --data DIR [--config gem-a|gem-p|pte]
//                    [--samples N] [--dim K] [--threads T] --model FILE
//   gemrec evaluate  --data DIR --model FILE [--cases N]
//   gemrec recommend --data DIR --model FILE --user U [--n N]
//                    [--top-k K] [--weekend] [--explain]
//   gemrec serve     --data DIR --model FILE [--queries Q] [--workers W]
//                    [--clients C] [--swaps S] [--n N] [--top-k K]
//   gemrec stats     HOST:PORT
//
// The CLI covers the full offline/online workflow: synthesize (or
// bring) a dataset, inspect it, train GEM embeddings, evaluate both
// paper tasks, serve joint event-partner recommendations, and scrape
// a live server's metrics.

#include <csignal>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ebsn/io.h"
#include "ebsn/tfidf.h"
#include "ebsn/split.h"
#include "ebsn/stats.h"
#include "ebsn/synthetic.h"
#include "embedding/online_update.h"
#include "embedding/serialization.h"
#include "embedding/trainer.h"
#include "eval/ground_truth.h"
#include "eval/protocol.h"
#include "graph/graph_builder.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "recommend/explain.h"
#include "recommend/filters.h"
#include "recommend/query_kinds.h"
#include "recommend/recommender.h"
#include "serving/ingestion_queue.h"
#include "serving/model_reloader.h"
#include "serving/recommendation_service.h"
#include "serving/snapshot_builder.h"
#include "shard/coordinator.h"
#include "shard/partitioner.h"
#include "shard/shard_router.h"

namespace gemrec::cli {
namespace {

/// Minimal --flag value parser; flags without a value store "true".
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  std::optional<std::string> Get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string GetOr(const std::string& key,
                    const std::string& fallback) const {
    return Get(key).value_or(fallback);
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto v = Get(key);
    return v ? std::atof(v->c_str()) : fallback;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto v = Get(key);
    return v ? std::atoll(v->c_str()) : fallback;
  }
  bool Has(const std::string& key) const {
    return values_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "gemrec: %s\n", message.c_str());
  return 1;
}

/// SIGINT/SIGTERM plumbing for `gemrec serve`. Installed in BOTH serve
/// modes so an interrupted run always tears down through destructors
/// (ResultCache, snapshot refcounts, worker joins) instead of dying
/// mid-flight: the batch mode polls g_stop between queries, the
/// network mode additionally gets a graceful drain kick.
std::atomic<bool> g_stop{false};
std::atomic<net::NetServer*> g_net_server{nullptr};

void HandleStopSignal(int) {
  g_stop.store(true, std::memory_order_relaxed);
  if (net::NetServer* server =
          g_net_server.load(std::memory_order_relaxed)) {
    server->NotifyDrainFromSignal();  // async-signal-safe
  }
}

void InstallStopHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// End-of-run / periodic metrics dump: the same Prometheus-style text
/// exposition `gemrec stats` fetches over the wire, printed locally.
/// One registry covers the whole serve stack (gemrec_service_* and,
/// when a NetServer is attached, gemrec_net_*).
void DumpMetrics(serving::RecommendationService* service) {
  const std::string text =
      obs::RenderText(service->metrics()->Snapshot());
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gemrec generate  --city beijing|shanghai [--scale S] --out DIR\n"
      "  gemrec profile   --data DIR\n"
      "  gemrec train     --data DIR [--config gem-a|gem-p|pte]\n"
      "                   [--samples N] [--dim K] [--threads T] "
      "--model FILE\n"
      "  gemrec evaluate  --data DIR --model FILE [--cases N]\n"
      "  gemrec recommend --data DIR --model FILE --user U [--n N]\n"
      "                   [--top-k K] [--weekend] [--explain]\n"
      "                   [--kind partner|group|reciprocal]\n"
      "                   [--group ID,ID,...] [--agg sum|min]\n"
      "                   (--kind group ranks events for user U\n"
      "                   attending with the fixed --group partner set,\n"
      "                   aggregated by --agg; --kind reciprocal ranks\n"
      "                   (event, partner) pairs by the min of the two\n"
      "                   directed scores, over U's friends when U has\n"
      "                   any, else over all users)\n"
      "  gemrec foldin    --data DIR --model FILE --event X\n"
      "                   [--out FILE]   (online cold-event fold-in)\n"
      "  gemrec serve     --data DIR --model FILE [--queries Q]\n"
      "                   [--workers W] [--clients C] [--swaps S]\n"
      "                   [--n N] [--top-k K] [--reload FILE]\n"
      "                   [--exact-ta]\n"
      "                   (batch-query serving; --reload republishes\n"
      "                   from FILE each swap, surviving corrupt files;\n"
      "                   retrieval is quantized multi-query TA with\n"
      "                   exact fp32 re-rank unless --exact-ta or\n"
      "                   GEMREC_EXACT_TA=1 restores per-query TA)\n"
      "  gemrec serve     --data DIR --model FILE --listen HOST:PORT\n"
      "                   [--reactors R] [--workers W] [--max-in-flight M]\n"
      "                   [--idle-timeout-ms MS] [--reload FILE]\n"
      "                   [--reload-interval SEC] [--stats-interval SEC]\n"
      "                   [--ingest-dir DIR] [--publish-every N]\n"
      "                   [--publish-interval-ms MS] [--max-pending P]\n"
      "                   [--checkpoint-every N]\n"
      "                   (multi-reactor epoll TCP server speaking the\n"
      "                   framed binary protocol, one SO_REUSEPORT\n"
      "                   listener per reactor; --reactors defaults to\n"
      "                   min(4, cores); SIGINT/SIGTERM drains gracefully;\n"
      "                   --stats-interval dumps metrics periodically;\n"
      "                   --ingest-dir enables the write path: attend/\n"
      "                   new-event frames are journaled to DIR, folded\n"
      "                   into the staging store, and published as delta\n"
      "                   snapshots; acknowledged writes survive SIGKILL\n"
      "                   and are replayed on restart)\n"
      "                   (add --shard i/N to build and serve only\n"
      "                   shard i's hash-slice of the candidate-pair\n"
      "                   space, behind a gemrec coordinate tier)\n"
      "  gemrec coordinate --shards HOST:P1,HOST:P2,... --listen H:P\n"
      "                   [--shard-deadline-ms MS] [--breaker-threshold N]\n"
      "                   [--breaker-backoff-ms MS] [--reactors R]\n"
      "                   [--max-in-flight M]\n"
      "                   (scatter-gather coordinator over gemrec serve\n"
      "                   --shard instances: same wire protocol as\n"
      "                   serve; merges per-shard top-k with their TA\n"
      "                   thresholds, degrades to typed partial results\n"
      "                   when a shard misses its deadline, and evicts/\n"
      "                   re-probes dead shards breaker-style; gemrec\n"
      "                   stats against it returns the merged registry\n"
      "                   with per-shard {shard=\"i\"} rollups)\n"
      "  gemrec ingest    HOST:PORT --attend USER:EVENT [--new-user]\n"
      "  gemrec ingest    HOST:PORT --new-event X --data DIR\n"
      "                   (stream a write to a live --ingest-dir server:\n"
      "                   an attendance nudge / cold-user fold-in, or a\n"
      "                   cold event with TF-IDF signals from DIR;\n"
      "                   prints the durable journal seq on success)\n"
      "  gemrec stats     HOST:PORT\n"
      "                   (scrape a live server's counters and latency\n"
      "                   histograms; prints text exposition format)\n");
  return 2;
}

int CmdGenerate(const Args& args) {
  const std::string city = args.GetOr("city", "beijing");
  const auto out = args.Get("out");
  if (!out) return Fail("--out is required");
  const double scale = args.GetDouble("scale", 1.0);
  ebsn::SyntheticConfig config =
      city == "shanghai" ? ebsn::SyntheticConfig::Shanghai(scale)
                         : ebsn::SyntheticConfig::Beijing(scale);
  if (const auto seed = args.Get("seed")) {
    config.seed = std::strtoull(seed->c_str(), nullptr, 10);
  }
  const auto data = ebsn::GenerateSynthetic(config);
  if (const Status s = ebsn::SaveDataset(data.dataset, *out); !s.ok()) {
    return Fail(s.ToString());
  }
  const auto stats = data.dataset.Stats();
  std::printf("wrote %s: %zu users, %zu events, %zu attendances, "
              "%zu friendships\n",
              out->c_str(), stats.num_users, stats.num_events,
              stats.num_attendances, stats.num_friendships);
  return 0;
}

int CmdProfile(const Args& args) {
  const auto dir = args.Get("data");
  if (!dir) return Fail("--data is required");
  auto dataset = ebsn::LoadDataset(*dir);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  const auto profile = ebsn::ProfileDataset(*dataset);
  auto print = [](const char* name,
                  const ebsn::DistributionSummary& s) {
    std::printf("%-18s mean %.1f  p50 %zu  p90 %zu  p99 %zu  max %zu  "
                "gini %.2f\n",
                name, s.mean, s.p50, s.p90, s.p99, s.max, s.gini);
  };
  print("events/user", profile.events_per_user);
  print("users/event", profile.users_per_event);
  print("friends/user", profile.friends_per_user);
  print("words/event", profile.words_per_event);
  std::printf("active users (>=5 events): %zu\n", profile.active_users);
  std::printf("attendances with a co-attending friend: %.1f%%\n",
              100.0 * profile.coattendance_fraction);
  return 0;
}

struct LoadedWorld {
  ebsn::Dataset dataset;
  std::unique_ptr<ebsn::ChronologicalSplit> split;
  std::unique_ptr<graph::EbsnGraphs> graphs;
};

Result<LoadedWorld> LoadWorld(const std::string& dir) {
  GEMREC_ASSIGN_OR_RETURN(auto dataset, ebsn::LoadDataset(dir));
  LoadedWorld world{std::move(dataset), nullptr, nullptr};
  world.split =
      std::make_unique<ebsn::ChronologicalSplit>(world.dataset);
  GEMREC_ASSIGN_OR_RETURN(
      auto graphs,
      graph::BuildEbsnGraphs(world.dataset, *world.split, {}));
  world.graphs =
      std::make_unique<graph::EbsnGraphs>(std::move(graphs));
  return world;
}

int CmdTrain(const Args& args) {
  const auto dir = args.Get("data");
  const auto model_path = args.Get("model");
  if (!dir || !model_path) {
    return Fail("--data and --model are required");
  }
  auto world = LoadWorld(*dir);
  if (!world.ok()) return Fail(world.status().ToString());

  const std::string config_name = args.GetOr("config", "gem-a");
  embedding::TrainerOptions options;
  if (config_name == "gem-a") {
    options = embedding::TrainerOptions::GemA();
  } else if (config_name == "gem-p") {
    options = embedding::TrainerOptions::GemP();
  } else if (config_name == "pte") {
    options = embedding::TrainerOptions::Pte();
  } else {
    return Fail("unknown --config " + config_name);
  }
  options.num_samples =
      static_cast<uint64_t>(args.GetInt("samples", 2000000));
  options.dim = static_cast<uint32_t>(args.GetInt("dim", 60));
  options.num_threads =
      static_cast<uint32_t>(args.GetInt("threads", 1));

  embedding::JointTrainer trainer(world->graphs.get(), options);
  std::printf("training %s: N=%llu K=%u threads=%u ...\n",
              config_name.c_str(),
              static_cast<unsigned long long>(options.num_samples),
              options.dim, options.num_threads);
  trainer.Train();
  if (const Status s =
          embedding::SaveEmbeddingStore(trainer.store(), *model_path);
      !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("wrote %s\n", model_path->c_str());
  return 0;
}

int CmdEvaluate(const Args& args) {
  const auto dir = args.Get("data");
  const auto model_path = args.Get("model");
  if (!dir || !model_path) {
    return Fail("--data and --model are required");
  }
  auto world = LoadWorld(*dir);
  if (!world.ok()) return Fail(world.status().ToString());
  auto store = embedding::LoadEmbeddingStore(*model_path);
  if (!store.ok()) return Fail(store.status().ToString());
  recommend::GemModel model(&store.value(), "gem");

  eval::ProtocolOptions options;
  options.max_cases = static_cast<size_t>(args.GetInt("cases", 400));
  const auto events = eval::EvaluateColdStartEvents(
      model, world->dataset, *world->split, options);
  std::printf("cold-start event recommendation (%zu cases):\n",
              events.num_cases);
  for (size_t i = 0; i < events.cutoffs.size(); ++i) {
    std::printf("  Ac@%-3zu %.3f   NDCG@%-3zu %.3f\n", events.cutoffs[i],
                events.accuracy[i], events.cutoffs[i], events.ndcg[i]);
  }
  std::printf("  MRR %.3f  mean rank %.1f\n", events.mrr,
              events.mean_rank);

  const auto truth =
      eval::BuildPartnerGroundTruth(world->dataset, *world->split);
  const auto partners = eval::EvaluateEventPartner(
      model, world->dataset, *world->split, truth, options);
  std::printf("joint event-partner recommendation (%zu cases):\n",
              partners.num_cases);
  for (size_t i = 0; i < partners.cutoffs.size(); ++i) {
    std::printf("  Ac@%-3zu %.3f   NDCG@%-3zu %.3f\n",
                partners.cutoffs[i], partners.accuracy[i],
                partners.cutoffs[i], partners.ndcg[i]);
  }
  std::printf("  MRR %.3f  mean rank %.1f\n", partners.mrr,
              partners.mean_rank);
  return 0;
}

int CmdRecommend(const Args& args) {
  const auto dir = args.Get("data");
  const auto model_path = args.Get("model");
  const auto user_arg = args.Get("user");
  if (!dir || !model_path || !user_arg) {
    return Fail("--data, --model and --user are required");
  }
  auto world = LoadWorld(*dir);
  if (!world.ok()) return Fail(world.status().ToString());
  auto store = embedding::LoadEmbeddingStore(*model_path);
  if (!store.ok()) return Fail(store.status().ToString());
  recommend::GemModel model(&store.value(), "gem");

  const auto user =
      static_cast<ebsn::UserId>(std::atoll(user_arg->c_str()));
  if (user >= world->dataset.num_users()) {
    return Fail("user id out of range");
  }

  std::vector<ebsn::EventId> pool = world->split->test_events();
  if (args.Has("weekend")) {
    recommend::EventFilter filter;
    filter.weekpart = recommend::EventFilter::Weekpart::kWeekendOnly;
    pool = recommend::FilterEvents(world->dataset, pool, filter);
  }
  if (pool.empty()) return Fail("no recommendable events after filters");

  recommend::QueryKind kind = recommend::QueryKind::kPartner;
  if (const auto kind_arg = args.Get("kind")) {
    if (!recommend::ParseQueryKind(*kind_arg, &kind)) {
      return Fail("--kind expects partner|group|reciprocal, got '" +
                  *kind_arg + "'");
    }
  }

  if (kind == recommend::QueryKind::kGroup) {
    const auto group_arg = args.Get("group");
    if (!group_arg || *group_arg == "true") {
      return Fail("--kind group requires --group ID,ID,...");
    }
    std::vector<ebsn::UserId> members;
    std::string token;
    for (std::istringstream ss(*group_arg); std::getline(ss, token, ',');) {
      if (token.empty()) continue;
      const auto member =
          static_cast<ebsn::UserId>(std::atoll(token.c_str()));
      if (member >= world->dataset.num_users()) {
        return Fail("group member " + token + " out of range");
      }
      members.push_back(member);
    }
    if (members.empty()) return Fail("--group lists no member ids");
    recommend::GroupAggregator agg = recommend::GroupAggregator::kSum;
    if (const auto agg_arg = args.Get("agg")) {
      if (!recommend::ParseGroupAggregator(*agg_arg, &agg)) {
        return Fail("--agg expects sum|min, got '" + *agg_arg + "'");
      }
    }
    const size_t n = static_cast<size_t>(args.GetInt("n", 10));
    for (const auto& r : recommend::GroupTopEvents(
             model, pool, user, members, agg, n)) {
      std::printf("event %6u  group(%zu) %s-score %.3f\n", r.event,
                  members.size(), recommend::GroupAggregatorName(agg),
                  r.score);
    }
    return 0;
  }

  if (kind == recommend::QueryKind::kReciprocal) {
    // Candidate partners: the user's friends (reciprocal matching is a
    // social workload); a friendless user falls back to everyone.
    std::vector<ebsn::UserId> partners = world->dataset.FriendsOf(user);
    if (partners.empty()) {
      for (uint32_t v = 0; v < world->dataset.num_users(); ++v) {
        if (v != user) partners.push_back(v);
      }
    }
    std::vector<recommend::CandidatePair> pairs;
    pairs.reserve(pool.size() * partners.size());
    for (const ebsn::EventId x : pool) {
      for (const ebsn::UserId v : partners) {
        pairs.push_back(recommend::CandidatePair{x, v});
      }
    }
    const recommend::TransformedSpace space(model, std::move(pairs));
    const size_t n = static_cast<size_t>(args.GetInt("n", 10));
    for (const auto& r :
         recommend::ReciprocalTopPairs(model, space, user, n)) {
      std::printf("event %6u  partner %6u  reciprocal score %.3f\n",
                  r.event, r.partner, r.score);
    }
    return 0;
  }

  recommend::RecommenderOptions rec_options;
  rec_options.top_k_events_per_partner =
      static_cast<uint32_t>(args.GetInt("top-k", 20));
  recommend::EventPartnerRecommender recommender(
      &model, pool, world->dataset.num_users(), rec_options);
  const size_t n = static_cast<size_t>(args.GetInt("n", 10));
  for (const auto& r : recommender.Recommend(user, n)) {
    std::printf("event %6u  partner %6u  score %.3f\n", r.event,
                r.partner, r.score);
    if (args.Has("explain")) {
      const auto explanation = recommend::ExplainRecommendation(
          model, world->dataset, *world->graphs, user, r.event,
          r.partner);
      std::printf("%s\n", explanation.ToString().c_str());
    }
  }
  return 0;
}

int CmdFoldin(const Args& args) {
  const auto dir = args.Get("data");
  const auto model_path = args.Get("model");
  const auto event_arg = args.Get("event");
  if (!dir || !model_path || !event_arg) {
    return Fail("--data, --model and --event are required");
  }
  auto world = LoadWorld(*dir);
  if (!world.ok()) return Fail(world.status().ToString());
  auto store = embedding::LoadEmbeddingStore(*model_path);
  if (!store.ok()) return Fail(store.status().ToString());

  const auto event =
      static_cast<ebsn::EventId>(std::atoll(event_arg->c_str()));
  if (event >= world->dataset.num_events()) {
    return Fail("event id out of range");
  }

  // TF-IDF signals against the corpus, as a serving system would
  // compute them for a just-published event.
  std::vector<std::vector<ebsn::WordId>> docs(
      world->dataset.num_events());
  for (uint32_t x = 0; x < world->dataset.num_events(); ++x) {
    docs[x] = world->dataset.event(x).words;
  }
  const auto tfidf =
      ebsn::ComputeTfIdf(docs, world->dataset.vocab_size());
  embedding::NewEventSignals signals;
  for (const auto& ww : tfidf[event]) {
    signals.words.push_back({ww.word, static_cast<float>(ww.weight)});
  }
  signals.region = world->graphs->event_region[event];
  signals.start_time = world->dataset.event(event).start_time;

  if (const Status s = embedding::FoldInColdEvent(&store.value(), event,
                                                  signals, {});
      !s.ok()) {
    return Fail(s.ToString());
  }
  const std::string out = args.GetOr("out", *model_path);
  if (const Status s = embedding::SaveEmbeddingStore(store.value(), out);
      !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("folded event %u in from %zu words + region + time; "
              "wrote %s\n",
              event, signals.words.size(), out.c_str());
  return 0;
}

/// `gemrec serve --listen host:port`: the epoll front-end over the
/// same service/builder/reloader stack the batch mode exercises.
/// Blocks until SIGINT/SIGTERM, then drains gracefully (stop
/// accepting, flush in-flight responses) before tearing down.
int ServeListen(const Args& args, const std::string& listen_spec,
                serving::RecommendationService* service,
                serving::SnapshotBuilder* builder) {
  net::ServerOptions net_options;
  uint16_t port = 0;
  if (const Status s = net::ParseHostPort(
          listen_spec, &net_options.listen_address, &port);
      !s.ok()) {
    return Fail(s.ToString());
  }
  net_options.port = port;
  net_options.max_in_flight =
      static_cast<uint32_t>(args.GetInt("max-in-flight", 256));
  net_options.idle_timeout =
      std::chrono::milliseconds(args.GetInt("idle-timeout-ms", 60000));
  // One epoll reactor per core up to 4 by default — past that the
  // service workers, not the front-end, are the bottleneck.
  const unsigned hw = std::thread::hardware_concurrency();
  net_options.num_reactors = static_cast<uint32_t>(args.GetInt(
      "reactors",
      static_cast<int64_t>(std::min(4u, std::max(1u, hw)))));

  // --ingest-dir enables the write path: a journaled ingestion queue
  // over the same builder, recovered (checkpoint + journal replay)
  // before the listener opens, so the first served snapshot already
  // contains every previously acknowledged write.
  std::optional<serving::IngestionQueue> ingest;
  if (const auto ingest_dir = args.Get("ingest-dir");
      ingest_dir && *ingest_dir != "true") {
    if (::mkdir(ingest_dir->c_str(), 0755) != 0 && errno != EEXIST) {
      return Fail("mkdir " + *ingest_dir + ": " + std::strerror(errno));
    }
    serving::IngestionQueueOptions iq;
    iq.journal_path = *ingest_dir + "/journal";
    iq.checkpoint_base = *ingest_dir + "/checkpoint";
    iq.max_pending =
        static_cast<size_t>(args.GetInt("max-pending", 1024));
    iq.publish_threshold =
        static_cast<size_t>(args.GetInt("publish-every", 64));
    iq.publish_interval =
        std::chrono::milliseconds(args.GetInt("publish-interval-ms", 200));
    iq.checkpoint_every =
        static_cast<size_t>(args.GetInt("checkpoint-every", 4096));
    ingest.emplace(service, builder, iq);
    if (const Status s = ingest->Start(); !s.ok()) {
      return Fail("ingestion recovery: " + s.ToString());
    }
    std::printf("ingestion on: journal=%s replayed=%llu%s\n",
                iq.journal_path.c_str(),
                static_cast<unsigned long long>(ingest->replayed()),
                ingest->recovered_clean() ? "" : " (torn tail dropped)");
  }

  net::NetServer server(service, net_options,
                        ingest ? &*ingest : nullptr);
  if (const Status s = server.Start(); !s.ok()) {
    return Fail(s.ToString());
  }
  g_net_server.store(&server, std::memory_order_relaxed);
  // A signal delivered before the server pointer was published only
  // set g_stop; convert it into a drain now.
  if (g_stop.load(std::memory_order_relaxed)) server.RequestDrain();
  std::printf("listening on %s:%u (reactors=%u, workers=%u, "
              "max-in-flight=%u); SIGINT/SIGTERM drains and exits\n",
              net_options.listen_address.c_str(), server.port(),
              std::max(1u, net_options.num_reactors),
              service->options().num_workers, net_options.max_in_flight);

  // Optional freshness loop: republish from the artifact every
  // --reload-interval seconds through the crash-safe reload path,
  // under whatever live connections exist.
  // With ingestion on, reloads must go through the queue's control
  // path (ReloadBase re-applies the journaled tail onto the fresh
  // base); a bare ModelReloader would race the ingest thread's
  // exclusive builder ownership and silently drop folded-in records.
  const auto reload_path = args.Get("reload");
  std::thread reload_thread;
  if (reload_path && *reload_path != "true") {
    const auto interval =
        std::chrono::seconds(args.GetInt("reload-interval", 30));
    reload_thread = std::thread([&, interval] {
      serving::ModelReloader reloader(service, builder, {});
      auto next = std::chrono::steady_clock::now() + interval;
      while (server.running() &&
             !g_stop.load(std::memory_order_relaxed)) {
        if (std::chrono::steady_clock::now() < next) {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
          continue;
        }
        next = std::chrono::steady_clock::now() + interval;
        const Status s = ingest ? ingest->ReloadBase(*reload_path)
                                : reloader.ReloadWithRetry(*reload_path);
        if (!s.ok()) {
          std::fprintf(stderr, "reload failed (still serving): %s\n",
                       s.ToString().c_str());
        }
      }
    });
  }

  // Optional observability heartbeat: dump the text exposition every
  // --stats-interval seconds, for operators tailing the log instead of
  // scraping `gemrec stats host:port`.
  const int64_t stats_interval = args.GetInt("stats-interval", 0);
  std::thread stats_thread;
  if (stats_interval > 0) {
    const auto interval = std::chrono::seconds(stats_interval);
    stats_thread = std::thread([&, interval] {
      auto next = std::chrono::steady_clock::now() + interval;
      while (server.running() &&
             !g_stop.load(std::memory_order_relaxed)) {
        if (std::chrono::steady_clock::now() < next) {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
          continue;
        }
        next = std::chrono::steady_clock::now() + interval;
        DumpMetrics(service);
      }
    });
  }

  server.WaitUntilStopped();
  g_net_server.store(nullptr, std::memory_order_relaxed);
  g_stop.store(true, std::memory_order_relaxed);
  if (reload_thread.joinable()) reload_thread.join();
  if (stats_thread.joinable()) stats_thread.join();
  server.Stop();
  // After the listener is gone no new writes can arrive; drain what
  // was accepted (journal + apply + ack + final publish) before exit.
  if (ingest) ingest->Shutdown();

  const net::NetStats net_stats = server.stats();
  std::printf("drained after %llu connections; final metrics:\n",
              static_cast<unsigned long long>(net_stats.accepted));
  DumpMetrics(service);
  return 0;
}

int CmdServe(const Args& args) {
  const auto dir = args.Get("data");
  const auto model_path = args.Get("model");
  if (!dir || !model_path) {
    return Fail("--data and --model are required");
  }
  auto world = LoadWorld(*dir);
  if (!world.ok()) return Fail(world.status().ToString());
  auto store = embedding::LoadEmbeddingStore(*model_path);
  if (!store.ok()) return Fail(store.status().ToString());

  // Both serve modes install the handlers (an uncaught SIGINT would
  // skip ResultCache/snapshot teardown); the batch loops below poll
  // g_stop, the network mode drains.
  InstallStopHandlers();

  const size_t queries = static_cast<size_t>(args.GetInt("queries", 2000));
  const size_t n = static_cast<size_t>(args.GetInt("n", 10));
  const uint32_t swaps = static_cast<uint32_t>(args.GetInt("swaps", 2));
  const uint32_t clients =
      static_cast<uint32_t>(std::max<int64_t>(1, args.GetInt("clients", 2)));

  // Escape hatch: --exact-ta (or GEMREC_EXACT_TA=1) restores per-query
  // exact TA retrieval instead of the default quantized batched path.
  const bool exact_ta =
      args.Has("exact-ta") || std::getenv("GEMREC_EXACT_TA") != nullptr;

  serving::SnapshotOptions snapshot_options;
  snapshot_options.top_k_events_per_partner =
      static_cast<uint32_t>(args.GetInt("top-k", 20));
  snapshot_options.build_quantized = !exact_ta;
  // --shard i/N keeps only this instance's deterministic hash-slice of
  // the candidate-pair space; a coordinator (gemrec coordinate) fans
  // queries out over all N and merges.
  if (const auto shard = args.Get("shard"); shard && *shard != "true") {
    if (!shard::ParseShardSpec(*shard, &snapshot_options.shard)) {
      return Fail("--shard expects i/N with 0 <= i < N, got '" + *shard +
                  "'");
    }
  }
  serving::SnapshotBuilder builder(
      store.value(), world->split->test_events(),
      world->dataset.num_users(), snapshot_options);

  serving::ServiceOptions service_options;
  service_options.num_workers =
      static_cast<uint32_t>(args.GetInt("workers", 4));
  service_options.use_batch_ta = !exact_ta;
  serving::RecommendationService service(service_options);
  service.Publish(builder.Build());

  if (const auto listen = args.Get("listen");
      listen && *listen != "true") {
    return ServeListen(args, *listen, &service, &builder);
  }

  std::printf("serving %zu events to %u users: workers=%u clients=%u "
              "queries=%zu swaps=%u\n",
              builder.event_pool().size(), world->dataset.num_users(),
              service_options.num_workers, clients, queries, swaps);

  // Closed-loop clients: each thread issues synchronous queries over a
  // rotating user set and records its own latencies; a background
  // updater races --swaps fold-in + rebuild + publish cycles against
  // the traffic, demonstrating that reloads never block queries.
  std::vector<std::vector<double>> latencies(clients);
  const auto wall_start = std::chrono::steady_clock::now();
  // With --reload FILE each swap republishes from the on-disk artifact
  // through the crash-safe reload path: a corrupt or mid-write FILE
  // costs freshness (counted below), never availability.
  const auto reload_path = args.Get("reload");
  serving::ModelReloader reloader(&service, &builder, {});
  std::thread updater([&] {
    embedding::OnlineUpdateOptions update;
    update.iterations = 50;
    for (uint32_t s = 0; s < swaps; ++s) {
      if (g_stop.load(std::memory_order_relaxed)) return;
      const auto& attendance = world->dataset.attendances();
      const auto& a = attendance[s % attendance.size()];
      if (!builder.RecordAttendance(a.user, a.event, update).ok()) return;
      if (reload_path && *reload_path != "true") {
        (void)reloader.ReloadWithRetry(*reload_path);
      } else {
        service.Publish(builder.Build());
      }
    }
  });
  std::vector<std::thread> client_threads;
  for (uint32_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      auto& mine = latencies[c];
      mine.reserve(queries / clients + 1);
      for (size_t i = c; i < queries; i += clients) {
        if (g_stop.load(std::memory_order_relaxed)) break;
        serving::QueryRequest request;
        request.user = static_cast<ebsn::UserId>(
            (i * 131) % world->dataset.num_users());
        request.n = n;
        const auto start = std::chrono::steady_clock::now();
        const auto response = service.Query(request);
        const auto stop = std::chrono::steady_clock::now();
        (void)response;
        mine.push_back(
            std::chrono::duration<double, std::micro>(stop - start)
                .count());
      }
    });
  }
  for (auto& thread : client_threads) thread.join();
  updater.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  if (all.empty()) return 0;  // stopped by signal before any query
  std::sort(all.begin(), all.end());
  std::printf("served %zu queries in %.2fs: %.0f qps\n", all.size(),
              wall_seconds, all.size() / wall_seconds);
  // Nearest-rank percentiles (an earlier revision indexed p*n, which
  // over-reads toward the max for small sample counts).
  std::printf("latency p50 %.0fus  p90 %.0fus  p99 %.0fus\n",
              obs::SamplePercentile(all, 0.50),
              obs::SamplePercentile(all, 0.90),
              obs::SamplePercentile(all, 0.99));
  DumpMetrics(&service);
  return 0;
}

/// `gemrec coordinate --shards host:p1,host:p2 --listen host:port` —
/// the scatter-gather tier: a CoordinatorBackend (ShardRouter fan-out
/// + TA-bounded top-k merge) behind the same NetServer front-end that
/// `gemrec serve --listen` uses, speaking the same wire protocol.
/// Each shard should run `gemrec serve --listen --shard i/N` with the
/// same model over the same event pool; i in the order the endpoints
/// are listed here.
int CmdCoordinate(const Args& args) {
  const auto shards_spec = args.Get("shards");
  const auto listen_spec = args.Get("listen");
  if (!shards_spec || *shards_spec == "true" || !listen_spec ||
      *listen_spec == "true") {
    return Fail("--shards and --listen are required");
  }
  std::vector<shard::ShardEndpoint> endpoints;
  if (const Status s = shard::ParseShardEndpoints(*shards_spec,
                                                  &endpoints);
      !s.ok()) {
    return Fail(s.ToString());
  }

  shard::CoordinatorOptions coordinator_options;
  coordinator_options.router.shard_deadline = std::chrono::milliseconds(
      args.GetInt("shard-deadline-ms", 250));
  coordinator_options.router.breaker_threshold = static_cast<uint32_t>(
      args.GetInt("breaker-threshold", 3));
  coordinator_options.router.breaker_backoff = std::chrono::milliseconds(
      args.GetInt("breaker-backoff-ms", 250));
  shard::CoordinatorBackend coordinator(endpoints, coordinator_options);
  if (const Status s = coordinator.Start(); !s.ok()) {
    return Fail(s.ToString());
  }

  net::ServerOptions net_options;
  uint16_t port = 0;
  if (const Status s = net::ParseHostPort(
          *listen_spec, &net_options.listen_address, &port);
      !s.ok()) {
    return Fail(s.ToString());
  }
  net_options.port = port;
  net_options.max_in_flight =
      static_cast<uint32_t>(args.GetInt("max-in-flight", 256));
  net_options.idle_timeout =
      std::chrono::milliseconds(args.GetInt("idle-timeout-ms", 60000));
  net_options.num_reactors =
      static_cast<uint32_t>(args.GetInt("reactors", 1));

  InstallStopHandlers();
  net::NetServer server(&coordinator, net_options);
  if (const Status s = server.Start(); !s.ok()) {
    return Fail(s.ToString());
  }
  g_net_server.store(&server, std::memory_order_relaxed);
  if (g_stop.load(std::memory_order_relaxed)) server.RequestDrain();
  std::printf("coordinating %zu shard(s) on %s:%u "
              "(deadline=%lldms, breaker=%u); SIGINT/SIGTERM drains\n",
              coordinator.num_shards(),
              net_options.listen_address.c_str(), server.port(),
              static_cast<long long>(
                  coordinator_options.router.shard_deadline.count()),
              coordinator_options.router.breaker_threshold);
  server.WaitUntilStopped();
  g_net_server.store(nullptr, std::memory_order_relaxed);
  server.Stop();
  coordinator.Stop();
  const std::string text =
      obs::RenderText(coordinator.metrics()->Snapshot());
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
  return 0;
}

/// `gemrec ingest host:port` — stream one write to a live
/// `gemrec serve --listen --ingest-dir` server: an attendance
/// (--attend USER:EVENT, with --new-user folding in a cold user
/// vector) or a cold event (--new-event X, TF-IDF signals computed
/// from --data exactly as the offline `gemrec foldin` does). Blocks
/// for the kIngestAck: success means the record is journaled durably
/// and will appear in search results by the next delta publish.
int CmdIngest(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    return Fail("usage: gemrec ingest HOST:PORT --attend USER:EVENT "
                "[--new-user] | --new-event X --data DIR");
  }
  std::string host;
  uint16_t port = 0;
  if (const Status s = net::ParseHostPort(argv[2], &host, &port);
      !s.ok()) {
    return Fail(s.ToString());
  }
  const Args args(argc, argv);

  auto client = net::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status().ToString());

  Result<net::IngestOutcome> outcome =
      Status::InvalidArgument("one of --attend or --new-event required");
  if (const auto attend = args.Get("attend");
      attend && *attend != "true") {
    const auto colon = attend->find(':');
    if (colon == std::string::npos) {
      return Fail("--attend expects USER:EVENT");
    }
    const auto user = static_cast<ebsn::UserId>(
        std::atoll(attend->substr(0, colon).c_str()));
    const auto event = static_cast<ebsn::EventId>(
        std::atoll(attend->substr(colon + 1).c_str()));
    outcome = client.value()->Attend(user, event, args.Has("new-user"));
  } else if (const auto event_arg = args.Get("new-event");
             event_arg && *event_arg != "true") {
    const auto dir = args.Get("data");
    if (!dir) return Fail("--new-event requires --data for signals");
    auto world = LoadWorld(*dir);
    if (!world.ok()) return Fail(world.status().ToString());
    const auto event =
        static_cast<ebsn::EventId>(std::atoll(event_arg->c_str()));
    if (event >= world->dataset.num_events()) {
      return Fail("event id out of range");
    }
    std::vector<std::vector<ebsn::WordId>> docs(
        world->dataset.num_events());
    for (uint32_t x = 0; x < world->dataset.num_events(); ++x) {
      docs[x] = world->dataset.event(x).words;
    }
    const auto tfidf =
        ebsn::ComputeTfIdf(docs, world->dataset.vocab_size());
    embedding::NewEventSignals signals;
    for (const auto& ww : tfidf[event]) {
      signals.words.push_back({ww.word, static_cast<float>(ww.weight)});
    }
    signals.region = world->graphs->event_region[event];
    signals.start_time = world->dataset.event(event).start_time;
    outcome = client.value()->PublishNewEvent(event, signals);
  }

  if (!outcome.ok()) return Fail(outcome.status().ToString());
  if (!outcome.value().ok) {
    return Fail("server refused (" +
                std::string(net::ErrorCodeName(outcome.value().error)) +
                "): " + outcome.value().error_message);
  }
  std::printf("acknowledged: journal seq %llu (durable; retrievable "
              "after the next delta publish)\n",
              static_cast<unsigned long long>(outcome.value().seq));
  return 0;
}

/// `gemrec stats host:port` — scrape a live `gemrec serve --listen`
/// server's metrics over the kStats wire pair and print the same text
/// exposition the serve modes dump locally.
int CmdStats(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    return Fail("usage: gemrec stats HOST:PORT");
  }
  std::string host;
  uint16_t port = 0;
  if (const Status s = net::ParseHostPort(argv[2], &host, &port);
      !s.ok()) {
    return Fail(s.ToString());
  }
  auto client = net::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status().ToString());
  auto snapshot = client.value()->Stats();
  if (!snapshot.ok()) return Fail(snapshot.status().ToString());
  const std::string text = obs::RenderText(snapshot.value());
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (command == "generate") return CmdGenerate(args);
  if (command == "profile") return CmdProfile(args);
  if (command == "train") return CmdTrain(args);
  if (command == "evaluate") return CmdEvaluate(args);
  if (command == "recommend") return CmdRecommend(args);
  if (command == "foldin") return CmdFoldin(args);
  if (command == "serve") return CmdServe(args);
  if (command == "coordinate") return CmdCoordinate(args);
  if (command == "ingest") return CmdIngest(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace gemrec::cli

int main(int argc, char** argv) { return gemrec::cli::Main(argc, argv); }
