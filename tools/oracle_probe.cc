// Temporary: data-ceiling probe using the planted generative propensity.
#include <cmath>
#include <cstdio>
#include "bench/bench_util.h"
#include "ebsn/time_slots.h"
using namespace gemrec;
namespace {
class OracleModel : public recommend::RecModel {
 public:
  OracleModel(const bench::CityBundle* city) : city_(city) {}
  std::string Name() const override { return "oracle"; }
  float ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const override {
    const auto& p = city_->data.user_profiles[u];
    const auto& ev = city_->dataset().event(x);
    const auto& venue = city_->dataset().venue(ev.venue).location;
    // geo: use home cluster center approx == venue of home? use profile home cluster center unknown here; approximate with exp(-dist(user home venue?)...)
    double interest = p.topic_interest[ev.topic];
    double hour = ebsn::HourOfDay(ev.start_time);
    int d = std::abs((int)hour - (int)p.preferred_hour);
    double hm = std::exp(-std::min(d, 24 - d) / 3.0);
    bool we = ebsn::IsWeekend(ev.start_time);
    double wm = we ? p.weekend_preference : 1 - p.weekend_preference;
    return static_cast<float>(interest * (0.1 + 0.9 * hm) * (0.1 + 0.9 * wm));
  }
  float ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const override {
    return city_->dataset().AreFriends(u, v) ? 1.0f : 0.0f;
  }
 private:
  const bench::CityBundle* city_;
};
}
int main() {
  auto city = bench::MakeCity(ebsn::SyntheticConfig::Beijing(1.0));
  OracleModel m(&city);
  auto r = bench::EvalColdStart(m, city);
  auto p = bench::EvalPartner(m, city);
  printf("oracle (no geo term): event@10=%.3f event@20=%.3f joint@10=%.3f\n", r.At(10), r.At(20), p.At(10));
  return 0;
}
