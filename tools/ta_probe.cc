// Temporary: inspect embedding sparsity / TA prunability.
#include <algorithm>
#include <cstdio>
#include <vector>
#include "bench/bench_util.h"
using namespace gemrec;
int main() {
  auto city = bench::MakeCity(ebsn::SyntheticConfig::Beijing(1.0));
  auto t = bench::TrainEmbedding(city, embedding::TrainerOptions::GemA());
  const auto& users = t->store().MatrixOf(graph::NodeType::kUser);
  const auto& events = t->store().MatrixOf(graph::NodeType::kEvent);
  auto stats = [](const Matrix& m, const char* name) {
    size_t zeros = 0; double total = 0, max = 0;
    std::vector<float> row_max;
    for (size_t r = 0; r < m.rows(); ++r) {
      float rmax = 0;
      for (size_t c = 0; c < m.cols(); ++c) {
        float v = m.At(r, c);
        if (v < 1e-6) ++zeros;
        total += v; rmax = std::max(rmax, v);
      }
      row_max.push_back(rmax);
    }
    double mean = total / (m.rows() * m.cols());
    printf("%s: zeros=%.1f%% mean=%.3f\n", name,
           100.0 * zeros / (m.rows() * m.cols()), mean);
  };
  stats(users, "users");
  stats(events, "events");
  // effective dims of a few user query vectors: fraction of |u|_1 mass
  // in top-5 coords
  for (uint32_t u : {3u, 100u, 500u}) {
    std::vector<float> v(users.Row(u), users.Row(u) + users.cols());
    std::sort(v.rbegin(), v.rend());
    double l1 = 0, top5 = 0;
    for (size_t i = 0; i < v.size(); ++i) { l1 += v[i]; if (i < 5) top5 += v[i]; }
    printf("user %u: l1=%.2f top5_frac=%.2f max=%.2f\n", u, l1, top5 / std::max(1e-9, l1), v[0]);
  }
  return 0;
}
