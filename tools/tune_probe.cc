// Temporary tuning probe (not part of the library surface).
#include <cstdio>
#include <cstdlib>
#include <string>
#include "bench/../bench/bench_util.h"
int main(int argc, char** argv) {
  using namespace gemrec;
  double bias = argc > 1 ? atof(argv[1]) : 1.0;
  double lr = argc > 2 ? atof(argv[2]) : 0.05;
  int M = argc > 3 ? atoi(argv[3]) : 2;
  double init = argc > 4 ? atof(argv[4]) : 0.01;
  int dim = argc > 5 ? atoi(argv[5]) : 60;
  const char* kind = argc > 6 ? argv[6] : "gema";
  auto city = bench::MakeCity(ebsn::SyntheticConfig::Beijing(1.0));
  if (std::string(kind) == "cbpf") {
    baselines::CbpfOptions co;
    if (const char* e = getenv("EPOCHS")) co.num_epochs = atoi(e);
    co.learning_rate = static_cast<float>(lr);
    co.zeros_per_positive = M;
    co.dim = dim;
    baselines::CbpfModel cm(city.dataset(), *city.split, *city.graphs, co);
    auto r = bench::EvalColdStart(cm, city);
    printf("CBPF epochs=%s lr=%.3f zeros=%d dim=%d -> event@10=%.3f event@20=%.3f\n",
           getenv("EPOCHS") ? getenv("EPOCHS") : "30", lr, M, dim, r.At(10), r.At(20));
    return 0;
  }
  embedding::TrainerOptions o =
      std::string(kind) == "gemp" ? embedding::TrainerOptions::GemP()
      : std::string(kind) == "pte" ? embedding::TrainerOptions::Pte()
                                   : embedding::TrainerOptions::GemA();
  o.bias = bias; o.learning_rate = lr; o.negatives_per_side = M;
  o.init_stddev = init; o.dim = dim;
  if (const char* l = getenv("LAMBDA")) o.lambda = atof(l);
  auto t = bench::TrainEmbedding(city, o);
  recommend::GemModel m(&t->store(), "probe");
  auto r = bench::EvalColdStart(m, city);
  auto p = bench::EvalPartner(m, city);
  printf("bias=%.2f lr=%.3f M=%d init=%.3f dim=%d kind=%s -> event@10=%.3f joint@10=%.3f\n",
         bias, lr, M, init, dim, kind, r.At(10), p.At(10));
  return 0;
}
