// Reproduces Table V: impact of λ — the density parameter of the
// adaptive sampler's geometric rank distribution (Eqn 6) — on GEM-A
// accuracy (Beijing), λ ∈ {50, 100, 150, 200, 500}.
//
// Paper reference (Ac@10): 0.312 / 0.354 / 0.363 / 0.373 / 0.372 for
// event rec; 0.165 / 0.194 / 0.239 / 0.244 / 0.244 for the joint
// task. Expected shape: accuracy rises with λ and saturates at ~200
// (too small a λ over-focuses on the very top ranks).

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

namespace gemrec::bench {
namespace {

void Run() {
  PrintNote("paper reference (Beijing, GEM-A Ac@10 by λ):");
  PrintNote("  event rec:  0.312 @50, 0.354 @100, 0.363 @150, "
            "0.373 @200, 0.372 @500");
  PrintNote("  joint task: 0.165 @50, 0.194 @100, 0.239 @150, "
            "0.244 @200, 0.244 @500");

  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));

  PrintBanner(std::cout, "Table V: impact of the parameter lambda "
                         "(beijing, GEM-A)");
  TablePrinter table({"lambda", "event Ac@5", "event Ac@10",
                      "event Ac@20", "joint Ac@5", "joint Ac@10",
                      "joint Ac@20"});
  // The paper sweeps {50,100,150,200,500} over |V_X| ≈ 13k nodes; our
  // node sets are ~10x smaller, so the same *relative* densities land
  // at larger absolute λ — we extend the sweep accordingly.
  for (double lambda : {50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0}) {
    auto options = embedding::TrainerOptions::GemA();
    options.lambda = lambda;
    auto trainer = TrainEmbedding(city, options);
    recommend::GemModel model(&trainer->store(), "GEM-A");
    const auto event_result = EvalColdStart(model, city);
    const auto joint_result = EvalPartner(model, city);
    table.AddRow({TablePrinter::Num(lambda, 0),
                  TablePrinter::Num(event_result.At(5), 3),
                  TablePrinter::Num(event_result.At(10), 3),
                  TablePrinter::Num(event_result.At(20), 3),
                  TablePrinter::Num(joint_result.At(5), 3),
                  TablePrinter::Num(joint_result.At(10), 3),
                  TablePrinter::Num(joint_result.At(20), 3)});
  }
  table.Print(std::cout);
  PrintNote("\nshape check: accuracy should improve with lambda and "
            "saturate (paper knee: lambda = 200). Note our node sets "
            "are smaller than the paper's, so the knee can shift left "
            "proportionally.");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
