// Reproduces Figure 4: joint event-partner recommendation, scenario 1
// (recommended partners are existing friends). All models are extended
// to the joint task through the paper's pairwise-interaction framework
// (Eqn 8); CFAPR-E uses GEM-A vectors for the event side and its own
// historical-partner CF for the partner side.
//
// Paper reference (Beijing, Ac@10): GEM-A 0.244, GEM-P 0.205 (Table
// III at convergence); PTE, CFAPR-E, CBPF, PER, PCMF trail in that
// rough order. Expected shape: GEM-A first, GEM-P second, baselines
// clearly below.

#include <iostream>

#include "bench_util.h"

namespace gemrec::bench {
namespace {

void RunCity(const ebsn::SyntheticConfig& config) {
  CityBundle city = MakeCity(config);
  std::vector<AccuracyRow> rows;

  auto gem_a = TrainEmbedding(city, embedding::TrainerOptions::GemA());
  recommend::GemModel gem_a_model(&gem_a->store(), "GEM-A");
  rows.push_back({"GEM-A", EvalPartner(gem_a_model, city)});

  {
    auto trainer = TrainEmbedding(city, embedding::TrainerOptions::GemP());
    recommend::GemModel model(&trainer->store(), "GEM-P");
    rows.push_back({"GEM-P", EvalPartner(model, city)});
  }
  {
    auto trainer = TrainEmbedding(city, embedding::TrainerOptions::Pte());
    recommend::GemModel model(&trainer->store(), "PTE");
    rows.push_back({"PTE", EvalPartner(model, city)});
  }
  {
    baselines::CfaprEModel model(city.dataset(), *city.split,
                                 *city.graphs, &gem_a_model);
    rows.push_back({"CFAPR-E", EvalPartner(model, city)});
  }
  {
    baselines::CbpfModel model(city.dataset(), *city.split, *city.graphs,
                               baselines::CbpfOptions{});
    rows.push_back({"CBPF", EvalPartner(model, city)});
  }
  {
    baselines::PerModel model(city.dataset(), *city.split, *city.graphs,
                              baselines::PerOptions{});
    rows.push_back({"PER", EvalPartner(model, city)});
  }
  {
    baselines::PcmfOptions options;
    options.num_samples = BenchSamples();
    baselines::PcmfModel model(*city.graphs, options);
    rows.push_back({"PCMF", EvalPartner(model, city)});
  }

  PrintAccuracySeries("Figure 4: joint event-partner recommendation, "
                      "scenario 1 — partners are friends (" +
                          city.name + ")",
                      rows);
}

void Run() {
  PrintNote("paper reference (Beijing, Ac@10): GEM-A 0.244 > GEM-P 0.205"
            " > PTE/CFAPR-E/CBPF/PER/PCMF");
  RunCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  RunCity(ebsn::SyntheticConfig::Shanghai(BenchScale()));
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
