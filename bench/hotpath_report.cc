// Hot-path before/after report (not a paper table): measures the two
// acceptance metrics of the SIMD/pooling/zero-alloc overhaul and
// writes them to BENCH_hotpath.json next to the frozen seed baselines,
// so regressions against either the seed or the current numbers are
// one diff away.
//
//   1. Training throughput: GEM-A at K = 100 on the Beijing synthetic
//      city (the BM_GemAHighDim/100 workload of
//      perf_training_throughput) — target >= 1.5x the seed's
//      120.4k items/s.
//   2. Online TA latency: top-10 event-partner queries over the
//      unpruned test-event x partner space (the Table-VI workload),
//      with the steady-state heap-allocation count (must be 0).
//
// Run from the repo root so BENCH_hotpath.json lands there:
//   ./build/bench/hotpath_report

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/vec_math.h"
#include "recommend/candidate_index.h"
#include "recommend/space_transform.h"
#include "recommend/ta_search.h"

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace gemrec::bench {
namespace {

// Seed-commit baselines (RelWithDebInfo, default bench scale, single
// core) — frozen here so the JSON always carries the "before" column.
constexpr double kSeedTrainK100ItemsPerSec = 120404.0;
constexpr double kSeedTrainK60ItemsPerSec = 190671.0;
constexpr double kSeedTaTop10Ms = 12.0;

struct TrainResult {
  double items_per_sec = 0.0;
};

TrainResult MeasureTraining(const CityBundle& city, uint32_t dim) {
  auto options = embedding::TrainerOptions::GemA();
  options.dim = dim;
  options.num_samples = 200000;
  embedding::JointTrainer trainer(city.graphs.get(), options);
  trainer.TrainChunk(5000);  // warm-up; builds the adaptive rankings
  constexpr uint64_t kSteps = 100000;
  Stopwatch watch;
  trainer.TrainChunk(kSteps);
  const double elapsed = watch.ElapsedSeconds();
  return TrainResult{static_cast<double>(kSteps) / elapsed};
}

struct TaResult {
  double ms_per_query = 0.0;
  double examined_fraction = 0.0;
  size_t num_pairs = 0;
  size_t queries = 0;
  size_t steady_state_allocations = 0;
};

TaResult MeasureTaSearch(const CityBundle& city) {
  auto trainer =
      TrainEmbedding(city, embedding::TrainerOptions::GemA(), 200000);
  recommend::GemModel model(&trainer->store(), "GEM-A");
  const uint32_t num_users = city.dataset().num_users();
  // Unpruned Table-VI space: every test event x every partner.
  const auto pairs = recommend::BuildCandidatePairs(
      model, city.split->test_events(), num_users, /*top_k=*/0);
  recommend::TransformedSpace space(model, pairs);
  recommend::TaSearch ta(&space);

  constexpr size_t kQueries = 100;
  constexpr size_t kTopN = 10;
  std::vector<std::vector<float>> queries(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    space.QueryVector(model, static_cast<uint32_t>((i * 17) % num_users),
                      &queries[i]);
  }

  recommend::TaSearch::Scratch scratch;
  std::vector<recommend::SearchHit> hits;
  recommend::SearchStats stats;
  // Warm-up pass grows the scratch and output capacities.
  for (size_t i = 0; i < kQueries; ++i) {
    ta.SearchInto(queries[i], kTopN,
                  static_cast<uint32_t>((i * 17) % num_users), &hits,
                  &stats, &scratch);
  }

  TaResult result;
  result.num_pairs = space.num_points();
  result.queries = kQueries;
  const size_t allocs_before = g_allocations.load();
  double examined = 0.0;
  Stopwatch watch;
  for (size_t i = 0; i < kQueries; ++i) {
    ta.SearchInto(queries[i], kTopN,
                  static_cast<uint32_t>((i * 17) % num_users), &hits,
                  &stats, &scratch);
    examined += stats.examined_fraction;
  }
  const double elapsed = watch.ElapsedSeconds();
  result.steady_state_allocations = g_allocations.load() - allocs_before;
  result.ms_per_query = elapsed * 1000.0 / static_cast<double>(kQueries);
  result.examined_fraction = examined / static_cast<double>(kQueries);
  return result;
}

void Run() {
  PrintNote("hot-path report: training throughput (GEM-A, K=100) and "
            "TA top-10 latency vs the frozen seed baselines; writes "
            "BENCH_hotpath.json");
  PrintNote(std::string("kernel variant: ") + vec_detail::KernelVariant());

  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));

  const TrainResult k100 = MeasureTraining(city, 100);
  const TrainResult k60 = MeasureTraining(city, 60);
  const TaResult ta = MeasureTaSearch(city);

  const double speedup_k100 =
      k100.items_per_sec / kSeedTrainK100ItemsPerSec;
  const double speedup_k60 = k60.items_per_sec / kSeedTrainK60ItemsPerSec;
  const double speedup_ta = kSeedTaTop10Ms / ta.ms_per_query;

  std::cout << "\ntraining GEM-A K=100: " << k100.items_per_sec
            << " items/s (seed " << kSeedTrainK100ItemsPerSec << ", "
            << speedup_k100 << "x)\n";
  std::cout << "training GEM-A K=60:  " << k60.items_per_sec
            << " items/s (seed " << kSeedTrainK60ItemsPerSec << ", "
            << speedup_k60 << "x)\n";
  std::cout << "TA top-10 query:      " << ta.ms_per_query << " ms over "
            << ta.num_pairs << " pairs (seed ~" << kSeedTaTop10Ms
            << " ms, " << speedup_ta << "x), examined_frac "
            << ta.examined_fraction << ", steady-state allocations "
            << ta.steady_state_allocations << "\n";

  std::ofstream json("BENCH_hotpath.json");
  json << "{\n"
       << "  \"bench\": \"hotpath\",\n"
       << "  \"kernel_variant\": \"" << vec_detail::KernelVariant()
       << "\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"training_gema_k100\": {\n"
       << "    \"workload\": \"BM_GemAHighDim/100 (beijing synthetic, "
          "100k timed steps)\",\n"
       << "    \"seed_items_per_sec\": " << kSeedTrainK100ItemsPerSec
       << ",\n"
       << "    \"items_per_sec\": " << k100.items_per_sec << ",\n"
       << "    \"speedup_vs_seed\": " << speedup_k100 << ",\n"
       << "    \"target_speedup\": 1.5\n"
       << "  },\n"
       << "  \"training_gema_k60\": {\n"
       << "    \"seed_items_per_sec\": " << kSeedTrainK60ItemsPerSec
       << ",\n"
       << "    \"items_per_sec\": " << k60.items_per_sec << ",\n"
       << "    \"speedup_vs_seed\": " << speedup_k60 << "\n"
       << "  },\n"
       << "  \"ta_search_top10\": {\n"
       << "    \"workload\": \"unpruned test-event x partner space, "
          "top-10, 100 queries\",\n"
       << "    \"num_pairs\": " << ta.num_pairs << ",\n"
       << "    \"seed_ms_per_query\": " << kSeedTaTop10Ms << ",\n"
       << "    \"ms_per_query\": " << ta.ms_per_query << ",\n"
       << "    \"speedup_vs_seed\": " << speedup_ta << ",\n"
       << "    \"examined_fraction\": " << ta.examined_fraction << ",\n"
       << "    \"steady_state_allocations\": "
       << ta.steady_state_allocations << ",\n"
       << "    \"target_allocations\": 0\n"
       << "  }\n"
       << "}\n";
  std::cout << "\nwrote BENCH_hotpath.json\n";
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
