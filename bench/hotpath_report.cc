// Hot-path before/after report (not a paper table): measures the two
// acceptance metrics of the SIMD/pooling/zero-alloc overhaul and
// writes them to BENCH_hotpath.json next to the frozen seed baselines,
// so regressions against either the seed or the current numbers are
// one diff away.
//
//   1. Training throughput: GEM-A at K = 100 on the Beijing synthetic
//      city (the BM_GemAHighDim/100 workload of
//      perf_training_throughput) — target >= 1.5x the seed's
//      120.4k items/s.
//   2. Online TA latency: top-10 event-partner queries over the
//      unpruned test-event x partner space (the Table-VI workload),
//      with the steady-state heap-allocation count (must be 0).
//
// Run from the repo root so BENCH_hotpath.json lands there:
//   ./build/bench/hotpath_report

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <iostream>
#include <new>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/vec_math.h"
#include "recommend/batch_ta_search.h"
#include "recommend/candidate_index.h"
#include "recommend/quantized_space.h"
#include "recommend/space_index.h"
#include "recommend/space_transform.h"
#include "recommend/ta_search.h"

namespace {

std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace gemrec::bench {
namespace {

// Seed-commit baselines (RelWithDebInfo, default bench scale, single
// core) — frozen here so the JSON always carries the "before" column.
constexpr double kSeedTrainK100ItemsPerSec = 120404.0;
constexpr double kSeedTrainK60ItemsPerSec = 190671.0;
constexpr double kSeedTaTop10Ms = 12.0;

struct TrainResult {
  double items_per_sec = 0.0;
};

TrainResult MeasureTraining(const CityBundle& city, uint32_t dim) {
  auto options = embedding::TrainerOptions::GemA();
  options.dim = dim;
  options.num_samples = 200000;
  embedding::JointTrainer trainer(city.graphs.get(), options);
  trainer.TrainChunk(5000);  // warm-up; builds the adaptive rankings
  constexpr uint64_t kSteps = 100000;
  Stopwatch watch;
  trainer.TrainChunk(kSteps);
  const double elapsed = watch.ElapsedSeconds();
  return TrainResult{static_cast<double>(kSteps) / elapsed};
}

struct TaResult {
  double ms_per_query = 0.0;
  double examined_fraction = 0.0;
  size_t num_pairs = 0;
  size_t queries = 0;
  size_t steady_state_allocations = 0;
};

constexpr size_t kQueries = 100;
constexpr size_t kTopN = 10;

/// The shared retrieval workload: the unpruned Table-VI space plus the
/// 100-query set, built once and measured by both the exact-TA and the
/// quantized batched sections (the trainer keeps the store alive).
struct QuerySpace {
  std::unique_ptr<embedding::JointTrainer> trainer;
  std::unique_ptr<recommend::GemModel> model;
  std::unique_ptr<recommend::TransformedSpace> space;
  std::vector<std::vector<float>> queries;
  std::vector<ebsn::UserId> excludes;
};

QuerySpace BuildQuerySpace(const CityBundle& city) {
  QuerySpace qs;
  qs.trainer =
      TrainEmbedding(city, embedding::TrainerOptions::GemA(), 200000);
  qs.model =
      std::make_unique<recommend::GemModel>(&qs.trainer->store(), "GEM-A");
  const uint32_t num_users = city.dataset().num_users();
  // Unpruned Table-VI space: every test event x every partner.
  const auto pairs = recommend::BuildCandidatePairs(
      *qs.model, city.split->test_events(), num_users, /*top_k=*/0);
  qs.space =
      std::make_unique<recommend::TransformedSpace>(*qs.model, pairs);
  qs.queries.resize(kQueries);
  qs.excludes.resize(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    qs.excludes[i] = static_cast<uint32_t>((i * 17) % num_users);
    qs.space->QueryVector(*qs.model, qs.excludes[i], &qs.queries[i]);
  }
  return qs;
}

TaResult MeasureTaSearch(const QuerySpace& qs) {
  recommend::TaSearch ta(qs.space.get());

  recommend::TaSearch::Scratch scratch;
  std::vector<recommend::SearchHit> hits;
  recommend::SearchStats stats;
  // Warm-up pass grows the scratch and output capacities.
  for (size_t i = 0; i < kQueries; ++i) {
    ta.SearchInto(qs.queries[i], kTopN, qs.excludes[i], &hits, &stats,
                  &scratch);
  }

  TaResult result;
  result.num_pairs = qs.space->num_points();
  result.queries = kQueries;
  const size_t allocs_before = g_allocations.load();
  double examined = 0.0;
  Stopwatch watch;
  for (size_t i = 0; i < kQueries; ++i) {
    ta.SearchInto(qs.queries[i], kTopN, qs.excludes[i], &hits, &stats,
                  &scratch);
    examined += stats.examined_fraction;
  }
  const double elapsed = watch.ElapsedSeconds();
  result.steady_state_allocations = g_allocations.load() - allocs_before;
  result.ms_per_query = elapsed * 1000.0 / static_cast<double>(kQueries);
  result.examined_fraction = examined / static_cast<double>(kQueries);
  return result;
}

struct QuantResult {
  /// ms per query at batch sizes 1 / 8 / 64.
  double ms_b1 = 0.0;
  double ms_b8 = 0.0;
  double ms_b64 = 0.0;
  double examined_fraction = 0.0;  // at batch 64
  /// Measured max |approx - exact| over sampled queries x all pairs,
  /// and the max rigorous per-query bound epsilon — the measured value
  /// must sit under the bound.
  double max_abs_err = 0.0;
  double max_epsilon = 0.0;
  const char* precision = "";
  size_t steady_state_allocations = 0;
};

double MeasureQuantizationError(const QuerySpace& qs,
                                const recommend::SpaceIndex& index,
                                const recommend::QuantizedSpace& quant,
                                size_t sample_queries,
                                double* max_epsilon) {
  const uint32_t k = quant.latent_dim();
  const uint32_t point_dim = qs.space->point_dim();
  const bool int8_mode =
      quant.precision() == recommend::QuantizedSpace::Precision::kInt8;
  std::vector<uint8_t> eq8(k), pq8(k);
  std::vector<int16_t> eq16(k), pq16(k);
  std::vector<float> ecomp(index.num_events());
  std::vector<float> pcomp(index.num_partners());
  const uint32_t* pe = index.pair_event_idx().data();
  const uint32_t* pp = index.pair_partner_idx().data();
  const float* c_values = quant.c_values().data();
  double max_err = 0.0;
  *max_epsilon = 0.0;
  for (size_t qi = 0; qi < qs.queries.size(); ++qi) {
    const float* q = qs.queries[qi].data();
    const auto qq = quant.QuantizeQuery(q, eq8.data(), pq8.data(),
                                        eq16.data(), pq16.data());
    *max_epsilon = std::max(*max_epsilon, static_cast<double>(qq.epsilon));
    if (qi >= sample_queries) continue;  // epsilon from all, err sampled
    for (size_t e = 0; e < index.num_events(); ++e) {
      const int32_t dot = int8_mode
                              ? DotQ8(eq8.data(), quant.EventCodes8(e), k)
                              : DotQ16(eq16.data(), quant.EventCodes16(e), k);
      ecomp[e] = qq.event_bias + qq.event_scale * static_cast<float>(dot);
    }
    for (size_t u = 0; u < index.num_partners(); ++u) {
      const int32_t dot =
          int8_mode ? DotQ8(pq8.data(), quant.PartnerCodes8(u), k)
                    : DotQ16(pq16.data(), quant.PartnerCodes16(u), k);
      pcomp[u] = qq.partner_bias + qq.partner_scale * static_cast<float>(dot);
    }
    for (size_t p = 0; p < qs.space->num_points(); ++p) {
      const float approx =
          ecomp[pe[p]] + pcomp[pp[p]] + qq.c_weight * c_values[p];
      const float exact = Dot(q, qs.space->Point(p), point_dim);
      max_err = std::max(max_err,
                         static_cast<double>(std::abs(approx - exact)));
    }
  }
  return max_err;
}

QuantResult MeasureQuantizedBatch(const QuerySpace& qs) {
  recommend::SpaceIndex index(qs.space.get());
  recommend::QuantizedSpace quant(&index);
  recommend::BatchTaSearch batch(&quant);

  QuantResult result;
  result.precision =
      quant.precision() == recommend::QuantizedSpace::Precision::kInt8
          ? "int8"
          : "int16";
  result.max_abs_err = MeasureQuantizationError(
      qs, index, quant, /*sample_queries=*/4, &result.max_epsilon);

  std::vector<recommend::BatchQuery> bq(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    bq[i] = recommend::BatchQuery{qs.queries[i].data(), kTopN,
                                  qs.excludes[i]};
  }

  recommend::BatchTaSearch::Workspace ws;
  std::vector<std::vector<recommend::SearchHit>> hits(64);
  recommend::BatchSearchStats stats;

  const size_t batch_sizes[] = {1, 8, 64};
  double* slots[] = {&result.ms_b1, &result.ms_b8, &result.ms_b64};
  size_t alloc_total = 0;
  for (int b = 0; b < 3; ++b) {
    const size_t bs = batch_sizes[b];
    // Warm-up pass grows every workspace buffer to capacity.
    for (size_t i = 0; i < kQueries; i += bs) {
      const size_t n = std::min(bs, kQueries - i);
      batch.SearchBatch(bq.data() + i, n, hits.data(), &stats, &ws);
    }
    const size_t allocs_before = g_allocations.load();
    double examined = 0.0;
    Stopwatch watch;
    for (size_t i = 0; i < kQueries; i += bs) {
      const size_t n = std::min(bs, kQueries - i);
      batch.SearchBatch(bq.data() + i, n, hits.data(), &stats, &ws);
      examined += stats.examined_fraction * static_cast<double>(n);
    }
    const double elapsed = watch.ElapsedSeconds();
    alloc_total += g_allocations.load() - allocs_before;
    *slots[b] = elapsed * 1000.0 / static_cast<double>(kQueries);
    if (bs == 64) {
      result.examined_fraction = examined / static_cast<double>(kQueries);
    }
  }
  result.steady_state_allocations = alloc_total;
  return result;
}

void Run() {
  PrintNote("hot-path report: training throughput (GEM-A, K=100) and "
            "TA top-10 latency vs the frozen seed baselines; writes "
            "BENCH_hotpath.json");
  PrintNote(std::string("kernel variant: ") + vec_detail::KernelVariant());

  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));

  const TrainResult k100 = MeasureTraining(city, 100);
  const TrainResult k60 = MeasureTraining(city, 60);
  const QuerySpace qs = BuildQuerySpace(city);
  const TaResult ta = MeasureTaSearch(qs);
  const QuantResult quant = MeasureQuantizedBatch(qs);

  const double speedup_k100 =
      k100.items_per_sec / kSeedTrainK100ItemsPerSec;
  const double speedup_k60 = k60.items_per_sec / kSeedTrainK60ItemsPerSec;
  const double speedup_ta = kSeedTaTop10Ms / ta.ms_per_query;

  std::cout << "\ntraining GEM-A K=100: " << k100.items_per_sec
            << " items/s (seed " << kSeedTrainK100ItemsPerSec << ", "
            << speedup_k100 << "x)\n";
  std::cout << "training GEM-A K=60:  " << k60.items_per_sec
            << " items/s (seed " << kSeedTrainK60ItemsPerSec << ", "
            << speedup_k60 << "x)\n";
  std::cout << "TA top-10 query:      " << ta.ms_per_query << " ms over "
            << ta.num_pairs << " pairs (seed ~" << kSeedTaTop10Ms
            << " ms, " << speedup_ta << "x), examined_frac "
            << ta.examined_fraction << ", steady-state allocations "
            << ta.steady_state_allocations << "\n";
  std::cout << "quantized batched TA: " << quant.ms_b1 << " / "
            << quant.ms_b8 << " / " << quant.ms_b64
            << " ms/query at batch 1/8/64 (" << quant.precision
            << "), vs exact " << ta.ms_per_query << " ms ("
            << ta.ms_per_query / quant.ms_b64
            << "x at batch 64), examined_frac "
            << quant.examined_fraction << ", max_abs_err "
            << quant.max_abs_err << " (bound " << quant.max_epsilon
            << "), steady-state allocations "
            << quant.steady_state_allocations << "\n";

  std::ofstream json("BENCH_hotpath.json");
  json << "{\n"
       << "  \"bench\": \"hotpath\",\n"
       << "  \"kernel_variant\": \"" << vec_detail::KernelVariant()
       << "\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"training_gema_k100\": {\n"
       << "    \"workload\": \"BM_GemAHighDim/100 (beijing synthetic, "
          "100k timed steps)\",\n"
       << "    \"seed_items_per_sec\": " << kSeedTrainK100ItemsPerSec
       << ",\n"
       << "    \"items_per_sec\": " << k100.items_per_sec << ",\n"
       << "    \"speedup_vs_seed\": " << speedup_k100 << ",\n"
       << "    \"target_speedup\": 1.5\n"
       << "  },\n"
       << "  \"training_gema_k60\": {\n"
       << "    \"seed_items_per_sec\": " << kSeedTrainK60ItemsPerSec
       << ",\n"
       << "    \"items_per_sec\": " << k60.items_per_sec << ",\n"
       << "    \"speedup_vs_seed\": " << speedup_k60 << "\n"
       << "  },\n"
       << "  \"ta_search_top10\": {\n"
       << "    \"workload\": \"unpruned test-event x partner space, "
          "top-10, 100 queries\",\n"
       << "    \"num_pairs\": " << ta.num_pairs << ",\n"
       << "    \"seed_ms_per_query\": " << kSeedTaTop10Ms << ",\n"
       << "    \"ms_per_query\": " << ta.ms_per_query << ",\n"
       << "    \"speedup_vs_seed\": " << speedup_ta << ",\n"
       << "    \"examined_fraction\": " << ta.examined_fraction << ",\n"
       << "    \"steady_state_allocations\": "
       << ta.steady_state_allocations << ",\n"
       << "    \"target_allocations\": 0\n"
       << "  },\n"
       << "  \"quantized_batched_top10\": {\n"
       << "    \"workload\": \"same space/queries as ta_search_top10, "
          "quantized multi-query TA + exact fp32 re-rank\",\n"
       << "    \"precision\": \"" << quant.precision << "\",\n"
       << "    \"ms_per_query_batch1\": " << quant.ms_b1 << ",\n"
       << "    \"ms_per_query_batch8\": " << quant.ms_b8 << ",\n"
       << "    \"ms_per_query_batch64\": " << quant.ms_b64 << ",\n"
       << "    \"target_ms_per_query_batch64\": 0.16,\n"
       << "    \"speedup_vs_exact_ta_batch64\": "
       << ta.ms_per_query / quant.ms_b64 << ",\n"
       << "    \"examined_fraction\": " << quant.examined_fraction << ",\n"
       << "    \"quantization_max_abs_err\": " << quant.max_abs_err
       << ",\n"
       << "    \"quantization_epsilon_bound\": " << quant.max_epsilon
       << ",\n"
       << "    \"steady_state_allocations\": "
       << quant.steady_state_allocations << ",\n"
       << "    \"target_allocations\": 0\n"
       << "  }\n"
       << "}\n";
  std::cout << "\nwrote BENCH_hotpath.json\n";
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
