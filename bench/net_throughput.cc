// Network serving layer load test (not a paper table): closed-loop
// clients over loopback TCP against an in-process NetServer, at 1, 8,
// 64 and 256 connections, written to BENCH_net.json so the epoll
// front-end has a frozen baseline alongside BENCH_serving.json (which
// measures the same engine without the socket layer in between).
//
// A second section sweeps the reactor count (1/2/4 event-loop threads,
// fresh server each) at the 64-connection point, so the multi-reactor
// front-end's scaling — and the client-minus-server p50 gap it is
// supposed to shrink — is frozen per reactor count. On a single-core
// container the sweep still runs but cannot show scaling; read it next
// to "hardware_concurrency".
//
// Per connection count: each connection is one thread running a
// blocking wire.h client issuing synchronous top-10 queries over a
// rotating user set for a fixed duration; we record end-to-end QPS,
// p50/p90/p99 round-trip latency, and the server-side shed/error
// counters (which must stay zero in a healthy run).
//
// The server binds 127.0.0.1 port 0 (kernel-chosen ephemeral port), so
// concurrent bench invocations cannot collide.
//
// Run from the repo root so BENCH_net.json lands there:
//   ./build/bench/net_throughput

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "serving/recommendation_service.h"
#include "serving/snapshot_builder.h"

namespace gemrec::bench {
namespace {

constexpr size_t kTopN = 10;
constexpr auto kWarmupPerConnection = 20;
constexpr std::chrono::milliseconds kMeasureWindow{1500};

struct RunResult {
  uint32_t reactors = 1;
  uint32_t connections = 0;
  uint64_t queries = 0;
  double qps = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  /// Server-side round-trip percentiles for the same window, pulled
  /// from gemrec_net_round_trip_us over the kStats wire pair — the
  /// cross-check that the server's own histograms tell the same story
  /// as client-measured wall time (minus loopback + client overhead).
  uint64_t server_queries = 0;
  double server_p50_us = 0;
  double server_p90_us = 0;
  double server_p99_us = 0;
  uint64_t overload_sheds = 0;
  uint64_t protocol_errors = 0;
  uint64_t transport_failures = 0;
};

/// Fetches the server-side round-trip histogram over the wire; an
/// empty histogram on any failure (the bench then reports zeros).
obs::HistogramData FetchRoundTripHistogram(net::Client* stats_client) {
  auto snapshot = stats_client->Stats();
  if (!snapshot.ok()) return {};
  const obs::MetricValue* metric =
      snapshot->Find("gemrec_net_round_trip_us");
  return metric == nullptr ? obs::HistogramData{} : metric->histogram;
}

RunResult RunLoad(net::NetServer* server, uint32_t num_users,
                  uint32_t connections) {
  const net::NetStats before = server->stats();
  std::vector<std::vector<double>> latencies(connections);
  std::atomic<uint64_t> transport_failures{0};
  std::atomic<uint32_t> warmed{0};
  std::atomic<bool> go{false};

  auto stats_client =
      net::Client::Connect("127.0.0.1", server->port(), {});
  if (!stats_client.ok()) {
    std::cerr << "stats client connect failed: "
              << stats_client.status().ToString() << "\n";
    return {};
  }

  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (uint32_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client =
          net::Client::Connect("127.0.0.1", server->port(), {});
      if (!client.ok()) {
        transport_failures.fetch_add(1);
        return;
      }
      serving::QueryRequest request;
      request.n = kTopN;
      // Rotating user set: repeat queries hit the ResultCache, which
      // is the realistic steady state this front-end serves.
      uint64_t i = c;
      for (int w = 0; w < kWarmupPerConnection; ++w, ++i) {
        request.user =
            static_cast<ebsn::UserId>((i * 131) % num_users);
        if (!(*client)->Query(request).ok()) {
          transport_failures.fetch_add(1);
          warmed.fetch_add(1, std::memory_order_release);
          return;
        }
      }
      warmed.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto& mine = latencies[c];
      const auto deadline =
          std::chrono::steady_clock::now() + kMeasureWindow;
      while (std::chrono::steady_clock::now() < deadline) {
        request.user =
            static_cast<ebsn::UserId>((i++ * 131) % num_users);
        const auto start = std::chrono::steady_clock::now();
        auto outcome = (*client)->Query(request);
        const auto stop = std::chrono::steady_clock::now();
        if (!outcome.ok() || !(*outcome).ok) {
          transport_failures.fetch_add(1);
          return;
        }
        mine.push_back(
            std::chrono::duration<double, std::micro>(stop - start)
                .count());
      }
    });
  }

  // Baseline the server-side histogram after warmup so the measured
  // window diff isolates exactly the timed queries.
  while (warmed.load(std::memory_order_acquire) < connections) {
    std::this_thread::yield();
  }
  const obs::HistogramData server_before =
      FetchRoundTripHistogram(stats_client.value().get());
  const auto wall_start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const obs::HistogramData server_window =
      FetchRoundTripHistogram(stats_client.value().get())
          .MinusBaseline(server_before);

  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  const net::NetStats after = server->stats();
  RunResult result;
  result.connections = connections;
  result.queries = all.size();
  result.qps = wall_seconds > 0 ? all.size() / wall_seconds : 0;
  result.p50_us = obs::SamplePercentile(all, 0.50);
  result.p90_us = obs::SamplePercentile(all, 0.90);
  result.p99_us = obs::SamplePercentile(all, 0.99);
  result.server_queries = server_window.count;
  result.server_p50_us = server_window.Percentile(0.50);
  result.server_p90_us = server_window.Percentile(0.90);
  result.server_p99_us = server_window.Percentile(0.99);
  result.overload_sheds = after.overload_sheds - before.overload_sheds;
  result.protocol_errors = after.protocol_errors - before.protocol_errors;
  result.transport_failures = transport_failures.load();
  return result;
}

void Run() {
  PrintNote("network serving layer load test: closed-loop top-10 "
            "queries over loopback TCP at 1/8/64/256 connections, plus "
            "a 1/2/4 reactor sweep at 64 connections; writes "
            "BENCH_net.json");

  ebsn::SyntheticConfig config;
  config.num_users = 400;
  config.num_events = 300;
  config.num_venues = 40;
  config.num_topics = 6;
  config.vocab_size = 500;
  config.mean_events_per_user = 12.0;
  config.mean_friends_per_user = 10.0;
  config.seed = 4242;
  CityBundle city = MakeCity(config);

  auto options = embedding::TrainerOptions::GemA();
  options.dim = 24;
  auto trainer = TrainEmbedding(city, options, /*samples=*/150000);

  serving::SnapshotOptions snapshot_options;
  snapshot_options.top_k_events_per_partner = 20;
  serving::SnapshotBuilder builder(trainer->store(),
                                   city.split->test_events(),
                                   city.dataset().num_users(),
                                   snapshot_options);
  serving::RecommendationService service(serving::ServiceOptions{});
  service.Publish(builder.Build());

  net::ServerOptions server_options;
  server_options.max_connections = 512;
  server_options.max_in_flight = 512;
  server_options.idle_timeout = std::chrono::milliseconds(60000);
  net::NetServer server(&service, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "server start failed: " << started.ToString() << "\n";
    return;
  }
  std::cout << "server listening on 127.0.0.1:" << server.port()
            << "\n";

  std::vector<RunResult> results;
  for (uint32_t connections : {1u, 8u, 64u, 256u}) {
    results.push_back(
        RunLoad(&server, city.dataset().num_users(), connections));
    const RunResult& r = results.back();
    std::cout << "connections " << r.connections << ": " << r.qps
              << " qps  p50 " << r.p50_us << "us  p90 " << r.p90_us
              << "us  p99 " << r.p99_us << "us  sheds "
              << r.overload_sheds << "  transport-failures "
              << r.transport_failures << "\n"
              << "  server-side (" << r.server_queries
              << " in histogram): p50 " << r.server_p50_us << "us  p90 "
              << r.server_p90_us << "us  p99 " << r.server_p99_us
              << "us\n";
  }
  server.RequestDrain();
  server.WaitUntilStopped();
  server.Stop();

  // Reactor sweep: same engine, fresh front-end per reactor count, at
  // the contended 64-connection point. client-minus-server p50 is the
  // queueing the socket layer itself adds; more reactors should shrink
  // it when cores are available.
  constexpr uint32_t kSweepConnections = 64;
  std::vector<RunResult> sweep;
  for (uint32_t reactors : {1u, 2u, 4u}) {
    net::ServerOptions sweep_options = server_options;
    sweep_options.num_reactors = reactors;
    net::NetServer sweep_server(&service, sweep_options);
    const Status sweep_started = sweep_server.Start();
    if (!sweep_started.ok()) {
      std::cerr << "sweep server (reactors=" << reactors
                << ") start failed: " << sweep_started.ToString() << "\n";
      continue;
    }
    RunResult r = RunLoad(&sweep_server, city.dataset().num_users(),
                          kSweepConnections);
    r.reactors = reactors;
    sweep.push_back(r);
    std::cout << "reactors " << r.reactors << " @ " << r.connections
              << " connections: " << r.qps << " qps  p50 " << r.p50_us
              << "us  server p50 " << r.server_p50_us
              << "us  client-minus-server p50 "
              << (r.p50_us - r.server_p50_us) << "us\n";
    sweep_server.RequestDrain();
    sweep_server.WaitUntilStopped();
    sweep_server.Stop();
  }

  std::ofstream json("BENCH_net.json");
  json << "{\n"
       << "  \"bench\": \"net_throughput\",\n"
       << "  \"workload\": \"closed-loop top-" << kTopN
       << " queries over loopback TCP, one blocking client per "
       << "connection, " << kMeasureWindow.count()
       << "ms measured window per connection count\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"runs\": [\n";
  const auto write_run = [&json](const RunResult& r, bool last,
                                 bool with_reactors) {
    json << "    {\n";
    if (with_reactors) {
      json << "      \"reactors\": " << r.reactors << ",\n"
           << "      \"client_minus_server_p50_us\": "
           << (r.p50_us - r.server_p50_us) << ",\n";
    }
    json << "      \"connections\": " << r.connections << ",\n"
         << "      \"queries\": " << r.queries << ",\n"
         << "      \"qps\": " << r.qps << ",\n"
         << "      \"p50_us\": " << r.p50_us << ",\n"
         << "      \"p90_us\": " << r.p90_us << ",\n"
         << "      \"p99_us\": " << r.p99_us << ",\n"
         << "      \"server_queries\": " << r.server_queries << ",\n"
         << "      \"server_p50_us\": " << r.server_p50_us << ",\n"
         << "      \"server_p90_us\": " << r.server_p90_us << ",\n"
         << "      \"server_p99_us\": " << r.server_p99_us << ",\n"
         << "      \"overload_sheds\": " << r.overload_sheds << ",\n"
         << "      \"protocol_errors\": " << r.protocol_errors << ",\n"
         << "      \"transport_failures\": " << r.transport_failures
         << "\n"
         << "    }" << (last ? "" : ",") << "\n";
  };
  for (size_t i = 0; i < results.size(); ++i) {
    write_run(results[i], i + 1 == results.size(),
              /*with_reactors=*/false);
  }
  json << "  ],\n"
       << "  \"reactor_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    write_run(sweep[i], i + 1 == sweep.size(), /*with_reactors=*/true);
  }
  json << "  ]\n"
       << "}\n";
  std::cout << "\nwrote BENCH_net.json\n";
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
