// Reproduces Figure 7: effect of the top-k-events-per-partner pruning
// on (a) online recommendation latency of GEM-TA and GEM-BF and (b)
// the approximation ratio of the pruned space, for k from 1% to 10% of
// the recommendable events.
//
// Paper reference: (a) GEM-BF latency linear in k, GEM-TA
// approximately linear but far below BF; (b) approximation ratio of
// Accuracy@10 approaches (and reaches) 1.0 once k >= 5% of events.
// We measure the approximation ratio as agreement of the pruned top-10
// with the unpruned top-10 (same quantity the accuracy ratio tracks,
// stable at bench scale).

#include <algorithm>
#include <iostream>
#include <set>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "recommend/recommender.h"

namespace gemrec::bench {
namespace {

constexpr size_t kTopN = 10;
constexpr int kQueries = 15;

double MeanLatency(const recommend::EventPartnerRecommender& rec,
                   uint32_t num_users) {
  Stopwatch watch;
  ebsn::UserId u = 1;
  for (int q = 0; q < kQueries; ++q) {
    auto result = rec.Recommend(u, kTopN);
    u = (u + 37) % num_users;
  }
  return watch.ElapsedSeconds() / kQueries;
}

void Run() {
  PrintNote("Figure 7 paper reference: BF time linear in k; TA time "
            "much lower; approximation ratio ~1.0 for k >= 5% of "
            "events.");

  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  auto trainer = TrainEmbedding(city, embedding::TrainerOptions::GemA());
  recommend::GemModel model(&trainer->store(), "GEM-A");
  const auto& events = city.split->test_events();
  const uint32_t num_users = city.dataset().num_users();

  // Unpruned oracle top-10 per probe user.
  recommend::RecommenderOptions full_options;
  full_options.backend = recommend::SearchBackend::kBruteForce;
  recommend::EventPartnerRecommender full(&model, events, num_users,
                                          full_options);
  std::vector<ebsn::UserId> probes;
  for (int q = 0; q < kQueries; ++q) {
    probes.push_back((1 + 37 * q) % num_users);
  }
  std::vector<std::set<uint64_t>> oracle;
  for (ebsn::UserId u : probes) {
    std::set<uint64_t> top;
    for (const auto& r : full.Recommend(u, kTopN)) {
      top.insert((static_cast<uint64_t>(r.event) << 32) | r.partner);
    }
    oracle.push_back(std::move(top));
  }

  PrintBanner(std::cout,
              "Figure 7: pruning level k vs latency and approximation "
              "ratio (beijing, n = 10)");
  TablePrinter table({"k (% of events)", "k (events)", "pairs",
                      "GEM-TA time (s)", "GEM-BF time (s)",
                      "approx ratio"});
  for (double percent : {1.0, 2.0, 5.0, 10.0}) {
    const uint32_t k = std::max<uint32_t>(
        1, static_cast<uint32_t>(events.size() * percent / 100.0));
    recommend::RecommenderOptions ta_options;
    ta_options.top_k_events_per_partner = k;
    ta_options.backend = recommend::SearchBackend::kThresholdAlgorithm;
    recommend::EventPartnerRecommender ta(&model, events, num_users,
                                          ta_options);
    recommend::RecommenderOptions bf_options;
    bf_options.top_k_events_per_partner = k;
    bf_options.backend = recommend::SearchBackend::kBruteForce;
    recommend::EventPartnerRecommender bf(&model, events, num_users,
                                          bf_options);

    // Approximation ratio: agreement of the pruned top-10 with the
    // unpruned top-10.
    double agreement = 0.0;
    for (size_t i = 0; i < probes.size(); ++i) {
      size_t hits = 0;
      for (const auto& r : bf.Recommend(probes[i], kTopN)) {
        if (oracle[i].count((static_cast<uint64_t>(r.event) << 32) |
                            r.partner) != 0) {
          ++hits;
        }
      }
      agreement +=
          static_cast<double>(hits) / static_cast<double>(kTopN);
    }
    agreement /= static_cast<double>(probes.size());

    table.AddRow({TablePrinter::Num(percent, 0), std::to_string(k),
                  std::to_string(ta.num_candidate_pairs()),
                  TablePrinter::Num(MeanLatency(ta, num_users), 4),
                  TablePrinter::Num(MeanLatency(bf, num_users), 4),
                  TablePrinter::Num(agreement, 3)});
  }
  table.Print(std::cout);
  PrintNote("\nshape check: BF latency grows ~linearly with k; TA stays "
            "well below BF; approximation ratio climbs toward 1.0 by "
            "k = 5-10%.");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
