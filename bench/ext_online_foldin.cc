// Extension experiment (beyond the paper): online cold-event fold-in.
//
// The paper's pipeline handles cold-start events that exist at
// training time; events published *after* training would have to wait
// for a retrain. FoldInColdEvent computes a new event's vector from
// its content/region/time signals against the frozen model. This
// bench measures how much of the offline cold-start accuracy the
// online fold-in retains, and what it costs per event.
//
// Protocol: train GEM-A normally (test events embedded offline), then
// wipe every test event's vector and rebuild it with the online
// fold-in only; compare cold-start Accuracy@n before/after, plus a
// random-vector floor.

#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "ebsn/tfidf.h"
#include "embedding/online_update.h"

namespace gemrec::bench {
namespace {

void Run() {
  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  auto trainer = TrainEmbedding(city, embedding::TrainerOptions::GemA());
  embedding::EmbeddingStore* store = trainer->mutable_store();
  recommend::GemModel model(&trainer->store(), "GEM-A");

  PrintBanner(std::cout,
              "Extension: online cold-event fold-in vs offline "
              "training (beijing)");

  const auto offline = EvalColdStart(model, city);

  // TF-IDF signals for every test event (what a serving system would
  // compute from the just-published description).
  std::vector<std::vector<ebsn::WordId>> docs(city.dataset().num_events());
  for (uint32_t x = 0; x < city.dataset().num_events(); ++x) {
    docs[x] = city.dataset().event(x).words;
  }
  const auto tfidf =
      ebsn::ComputeTfIdf(docs, city.dataset().vocab_size());

  // Random-vector floor: wipe test-event vectors.
  const uint32_t dim = store->dim();
  Rng rng(7);
  for (ebsn::EventId x : city.split->test_events()) {
    float* v = store->VectorOf(graph::NodeType::kEvent, x);
    for (uint32_t f = 0; f < dim; ++f) {
      v[f] = static_cast<float>(std::fabs(rng.Gaussian(0.0, 0.01)));
    }
  }
  const auto wiped = EvalColdStart(model, city);

  // Online fold-in for every test event.
  Stopwatch watch;
  for (ebsn::EventId x : city.split->test_events()) {
    embedding::NewEventSignals signals;
    for (const auto& ww : tfidf[x]) {
      signals.words.push_back({ww.word, static_cast<float>(ww.weight)});
    }
    signals.region = city.graphs->event_region[x];
    signals.start_time = city.dataset().event(x).start_time;
    const Status s = embedding::FoldInColdEvent(store, x, signals, {});
    GEMREC_CHECK(s.ok()) << s.ToString();
  }
  const double fold_ms =
      watch.ElapsedMillis() /
      static_cast<double>(city.split->test_events().size());
  const auto folded = EvalColdStart(model, city);

  TablePrinter table({"event vectors", "Ac@5", "Ac@10", "Ac@20", "MRR"});
  auto row = [&](const std::string& name,
                 const eval::AccuracyResult& r) {
    table.AddRow({name, TablePrinter::Num(r.At(5), 3),
                  TablePrinter::Num(r.At(10), 3),
                  TablePrinter::Num(r.At(20), 3),
                  TablePrinter::Num(r.mrr, 3)});
  };
  row("offline (joint training)", offline);
  row("wiped (random floor)", wiped);
  row("online fold-in", folded);
  table.Print(std::cout);
  PrintNote("\nfold-in cost: " + TablePrinter::Num(fold_ms, 2) +
            " ms per event (vs a full retrain)");
  PrintNote("shape check: fold-in recovers most of the offline "
            "accuracy and is far above the random floor.");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
