// Serving-engine throughput/latency report (not a paper table):
// closed-loop load against RecommendationService at several worker
// counts, with snapshot swaps racing the traffic, written to
// BENCH_serving.json so the serving hot path has a frozen baseline the
// same way BENCH_hotpath.json freezes the training/TA kernels.
//
// Per worker count: fixed client threads issue synchronous top-10
// queries over a rotating user set while an updater thread performs
// fold-in -> rebuild -> publish reload cycles; we record end-to-end
// QPS, p50/p90/p99 query latency and the cache hit rate.
//
// Run from the repo root so BENCH_serving.json lands there:
//   ./build/bench/serving_throughput

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serving/recommendation_service.h"
#include "serving/snapshot_builder.h"

namespace gemrec::bench {
namespace {

constexpr size_t kQueries = 4000;
constexpr uint32_t kClients = 4;
constexpr uint32_t kSwaps = 3;
constexpr size_t kTopN = 10;

struct RunResult {
  uint32_t workers = 0;
  double qps = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double cache_hit_rate = 0;
  uint64_t batches = 0;
  uint64_t publishes = 0;
};

RunResult RunLoad(const embedding::EmbeddingStore& store,
                  const CityBundle& city, uint32_t workers) {
  serving::SnapshotOptions snapshot_options;
  snapshot_options.top_k_events_per_partner = 20;
  serving::SnapshotBuilder builder(store, city.split->test_events(),
                                   city.dataset().num_users(),
                                   snapshot_options);
  serving::ServiceOptions service_options;
  service_options.num_workers = workers;
  // Default retrieval mode: quantized multi-query batched TA with
  // exact fp32 re-rank (what `gemrec serve` runs without --exact-ta).
  serving::RecommendationService service(service_options);
  service.Publish(builder.Build());

  std::vector<std::vector<double>> latencies(kClients);
  const auto wall_start = std::chrono::steady_clock::now();
  std::thread updater([&] {
    embedding::OnlineUpdateOptions update;
    update.iterations = 50;
    const auto& attendances = city.dataset().attendances();
    for (uint32_t s = 0; s < kSwaps; ++s) {
      const auto& a = attendances[s % attendances.size()];
      if (!builder.RecordAttendance(a.user, a.event, update).ok()) return;
      service.Publish(builder.Build());
    }
  });
  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto& mine = latencies[c];
      mine.reserve(kQueries / kClients + 1);
      for (size_t i = c; i < kQueries; i += kClients) {
        serving::QueryRequest request;
        request.user = static_cast<ebsn::UserId>(
            (i * 131) % city.dataset().num_users());
        request.n = kTopN;
        const auto start = std::chrono::steady_clock::now();
        const auto response = service.Query(request);
        const auto stop = std::chrono::steady_clock::now();
        (void)response;
        mine.push_back(
            std::chrono::duration<double, std::micro>(stop - start)
                .count());
      }
    });
  }
  for (auto& thread : clients) thread.join();
  updater.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  const auto percentile = [&](double p) {
    return all[std::min(all.size() - 1,
                        static_cast<size_t>(p * all.size()))];
  };
  const auto stats = service.stats();
  RunResult result;
  result.workers = workers;
  result.qps = all.size() / wall_seconds;
  result.p50_us = percentile(0.50);
  result.p90_us = percentile(0.90);
  result.p99_us = percentile(0.99);
  result.cache_hit_rate =
      static_cast<double>(stats.cache_hits) /
      std::max<uint64_t>(1, stats.queries);
  result.batches = stats.batches;
  result.publishes = stats.publishes;
  return result;
}

void Run() {
  PrintNote("serving engine load test: closed-loop top-10 queries with "
            "snapshot swaps racing the traffic; writes "
            "BENCH_serving.json");

  ebsn::SyntheticConfig config;
  config.num_users = 400;
  config.num_events = 300;
  config.num_venues = 40;
  config.num_topics = 6;
  config.vocab_size = 500;
  config.mean_events_per_user = 12.0;
  config.mean_friends_per_user = 10.0;
  config.seed = 4242;
  CityBundle city = MakeCity(config);

  auto options = embedding::TrainerOptions::GemA();
  options.dim = 24;
  auto trainer = TrainEmbedding(city, options, /*samples=*/150000);

  std::vector<RunResult> results;
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    results.push_back(RunLoad(trainer->store(), city, workers));
    const RunResult& r = results.back();
    std::cout << "workers " << r.workers << ": " << r.qps << " qps  p50 "
              << r.p50_us << "us  p90 " << r.p90_us << "us  p99 "
              << r.p99_us << "us  cache-hit "
              << 100.0 * r.cache_hit_rate << "%  batches " << r.batches
              << "\n";
  }

  std::ofstream json("BENCH_serving.json");
  json << "{\n"
       << "  \"bench\": \"serving_throughput\",\n"
       << "  \"workload\": \"closed-loop top-" << kTopN << " queries, "
       << kClients << " clients, " << kQueries << " queries, " << kSwaps
       << " snapshot swaps racing the traffic\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"retrieval_mode\": \"quantized_batched\",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\n"
         << "      \"workers\": " << r.workers << ",\n"
         << "      \"qps\": " << r.qps << ",\n"
         << "      \"p50_us\": " << r.p50_us << ",\n"
         << "      \"p90_us\": " << r.p90_us << ",\n"
         << "      \"p99_us\": " << r.p99_us << ",\n"
         << "      \"cache_hit_rate\": " << r.cache_hit_rate << ",\n"
         << "      \"batches\": " << r.batches << ",\n"
         << "      \"publishes\": " << r.publishes << "\n"
         << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::cout << "\nwrote BENCH_serving.json\n";
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
