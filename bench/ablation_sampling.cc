// Ablation bench (design choices called out in DESIGN.md §4/§5): the
// three training design decisions of §III are swept independently —
//   * negative-sampling direction: bidirectional vs unidirectional,
//   * noise distribution: adaptive vs degree-based vs uniform,
//   * graph schedule: proportional-to-edges vs uniform.
// GEM-A = bidirectional + adaptive + proportional;
// GEM-P = bidirectional + degree + proportional;
// PTE   = unidirectional + degree + uniform.
// Expected shape: each of the three axes contributes; bidirectional >
// unidirectional at fixed budget, adaptive > degree > uniform, and
// proportional > uniform scheduling.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

namespace gemrec::bench {
namespace {

const char* SamplerName(embedding::NoiseSamplerKind kind) {
  switch (kind) {
    case embedding::NoiseSamplerKind::kUniform:
      return "uniform";
    case embedding::NoiseSamplerKind::kDegree:
      return "degree";
    case embedding::NoiseSamplerKind::kAdaptive:
      return "adaptive";
  }
  return "?";
}

void Run() {
  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));

  PrintBanner(std::cout,
              "Ablation: sampling direction x noise sampler x graph "
              "schedule (beijing, fixed N = " +
                  std::to_string(BenchSamples()) + ")");
  TablePrinter table({"direction", "noise", "schedule", "event Ac@10",
                      "joint Ac@10"});
  for (bool bidirectional : {true, false}) {
    for (auto sampler : {embedding::NoiseSamplerKind::kAdaptive,
                         embedding::NoiseSamplerKind::kDegree,
                         embedding::NoiseSamplerKind::kUniform}) {
      for (auto schedule :
           {embedding::GraphSchedule::kProportionalToEdges,
            embedding::GraphSchedule::kUniform}) {
        embedding::TrainerOptions options;
        options.bidirectional = bidirectional;
        options.sampler = sampler;
        options.schedule = schedule;
        auto trainer = TrainEmbedding(city, options);
        recommend::GemModel model(&trainer->store(), "ablation");
        table.AddRow(
            {bidirectional ? "bidirectional" : "unidirectional",
             SamplerName(sampler),
             schedule == embedding::GraphSchedule::kProportionalToEdges
                 ? "prop-to-edges"
                 : "uniform",
             TablePrinter::Num(EvalColdStart(model, city).At(10), 3),
             TablePrinter::Num(EvalPartner(model, city).At(10), 3)});
      }
    }
  }
  table.Print(std::cout);
  PrintNote("\nshape check: the (bidirectional, adaptive, "
            "prop-to-edges) corner — GEM-A — should dominate; "
            "(unidirectional, degree, uniform) — PTE — should trail "
            "at this fixed budget.");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
