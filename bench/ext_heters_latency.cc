// Extension experiment: validates the paper's §VI-A claim for
// excluding HeteRS from the comparison — "the computation of MMC on
// the graph is very time-consuming, resulting in an unbearably long
// response time" — by measuring per-query event-recommendation latency
// of the random-walk model against GEM's offline-embedding scoring,
// and comparing their cold-start accuracy.

#include <iostream>

#include "baselines/heters.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "common/top_k.h"
#include "common/vec_math.h"

namespace gemrec::bench {
namespace {

void Run() {
  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  auto trainer = TrainEmbedding(city, embedding::TrainerOptions::GemA());
  recommend::GemModel gem(&trainer->store(), "GEM-A");
  baselines::HetersModel heters(city.dataset(), *city.graphs, {});

  PrintBanner(std::cout,
              "Extension: HeteRS (random walk at query time) vs GEM "
              "(offline embeddings) — the §VI-A response-time claim");

  // Per-query latency: top-10 events for a user over the test pool.
  const auto& pool = city.split->test_events();
  const int queries = 10;
  auto time_model = [&](const recommend::RecModel& model) {
    Stopwatch watch;
    for (int q = 0; q < queries; ++q) {
      const auto user = static_cast<ebsn::UserId>(
          (q * 131) % city.dataset().num_users());
      TopK<ebsn::EventId> top(10);
      for (ebsn::EventId x : pool) {
        top.Push(x, model.ScoreUserEvent(user, x));
      }
      (void)top.TakeSortedDescending();
    }
    return watch.ElapsedMillis() / queries;
  };
  const double gem_ms = time_model(gem);
  const double heters_ms = time_model(heters);

  const auto gem_accuracy = EvalColdStart(gem, city);
  const auto heters_accuracy = EvalColdStart(heters, city);

  TablePrinter table(
      {"model", "per-query latency (ms)", "Ac@10", "Ac@20"});
  table.AddRow({"GEM-A", TablePrinter::Num(gem_ms, 3),
                TablePrinter::Num(gem_accuracy.At(10), 3),
                TablePrinter::Num(gem_accuracy.At(20), 3)});
  table.AddRow({"HeteRS", TablePrinter::Num(heters_ms, 3),
                TablePrinter::Num(heters_accuracy.At(10), 3),
                TablePrinter::Num(heters_accuracy.At(20), 3)});
  table.Print(std::cout);
  PrintNote("\nshape check: HeteRS latency is orders of magnitude above "
            "GEM's (paper: hundreds of seconds at Douban scale; the gap "
            "widens with graph size since every query walks the whole "
            "graph).");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
