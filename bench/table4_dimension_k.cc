// Reproduces Table IV: impact of the latent dimension K on Ac@10 for
// both tasks (Beijing), K ∈ {20, 40, 60, 80, 100}.
//
// Paper reference (Ac@10): accuracy rises quickly with K and plateaus
// at K = 60 (GEM-A: 0.339/0.365/0.373/0.373/0.373 for event rec;
// 0.223/0.240/0.244/0.244/0.244 for the joint task). Expected shape:
// monotone increase then plateau; K = 60 is the knee.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

namespace gemrec::bench {
namespace {

void Run() {
  PrintNote("paper reference (Beijing, GEM-A Ac@10 by K):");
  PrintNote("  event rec:  0.339 @20, 0.365 @40, 0.373 @60, flat after");
  PrintNote("  joint task: 0.223 @20, 0.240 @40, 0.244 @60, flat after");

  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));

  PrintBanner(std::cout, "Table IV: impact of dimension K (beijing)");
  TablePrinter table({"K", "GEM-A event Ac@10", "GEM-A joint Ac@10",
                      "GEM-P event Ac@10", "PTE event Ac@10"});
  for (uint32_t k : {20u, 40u, 60u, 80u, 100u}) {
    std::vector<std::string> cells = {std::to_string(k)};
    {
      auto options = embedding::TrainerOptions::GemA();
      options.dim = k;
      auto trainer = TrainEmbedding(city, options);
      recommend::GemModel model(&trainer->store(), "GEM-A");
      cells.push_back(
          TablePrinter::Num(EvalColdStart(model, city).At(10), 3));
      cells.push_back(
          TablePrinter::Num(EvalPartner(model, city).At(10), 3));
    }
    {
      auto options = embedding::TrainerOptions::GemP();
      options.dim = k;
      auto trainer = TrainEmbedding(city, options);
      recommend::GemModel model(&trainer->store(), "GEM-P");
      cells.push_back(
          TablePrinter::Num(EvalColdStart(model, city).At(10), 3));
    }
    {
      auto options = embedding::TrainerOptions::Pte();
      options.dim = k;
      auto trainer = TrainEmbedding(city, options);
      recommend::GemModel model(&trainer->store(), "PTE");
      cells.push_back(
          TablePrinter::Num(EvalColdStart(model, city).At(10), 3));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);
  PrintNote("\nshape check: accuracy should rise with K then plateau "
            "(the paper picks K = 60 as the knee).");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
