// Reproduces Table III: joint event-partner recommendation accuracy as
// a function of the number of gradient samples N, for GEM-A, GEM-P and
// PTE (Beijing, scenario 1).
//
// Paper reference (Ac@10): GEM-A reaches 0.244 at N = 2M; GEM-P 0.205
// at 4M; PTE converges near 0.145 only around 10M. Same shape as
// Table II on the harder joint task.
//
// Each (model, N) cell is a fresh training run with its learning-rate
// schedule stretched over that N, exactly like tuning N in the paper.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

namespace gemrec::bench {
namespace {

void Run() {
  PrintNote("paper reference (Beijing, Ac@10 by N):");
  PrintNote("  GEM-A: 0.194 @1M, 0.244 @2M, flat after");
  PrintNote("  GEM-P: 0.129 @1M, 0.205 @4M, flat after");
  PrintNote("  PTE:   0.012 @1M, 0.047 @5M, 0.145 @10M");

  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  const uint64_t unit = BenchSamples() / 4;
  const std::vector<uint64_t> checkpoints = {1, 2, 3, 4, 6, 8};

  struct Series {
    std::string name;
    embedding::TrainerOptions options;
  };
  const std::vector<Series> series = {
      {"GEM-A", embedding::TrainerOptions::GemA()},
      {"GEM-P", embedding::TrainerOptions::GemP()},
      {"PTE", embedding::TrainerOptions::Pte()},
  };

  PrintBanner(std::cout,
              "Table III: joint event-partner recommendation vs N "
              "(beijing, 1 unit = " + std::to_string(unit) +
              " samples)");
  TablePrinter table({"N (units)", "GEM-A Ac@5", "GEM-A Ac@10",
                      "GEM-P Ac@5", "GEM-P Ac@10", "PTE Ac@5",
                      "PTE Ac@10"});
  for (uint64_t checkpoint : checkpoints) {
    std::vector<std::string> cells = {std::to_string(checkpoint)};
    for (const auto& s : series) {
      auto trainer = TrainEmbedding(city, s.options, checkpoint * unit);
      recommend::GemModel model(&trainer->store(), s.name);
      const auto result = EvalPartner(model, city);
      cells.push_back(TablePrinter::Num(result.At(5), 3));
      cells.push_back(TablePrinter::Num(result.At(10), 3));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);
  PrintNote("\nshape check: same ordering and convergence speeds as "
            "Table II, on the joint task.");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
