// Scatter-gather serving tier load test (not a paper table):
// closed-loop clients over loopback TCP against a coordinator
// NetServer whose CoordinatorBackend fans every query out to 1, 2 or
// 4 REAL shard serve stacks (ShardGroup: per-shard ModelSnapshot
// slices behind their own NetServers), at 64 connections per shard
// count, written to BENCH_shard.json so the tier has a frozen
// baseline alongside BENCH_net.json (the same front-end with a local
// engine instead of a shard fan-out behind it).
//
// Per shard count we record end-to-end QPS, client p50/p90/p99
// round-trip latency, and the coordinator-side round-trip percentiles
// pulled from its own gemrec_net_round_trip_us histogram over the
// kStats wire pair — client-minus-coordinator p50 is the loopback +
// client overhead, and coordinator p50 itself carries the full
// scatter-gather (fan-out, shard RPCs, threshold merge). The
// partial-result and deadline-miss counters are recorded too; in a
// healthy run both deltas must stay zero, so a nonzero value in the
// frozen JSON flags an unhealthy baseline at a glance.
//
// Every server (coordinator and shards) binds 127.0.0.1 port 0, so
// concurrent bench invocations cannot collide.
//
// Run from the repo root so BENCH_shard.json lands there:
//   ./build/bench/shard_throughput

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "shard/coordinator.h"
#include "shard/shard_group.h"

namespace gemrec::bench {
namespace {

constexpr size_t kTopN = 10;
constexpr uint32_t kConnections = 64;
constexpr auto kWarmupPerConnection = 20;
constexpr std::chrono::milliseconds kMeasureWindow{1500};

struct RunResult {
  uint32_t shards = 0;
  uint64_t queries = 0;
  double qps = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  /// Coordinator-side round-trip percentiles for the same window —
  /// what the scatter-gather itself costs, without loopback + client
  /// overhead on top.
  uint64_t coordinator_queries = 0;
  double coordinator_p50_us = 0;
  double coordinator_p90_us = 0;
  double coordinator_p99_us = 0;
  uint64_t partial_results = 0;
  uint64_t deadline_misses = 0;
  uint64_t transport_failures = 0;
};

/// Fetches a counter from the coordinator's merged stats snapshot;
/// zero when absent or on any wire failure.
uint64_t FetchCounter(net::Client* stats_client, const char* name) {
  auto snapshot = stats_client->Stats();
  if (!snapshot.ok()) return 0;
  const obs::MetricValue* metric = snapshot->Find(name);
  return metric == nullptr ? 0 : metric->counter;
}

/// Fetches the coordinator front-end's round-trip histogram over the
/// wire; empty on any failure (the bench then reports zeros).
obs::HistogramData FetchRoundTripHistogram(net::Client* stats_client) {
  auto snapshot = stats_client->Stats();
  if (!snapshot.ok()) return {};
  const obs::MetricValue* metric =
      snapshot->Find("gemrec_net_round_trip_us");
  return metric == nullptr ? obs::HistogramData{} : metric->histogram;
}

RunResult RunLoad(net::NetServer* server, net::Client* stats_client,
                  uint32_t num_users, uint32_t shards) {
  std::vector<std::vector<double>> latencies(kConnections);
  std::atomic<uint64_t> transport_failures{0};
  std::atomic<uint32_t> warmed{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> threads;
  threads.reserve(kConnections);
  for (uint32_t c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      auto client =
          net::Client::Connect("127.0.0.1", server->port(), {});
      if (!client.ok()) {
        transport_failures.fetch_add(1);
        warmed.fetch_add(1, std::memory_order_release);
        return;
      }
      serving::QueryRequest request;
      request.n = kTopN;
      // Rotating user set: repeat queries hit the coordinator's
      // NetServer + shard-side ResultCaches, the realistic steady
      // state the tier serves.
      uint64_t i = c;
      for (int w = 0; w < kWarmupPerConnection; ++w, ++i) {
        request.user =
            static_cast<ebsn::UserId>((i * 131) % num_users);
        if (!(*client)->Query(request).ok()) {
          transport_failures.fetch_add(1);
          warmed.fetch_add(1, std::memory_order_release);
          return;
        }
      }
      warmed.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto& mine = latencies[c];
      const auto deadline =
          std::chrono::steady_clock::now() + kMeasureWindow;
      while (std::chrono::steady_clock::now() < deadline) {
        request.user =
            static_cast<ebsn::UserId>((i++ * 131) % num_users);
        const auto start = std::chrono::steady_clock::now();
        auto outcome = (*client)->Query(request);
        const auto stop = std::chrono::steady_clock::now();
        if (!outcome.ok() || !(*outcome).ok) {
          transport_failures.fetch_add(1);
          return;
        }
        mine.push_back(
            std::chrono::duration<double, std::micro>(stop - start)
                .count());
      }
    });
  }

  // Baseline the coordinator-side counters and histogram after warmup
  // so the measured window diff isolates exactly the timed queries.
  while (warmed.load(std::memory_order_acquire) < kConnections) {
    std::this_thread::yield();
  }
  const uint64_t partial_before =
      FetchCounter(stats_client, "gemrec_shard_partial_results_total");
  const uint64_t misses_before =
      FetchCounter(stats_client, "gemrec_shard_deadline_misses_total");
  const obs::HistogramData coordinator_before =
      FetchRoundTripHistogram(stats_client);
  const auto wall_start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const obs::HistogramData coordinator_window =
      FetchRoundTripHistogram(stats_client)
          .MinusBaseline(coordinator_before);

  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  RunResult result;
  result.shards = shards;
  result.queries = all.size();
  result.qps = wall_seconds > 0 ? all.size() / wall_seconds : 0;
  result.p50_us = obs::SamplePercentile(all, 0.50);
  result.p90_us = obs::SamplePercentile(all, 0.90);
  result.p99_us = obs::SamplePercentile(all, 0.99);
  result.coordinator_queries = coordinator_window.count;
  result.coordinator_p50_us = coordinator_window.Percentile(0.50);
  result.coordinator_p90_us = coordinator_window.Percentile(0.90);
  result.coordinator_p99_us = coordinator_window.Percentile(0.99);
  result.partial_results =
      FetchCounter(stats_client, "gemrec_shard_partial_results_total") -
      partial_before;
  result.deadline_misses =
      FetchCounter(stats_client, "gemrec_shard_deadline_misses_total") -
      misses_before;
  result.transport_failures = transport_failures.load();
  return result;
}

void Run() {
  PrintNote("scatter-gather tier load test: closed-loop top-10 "
            "queries over loopback TCP into a coordinator fanning out "
            "to 1/2/4 real shard stacks, 64 connections per shard "
            "count; writes BENCH_shard.json");

  ebsn::SyntheticConfig config;
  config.num_users = 400;
  config.num_events = 300;
  config.num_venues = 40;
  config.num_topics = 6;
  config.vocab_size = 500;
  config.mean_events_per_user = 12.0;
  config.mean_friends_per_user = 10.0;
  config.seed = 4242;
  CityBundle city = MakeCity(config);

  auto options = embedding::TrainerOptions::GemA();
  options.dim = 24;
  auto trainer = TrainEmbedding(city, options, /*samples=*/150000);

  std::vector<RunResult> results;
  for (uint32_t shards : {1u, 2u, 4u}) {
    shard::ShardGroupOptions group_options;
    group_options.num_shards = shards;
    group_options.snapshot.top_k_events_per_partner = 20;
    group_options.server.max_connections = 128;
    group_options.server.max_in_flight = 512;
    group_options.server.idle_timeout = std::chrono::milliseconds(60000);
    shard::ShardGroup group(trainer->store(), city.split->test_events(),
                            city.dataset().num_users(), group_options);
    Status group_started = group.Start();
    if (!group_started.ok()) {
      std::cerr << "shard group (shards=" << shards
                << ") start failed: " << group_started.ToString()
                << "\n";
      continue;
    }

    shard::CoordinatorOptions coordinator_options;
    // Generous deadline: this bench freezes healthy-path latency, and
    // nonzero partial/deadline deltas in the JSON flag an unhealthy
    // run rather than being induced by a tight budget.
    coordinator_options.router.shard_deadline =
        std::chrono::milliseconds(2000);
    shard::CoordinatorBackend coordinator(group.endpoints(),
                                          coordinator_options);
    Status coordinator_started = coordinator.Start();
    if (!coordinator_started.ok()) {
      std::cerr << "coordinator (shards=" << shards
                << ") start failed: " << coordinator_started.ToString()
                << "\n";
      group.Stop();
      continue;
    }

    net::ServerOptions server_options;
    server_options.max_connections = 128;
    server_options.max_in_flight = 512;
    server_options.idle_timeout = std::chrono::milliseconds(60000);
    net::NetServer server(&coordinator, server_options);
    const Status started = server.Start();
    if (!started.ok()) {
      std::cerr << "coordinator front-end start failed: "
                << started.ToString() << "\n";
      coordinator.Stop();
      group.Stop();
      continue;
    }

    auto stats_client =
        net::Client::Connect("127.0.0.1", server.port(), {});
    if (!stats_client.ok()) {
      std::cerr << "stats client connect failed: "
                << stats_client.status().ToString() << "\n";
      server.Stop();
      coordinator.Stop();
      group.Stop();
      continue;
    }

    results.push_back(RunLoad(&server, stats_client.value().get(),
                              city.dataset().num_users(), shards));
    const RunResult& r = results.back();
    std::cout << "shards " << r.shards << " @ " << kConnections
              << " connections: " << r.qps << " qps  p50 " << r.p50_us
              << "us  p90 " << r.p90_us << "us  p99 " << r.p99_us
              << "us\n"
              << "  coordinator-side (" << r.coordinator_queries
              << " in histogram): p50 " << r.coordinator_p50_us
              << "us  p90 " << r.coordinator_p90_us << "us  p99 "
              << r.coordinator_p99_us
              << "us  client-minus-coordinator p50 "
              << (r.p50_us - r.coordinator_p50_us) << "us\n"
              << "  partial-results " << r.partial_results
              << "  deadline-misses " << r.deadline_misses
              << "  transport-failures " << r.transport_failures
              << "\n";

    server.RequestDrain();
    server.WaitUntilStopped();
    server.Stop();
    coordinator.Stop();
    group.Stop();
  }

  std::ofstream json("BENCH_shard.json");
  json << "{\n"
       << "  \"bench\": \"shard_throughput\",\n"
       << "  \"workload\": \"closed-loop top-" << kTopN
       << " queries over loopback TCP into a scatter-gather "
       << "coordinator, " << kConnections << " connections, "
       << kMeasureWindow.count()
       << "ms measured window per shard count\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\n"
         << "      \"shards\": " << r.shards << ",\n"
         << "      \"connections\": " << kConnections << ",\n"
         << "      \"queries\": " << r.queries << ",\n"
         << "      \"qps\": " << r.qps << ",\n"
         << "      \"p50_us\": " << r.p50_us << ",\n"
         << "      \"p90_us\": " << r.p90_us << ",\n"
         << "      \"p99_us\": " << r.p99_us << ",\n"
         << "      \"coordinator_queries\": " << r.coordinator_queries
         << ",\n"
         << "      \"coordinator_p50_us\": " << r.coordinator_p50_us
         << ",\n"
         << "      \"coordinator_p90_us\": " << r.coordinator_p90_us
         << ",\n"
         << "      \"coordinator_p99_us\": " << r.coordinator_p99_us
         << ",\n"
         << "      \"client_minus_coordinator_p50_us\": "
         << (r.p50_us - r.coordinator_p50_us) << ",\n"
         << "      \"partial_results\": " << r.partial_results << ",\n"
         << "      \"deadline_misses\": " << r.deadline_misses << ",\n"
         << "      \"transport_failures\": " << r.transport_failures
         << "\n"
         << "    }" << (i + 1 == results.size() ? "" : ",") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::cout << "\nwrote BENCH_shard.json\n";
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
