// Write-path load test (not a paper table): sustained attendance
// fold-ins streamed over loopback TCP into a live `--ingest-dir`-style
// server while 64 closed-loop query connections keep reading, written
// to BENCH_ingest.json.
//
// Two phases over the same trained model:
//   A (baseline) — read-only NetServer, 64 query connections; the
//     frozen serving p50/p99 reference (BENCH_net.json's shape).
//   B (mixed)    — the same service with an IngestionQueue attached:
//     64 query connections plus 4 writer connections issuing blocking
//     Attend() calls (journal fdatasync + fold-in + ack each). We
//     record sustained fold-ins/sec, publish lag percentiles (from
//     gemrec_ingest_publish_lag_us over the kStats wire pair), and the
//     serving p50/p99 delta vs phase A.
//
// Acceptance tracked by the JSON: mixed-phase serving p99 within 25%
// of the read-only baseline at 64 connections.
//
// Run from the repo root so BENCH_ingest.json lands there:
//   ./build/bench/ingest_throughput

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "serving/ingestion_queue.h"
#include "serving/recommendation_service.h"
#include "serving/snapshot_builder.h"

namespace gemrec::bench {
namespace {

constexpr size_t kTopN = 10;
constexpr uint32_t kQueryConnections = 64;
constexpr uint32_t kWriterConnections = 4;
// Offered write load per writer connection. Real attendance streams
// are arrival-rate driven, not closed-loop: pacing each writer at a
// fixed interval measures serving interference at a sustained write
// rate instead of "as fast as one core can fsync". 100 writes/s total
// is generous for a single city (the paper's Meetup snapshots average
// well under one RSVP per second) and each write still pays a real
// journal fdatasync (~3.6ms on this filesystem) before it acks.
constexpr std::chrono::microseconds kWritePacing{40000};  // ~100/s total
constexpr auto kWarmupPerConnection = 20;
constexpr std::chrono::milliseconds kMeasureWindow{3000};
// Baseline/mixed rounds interleave (A B A B ...) and the JSON reports
// per-phase *median* percentiles: interleaving cancels slow machine
// drift and the median damps the publish-count quantization noise a
// single window suffers on a 1-core host.
constexpr int kRounds = 5;

struct PhaseResult {
  uint64_t queries = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  // Mixed phase only.
  uint64_t foldins = 0;
  double foldins_per_sec = 0;
  uint64_t publishes = 0;
  double publish_lag_p50_us = 0;
  double publish_lag_p99_us = 0;
  uint64_t overload_sheds = 0;
  uint64_t transport_failures = 0;
};

obs::HistogramData FetchHistogram(net::Client* stats_client,
                                  const std::string& name) {
  auto snapshot = stats_client->Stats();
  if (!snapshot.ok()) return {};
  const obs::MetricValue* metric = snapshot->Find(name);
  return metric == nullptr ? obs::HistogramData{} : metric->histogram;
}

uint64_t FetchCounter(net::Client* stats_client, const std::string& name) {
  auto snapshot = stats_client->Stats();
  if (!snapshot.ok()) return 0;
  const obs::MetricValue* metric = snapshot->Find(name);
  return metric == nullptr ? 0 : metric->counter;
}

/// Closed-loop query load, optionally with writer threads streaming
/// attendance fold-ins for the whole measured window.
PhaseResult RunPhase(net::NetServer* server, uint32_t num_users,
                     uint32_t num_events, bool with_writers) {
  const net::NetStats before = server->stats();
  std::vector<std::vector<double>> latencies(kQueryConnections);
  std::atomic<uint64_t> transport_failures{0};
  std::atomic<uint64_t> foldins{0};
  std::atomic<uint32_t> warmed{0};
  std::atomic<bool> go{false};
  std::atomic<bool> writers_stop{false};

  auto stats_client =
      net::Client::Connect("127.0.0.1", server->port(), {});
  if (!stats_client.ok()) {
    std::cerr << "stats client connect failed: "
              << stats_client.status().ToString() << "\n";
    return {};
  }

  std::vector<std::thread> threads;
  threads.reserve(kQueryConnections);
  for (uint32_t c = 0; c < kQueryConnections; ++c) {
    threads.emplace_back([&, c] {
      auto client =
          net::Client::Connect("127.0.0.1", server->port(), {});
      if (!client.ok()) {
        transport_failures.fetch_add(1);
        warmed.fetch_add(1, std::memory_order_release);
        return;
      }
      serving::QueryRequest request;
      request.n = kTopN;
      uint64_t i = c;
      for (int w = 0; w < kWarmupPerConnection; ++w, ++i) {
        request.user =
            static_cast<ebsn::UserId>((i * 131) % num_users);
        if (!(*client)->Query(request).ok()) {
          transport_failures.fetch_add(1);
          warmed.fetch_add(1, std::memory_order_release);
          return;
        }
      }
      warmed.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto& mine = latencies[c];
      const auto deadline =
          std::chrono::steady_clock::now() + kMeasureWindow;
      while (std::chrono::steady_clock::now() < deadline) {
        request.user =
            static_cast<ebsn::UserId>((i++ * 131) % num_users);
        const auto start = std::chrono::steady_clock::now();
        auto outcome = (*client)->Query(request);
        const auto stop = std::chrono::steady_clock::now();
        if (!outcome.ok() || !(*outcome).ok) {
          transport_failures.fetch_add(1);
          return;
        }
        mine.push_back(
            std::chrono::duration<double, std::micro>(stop - start)
                .count());
      }
    });
  }

  // Writers: blocking Attend() round trips (journal fsync + fold-in +
  // ack each), the sustained fold-in stream the queries ride over.
  // Shed writes (OVERLOADED) don't count as fold-ins.
  std::vector<std::thread> writers;
  if (with_writers) {
    for (uint32_t w = 0; w < kWriterConnections; ++w) {
      writers.emplace_back([&, w] {
        auto client =
            net::Client::Connect("127.0.0.1", server->port(), {});
        if (!client.ok()) {
          transport_failures.fetch_add(1);
          return;
        }
        while (!go.load(std::memory_order_acquire) &&
               !writers_stop.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        uint64_t i = w;
        uint64_t sent = 0;
        const auto pace_start = std::chrono::steady_clock::now();
        while (!writers_stop.load(std::memory_order_acquire)) {
          const auto user =
              static_cast<ebsn::UserId>((i * 2654435761u) % num_users);
          const auto event =
              static_cast<ebsn::EventId>((i * 40503u) % num_events);
          ++i;
          auto outcome = (*client)->Attend(user, event);
          if (!outcome.ok()) {
            transport_failures.fetch_add(1);
            return;
          }
          if (outcome->ok) foldins.fetch_add(1);
          ++sent;
          // Deadline pacing: hold the offered rate even if individual
          // round trips are slow (no coordinated-omission slowdown).
          std::this_thread::sleep_until(pace_start + sent * kWritePacing);
        }
      });
    }
  }

  while (warmed.load(std::memory_order_acquire) < kQueryConnections) {
    std::this_thread::yield();
  }
  const obs::HistogramData lag_before = FetchHistogram(
      stats_client.value().get(), "gemrec_ingest_publish_lag_us");
  const uint64_t publishes_before = FetchCounter(
      stats_client.value().get(), "gemrec_ingest_publishes_total");
  const auto wall_start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  writers_stop.store(true, std::memory_order_release);
  for (auto& thread : writers) thread.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const obs::HistogramData lag_window =
      FetchHistogram(stats_client.value().get(),
                     "gemrec_ingest_publish_lag_us")
          .MinusBaseline(lag_before);
  const uint64_t publishes_after = FetchCounter(
      stats_client.value().get(), "gemrec_ingest_publishes_total");

  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  const net::NetStats after = server->stats();
  PhaseResult result;
  result.queries = all.size();
  result.qps = wall_seconds > 0 ? all.size() / wall_seconds : 0;
  result.p50_us = obs::SamplePercentile(all, 0.50);
  result.p99_us = obs::SamplePercentile(all, 0.99);
  result.foldins = foldins.load();
  result.foldins_per_sec =
      wall_seconds > 0 ? result.foldins / wall_seconds : 0;
  result.publishes = publishes_after - publishes_before;
  result.publish_lag_p50_us = lag_window.Percentile(0.50);
  result.publish_lag_p99_us = lag_window.Percentile(0.99);
  result.overload_sheds = after.overload_sheds - before.overload_sheds;
  result.transport_failures = transport_failures.load();
  return result;
}

/// Removes the scratch journal/checkpoint directory (checkpoints carry
/// the watermark in their names, so sweep the whole tree).
void RemoveTree(const std::string& dir) {
  const std::string cmd = "rm -rf " + dir;
  (void)::system(cmd.c_str());
}

void Run() {
  PrintNote("write-path load test: 64 closed-loop query connections "
            "with and without 4 writer connections streaming "
            "journaled attendance fold-ins; writes BENCH_ingest.json");

  ebsn::SyntheticConfig config;
  config.num_users = 400;
  config.num_events = 300;
  config.num_venues = 40;
  config.num_topics = 6;
  config.vocab_size = 500;
  config.mean_events_per_user = 12.0;
  config.mean_friends_per_user = 10.0;
  config.seed = 4242;
  CityBundle city = MakeCity(config);

  auto options = embedding::TrainerOptions::GemA();
  options.dim = 24;
  auto trainer = TrainEmbedding(city, options, /*samples=*/150000);

  serving::SnapshotOptions snapshot_options;
  snapshot_options.top_k_events_per_partner = 20;
  serving::SnapshotBuilder builder(trainer->store(),
                                   city.split->test_events(),
                                   city.dataset().num_users(),
                                   snapshot_options);
  serving::RecommendationService service(serving::ServiceOptions{});
  service.Publish(builder.Build());

  net::ServerOptions server_options;
  server_options.max_connections = 512;
  server_options.max_in_flight = 512;
  server_options.idle_timeout = std::chrono::milliseconds(60000);

  // Interleaved rounds: read-only baseline, then the same service +
  // builder with the write path attached, kRounds times over.
  std::vector<PhaseResult> baselines;
  std::vector<PhaseResult> mixeds;
  const std::string ingest_dir = "BENCH_ingest_tmp";
  for (int round = 0; round < kRounds; ++round) {
    {
      net::NetServer server(&service, server_options);
      const Status started = server.Start();
      if (!started.ok()) {
        std::cerr << "server start failed: " << started.ToString()
                  << "\n";
        return;
      }
      baselines.push_back(RunPhase(&server, city.dataset().num_users(),
                                   city.dataset().num_events(),
                                   /*with_writers=*/false));
      server.RequestDrain();
      server.WaitUntilStopped();
      server.Stop();
    }
    (void)::mkdir(ingest_dir.c_str(), 0755);
    {
      serving::IngestionQueueOptions iq;
      iq.journal_path = ingest_dir + "/journal";
      iq.checkpoint_base = ingest_dir + "/checkpoint";
      iq.checkpoint_every = 4096;
      // Production delta cadence: a full snapshot rebuild costs ~100ms
      // of CPU at this model size, so publishing on every small batch
      // (the unit-test-friendly defaults) would spend the whole
      // measure window rebuilding instead of serving. Bound rebuild
      // CPU by publishing at most ~once per 750ms unless a large
      // batch lands.
      iq.publish_threshold = 4096;
      iq.publish_interval = std::chrono::milliseconds(750);
      serving::IngestionQueue queue(&service, &builder, iq);
      if (const Status s = queue.Start(); !s.ok()) {
        std::cerr << "ingestion start failed: " << s.ToString() << "\n";
        RemoveTree(ingest_dir);
        return;
      }
      net::NetServer server(&service, server_options, &queue);
      const Status started = server.Start();
      if (!started.ok()) {
        std::cerr << "server start failed: " << started.ToString()
                  << "\n";
        RemoveTree(ingest_dir);
        return;
      }
      mixeds.push_back(RunPhase(&server, city.dataset().num_users(),
                                city.dataset().num_events(),
                                /*with_writers=*/true));
      server.RequestDrain();
      server.WaitUntilStopped();
      server.Stop();
      queue.Shutdown();
    }
    RemoveTree(ingest_dir);
  }

  // Per-phase medians (each round is an independent window; totals
  // below sum the write-side activity across rounds).
  const auto median_of = [](std::vector<PhaseResult>& runs,
                            auto member) {
    std::vector<double> values;
    values.reserve(runs.size());
    for (const PhaseResult& run : runs) values.push_back(run.*member);
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };
  PhaseResult baseline;
  baseline.qps = median_of(baselines, &PhaseResult::qps);
  baseline.p50_us = median_of(baselines, &PhaseResult::p50_us);
  baseline.p99_us = median_of(baselines, &PhaseResult::p99_us);
  for (const PhaseResult& run : baselines) {
    baseline.queries += run.queries;
    baseline.transport_failures += run.transport_failures;
  }
  PhaseResult mixed;
  mixed.qps = median_of(mixeds, &PhaseResult::qps);
  mixed.p50_us = median_of(mixeds, &PhaseResult::p50_us);
  mixed.p99_us = median_of(mixeds, &PhaseResult::p99_us);
  mixed.publish_lag_p50_us =
      median_of(mixeds, &PhaseResult::publish_lag_p50_us);
  mixed.publish_lag_p99_us =
      median_of(mixeds, &PhaseResult::publish_lag_p99_us);
  double mixed_seconds = 0;
  for (const PhaseResult& run : mixeds) {
    mixed.queries += run.queries;
    mixed.foldins += run.foldins;
    mixed.publishes += run.publishes;
    mixed.overload_sheds += run.overload_sheds;
    mixed.transport_failures += run.transport_failures;
    mixed_seconds += run.foldins_per_sec > 0
                         ? run.foldins / run.foldins_per_sec
                         : 0;
  }
  mixed.foldins_per_sec =
      mixed_seconds > 0 ? mixed.foldins / mixed_seconds : 0;

  std::cout << "baseline (read-only, " << kQueryConnections
            << " conns, median of " << kRounds
            << "): " << baseline.qps << " qps  p50 " << baseline.p50_us
            << "us  p99 " << baseline.p99_us << "us\n";

  // Paired per-round deltas: each round's baseline and mixed windows
  // are temporally adjacent, so slow machine drift cancels inside the
  // pair; the median pair is far stabler than a ratio of two
  // independently-noisy medians on a 1-core host.
  std::vector<double> deltas;
  for (int round = 0; round < kRounds; ++round) {
    if (baselines[round].p99_us > 0) {
      deltas.push_back(100.0 *
                       (mixeds[round].p99_us - baselines[round].p99_us) /
                       baselines[round].p99_us);
    }
  }
  std::sort(deltas.begin(), deltas.end());
  const double p99_delta_pct =
      deltas.empty() ? 0 : deltas[deltas.size() / 2];
  std::cout << "mixed (" << kQueryConnections << " query + "
            << kWriterConnections << " writer conns): " << mixed.qps
            << " qps  p50 " << mixed.p50_us << "us  p99 " << mixed.p99_us
            << "us  (" << p99_delta_pct
            << "% vs baseline p99, median paired round)\n"
            << "  fold-ins " << mixed.foldins << " ("
            << mixed.foldins_per_sec << "/s)  publishes "
            << mixed.publishes << "  publish lag p50 "
            << mixed.publish_lag_p50_us << "us  p99 "
            << mixed.publish_lag_p99_us << "us  sheds "
            << mixed.overload_sheds << "  transport-failures "
            << mixed.transport_failures << "\n";

  std::ofstream json("BENCH_ingest.json");
  json << "{\n"
       << "  \"bench\": \"ingest_throughput\",\n"
       << "  \"workload\": \"" << kQueryConnections
       << " closed-loop top-" << kTopN
       << " query connections over loopback TCP; mixed phase adds "
       << kWriterConnections
       << " attendance writers paced at "
       << (1000000 / kWritePacing.count())
       << " writes/s each (journal fdatasync + fold-in + ack per "
       << "write); " << kMeasureWindow.count()
       << "ms measured window per phase, phases interleaved over "
       << kRounds << " rounds, median percentiles reported\",\n"
       << "  \"rounds\": " << kRounds << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"baseline\": {\n"
       << "    \"connections\": " << kQueryConnections << ",\n"
       << "    \"queries\": " << baseline.queries << ",\n"
       << "    \"qps\": " << baseline.qps << ",\n"
       << "    \"p50_us\": " << baseline.p50_us << ",\n"
       << "    \"p99_us\": " << baseline.p99_us << ",\n"
       << "    \"transport_failures\": " << baseline.transport_failures
       << "\n"
       << "  },\n"
       << "  \"mixed\": {\n"
       << "    \"connections\": " << kQueryConnections << ",\n"
       << "    \"writer_connections\": " << kWriterConnections << ",\n"
       << "    \"queries\": " << mixed.queries << ",\n"
       << "    \"qps\": " << mixed.qps << ",\n"
       << "    \"p50_us\": " << mixed.p50_us << ",\n"
       << "    \"p99_us\": " << mixed.p99_us << ",\n"
       << "    \"foldins\": " << mixed.foldins << ",\n"
       << "    \"foldins_per_sec\": " << mixed.foldins_per_sec << ",\n"
       << "    \"publishes\": " << mixed.publishes << ",\n"
       << "    \"publish_lag_p50_us\": " << mixed.publish_lag_p50_us
       << ",\n"
       << "    \"publish_lag_p99_us\": " << mixed.publish_lag_p99_us
       << ",\n"
       << "    \"overload_sheds\": " << mixed.overload_sheds << ",\n"
       << "    \"transport_failures\": " << mixed.transport_failures
       << "\n"
       << "  },\n"
       << "  \"p99_delta_pct\": " << p99_delta_pct << ",\n"
       << "  \"acceptance_p99_within_25pct\": "
       << (p99_delta_pct <= 25.0 ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nwrote BENCH_ingest.json\n";
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
