// Reproduces Figure 3: cold-start event recommendation Accuracy@n for
// GEM-A, GEM-P, PTE, CBPF, PER and PCMF on both cities.
//
// Paper reference (Beijing, Accuracy@10): GEM-A 0.373, GEM-P 0.254,
// PTE 0.236, CBPF 0.178, PER 0.140, PCMF 0.091 (the last four derived
// from the stated relative improvements of 58% / 109.55% / 166.42% /
// 309.01%). Expected shape: GEM-A > GEM-P > PTE > CBPF > PER > PCMF,
// with the three graph-embedding models clearly ahead.
//
// Set GEMREC_BENCH_SEEDS=3 (or more) to average over independently
// generated datasets — single-seed Accuracy@10 carries ~+-0.03 noise at
// the default scale, which matters when reading the model ordering.

#include <functional>
#include <iostream>

#include "bench_util.h"

namespace gemrec::bench {
namespace {

struct ModelSpec {
  std::string name;
  std::function<eval::AccuracyResult(const CityBundle&)> run;
};

std::vector<ModelSpec> Models() {
  return {
      {"GEM-A",
       [](const CityBundle& city) {
         auto trainer =
             TrainEmbedding(city, embedding::TrainerOptions::GemA());
         recommend::GemModel model(&trainer->store(), "GEM-A");
         return EvalColdStart(model, city);
       }},
      {"GEM-P",
       [](const CityBundle& city) {
         auto trainer =
             TrainEmbedding(city, embedding::TrainerOptions::GemP());
         recommend::GemModel model(&trainer->store(), "GEM-P");
         return EvalColdStart(model, city);
       }},
      {"PTE",
       [](const CityBundle& city) {
         auto trainer =
             TrainEmbedding(city, embedding::TrainerOptions::Pte());
         recommend::GemModel model(&trainer->store(), "PTE");
         return EvalColdStart(model, city);
       }},
      {"CBPF",
       [](const CityBundle& city) {
         baselines::CbpfModel model(city.dataset(), *city.split,
                                    *city.graphs,
                                    baselines::CbpfOptions{});
         return EvalColdStart(model, city);
       }},
      {"PER",
       [](const CityBundle& city) {
         baselines::PerModel model(city.dataset(), *city.split,
                                   *city.graphs,
                                   baselines::PerOptions{});
         return EvalColdStart(model, city);
       }},
      {"PCMF",
       [](const CityBundle& city) {
         baselines::PcmfOptions options;
         options.num_samples = BenchSamples();
         baselines::PcmfModel model(*city.graphs, options);
         return EvalColdStart(model, city);
       }},
  };
}

void RunCity(const ebsn::SyntheticConfig& base_config) {
  const size_t seeds = std::max<size_t>(1, BenchSeeds());
  const auto models = Models();
  std::vector<std::vector<eval::AccuracyResult>> per_model(models.size());
  for (size_t s = 0; s < seeds; ++s) {
    ebsn::SyntheticConfig config = base_config;
    config.seed = base_config.seed + s;
    CityBundle city = MakeCity(config);
    for (size_t m = 0; m < models.size(); ++m) {
      per_model[m].push_back(models[m].run(city));
    }
  }
  std::vector<AccuracyRow> rows;
  for (size_t m = 0; m < models.size(); ++m) {
    rows.push_back({models[m].name, AverageResults(per_model[m])});
  }
  PrintAccuracySeries(
      "Figure 3: cold-start event recommendation (" + base_config.name +
          (seeds > 1 ? ", mean of " + std::to_string(seeds) + " seeds"
                     : "") +
          ")",
      rows);
}

void Run() {
  PrintNote("paper reference (Beijing, Ac@10): GEM-A 0.373 > GEM-P 0.254"
            " > PTE 0.236 > CBPF 0.178 > PER 0.140 > PCMF 0.091");
  RunCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  RunCity(ebsn::SyntheticConfig::Shanghai(BenchScale()));
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
