// Reproduces Table I: basic statistics of the Douban Event datasets.
// Our datasets are the synthetic "beijing"/"shanghai" analogues (see
// DESIGN.md §2); the paper's crawl statistics are printed alongside
// for reference.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

namespace gemrec::bench {
namespace {

void Run() {
  PrintBanner(std::cout, "Table I: basic statistics of event datasets");
  PrintNote("paper (Douban crawl):  Beijing 64113 users / 12955 events /"
            " 3212 venues / 1114097 attendances / 865298 friendships");
  PrintNote("paper (Douban crawl): Shanghai 36440 users /  6753 events /"
            " 1990 venues /  482138 attendances / 298105 friendships");
  PrintNote("ours: synthetic analogues at GEMREC_BENCH_SCALE=" +
            TablePrinter::Num(BenchScale(), 2));

  TablePrinter table({"statistic", "beijing (ours)", "shanghai (ours)"});
  const auto beijing =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  const auto shanghai =
      MakeCity(ebsn::SyntheticConfig::Shanghai(BenchScale()));
  const auto bs = beijing.dataset().Stats();
  const auto ss = shanghai.dataset().Stats();
  auto row = [&](const std::string& name, size_t b, size_t s) {
    table.AddRow({name, std::to_string(b), std::to_string(s)});
  };
  row("# of users", bs.num_users, ss.num_users);
  row("# of events", bs.num_events, ss.num_events);
  row("# of venues", bs.num_venues, ss.num_venues);
  row("# of historical attendances", bs.num_attendances,
      ss.num_attendances);
  row("# of friendship links", bs.num_friendships, ss.num_friendships);
  row("vocabulary size", bs.vocab_size, ss.vocab_size);
  row("# event-partner ground-truth triples", beijing.truth.size(),
      shanghai.truth.size());
  table.Print(std::cout);

  PrintNote("\nshape check: beijing dominates shanghai on every count, "
            "as in the paper.");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
