// Reproduces Figure 5: joint event-partner recommendation, scenario 2
// (partners are *potential* friends: every ground-truth pair's social
// link is removed from G_UU during training, so the models must
// predict both the event and the future friendship).
//
// Paper reference: same ordering as Figure 4 but uniformly lower
// accuracies, because the second scenario is strictly harder.

#include <iostream>

#include "bench_util.h"

namespace gemrec::bench {
namespace {

eval::AccuracyResult Scenario1Gem(const ebsn::SyntheticConfig& config) {
  CityBundle city = MakeCity(config, /*remove_truth_friendships=*/false);
  auto trainer = TrainEmbedding(city, embedding::TrainerOptions::GemA());
  recommend::GemModel model(&trainer->store(), "GEM-A");
  return EvalPartner(model, city);
}

void RunCity(const ebsn::SyntheticConfig& config) {
  CityBundle city = MakeCity(config, /*remove_truth_friendships=*/true);
  std::vector<AccuracyRow> rows;

  auto gem_a = TrainEmbedding(city, embedding::TrainerOptions::GemA());
  recommend::GemModel gem_a_model(&gem_a->store(), "GEM-A");
  rows.push_back({"GEM-A", EvalPartner(gem_a_model, city)});

  {
    auto trainer = TrainEmbedding(city, embedding::TrainerOptions::GemP());
    recommend::GemModel model(&trainer->store(), "GEM-P");
    rows.push_back({"GEM-P", EvalPartner(model, city)});
  }
  {
    auto trainer = TrainEmbedding(city, embedding::TrainerOptions::Pte());
    recommend::GemModel model(&trainer->store(), "PTE");
    rows.push_back({"PTE", EvalPartner(model, city)});
  }
  {
    baselines::CfaprEModel model(city.dataset(), *city.split,
                                 *city.graphs, &gem_a_model);
    rows.push_back({"CFAPR-E", EvalPartner(model, city)});
  }
  {
    baselines::CbpfModel model(city.dataset(), *city.split, *city.graphs,
                               baselines::CbpfOptions{});
    rows.push_back({"CBPF", EvalPartner(model, city)});
  }
  {
    baselines::PerModel model(city.dataset(), *city.split, *city.graphs,
                              baselines::PerOptions{});
    rows.push_back({"PER", EvalPartner(model, city)});
  }
  {
    baselines::PcmfOptions options;
    options.num_samples = BenchSamples();
    baselines::PcmfModel model(*city.graphs, options);
    rows.push_back({"PCMF", EvalPartner(model, city)});
  }

  PrintAccuracySeries("Figure 5: joint event-partner recommendation, "
                      "scenario 2 — partners are potential friends (" +
                          city.name + ")",
                      rows);

  // Shape check against Figure 4: scenario 2 must be harder for GEM-A.
  const auto scenario1 = Scenario1Gem(config);
  PrintNote("shape check (" + city.name + "): GEM-A Ac@10 scenario 1 = " +
            std::to_string(scenario1.At(10)) + " vs scenario 2 = " +
            std::to_string(rows.front().result.At(10)) +
            " (paper: scenario 2 uniformly lower)");
}

void Run() {
  PrintNote("paper reference: same ordering as Figure 4, lower values "
            "(harder task: the friendship must be predicted too)");
  RunCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  RunCity(ebsn::SyntheticConfig::Shanghai(BenchScale()));
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
