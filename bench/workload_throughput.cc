// Per-query-kind serving throughput/latency report (not a paper
// table): closed-loop load against RecommendationService for each
// QueryKind — partner, group (sum and min aggregation) and reciprocal
// — written to BENCH_workloads.json so the three serve paths have
// frozen baselines the same way BENCH_serving.json freezes the
// partner hot path.
//
// Per kind: fixed client threads issue synchronous top-10 queries over
// a rotating user set (group queries rotate the partner set too, so
// the result cache cannot flatten the workload); we record end-to-end
// QPS and p50/p90/p99 query latency. The query count is scaled per
// kind — group scans its event slice exhaustively and reciprocal runs
// iterative deepening, so both do strictly more work per query than
// partner retrieval.
//
// Run from the repo root so BENCH_workloads.json lands there:
//   ./build/bench/workload_throughput

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "recommend/query_kinds.h"
#include "serving/recommendation_service.h"
#include "serving/snapshot_builder.h"

namespace gemrec::bench {
namespace {

constexpr uint32_t kClients = 4;
constexpr uint32_t kWorkers = 4;
constexpr size_t kTopN = 10;

struct WorkloadSpec {
  std::string name;
  recommend::QueryKind kind;
  recommend::GroupAggregator aggregator;
  size_t queries;
};

struct RunResult {
  std::string name;
  double qps = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  size_t queries = 0;
};

serving::QueryRequest MakeRequest(const WorkloadSpec& spec, size_t i,
                                  uint32_t num_users) {
  serving::QueryRequest request;
  request.user = static_cast<ebsn::UserId>((i * 131) % num_users);
  request.n = kTopN;
  request.kind = spec.kind;
  if (spec.kind == recommend::QueryKind::kGroup) {
    request.aggregator = spec.aggregator;
    // Deterministic rotating partner set of 3, never containing the
    // querying user.
    for (uint32_t d : {1u, 7u, 13u}) {
      request.group.push_back(static_cast<ebsn::UserId>(
          (request.user + d + static_cast<uint32_t>(i % 5)) % num_users));
    }
    for (auto& member : request.group) {
      if (member == request.user) member = (member + 1) % num_users;
    }
  }
  return request;
}

RunResult RunLoad(serving::RecommendationService* service,
                  const WorkloadSpec& spec, uint32_t num_users) {
  std::vector<std::vector<double>> latencies(kClients);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto& mine = latencies[c];
      mine.reserve(spec.queries / kClients + 1);
      for (size_t i = c; i < spec.queries; i += kClients) {
        const serving::QueryRequest request =
            MakeRequest(spec, i, num_users);
        const auto start = std::chrono::steady_clock::now();
        const auto response = service->Query(request);
        const auto stop = std::chrono::steady_clock::now();
        (void)response;
        mine.push_back(
            std::chrono::duration<double, std::micro>(stop - start)
                .count());
      }
    });
  }
  for (auto& thread : clients) thread.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  const auto percentile = [&](double p) {
    return all[std::min(all.size() - 1,
                        static_cast<size_t>(p * all.size()))];
  };
  RunResult result;
  result.name = spec.name;
  result.queries = all.size();
  result.qps = all.size() / wall_seconds;
  result.p50_us = percentile(0.50);
  result.p90_us = percentile(0.90);
  result.p99_us = percentile(0.99);
  return result;
}

void Run() {
  PrintNote("per-kind serving load test: closed-loop top-10 partner / "
            "group(sum) / group(min) / reciprocal queries; writes "
            "BENCH_workloads.json");

  ebsn::SyntheticConfig config;
  config.num_users = 400;
  config.num_events = 300;
  config.num_venues = 40;
  config.num_topics = 6;
  config.vocab_size = 500;
  config.mean_events_per_user = 12.0;
  config.mean_friends_per_user = 10.0;
  config.seed = 4242;
  CityBundle city = MakeCity(config);

  auto options = embedding::TrainerOptions::GemA();
  options.dim = 24;
  auto trainer = TrainEmbedding(city, options, /*samples=*/150000);

  serving::SnapshotOptions snapshot_options;
  snapshot_options.top_k_events_per_partner = 20;
  serving::SnapshotBuilder builder(trainer->store(),
                                   city.split->test_events(),
                                   city.dataset().num_users(),
                                   snapshot_options);
  serving::ServiceOptions service_options;
  service_options.num_workers = kWorkers;
  serving::RecommendationService service(service_options);
  service.Publish(builder.Build());

  const std::vector<WorkloadSpec> workloads = {
      {"partner", recommend::QueryKind::kPartner,
       recommend::GroupAggregator::kSum, 4000},
      {"group_sum", recommend::QueryKind::kGroup,
       recommend::GroupAggregator::kSum, 1000},
      {"group_min", recommend::QueryKind::kGroup,
       recommend::GroupAggregator::kMin, 1000},
      {"reciprocal", recommend::QueryKind::kReciprocal,
       recommend::GroupAggregator::kSum, 500},
  };

  std::vector<RunResult> results;
  for (const WorkloadSpec& spec : workloads) {
    results.push_back(
        RunLoad(&service, spec, city.dataset().num_users()));
    const RunResult& r = results.back();
    std::cout << r.name << ": " << r.qps << " qps  p50 " << r.p50_us
              << "us  p90 " << r.p90_us << "us  p99 " << r.p99_us
              << "us  (" << r.queries << " queries)\n";
  }

  std::ofstream json("BENCH_workloads.json");
  json << "{\n"
       << "  \"bench\": \"workload_throughput\",\n"
       << "  \"workload\": \"closed-loop top-" << kTopN
       << " queries per kind, " << kClients << " clients, " << kWorkers
       << " workers\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"retrieval_mode\": \"quantized_batched\",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\n"
         << "      \"kind\": \"" << r.name << "\",\n"
         << "      \"queries\": " << r.queries << ",\n"
         << "      \"qps\": " << r.qps << ",\n"
         << "      \"p50_us\": " << r.p50_us << ",\n"
         << "      \"p90_us\": " << r.p90_us << ",\n"
         << "      \"p99_us\": " << r.p99_us << "\n"
         << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::cout << "\nwrote BENCH_workloads.json\n";
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
