// Reproduces Table VI: online event-partner recommendation latency of
// GEM-TA (threshold algorithm over the transformed space) vs GEM-BF
// (brute force), for n ∈ {5, 10, 15, 20}, over the full (unpruned)
// candidate space of test-event × partner pairs.
//
// Paper reference (Beijing, 2590 x 64113 pairs, Java):
//   GEM-TA: 2.21s / 4.45s / 7.65s / 9.28s
//   GEM-BF: 45.34s / 45.75s / 45.89s / 45.94s
// and GEM-TA examines only ~8% of all pairs at n = 10. Expected
// shape: BF flat in n; TA several times faster, growing mildly with
// n; TA examines a small fraction of the space. Absolute numbers are
// not comparable (different hardware, language and scale).

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "recommend/recommender.h"

namespace gemrec::bench {
namespace {

struct OnlineSetup {
  CityBundle city;
  std::unique_ptr<embedding::JointTrainer> trainer;
  std::unique_ptr<recommend::GemModel> model;
  std::unique_ptr<recommend::EventPartnerRecommender> ta;
  std::unique_ptr<recommend::EventPartnerRecommender> bf;
};

OnlineSetup* Setup() {
  static OnlineSetup* setup = [] {
    auto* s = new OnlineSetup{
        MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale())),
        nullptr, nullptr, nullptr, nullptr};
    s->trainer = TrainEmbedding(*&s->city,
                                embedding::TrainerOptions::GemA());
    s->model = std::make_unique<recommend::GemModel>(
        &s->trainer->store(), "GEM-A");
    recommend::RecommenderOptions ta_options;
    ta_options.backend = recommend::SearchBackend::kThresholdAlgorithm;
    s->ta = std::make_unique<recommend::EventPartnerRecommender>(
        s->model.get(), s->city.split->test_events(),
        s->city.dataset().num_users(), ta_options);
    recommend::RecommenderOptions bf_options;
    bf_options.backend = recommend::SearchBackend::kBruteForce;
    s->bf = std::make_unique<recommend::EventPartnerRecommender>(
        s->model.get(), s->city.split->test_events(),
        s->city.dataset().num_users(), bf_options);
    return s;
  }();
  return setup;
}

void BM_GemTa(benchmark::State& state) {
  OnlineSetup* s = Setup();
  const size_t n = static_cast<size_t>(state.range(0));
  ebsn::UserId u = 0;
  double examined = 0.0;
  size_t queries = 0;
  for (auto _ : state) {
    recommend::SearchStats stats;
    auto result = s->ta->Recommend(u, n, &stats);
    benchmark::DoNotOptimize(result);
    examined += stats.examined_fraction;
    ++queries;
    u = (u + 17) % s->city.dataset().num_users();
  }
  state.counters["examined_frac"] =
      queries == 0 ? 0.0 : examined / static_cast<double>(queries);
  state.counters["pairs"] =
      static_cast<double>(s->ta->num_candidate_pairs());
}

void BM_GemBf(benchmark::State& state) {
  OnlineSetup* s = Setup();
  const size_t n = static_cast<size_t>(state.range(0));
  ebsn::UserId u = 0;
  for (auto _ : state) {
    auto result = s->bf->Recommend(u, n);
    benchmark::DoNotOptimize(result);
    u = (u + 17) % s->city.dataset().num_users();
  }
  state.counters["pairs"] =
      static_cast<double>(s->bf->num_candidate_pairs());
}

BENCHMARK(BM_GemTa)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_GemBf)->Arg(5)->Arg(10)->Arg(15)->Arg(20)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace gemrec::bench

int main(int argc, char** argv) {
  gemrec::bench::PrintNote(
      "Table VI paper reference (2590 x 64113 pairs, Java server): "
      "GEM-TA 2.21/4.45/7.65/9.28 s for n=5/10/15/20; GEM-BF flat at "
      "~45.8 s; TA examines ~8% of pairs at n=10.");
  gemrec::bench::PrintNote(
      "expected shape here: BF flat in n, TA much faster and mildly "
      "increasing, examined_frac small.");
  gemrec::bench::PrintNote(
      "seed baseline (default scale, single core): GemTa/10 ~12.0 ms, "
      "GemBf/10 ~281 ms over ~900k pairs. The hot-path PR moves TA's "
      "query-independent index construction into the TaSearch "
      "constructor and reuses per-query scratch, so steady-state "
      "queries allocate nothing (pinned by ta_alloc_test).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
