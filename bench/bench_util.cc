#include "bench_util.h"

#include <cstdlib>
#include <iostream>

#include "common/logging.h"
#include "common/table_printer.h"

namespace gemrec::bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return std::atof(value);
}

}  // namespace

double BenchScale() { return EnvDouble("GEMREC_BENCH_SCALE", 1.0); }

uint64_t BenchSamples() {
  return static_cast<uint64_t>(
      EnvDouble("GEMREC_BENCH_SAMPLES", 2000000.0));
}

size_t BenchMaxCases() {
  return static_cast<size_t>(EnvDouble("GEMREC_BENCH_CASES", 400.0));
}

size_t BenchSeeds() {
  return static_cast<size_t>(EnvDouble("GEMREC_BENCH_SEEDS", 1.0));
}

eval::AccuracyResult AverageResults(
    const std::vector<eval::AccuracyResult>& results) {
  GEMREC_CHECK(!results.empty());
  eval::AccuracyResult avg = results.front();
  for (size_t r = 1; r < results.size(); ++r) {
    GEMREC_CHECK(results[r].cutoffs == avg.cutoffs);
    for (size_t i = 0; i < avg.accuracy.size(); ++i) {
      avg.accuracy[i] += results[r].accuracy[i];
      avg.ndcg[i] += results[r].ndcg[i];
    }
    avg.mrr += results[r].mrr;
    avg.mean_rank += results[r].mean_rank;
    avg.num_cases += results[r].num_cases;
  }
  const double n = static_cast<double>(results.size());
  for (size_t i = 0; i < avg.accuracy.size(); ++i) {
    avg.accuracy[i] /= n;
    avg.ndcg[i] /= n;
  }
  avg.mrr /= n;
  avg.mean_rank /= n;
  return avg;
}

CityBundle MakeCity(ebsn::SyntheticConfig config,
                    bool remove_truth_friendships) {
  CityBundle city;
  city.name = config.name;
  city.data = ebsn::GenerateSynthetic(config);
  city.split =
      std::make_unique<ebsn::ChronologicalSplit>(city.data.dataset);
  city.truth =
      eval::BuildPartnerGroundTruth(city.data.dataset, *city.split);

  graph::GraphBuilderOptions options;
  if (remove_truth_friendships) {
    options.removed_friendships = eval::FriendshipsToRemove(city.truth);
  }
  auto graphs =
      graph::BuildEbsnGraphs(city.data.dataset, *city.split, options);
  GEMREC_CHECK(graphs.ok()) << graphs.status().ToString();
  city.graphs =
      std::make_unique<graph::EbsnGraphs>(std::move(graphs).value());
  return city;
}

std::unique_ptr<embedding::JointTrainer> TrainEmbedding(
    const CityBundle& city, embedding::TrainerOptions options,
    uint64_t samples) {
  options.num_samples = samples == 0 ? BenchSamples() : samples;
  auto trainer = std::make_unique<embedding::JointTrainer>(
      city.graphs.get(), options);
  trainer->Train();
  return trainer;
}

eval::AccuracyResult EvalColdStart(const recommend::RecModel& model,
                                   const CityBundle& city) {
  eval::ProtocolOptions options;
  options.max_cases = BenchMaxCases();
  return eval::EvaluateColdStartEvents(model, city.dataset(),
                                       *city.split, options);
}

eval::AccuracyResult EvalPartner(const recommend::RecModel& model,
                                 const CityBundle& city) {
  eval::ProtocolOptions options;
  options.max_cases = BenchMaxCases();
  return eval::EvaluateEventPartner(model, city.dataset(), *city.split,
                                    city.truth, options);
}

void PrintAccuracySeries(const std::string& title,
                         const std::vector<AccuracyRow>& rows) {
  PrintBanner(std::cout, title);
  if (rows.empty()) return;
  std::vector<std::string> header = {"model"};
  for (size_t n : rows.front().result.cutoffs) {
    header.push_back("Ac@" + std::to_string(n));
  }
  TablePrinter table(header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.model};
    for (double a : row.result.accuracy) {
      cells.push_back(TablePrinter::Num(a, 3));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);
}

void PrintNote(const std::string& text) {
  std::cout << text << "\n";
}

}  // namespace gemrec::bench
