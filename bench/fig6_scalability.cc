// Reproduces Figure 6: scalability of the asynchronous (hogwild)
// optimizer — (a) training speedup vs number of threads, (b)
// recommendation accuracy vs number of threads.
//
// Paper reference: speedup close to linear in the thread count;
// accuracy stable under asynchronous updates.
//
// HARDWARE NOTE: the reproduction host exposes a single hardware core,
// so measured wall-clock speedup is necessarily ~1x regardless of the
// thread count; the code path (lock-free shared-parameter updates) is
// the paper's. The accuracy-stability half of the figure is
// hardware-independent and fully reproduced.

#include <iostream>
#include <thread>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace gemrec::bench {
namespace {

void Run() {
  PrintNote("paper reference: near-linear speedup with threads; stable "
            "accuracy under hogwild updates");
  PrintNote("host hardware concurrency: " +
            std::to_string(std::thread::hardware_concurrency()) +
            " (single-core host => expect flat measured speedup; see "
            "EXPERIMENTS.md)");

  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  const uint64_t samples = BenchSamples();

  PrintBanner(std::cout,
              "Figure 6: hogwild scalability (beijing, GEM-A, N = " +
                  std::to_string(samples) + ")");
  TablePrinter table({"threads", "train time (s)", "speedup",
                      "event Ac@10", "joint Ac@10"});
  double base_time = 0.0;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    auto options = embedding::TrainerOptions::GemA();
    options.num_threads = threads;
    Stopwatch watch;
    auto trainer = TrainEmbedding(city, options, samples);
    const double elapsed = watch.ElapsedSeconds();
    if (threads == 1) base_time = elapsed;
    recommend::GemModel model(&trainer->store(), "GEM-A");
    table.AddRow({std::to_string(threads),
                  TablePrinter::Num(elapsed, 2),
                  TablePrinter::Num(base_time / elapsed, 2),
                  TablePrinter::Num(EvalColdStart(model, city).At(10), 3),
                  TablePrinter::Num(EvalPartner(model, city).At(10), 3)});
  }
  table.Print(std::cout);
  PrintNote("\nshape check: accuracy columns stay flat across thread "
            "counts (Fig. 6b); on a multi-core host the speedup column "
            "approaches the thread count (Fig. 6a).");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
