// Reproduces Figure 6: scalability of the asynchronous (hogwild)
// optimizer — (a) training speedup vs number of threads, (b)
// recommendation accuracy vs number of threads.
//
// Paper reference: speedup close to linear in the thread count;
// accuracy stable under asynchronous updates.
//
// HARDWARE NOTE: the reproduction host exposes a single hardware core,
// so measured wall-clock speedup is necessarily ~1x regardless of the
// thread count; the code path (lock-free shared-parameter updates) is
// the paper's. The accuracy-stability half of the figure is
// hardware-independent and fully reproduced.

#include <iostream>
#include <thread>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace gemrec::bench {
namespace {

void Run() {
  PrintNote("paper reference: near-linear speedup with threads; stable "
            "accuracy under hogwild updates");
  PrintNote("host hardware concurrency: " +
            std::to_string(std::thread::hardware_concurrency()) +
            " (single-core host => expect flat measured speedup; see "
            "EXPERIMENTS.md)");

  CityBundle city =
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale()));
  const uint64_t samples = BenchSamples();

  PrintBanner(std::cout,
              "Figure 6: hogwild scalability (beijing, GEM-A, N = " +
                  std::to_string(samples) + ")");
  // The trainer normalizes num_threads (0 = all hardware threads;
  // oversized requests capped at hardware_concurrency), so report both
  // the requested and the effective count — on a small host several
  // requested rows collapse onto the same effective parallelism and
  // their times should coincide rather than degrade.
  TablePrinter table({"threads req", "threads eff", "train time (s)",
                      "speedup", "event Ac@10", "joint Ac@10"});
  double base_time = 0.0;
  double prev_time = 0.0;
  bool monotone = true;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    auto options = embedding::TrainerOptions::GemA();
    options.num_threads = threads;
    Stopwatch watch;
    auto trainer = TrainEmbedding(city, options, samples);
    const double elapsed = watch.ElapsedSeconds();
    if (threads == 1) base_time = elapsed;
    // Monotone shape check with 20% tolerance for timer noise: adding
    // threads must never make training materially slower.
    if (prev_time > 0.0 && elapsed > prev_time * 1.2) monotone = false;
    prev_time = elapsed;
    recommend::GemModel model(&trainer->store(), "GEM-A");
    table.AddRow({std::to_string(threads),
                  std::to_string(trainer->options().num_threads),
                  TablePrinter::Num(elapsed, 2),
                  TablePrinter::Num(base_time / elapsed, 2),
                  TablePrinter::Num(EvalColdStart(model, city).At(10), 3),
                  TablePrinter::Num(EvalPartner(model, city).At(10), 3)});
  }
  table.Print(std::cout);
  PrintNote(monotone
                ? "\nshape check PASSED: train time is non-increasing "
                  "(within 20% noise) as threads are added."
                : "\nshape check FAILED: adding threads slowed training "
                  "down — investigate pool contention.");
  PrintNote("shape check: accuracy columns stay flat across thread "
            "counts (Fig. 6b); on a multi-core host the speedup column "
            "approaches the effective thread count (Fig. 6a). The "
            "persistent pool is reused across chunks, so per-chunk "
            "thread spawn cost no longer dilutes the speedup.");
}

}  // namespace
}  // namespace gemrec::bench

int main() {
  gemrec::bench::Run();
  return 0;
}
