// Performance bench (not a paper table): gradient-step throughput per
// trainer configuration, isolating the cost of the three noise
// samplers and of bidirectional sampling. Complements the paper's
// complexity analysis (§III-A/B: each step is O(K·M); the adaptive
// sampler's amortized cost per draw is O(K) thanks to the periodic
// ranking recomputation).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gemrec::bench {
namespace {

CityBundle* City() {
  static CityBundle* city = new CityBundle(
      MakeCity(ebsn::SyntheticConfig::Beijing(BenchScale())));
  return city;
}

void RunSteps(benchmark::State& state,
              embedding::TrainerOptions options) {
  CityBundle* city = City();
  options.num_samples = 200000;
  embedding::JointTrainer trainer(city->graphs.get(), options);
  // Warm up (and build the adaptive rankings).
  trainer.TrainChunk(5000);
  for (auto _ : state) {
    trainer.TrainChunk(20000);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}

void BM_GemA(benchmark::State& state) {
  RunSteps(state, embedding::TrainerOptions::GemA());
}
void BM_GemP(benchmark::State& state) {
  RunSteps(state, embedding::TrainerOptions::GemP());
}
void BM_Pte(benchmark::State& state) {
  RunSteps(state, embedding::TrainerOptions::Pte());
}
void BM_GemUniformNoise(benchmark::State& state) {
  auto options = embedding::TrainerOptions::GemA();
  options.sampler = embedding::NoiseSamplerKind::kUniform;
  RunSteps(state, options);
}
void BM_GemAHighDim(benchmark::State& state) {
  auto options = embedding::TrainerOptions::GemA();
  options.dim = static_cast<uint32_t>(state.range(0));
  RunSteps(state, options);
}

BENCHMARK(BM_GemA)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_GemP)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_Pte)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_GemUniformNoise)
    ->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_GemAHighDim)
    ->Arg(20)->Arg(60)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace gemrec::bench

int main(int argc, char** argv) {
  gemrec::bench::PrintNote(
      "training throughput by configuration (items = gradient steps); "
      "expected shape: cost grows linearly with K; the adaptive "
      "sampler's amortized overhead vs degree sampling stays within a "
      "small constant factor (paper §III-B complexity analysis).");
  gemrec::bench::PrintNote(
      "seed baseline (pre-SIMD, single-core default scale): "
      "GemA 190.7k items/s, GemP 571.8k, Pte 604.8k, "
      "GemAHighDim/100 120.4k; the hot-path PR targets >= 1.5x on "
      "GemAHighDim/100 (see BENCH_hotpath.json).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
