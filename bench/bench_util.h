#ifndef GEMREC_BENCH_BENCH_UTIL_H_
#define GEMREC_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/cbpf.h"
#include "baselines/cfapr.h"
#include "baselines/pcmf.h"
#include "baselines/per.h"
#include "ebsn/split.h"
#include "ebsn/synthetic.h"
#include "embedding/trainer.h"
#include "eval/ground_truth.h"
#include "eval/protocol.h"
#include "graph/graph_builder.h"
#include "recommend/gem_model.h"

namespace gemrec::bench {

/// Global knobs, read from the environment so the whole suite can be
/// scaled up or down without rebuilding:
///   GEMREC_BENCH_SCALE    multiplies dataset sizes   (default 1.0)
///   GEMREC_BENCH_SAMPLES  gradient steps per trained model
///                         (default 400000)
///   GEMREC_BENCH_CASES    max evaluation cases       (default 400)
///   GEMREC_BENCH_SEEDS    dataset seeds averaged by fig3/4/5
///                         (default 1; 3+ shrinks run-to-run noise)
double BenchScale();
uint64_t BenchSamples();
size_t BenchMaxCases();
size_t BenchSeeds();

/// Averages parallel AccuracyResults (same cutoffs) element-wise.
eval::AccuracyResult AverageResults(
    const std::vector<eval::AccuracyResult>& results);

/// A fully prepared city: synthetic data, chronological split,
/// training graphs (scenario 1 — all friendships present) and the
/// event-partner ground truth.
struct CityBundle {
  std::string name;
  ebsn::SyntheticData data;
  std::unique_ptr<ebsn::ChronologicalSplit> split;
  std::unique_ptr<graph::EbsnGraphs> graphs;
  std::vector<eval::PartnerTriple> truth;

  const ebsn::Dataset& dataset() const { return data.dataset; }
};

/// Builds a city bundle from a synthetic config (scaled by
/// BenchScale()). `remove_truth_friendships` switches the graphs to
/// the paper's scenario 2 (potential friends).
CityBundle MakeCity(ebsn::SyntheticConfig config,
                    bool remove_truth_friendships = false);

/// Trains a GEM/PTE configuration for `samples` steps (BenchSamples()
/// if 0) and returns the trainer (it owns the embeddings).
std::unique_ptr<embedding::JointTrainer> TrainEmbedding(
    const CityBundle& city, embedding::TrainerOptions options,
    uint64_t samples = 0);

/// Evaluation wrappers with bench defaults.
eval::AccuracyResult EvalColdStart(const recommend::RecModel& model,
                                   const CityBundle& city);
eval::AccuracyResult EvalPartner(const recommend::RecModel& model,
                                 const CityBundle& city);

/// One output row: a model name plus its Accuracy@n series.
struct AccuracyRow {
  std::string model;
  eval::AccuracyResult result;
};

/// Prints a measured accuracy table (one row per model, one column per
/// cutoff) under a banner.
void PrintAccuracySeries(const std::string& title,
                         const std::vector<AccuracyRow>& rows);

/// Prints a free-form note block (used for the paper-reference rows).
void PrintNote(const std::string& text);

}  // namespace gemrec::bench

#endif  // GEMREC_BENCH_BENCH_UTIL_H_
