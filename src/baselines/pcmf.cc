#include "baselines/pcmf.h"

#include <vector>

#include "common/logging.h"
#include "common/vec_math.h"

namespace gemrec::baselines {

PcmfModel::PcmfModel(const graph::EbsnGraphs& graphs,
                     const PcmfOptions& options)
    : options_(options), rng_(options.seed) {
  store_ = std::make_unique<embedding::EmbeddingStore>(
      options_.dim,
      std::array<uint32_t, embedding::EmbeddingStore::kNumTypes>{
          graphs.num_users, graphs.num_events, graphs.num_regions,
          graphs.num_time_slots, graphs.num_words});
  store_->InitGaussian(&rng_, 0.01);
  Train(graphs);
}

void PcmfModel::Train(const graph::EbsnGraphs& graphs) {
  std::vector<const graph::BipartiteGraph*> relations;
  for (const auto* g : graphs.All()) {
    if (g->num_edges() > 0) relations.push_back(g);
  }
  GEMREC_CHECK(!relations.empty());
  const uint32_t dim = options_.dim;
  const float lr = options_.learning_rate;
  const float reg = options_.l2_reg;

  for (uint64_t step = 0; step < options_.num_samples; ++step) {
    // Relations are drawn uniformly: PCMF treats every matrix equally.
    const graph::BipartiteGraph& g =
        *relations[rng_.UniformInt(relations.size())];
    // Binary relation: positive edges are drawn uniformly, ignoring
    // the weight the richer models exploit.
    const graph::Edge& edge = g.edges()[rng_.UniformInt(g.num_edges())];
    // Uniform negative right-hand node (the paper's critique: PCMF
    // uses the uniform noise distribution).
    uint32_t negative = static_cast<uint32_t>(rng_.UniformInt(g.num_b()));
    for (int attempt = 0;
         attempt < 8 && g.HasEdge(edge.a, negative); ++attempt) {
      negative = static_cast<uint32_t>(rng_.UniformInt(g.num_b()));
    }

    float* va = store_->VectorOf(g.type_a(), edge.a);
    float* vb = store_->VectorOf(g.type_b(), edge.b);
    float* vn = store_->VectorOf(g.type_b(), negative);

    // BPR: maximize log σ(va·vb − va·vn).
    const float margin = Dot(va, vb, dim) - Dot(va, vn, dim);
    const float coeff = 1.0f - Sigmoid(margin);
    for (uint32_t f = 0; f < dim; ++f) {
      const float a = va[f];
      const float b = vb[f];
      const float n = vn[f];
      va[f] += lr * (coeff * (b - n) - reg * a);
      vb[f] += lr * (coeff * a - reg * b);
      vn[f] += lr * (-coeff * a - reg * n);
    }
  }
}

float PcmfModel::ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const {
  return Dot(store_->VectorOf(graph::NodeType::kUser, u),
             store_->VectorOf(graph::NodeType::kEvent, x),
             options_.dim);
}

float PcmfModel::ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const {
  return Dot(store_->VectorOf(graph::NodeType::kUser, u),
             store_->VectorOf(graph::NodeType::kUser, v),
             options_.dim);
}

}  // namespace gemrec::baselines
