#ifndef GEMREC_BASELINES_CFAPR_H_
#define GEMREC_BASELINES_CFAPR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ebsn/dataset.h"
#include "ebsn/split.h"
#include "graph/graph_builder.h"
#include "recommend/gem_model.h"
#include "recommend/rec_model.h"

namespace gemrec::baselines {

/// CFAPR-E: the activity-partner recommender of Tu et al. (PAKDD'15),
/// extended for the joint task as §V-C describes. The partner side is
/// collaborative filtering over *historical partner* data: u' is a
/// historical partner of u if the two are friends and co-attended a
/// training event; the partner affinity is the (normalized) count of
/// such co-attendances. The event side p(x|u) reuses the GEM-A
/// embedding scores (as the paper's experiment does).
///
/// Its two structural limitations are kept on purpose (the paper's
/// Figure 4/5 discussion): partners are limited to historical partners
/// (anyone else has zero affinity), and users with no history of
/// attending events with partners get no partner signal at all.
class CfaprEModel : public recommend::RecModel {
 public:
  /// `gem` must outlive this model.
  /// `graphs` supplies the social links (G_UU honours the scenario-2
  /// link removals; the raw dataset does not).
  CfaprEModel(const ebsn::Dataset& dataset,
              const ebsn::ChronologicalSplit& split,
              const graph::EbsnGraphs& graphs,
              const recommend::GemModel* gem);

  std::string Name() const override { return "CFAPR-E"; }
  float ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const override;
  float ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const override;

  /// Number of users with at least one historical partner.
  size_t users_with_history() const { return users_with_history_; }

 private:
  const recommend::GemModel* gem_;
  /// partner -> co-attendance count, per user.
  std::vector<std::unordered_map<ebsn::UserId, float>> history_;
  size_t users_with_history_ = 0;
};

}  // namespace gemrec::baselines

#endif  // GEMREC_BASELINES_CFAPR_H_
