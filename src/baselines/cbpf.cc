#include "baselines/cbpf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/vec_math.h"
#include "ebsn/time_slots.h"

namespace gemrec::baselines {
namespace {

constexpr float kMinRate = 1e-6f;  // Poisson rate floor

}  // namespace

CbpfModel::CbpfModel(const ebsn::Dataset& dataset,
                     const ebsn::ChronologicalSplit& split,
                     const graph::EbsnGraphs& graphs,
                     const CbpfOptions& options)
    : options_(options), rng_(options.seed) {
  const uint32_t dim = options_.dim;
  theta_ = Matrix(dataset.num_users(), dim);
  eta_word_ = Matrix(dataset.vocab_size(), dim);
  eta_region_ = Matrix(graphs.num_regions, dim);
  eta_time_ = Matrix(ebsn::kNumTimeSlots, dim);
  // Gamma-prior-like nonnegative initialization.
  theta_.FillAbsGaussian(&rng_, 0.1, 0.05);
  eta_word_.FillAbsGaussian(&rng_, 0.1, 0.05);
  eta_region_.FillAbsGaussian(&rng_, 0.1, 0.05);
  eta_time_.FillAbsGaussian(&rng_, 0.1, 0.05);

  event_region_ = graphs.event_region;
  event_words_.resize(dataset.num_events());
  event_time_.resize(dataset.num_events());
  for (uint32_t x = 0; x < dataset.num_events(); ++x) {
    auto words = dataset.event(x).words;
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    event_words_[x] = std::move(words);
    event_time_[x] = dataset.event(x).start_time;
  }
  Train(dataset, split);
}

void CbpfModel::EventVector(ebsn::EventId x, float* out) const {
  const uint32_t dim = options_.dim;
  std::fill(out, out + dim, 0.0f);
  size_t parts = 0;
  for (ebsn::WordId w : event_words_[x]) {
    Axpy(1.0f, eta_word_.Row(w), out, dim);
    ++parts;
  }
  Axpy(1.0f, eta_region_.Row(event_region_[x]), out, dim);
  ++parts;
  for (ebsn::TimeSlotId slot : ebsn::TimeSlotsFor(event_time_[x])) {
    Axpy(1.0f, eta_time_.Row(slot), out, dim);
    ++parts;
  }
  const float inv = 1.0f / static_cast<float>(parts);
  for (uint32_t f = 0; f < dim; ++f) out[f] *= inv;
}

void CbpfModel::Train(const ebsn::Dataset& dataset,
                      const ebsn::ChronologicalSplit& split) {
  const auto observations =
      split.AttendancesIn(dataset, ebsn::Split::kTraining);
  if (observations.empty()) return;
  const auto& training_events = split.training_events();
  const uint32_t dim = options_.dim;
  const float lr = options_.learning_rate;
  std::vector<float> beta(dim);

  // One projected-ascent update for response y at (u, x):
  //   μ = θ_uᵀβ_x,  ∂ll/∂θ = (y/μ − 1)·β,  ∂ll/∂aux = (y/μ − 1)·θ/P
  // where P is the number of auxiliary parts averaged into β_x.
  auto update = [&](ebsn::UserId u, ebsn::EventId x, float y) {
    EventVector(x, beta.data());
    float* theta = theta_.Row(u);
    const float mu = std::max(kMinRate, Dot(theta, beta.data(), dim));
    const float coeff = y / mu - 1.0f;

    const size_t parts = event_words_[x].size() + 1 + 3;
    const float aux_coeff =
        lr * coeff / static_cast<float>(parts);
    for (ebsn::WordId w : event_words_[x]) {
      float* eta = eta_word_.Row(w);
      Axpy(aux_coeff, theta, eta, dim);
      ReluInPlace(eta, dim);
    }
    {
      float* eta = eta_region_.Row(event_region_[x]);
      Axpy(aux_coeff, theta, eta, dim);
      ReluInPlace(eta, dim);
    }
    for (ebsn::TimeSlotId slot : ebsn::TimeSlotsFor(event_time_[x])) {
      float* eta = eta_time_.Row(slot);
      Axpy(aux_coeff, theta, eta, dim);
      ReluInPlace(eta, dim);
    }
    Axpy(lr * coeff, beta.data(), theta, dim);
    ReluInPlace(theta, dim);
  };

  for (uint32_t epoch = 0; epoch < options_.num_epochs; ++epoch) {
    for (const auto& att : observations) {
      update(att.user, att.event, 1.0f);
      for (uint32_t z = 0; z < options_.zeros_per_positive; ++z) {
        const ebsn::EventId x =
            training_events[rng_.UniformInt(training_events.size())];
        if (dataset.Attends(att.user, x)) continue;
        update(att.user, x, 0.0f);
      }
    }
  }
}

float CbpfModel::ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const {
  std::vector<float> beta(options_.dim);
  EventVector(x, beta.data());
  return Dot(theta_.Row(u), beta.data(), options_.dim);
}

float CbpfModel::ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const {
  return Dot(theta_.Row(u), theta_.Row(v), options_.dim);
}

}  // namespace gemrec::baselines
