#ifndef GEMREC_BASELINES_PER_H_
#define GEMREC_BASELINES_PER_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "ebsn/dataset.h"
#include "ebsn/split.h"
#include "graph/graph_builder.h"
#include "recommend/rec_model.h"

namespace gemrec::baselines {

/// Hyper-parameters of the PER baseline.
struct PerOptions {
  uint64_t num_bpr_steps = 200'000;
  float learning_rate = 0.05f;
  float l2_reg = 0.001f;
  uint64_t seed = 17;
};

/// PER (Yu et al., WSDM'14): personalized entity recommendation over a
/// heterogeneous information network via meta-path latent features.
///
/// We extract one similarity feature per meta path from the user's
/// training history to a candidate event:
///   F0  U→X→L→X : fraction of the user's events in the event's region
///   F1  U→X→T→X : time-slot profile overlap
///   F2  U→X→C→X : cosine similarity of TF-IDF content centroids
///   F3  U→U→X   : fraction of the user's friends attending the event
///   F4  U→X→U→X : co-attendance path count (PathSim-normalized)
/// and combine them linearly with weights learned by BPR on the
/// training attendances. F3/F4 vanish on cold-start test events (their
/// attendance is withheld) — the structural reason PER trails the
/// embedding models in Figure 3.
class PerModel : public recommend::RecModel {
 public:
  static constexpr size_t kNumFeatures = 5;

  PerModel(const ebsn::Dataset& dataset,
           const ebsn::ChronologicalSplit& split,
           const graph::EbsnGraphs& graphs, const PerOptions& options);

  std::string Name() const override { return "PER"; }
  float ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const override;
  float ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const override;

  /// The raw meta-path feature vector for (u, x); exposed for tests.
  std::array<float, kNumFeatures> Features(ebsn::UserId u,
                                           ebsn::EventId x) const;

  const std::array<float, kNumFeatures>& weights() const {
    return weights_;
  }

 private:
  void BuildProfiles(const ebsn::Dataset& dataset,
                     const ebsn::ChronologicalSplit& split,
                     const graph::EbsnGraphs& graphs);
  void TrainWeights(const ebsn::Dataset& dataset,
                    const ebsn::ChronologicalSplit& split);

  /// |X_u ∩ X_v| restricted to training events, so no test-split
  /// co-attendance leaks into similarity scores.
  float TrainingCommonEvents(ebsn::UserId u, ebsn::UserId v) const;

  PerOptions options_;
  const ebsn::Dataset* dataset_;
  std::vector<bool> is_training_event_;
  /// Friend adjacency taken from G_UU (NOT the raw dataset), so the
  /// scenario-2 link removals are honoured.
  std::vector<std::vector<ebsn::UserId>> friends_;

  // Per-user profiles over the training split.
  std::vector<std::unordered_map<ebsn::RegionId, float>> region_profile_;
  std::vector<std::array<float, 33>> slot_profile_;
  std::vector<std::unordered_map<ebsn::WordId, float>> content_profile_;
  std::vector<float> content_profile_norm_;
  std::vector<uint32_t> training_degree_;

  // Per-event derived data.
  std::vector<ebsn::RegionId> event_region_;
  std::vector<std::vector<std::pair<ebsn::WordId, float>>> event_tfidf_;
  std::vector<float> event_tfidf_norm_;
  /// Training attendees per event (empty for test events).
  std::vector<std::vector<ebsn::UserId>> event_train_users_;

  std::array<float, kNumFeatures> weights_{};
};

}  // namespace gemrec::baselines

#endif  // GEMREC_BASELINES_PER_H_
