#ifndef GEMREC_BASELINES_HETERS_H_
#define GEMREC_BASELINES_HETERS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ebsn/dataset.h"
#include "ebsn/split.h"
#include "graph/graph_builder.h"
#include "recommend/rec_model.h"

namespace gemrec::baselines {

/// Hyper-parameters of the HeteRS baseline.
struct HetersOptions {
  /// Restart probability of the random walk.
  double restart = 0.15;
  /// Power-iteration steps per query.
  uint32_t iterations = 20;
};

/// HeteRS (Pham et al., ICDE'15): a general graph-based recommender
/// for EBSNs that ranks items by the stationary visiting probability
/// of a random walk with restart (their multivariate Markov chain)
/// over the heterogeneous graph. §VI-A of our paper discusses it and
/// *excludes* it from the comparison because the walk runs at query
/// time and "results in an unbearably long response time" — unlike the
/// latent-factor models whose training is offline.
///
/// We implement it over the same five training graphs: one unified
/// node space (users ⊕ events ⊕ regions ⊕ slots ⊕ words), row-
/// normalized transition matrix with equal mass per relation type, and
/// per-query power iteration from the target user. Scoring a single
/// (u, x) pair costs a full walk from u (cached per user within one
/// protocol pass), which reproduces the response-time gap the paper
/// reports — measured by bench/ext_heters_latency.
class HetersModel : public recommend::RecModel {
 public:
  HetersModel(const ebsn::Dataset& dataset,
              const graph::EbsnGraphs& graphs,
              const HetersOptions& options);

  std::string Name() const override { return "HeteRS"; }
  float ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const override;
  float ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const override;

  /// Runs the random walk with restart from `user` and returns the
  /// stationary distribution over the unified node space. Exposed for
  /// tests and for the latency bench.
  std::vector<float> WalkFrom(ebsn::UserId user) const;

  size_t num_nodes() const { return offsets_.back(); }

 private:
  /// Unified node index blocks: [users | events | regions | slots |
  /// words]; offsets_[t] is the first index of block t, offsets_[5]
  /// the total count.
  uint32_t NodeIndex(graph::NodeType type, uint32_t id) const;
  void AddRelation(const graph::BipartiteGraph& g, bool mirror);

  HetersOptions options_;
  std::array<uint32_t, 6> offsets_{};
  /// CSR-ish adjacency with per-edge transition probabilities.
  std::vector<std::vector<std::pair<uint32_t, float>>> transitions_;

  /// One-entry walk cache: protocol passes score one user against many
  /// candidates; recomputing the walk per pair would square the cost.
  mutable ebsn::UserId cached_user_ = ebsn::kInvalidId;
  mutable std::vector<float> cached_walk_;
};

}  // namespace gemrec::baselines

#endif  // GEMREC_BASELINES_HETERS_H_
