#include "baselines/per.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/vec_math.h"
#include "ebsn/tfidf.h"
#include "ebsn/time_slots.h"

namespace gemrec::baselines {

PerModel::PerModel(const ebsn::Dataset& dataset,
                   const ebsn::ChronologicalSplit& split,
                   const graph::EbsnGraphs& graphs,
                   const PerOptions& options)
    : options_(options), dataset_(&dataset) {
  BuildProfiles(dataset, split, graphs);
  TrainWeights(dataset, split);
}

void PerModel::BuildProfiles(const ebsn::Dataset& dataset,
                             const ebsn::ChronologicalSplit& split,
                             const graph::EbsnGraphs& graphs) {
  const uint32_t num_users = dataset.num_users();
  const uint32_t num_events = dataset.num_events();

  is_training_event_.assign(num_events, false);
  for (uint32_t x = 0; x < num_events; ++x) {
    is_training_event_[x] = split.IsTraining(x);
  }

  // Social links come from the (possibly scenario-2 filtered) G_UU.
  friends_.assign(num_users, {});
  for (const auto& e : graphs.user_user->edges()) {
    friends_[e.a].push_back(e.b);
  }
  for (auto& v : friends_) std::sort(v.begin(), v.end());

  event_region_ = graphs.event_region;
  event_train_users_.resize(num_events);
  for (const auto& att : dataset.attendances()) {
    if (split.IsTraining(att.event)) {
      event_train_users_[att.event].push_back(att.user);
    }
  }
  for (auto& v : event_train_users_) std::sort(v.begin(), v.end());

  // TF-IDF vectors per event.
  std::vector<std::vector<ebsn::WordId>> documents(num_events);
  for (uint32_t x = 0; x < num_events; ++x) {
    documents[x] = dataset.event(x).words;
  }
  const auto tfidf = ebsn::ComputeTfIdf(documents, dataset.vocab_size());
  event_tfidf_.resize(num_events);
  event_tfidf_norm_.assign(num_events, 0.0f);
  for (uint32_t x = 0; x < num_events; ++x) {
    double norm_sq = 0.0;
    for (const auto& ww : tfidf[x]) {
      event_tfidf_[x].emplace_back(ww.word,
                                   static_cast<float>(ww.weight));
      norm_sq += ww.weight * ww.weight;
    }
    event_tfidf_norm_[x] = static_cast<float>(std::sqrt(norm_sq));
  }

  // Per-user training profiles.
  region_profile_.resize(num_users);
  slot_profile_.assign(num_users, {});
  content_profile_.resize(num_users);
  content_profile_norm_.assign(num_users, 0.0f);
  training_degree_.assign(num_users, 0);
  for (uint32_t u = 0; u < num_users; ++u) {
    for (ebsn::EventId x : dataset.EventsOf(u)) {
      if (!split.IsTraining(x)) continue;
      ++training_degree_[u];
      region_profile_[u][event_region_[x]] += 1.0f;
      for (ebsn::TimeSlotId slot :
           ebsn::TimeSlotsFor(dataset.event(x).start_time)) {
        slot_profile_[u][slot] += 1.0f;
      }
      for (const auto& [word, weight] : event_tfidf_[x]) {
        content_profile_[u][word] += weight;
      }
    }
    const float degree =
        std::max(1.0f, static_cast<float>(training_degree_[u]));
    for (auto& [region, count] : region_profile_[u]) count /= degree;
    for (auto& count : slot_profile_[u]) count /= degree * 3.0f;
    double norm_sq = 0.0;
    for (auto& [word, weight] : content_profile_[u]) {
      weight /= degree;
      norm_sq += static_cast<double>(weight) * weight;
    }
    content_profile_norm_[u] = static_cast<float>(std::sqrt(norm_sq));
  }
}

std::array<float, PerModel::kNumFeatures> PerModel::Features(
    ebsn::UserId u, ebsn::EventId x) const {
  std::array<float, kNumFeatures> f{};

  // F0: region match.
  const auto region_it = region_profile_[u].find(event_region_[x]);
  f[0] = region_it == region_profile_[u].end() ? 0.0f
                                               : region_it->second;

  // F1: time-slot overlap.
  float slot_overlap = 0.0f;
  for (ebsn::TimeSlotId slot :
       ebsn::TimeSlotsFor(dataset_->event(x).start_time)) {
    slot_overlap += slot_profile_[u][slot];
  }
  f[1] = slot_overlap;

  // F2: content cosine.
  const auto& profile = content_profile_[u];
  float dot = 0.0f;
  for (const auto& [word, weight] : event_tfidf_[x]) {
    const auto it = profile.find(word);
    if (it != profile.end()) dot += weight * it->second;
  }
  const float denom = content_profile_norm_[u] * event_tfidf_norm_[x];
  f[2] = denom > 1e-12f ? dot / denom : 0.0f;

  // F3: friends attending (training attendance only).
  const auto& friends = friends_[u];
  const auto& attendees = event_train_users_[x];
  size_t friend_hits = 0;
  for (ebsn::UserId v : friends) {
    if (std::binary_search(attendees.begin(), attendees.end(), v)) {
      ++friend_hits;
    }
  }
  f[3] = friends.empty() ? 0.0f
                         : static_cast<float>(friend_hits) /
                               static_cast<float>(friends.size());

  // F4: co-attendance path count, PathSim-style normalized.
  float path_count = 0.0f;
  for (ebsn::UserId v : attendees) {
    if (v == u) continue;
    path_count += TrainingCommonEvents(u, v);
  }
  const float norm =
      static_cast<float>(training_degree_[u] + attendees.size()) + 1.0f;
  f[4] = 2.0f * path_count / norm;
  return f;
}

void PerModel::TrainWeights(const ebsn::Dataset& dataset,
                            const ebsn::ChronologicalSplit& split) {
  Rng rng(options_.seed);
  const auto observations =
      split.AttendancesIn(dataset, ebsn::Split::kTraining);
  const auto& training_events = split.training_events();
  if (observations.empty() || training_events.empty()) return;
  weights_.fill(0.1f);

  for (uint64_t step = 0; step < options_.num_bpr_steps; ++step) {
    const auto& att = observations[rng.UniformInt(observations.size())];
    ebsn::EventId negative =
        training_events[rng.UniformInt(training_events.size())];
    for (int attempt = 0;
         attempt < 8 && dataset.Attends(att.user, negative); ++attempt) {
      negative = training_events[rng.UniformInt(training_events.size())];
    }
    const auto pos = Features(att.user, att.event);
    const auto neg = Features(att.user, negative);
    float margin = 0.0f;
    for (size_t i = 0; i < kNumFeatures; ++i) {
      margin += weights_[i] * (pos[i] - neg[i]);
    }
    const float coeff = 1.0f - Sigmoid(margin);
    for (size_t i = 0; i < kNumFeatures; ++i) {
      weights_[i] += options_.learning_rate *
                     (coeff * (pos[i] - neg[i]) -
                      options_.l2_reg * weights_[i]);
    }
  }
}

float PerModel::ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const {
  const auto f = Features(u, x);
  float score = 0.0f;
  for (size_t i = 0; i < kNumFeatures; ++i) score += weights_[i] * f[i];
  return score;
}

float PerModel::TrainingCommonEvents(ebsn::UserId u,
                                     ebsn::UserId v) const {
  const auto& xu = dataset_->EventsOf(u);
  const auto& xv = dataset_->EventsOf(v);
  float common = 0.0f;
  auto iu = xu.begin();
  auto iv = xv.begin();
  while (iu != xu.end() && iv != xv.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      if (is_training_event_[*iu]) common += 1.0f;
      ++iu;
      ++iv;
    }
  }
  return common;
}

float PerModel::ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const {
  // Meta path U→X→U: PathSim over co-attendance, plus the direct
  // social link.
  const float common = TrainingCommonEvents(u, v);
  const float denom = static_cast<float>(training_degree_[u] +
                                         training_degree_[v]) +
                      1.0f;
  const float pathsim = 2.0f * common / denom;
  const bool linked =
      std::binary_search(friends_[u].begin(), friends_[u].end(), v);
  return pathsim + (linked ? 1.0f : 0.0f);
}

}  // namespace gemrec::baselines
