#ifndef GEMREC_BASELINES_CBPF_H_
#define GEMREC_BASELINES_CBPF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "ebsn/dataset.h"
#include "ebsn/split.h"
#include "graph/graph_builder.h"
#include "recommend/rec_model.h"

namespace gemrec::baselines {

/// Hyper-parameters of the CBPF baseline.
struct CbpfOptions {
  uint32_t dim = 60;
  uint32_t num_epochs = 25;
  /// Sampled zero-response events per observed attendance.
  uint32_t zeros_per_positive = 4;
  float learning_rate = 0.02f;
  uint64_t seed = 13;
};

/// CBPF (Zhang & Wang, KDD'15): collective Bayesian Poisson
/// factorization for cold-start event recommendation. Users have
/// nonnegative factors θ_u; words, regions and time slots have
/// nonnegative auxiliary factors; an event's representation β_x is the
/// *average* of its auxiliary factors (the design the paper critiques:
/// the average ties the event to its auxiliary information and cannot
/// absorb unexplained variation). The response y_ux ~ Poisson(θ_uᵀβ_x).
///
/// We fit by projected stochastic gradient ascent on the Poisson
/// log-likelihood with sampled zero responses — a simplification of
/// the original variational gamma updates that keeps the two modeling
/// properties the comparison hinges on (average-composition events and
/// the Poisson response).
class CbpfModel : public recommend::RecModel {
 public:
  /// Trains on construction; uses `graphs` only for the event-region
  /// assignment and training attendance edges.
  CbpfModel(const ebsn::Dataset& dataset,
            const ebsn::ChronologicalSplit& split,
            const graph::EbsnGraphs& graphs, const CbpfOptions& options);

  std::string Name() const override { return "CBPF"; }
  float ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const override;
  float ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const override;

 private:
  /// Writes β_x (the average of the event's auxiliary factors).
  void EventVector(ebsn::EventId x, float* out) const;
  void Train(const ebsn::Dataset& dataset,
             const ebsn::ChronologicalSplit& split);

  CbpfOptions options_;
  Rng rng_;
  Matrix theta_;       // users
  Matrix eta_word_;    // word factors
  Matrix eta_region_;  // region factors
  Matrix eta_time_;    // time-slot factors
  /// Per event: its region and its (deduplicated) word list; slots are
  /// recomputed from the start time.
  std::vector<ebsn::RegionId> event_region_;
  std::vector<std::vector<ebsn::WordId>> event_words_;
  std::vector<int64_t> event_time_;
};

}  // namespace gemrec::baselines

#endif  // GEMREC_BASELINES_CBPF_H_
