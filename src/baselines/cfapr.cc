#include "baselines/cfapr.h"

#include "common/logging.h"

namespace gemrec::baselines {

CfaprEModel::CfaprEModel(const ebsn::Dataset& dataset,
                         const ebsn::ChronologicalSplit& split,
                         const graph::EbsnGraphs& graphs,
                         const recommend::GemModel* gem)
    : gem_(gem) {
  GEMREC_CHECK(gem != nullptr);
  history_.resize(dataset.num_users());
  for (ebsn::EventId x : split.training_events()) {
    const auto& attendees = dataset.UsersOf(x);
    for (size_t i = 0; i < attendees.size(); ++i) {
      for (size_t j = i + 1; j < attendees.size(); ++j) {
        const ebsn::UserId u = attendees[i];
        const ebsn::UserId v = attendees[j];
        if (!graphs.user_user->HasEdge(u, v)) continue;
        history_[u][v] += 1.0f;
        history_[v][u] += 1.0f;
      }
    }
  }
  for (const auto& h : history_) {
    if (!h.empty()) ++users_with_history_;
  }
}

float CfaprEModel::ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const {
  return gem_->ScoreUserEvent(u, x);
}

float CfaprEModel::ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const {
  const auto& h = history_[u];
  const auto it = h.find(v);
  if (it == h.end()) return 0.0f;  // not a historical partner
  // Saturating normalization keeps the affinity on the same order as
  // the GEM inner products it is combined with.
  return it->second / (1.0f + it->second);
}

}  // namespace gemrec::baselines
