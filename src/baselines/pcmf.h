#ifndef GEMREC_BASELINES_PCMF_H_
#define GEMREC_BASELINES_PCMF_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "embedding/embedding_store.h"
#include "graph/graph_builder.h"
#include "recommend/rec_model.h"

namespace gemrec::baselines {

/// Hyper-parameters of the PCMF baseline.
struct PcmfOptions {
  uint32_t dim = 60;
  uint64_t num_samples = 2'000'000;
  float learning_rate = 0.05f;
  float l2_reg = 0.01f;
  uint64_t seed = 11;
};

/// PCMF (Qiao et al., AAAI'14): probabilistic collective matrix
/// factorization — BPR-style pairwise ranking extended to multiple
/// relations, with one shared K-vector per entity.
///
/// Reproduced with its two distinguishing limitations intact (§V-C):
/// relations are treated as *binary* (edge weights such as TF-IDF and
/// co-attendance counts are discarded), and negative items are drawn
/// from the *uniform* distribution. Each training step draws a
/// relation, a positive edge (uniformly — binary relations have no
/// weights), a uniform negative right-hand node, and applies the BPR
/// update maximizing σ(v_aᵀv_b − v_aᵀv_b').
class PcmfModel : public recommend::RecModel {
 public:
  /// Trains on construction. `graphs` is only read during training.
  PcmfModel(const graph::EbsnGraphs& graphs, const PcmfOptions& options);

  std::string Name() const override { return "PCMF"; }
  float ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const override;
  float ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const override;

  const embedding::EmbeddingStore& store() const { return *store_; }

 private:
  void Train(const graph::EbsnGraphs& graphs);

  PcmfOptions options_;
  std::unique_ptr<embedding::EmbeddingStore> store_;
  Rng rng_;
};

}  // namespace gemrec::baselines

#endif  // GEMREC_BASELINES_PCMF_H_
