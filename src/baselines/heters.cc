#include "baselines/heters.h"

#include <array>

#include "common/logging.h"

namespace gemrec::baselines {

HetersModel::HetersModel(const ebsn::Dataset& dataset,
                         const graph::EbsnGraphs& graphs,
                         const HetersOptions& options)
    : options_(options) {
  GEMREC_CHECK(options.restart > 0.0 && options.restart < 1.0);
  const std::array<uint32_t, 5> counts = {
      graphs.num_users, graphs.num_events, graphs.num_regions,
      graphs.num_time_slots, graphs.num_words};
  offsets_[0] = 0;
  for (size_t t = 0; t < 5; ++t) offsets_[t + 1] = offsets_[t] + counts[t];
  transitions_.resize(offsets_[5]);

  AddRelation(*graphs.user_event, /*mirror=*/true);
  AddRelation(*graphs.event_location, /*mirror=*/true);
  AddRelation(*graphs.event_time, /*mirror=*/true);
  AddRelation(*graphs.event_word, /*mirror=*/true);
  // G_UU already stores both (a,b) and (b,a).
  AddRelation(*graphs.user_user, /*mirror=*/false);

  // Row-normalize so every node's outgoing mass is 1 (dangling nodes
  // keep an empty row; their mass restarts).
  for (auto& row : transitions_) {
    double total = 0.0;
    for (const auto& [target, weight] : row) total += weight;
    if (total <= 0.0) continue;
    for (auto& [target, weight] : row) {
      weight = static_cast<float>(weight / total);
    }
  }
  (void)dataset;
}

uint32_t HetersModel::NodeIndex(graph::NodeType type, uint32_t id) const {
  return offsets_[static_cast<size_t>(type)] + id;
}

void HetersModel::AddRelation(const graph::BipartiteGraph& g,
                              bool mirror) {
  for (const auto& e : g.edges()) {
    const uint32_t a = NodeIndex(g.type_a(), e.a);
    const uint32_t b = NodeIndex(g.type_b(), e.b);
    transitions_[a].push_back({b, static_cast<float>(e.weight)});
    if (mirror) {
      transitions_[b].push_back({a, static_cast<float>(e.weight)});
    }
  }
}

std::vector<float> HetersModel::WalkFrom(ebsn::UserId user) const {
  const uint32_t source = NodeIndex(graph::NodeType::kUser, user);
  const size_t n = transitions_.size();
  std::vector<float> current(n, 0.0f);
  std::vector<float> next(n, 0.0f);
  current[source] = 1.0f;
  const float restart = static_cast<float>(options_.restart);
  for (uint32_t it = 0; it < options_.iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0f);
    float moved = 0.0f;
    for (size_t v = 0; v < n; ++v) {
      const float mass = current[v];
      if (mass <= 0.0f) continue;
      const float spread = mass * (1.0f - restart);
      for (const auto& [target, probability] : transitions_[v]) {
        next[target] += spread * probability;
      }
      if (!transitions_[v].empty()) moved += spread;
    }
    // Restart mass plus the mass of dangling nodes returns to the
    // source, keeping the distribution normalized.
    float total = 0.0f;
    for (float p : next) total += p;
    next[source] += 1.0f - total;
    current.swap(next);
  }
  return current;
}

float HetersModel::ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const {
  if (cached_user_ != u) {
    cached_walk_ = WalkFrom(u);
    cached_user_ = u;
  }
  return cached_walk_[NodeIndex(graph::NodeType::kEvent, x)];
}

float HetersModel::ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const {
  if (cached_user_ != u) {
    cached_walk_ = WalkFrom(u);
    cached_user_ = u;
  }
  return cached_walk_[NodeIndex(graph::NodeType::kUser, v)];
}

}  // namespace gemrec::baselines
