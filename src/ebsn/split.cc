#include "ebsn/split.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace gemrec::ebsn {

ChronologicalSplit::ChronologicalSplit(const Dataset& dataset,
                                       double train_fraction,
                                       double validation_fraction) {
  GEMREC_CHECK(train_fraction > 0.0 && validation_fraction >= 0.0 &&
               train_fraction + validation_fraction <= 1.0)
      << "bad split fractions";
  const size_t n = dataset.num_events();
  std::vector<EventId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](EventId a, EventId b) {
                     return dataset.event(a).start_time <
                            dataset.event(b).start_time;
                   });

  const size_t train_end = static_cast<size_t>(
      std::llround(static_cast<double>(n) * train_fraction));
  const size_t validation_end = static_cast<size_t>(std::llround(
      static_cast<double>(n) * (train_fraction + validation_fraction)));

  split_.assign(n, Split::kTraining);
  for (size_t i = 0; i < n; ++i) {
    const EventId x = order[i];
    if (i < train_end) {
      split_[x] = Split::kTraining;
      training_events_.push_back(x);
    } else if (i < validation_end) {
      split_[x] = Split::kValidation;
      validation_events_.push_back(x);
    } else {
      split_[x] = Split::kTest;
      test_events_.push_back(x);
    }
  }
}

std::vector<Attendance> ChronologicalSplit::AttendancesIn(
    const Dataset& dataset, Split split) const {
  std::vector<Attendance> out;
  for (const auto& att : dataset.attendances()) {
    if (split_[att.event] == split) out.push_back(att);
  }
  return out;
}

}  // namespace gemrec::ebsn
