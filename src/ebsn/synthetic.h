#ifndef GEMREC_EBSN_SYNTHETIC_H_
#define GEMREC_EBSN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ebsn/dataset.h"
#include "ebsn/types.h"

namespace gemrec::ebsn {

/// Configuration of the planted-structure EBSN generator that stands in
/// for the paper's Douban Event crawl (see DESIGN.md §2). The generator
/// plants exactly the dependencies the paper's models exploit:
///
///  * every event has a latent topic that drives its text content, its
///    venue (via a topic-region affinity) and its start time (via a
///    topic temporal profile), so cold-start events are predictable
///    from content + location + time;
///  * every user has sparse topic interests, a home region, a personal
///    temporal profile and a power-law activity level, so attendance is
///    predictable from the same signals;
///  * friendships are community-structured (users sharing a dominant
///    topic and home area), and friends of attendees join events
///    through a social cascade, so friend pairs co-attend events —
///    the ground truth of the joint event-partner task.
struct SyntheticConfig {
  std::string name = "synthetic";

  uint32_t num_users = 2000;
  uint32_t num_events = 1000;
  uint32_t num_venues = 200;

  uint32_t num_topics = 12;
  uint32_t vocab_size = 1500;
  /// Fraction of the vocabulary shared across all topics (stop words).
  double shared_vocab_fraction = 0.2;
  /// Probability a word of a document is drawn from the topic band
  /// rather than the shared band.
  double topic_word_prob = 0.7;
  uint32_t words_per_event_mean = 30;

  uint32_t num_geo_clusters = 18;
  GeoPoint city_center{39.9042, 116.4074};  // Beijing
  double city_radius_km = 18.0;
  double cluster_radius_km = 1.0;

  /// Target mean attended events per user (drives total attendance).
  double mean_events_per_user = 16.0;
  /// Target mean friends per user.
  double mean_friends_per_user = 12.0;
  /// Fraction of friendships created inside a community.
  double intra_community_friend_fraction = 0.8;
  /// Probability that a friend of an attendee joins the same event
  /// (scaled by the friend's interest in the event topic).
  double social_coattend_prob = 0.5;
  /// Geographic decay length for acceptance (km).
  double geo_tau_km = 5.0;

  int64_t start_time = 1130000000;       // ~Oct 2005
  int64_t duration_days = 2600;          // ~Sep 2005 .. Dec 2012

  /// Users attending fewer than this many events are dropped from the
  /// paper's statistics (filter mentioned in §V-A); we keep all users
  /// but record the count for reporting.
  uint32_t min_events_per_user = 5;

  /// --- Signed / group scenarios (both disabled by default). --------
  /// These run AFTER the core generation pass on an independently
  /// seeded RNG, so enabling them leaves every pre-existing record —
  /// and thus every fixed-seed golden fixture — byte-identical.
  ///
  /// Expected dislikes per user. A dislike is drawn from events of the
  /// user's WEAKEST topics (anti-interest), so sign-aware training has
  /// a real planted signal to exploit.
  double mean_dislikes_per_user = 0.0;
  /// Probability an event with >= 3 attendees records a group signup:
  /// a host plus co-attending friends (falls back to co-attendees when
  /// the host has no friends at the event).
  double group_attendance_prob = 0.0;
  /// Group size cap (host excluded).
  uint32_t max_group_members = 4;

  uint64_t seed = 42;

  /// Scaled-down analogue of the paper's Beijing dataset. `scale`
  /// multiplies user/event/venue counts (1.0 = default bench scale,
  /// which keeps full-suite runtime reasonable on one core).
  static SyntheticConfig Beijing(double scale = 1.0);

  /// Scaled-down analogue of the paper's Shanghai dataset.
  static SyntheticConfig Shanghai(double scale = 1.0);
};

/// Hidden per-user generator state, exposed for tests and diagnostics.
/// Models never see this.
struct UserProfile {
  std::vector<double> topic_interest;  // normalized, size num_topics
  uint32_t home_cluster = 0;
  double activity = 1.0;
  uint32_t preferred_hour = 19;
  double weekend_preference = 0.5;  // P(prefers weekend events)
  uint32_t community = 0;
};

/// Generator output: the dataset plus the planted latent structure.
struct SyntheticData {
  Dataset dataset;
  std::vector<UserProfile> user_profiles;
  /// Per-topic preferred hour-of-day and weekend preference.
  std::vector<uint32_t> topic_hour;
  std::vector<bool> topic_weekend;
};

/// Generates a dataset. Deterministic in the config (including seed).
SyntheticData GenerateSynthetic(const SyntheticConfig& config);

}  // namespace gemrec::ebsn

#endif  // GEMREC_EBSN_SYNTHETIC_H_
