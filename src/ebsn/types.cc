#include "ebsn/types.h"

#include <cmath>

namespace gemrec::ebsn {

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
                   std::cos(lat1) * std::cos(lat2) *
                       std::sin(dlon / 2.0) * std::sin(dlon / 2.0);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(s));
}

}  // namespace gemrec::ebsn
