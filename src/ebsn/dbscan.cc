#include "ebsn/dbscan.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <unordered_map>

#include "common/logging.h"

namespace gemrec::ebsn {
namespace {

constexpr RegionId kUnvisited = 0xfffffffeu;
constexpr RegionId kNoise = 0xffffffffu;

/// Uniform grid over lat/lon with cell size chosen so that all
/// eps-neighbors of a point lie in the 3x3 cell block around it.
class GeoGrid {
 public:
  GeoGrid(const std::vector<GeoPoint>& points, double eps_km)
      : points_(points) {
    // 1 degree latitude ~ 111.19 km; longitude shrinks by cos(lat).
    cell_deg_lat_ = eps_km / 111.19;
    double max_abs_lat = 0.0;
    for (const auto& p : points) {
      max_abs_lat = std::max(max_abs_lat, std::fabs(p.lat));
    }
    const double cos_lat =
        std::max(0.1, std::cos(max_abs_lat * M_PI / 180.0));
    cell_deg_lon_ = eps_km / (111.19 * cos_lat);
    for (size_t i = 0; i < points.size(); ++i) {
      cells_[KeyOf(points[i])].push_back(static_cast<uint32_t>(i));
    }
  }

  /// Appends indices of all points within eps_km of `center` to `out`
  /// (including `center` itself if it is one of the points).
  void Neighbors(const GeoPoint& center, double eps_km,
                 std::vector<uint32_t>* out) const {
    out->clear();
    const int64_t ci = CellLat(center.lat);
    const int64_t cj = CellLon(center.lon);
    for (int64_t di = -1; di <= 1; ++di) {
      for (int64_t dj = -1; dj <= 1; ++dj) {
        auto it = cells_.find(Key(ci + di, cj + dj));
        if (it == cells_.end()) continue;
        for (uint32_t idx : it->second) {
          if (HaversineKm(points_[idx], center) <= eps_km) {
            out->push_back(idx);
          }
        }
      }
    }
  }

 private:
  int64_t CellLat(double lat) const {
    return static_cast<int64_t>(std::floor(lat / cell_deg_lat_));
  }
  int64_t CellLon(double lon) const {
    return static_cast<int64_t>(std::floor(lon / cell_deg_lon_));
  }
  static uint64_t Key(int64_t i, int64_t j) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(i)) << 32) |
           static_cast<uint32_t>(j);
  }
  uint64_t KeyOf(const GeoPoint& p) const {
    return Key(CellLat(p.lat), CellLon(p.lon));
  }

  const std::vector<GeoPoint>& points_;
  double cell_deg_lat_;
  double cell_deg_lon_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> cells_;
};

}  // namespace

DbscanResult RunDbscan(const std::vector<GeoPoint>& points,
                       const DbscanParams& params) {
  GEMREC_CHECK(params.eps_km > 0.0);
  GEMREC_CHECK(params.min_pts > 0);
  DbscanResult result;
  const size_t n = points.size();
  result.label.assign(n, kUnvisited);
  if (n == 0) return result;

  GeoGrid grid(points, params.eps_km);
  std::vector<uint32_t> neighbors;
  std::vector<uint32_t> expansion;
  uint32_t next_cluster = 0;

  for (size_t i = 0; i < n; ++i) {
    if (result.label[i] != kUnvisited) continue;
    grid.Neighbors(points[i], params.eps_km, &neighbors);
    if (neighbors.size() < params.min_pts) {
      result.label[i] = kNoise;
      continue;
    }
    const uint32_t cluster = next_cluster++;
    result.label[i] = cluster;
    std::deque<uint32_t> frontier(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      const uint32_t q = frontier.front();
      frontier.pop_front();
      if (result.label[q] == kNoise) result.label[q] = cluster;
      if (result.label[q] != kUnvisited) continue;
      result.label[q] = cluster;
      grid.Neighbors(points[q], params.eps_km, &expansion);
      if (expansion.size() >= params.min_pts) {
        frontier.insert(frontier.end(), expansion.begin(),
                        expansion.end());
      }
    }
  }

  // Assign residual noise points so every event has a region node:
  // nearest cluster point within 3 eps, else a fresh singleton region.
  for (size_t i = 0; i < n; ++i) {
    if (result.label[i] != kNoise) continue;
    ++result.noise_points;
    grid.Neighbors(points[i], params.eps_km, &neighbors);
    double best_dist = std::numeric_limits<double>::infinity();
    RegionId best_region = kNoise;
    for (uint32_t j : neighbors) {
      if (result.label[j] == kNoise || result.label[j] == kUnvisited ||
          j == i) {
        continue;
      }
      const double d = HaversineKm(points[i], points[j]);
      if (d < best_dist) {
        best_dist = d;
        best_region = result.label[j];
      }
    }
    result.label[i] =
        (best_region != kNoise) ? best_region : next_cluster++;
  }

  result.num_regions = next_cluster;
  return result;
}

}  // namespace gemrec::ebsn
