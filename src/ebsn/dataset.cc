#include "ebsn/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace gemrec::ebsn {

void Dataset::AddVenue(Venue venue) {
  GEMREC_CHECK(venue.id == venues_.size()) << "venue ids must be dense";
  venues_.push_back(std::move(venue));
  finalized_ = false;
}

void Dataset::AddEvent(Event event) {
  GEMREC_CHECK(event.id == events_.size()) << "event ids must be dense";
  GEMREC_CHECK(event.venue < venues_.size())
      << "event references unknown venue " << event.venue;
  events_.push_back(std::move(event));
  finalized_ = false;
}

void Dataset::AddAttendance(UserId user, EventId event) {
  attendances_.push_back(Attendance{user, event});
  finalized_ = false;
}

void Dataset::AddFriendship(UserId a, UserId b) {
  GEMREC_CHECK(a != b) << "self-friendship";
  if (a > b) std::swap(a, b);
  friendships_.push_back(Friendship{a, b});
  finalized_ = false;
}

void Dataset::AddDislike(UserId user, EventId event) {
  dislikes_.push_back(Dislike{user, event});
  finalized_ = false;
}

void Dataset::AddGroup(AttendanceGroup group) {
  groups_.push_back(std::move(group));
  finalized_ = false;
}

Status Dataset::Finalize() {
  for (const auto& att : attendances_) {
    if (att.user >= num_users_ || att.event >= events_.size()) {
      return Status::InvalidArgument("attendance references unknown id");
    }
  }
  for (const auto& f : friendships_) {
    if (f.a >= num_users_ || f.b >= num_users_) {
      return Status::InvalidArgument("friendship references unknown user");
    }
  }
  for (const auto& d : dislikes_) {
    if (d.user >= num_users_ || d.event >= events_.size()) {
      return Status::InvalidArgument("dislike references unknown id");
    }
  }
  for (const auto& g : groups_) {
    if (g.host >= num_users_ || g.event >= events_.size()) {
      return Status::InvalidArgument("group references unknown id");
    }
    if (g.members.empty()) {
      return Status::InvalidArgument("group has no members");
    }
    for (UserId m : g.members) {
      if (m >= num_users_) {
        return Status::InvalidArgument("group member is unknown");
      }
      if (m == g.host) {
        return Status::InvalidArgument("group member repeats the host");
      }
    }
  }

  // Deduplicate attendance records.
  std::sort(attendances_.begin(), attendances_.end(),
            [](const Attendance& x, const Attendance& y) {
              return x.user != y.user ? x.user < y.user
                                      : x.event < y.event;
            });
  attendances_.erase(
      std::unique(attendances_.begin(), attendances_.end(),
                  [](const Attendance& x, const Attendance& y) {
                    return x.user == y.user && x.event == y.event;
                  }),
      attendances_.end());

  // Deduplicate friendships (already normalized a < b by AddFriendship).
  std::sort(friendships_.begin(), friendships_.end(),
            [](const Friendship& x, const Friendship& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  friendships_.erase(
      std::unique(friendships_.begin(), friendships_.end(),
                  [](const Friendship& x, const Friendship& y) {
                    return x.a == y.a && x.b == y.b;
                  }),
      friendships_.end());

  // Deduplicate dislikes.
  std::sort(dislikes_.begin(), dislikes_.end(),
            [](const Dislike& x, const Dislike& y) {
              return x.user != y.user ? x.user < y.user
                                      : x.event < y.event;
            });
  dislikes_.erase(
      std::unique(dislikes_.begin(), dislikes_.end(),
                  [](const Dislike& x, const Dislike& y) {
                    return x.user == y.user && x.event == y.event;
                  }),
      dislikes_.end());

  user_events_.assign(num_users_, {});
  event_users_.assign(events_.size(), {});
  user_friends_.assign(num_users_, {});
  user_dislikes_.assign(num_users_, {});
  for (const auto& att : attendances_) {
    user_events_[att.user].push_back(att.event);
    event_users_[att.event].push_back(att.user);
  }
  for (const auto& f : friendships_) {
    user_friends_[f.a].push_back(f.b);
    user_friends_[f.b].push_back(f.a);
  }
  for (const auto& d : dislikes_) {
    user_dislikes_[d.user].push_back(d.event);
  }
  for (auto& v : user_events_) std::sort(v.begin(), v.end());
  for (auto& v : event_users_) std::sort(v.begin(), v.end());
  for (auto& v : user_friends_) std::sort(v.begin(), v.end());
  for (auto& v : user_dislikes_) std::sort(v.begin(), v.end());

  finalized_ = true;
  return Status::Ok();
}

const Event& Dataset::event(EventId x) const {
  GEMREC_CHECK(x < events_.size());
  return events_[x];
}

const Venue& Dataset::venue(VenueId v) const {
  GEMREC_CHECK(v < venues_.size());
  return venues_[v];
}

const std::vector<EventId>& Dataset::EventsOf(UserId u) const {
  GEMREC_DCHECK(finalized_);
  GEMREC_CHECK(u < num_users_);
  return user_events_[u];
}

const std::vector<UserId>& Dataset::UsersOf(EventId x) const {
  GEMREC_DCHECK(finalized_);
  GEMREC_CHECK(x < events_.size());
  return event_users_[x];
}

const std::vector<UserId>& Dataset::FriendsOf(UserId u) const {
  GEMREC_DCHECK(finalized_);
  GEMREC_CHECK(u < num_users_);
  return user_friends_[u];
}

const std::vector<EventId>& Dataset::DislikesOf(UserId u) const {
  GEMREC_DCHECK(finalized_);
  GEMREC_CHECK(u < num_users_);
  return user_dislikes_[u];
}

bool Dataset::AreFriends(UserId a, UserId b) const {
  const auto& friends = FriendsOf(a);
  return std::binary_search(friends.begin(), friends.end(), b);
}

bool Dataset::Attends(UserId u, EventId x) const {
  const auto& events = EventsOf(u);
  return std::binary_search(events.begin(), events.end(), x);
}

bool Dataset::Dislikes(UserId u, EventId x) const {
  const auto& events = DislikesOf(u);
  return std::binary_search(events.begin(), events.end(), x);
}

size_t Dataset::CommonEventCount(UserId a, UserId b) const {
  const auto& xa = EventsOf(a);
  const auto& xb = EventsOf(b);
  size_t count = 0;
  auto ia = xa.begin();
  auto ib = xb.begin();
  while (ia != xa.end() && ib != xb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

const GeoPoint& Dataset::EventLocation(EventId x) const {
  return venue(event(x).venue).location;
}

DatasetStats Dataset::Stats() const {
  DatasetStats stats;
  stats.num_users = num_users_;
  stats.num_events = events_.size();
  stats.num_venues = venues_.size();
  stats.num_attendances = attendances_.size();
  stats.num_friendships = friendships_.size();
  stats.num_dislikes = dislikes_.size();
  stats.num_groups = groups_.size();
  stats.vocab_size = vocab_size_;
  return stats;
}

}  // namespace gemrec::ebsn
