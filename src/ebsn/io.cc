#include "ebsn/io.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace gemrec::ebsn {
namespace {

Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path, std::ios::trunc);
  if (!out->is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return Status::Ok();
}

Status OpenForRead(const std::string& path, std::ifstream* in) {
  in->open(path);
  if (!in->is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return Status::Ok();
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("mkdir " + dir + ": " + ec.message());

  {
    std::ofstream f;
    GEMREC_RETURN_IF_ERROR(OpenForWrite(dir + "/meta.tsv", &f));
    f << dataset.num_users() << "\t" << dataset.vocab_size() << "\n";
  }
  {
    std::ofstream f;
    GEMREC_RETURN_IF_ERROR(OpenForWrite(dir + "/venues.tsv", &f));
    f.precision(10);
    for (const auto& v : dataset.venues()) {
      f << v.id << "\t" << v.location.lat << "\t" << v.location.lon
        << "\n";
    }
  }
  {
    std::ofstream f;
    GEMREC_RETURN_IF_ERROR(OpenForWrite(dir + "/events.tsv", &f));
    for (const auto& x : dataset.events()) {
      f << x.id << "\t" << x.venue << "\t" << x.start_time;
      for (WordId w : x.words) f << "\t" << w;
      f << "\n";
    }
  }
  {
    std::ofstream f;
    GEMREC_RETURN_IF_ERROR(OpenForWrite(dir + "/attendances.tsv", &f));
    for (const auto& a : dataset.attendances()) {
      f << a.user << "\t" << a.event << "\n";
    }
  }
  {
    std::ofstream f;
    GEMREC_RETURN_IF_ERROR(OpenForWrite(dir + "/friendships.tsv", &f));
    for (const auto& fr : dataset.friendships()) {
      f << fr.a << "\t" << fr.b << "\n";
    }
  }
  // Signed / group records live in their own optional files so dataset
  // directories written by older builds (which lack them) stay loadable
  // and old builds simply ignore these extra files.
  {
    std::ofstream f;
    GEMREC_RETURN_IF_ERROR(OpenForWrite(dir + "/dislikes.tsv", &f));
    for (const auto& d : dataset.dislikes()) {
      f << d.user << "\t" << d.event << "\n";
    }
  }
  {
    std::ofstream f;
    GEMREC_RETURN_IF_ERROR(OpenForWrite(dir + "/groups.tsv", &f));
    for (const auto& g : dataset.groups()) {
      f << g.host << "\t" << g.event;
      for (UserId m : g.members) f << "\t" << m;
      f << "\n";
    }
  }
  return Status::Ok();
}

Result<Dataset> LoadDataset(const std::string& dir) {
  Dataset dataset;
  {
    std::ifstream f;
    GEMREC_RETURN_IF_ERROR(OpenForRead(dir + "/meta.tsv", &f));
    uint32_t num_users = 0;
    uint32_t vocab = 0;
    if (!(f >> num_users >> vocab)) {
      return Status::IoError("malformed meta.tsv in " + dir);
    }
    dataset.set_num_users(num_users);
    dataset.set_vocab_size(vocab);
  }
  {
    std::ifstream f;
    GEMREC_RETURN_IF_ERROR(OpenForRead(dir + "/venues.tsv", &f));
    Venue v;
    while (f >> v.id >> v.location.lat >> v.location.lon) {
      dataset.AddVenue(v);
    }
  }
  {
    std::ifstream f;
    GEMREC_RETURN_IF_ERROR(OpenForRead(dir + "/events.tsv", &f));
    std::string line;
    while (std::getline(f, line)) {
      if (line.empty()) continue;
      std::istringstream ss(line);
      Event x;
      if (!(ss >> x.id >> x.venue >> x.start_time)) {
        return Status::IoError("malformed events.tsv line: " + line);
      }
      WordId w;
      while (ss >> w) x.words.push_back(w);
      dataset.AddEvent(std::move(x));
    }
  }
  {
    std::ifstream f;
    GEMREC_RETURN_IF_ERROR(OpenForRead(dir + "/attendances.tsv", &f));
    UserId u;
    EventId x;
    while (f >> u >> x) dataset.AddAttendance(u, x);
  }
  {
    std::ifstream f;
    GEMREC_RETURN_IF_ERROR(OpenForRead(dir + "/friendships.tsv", &f));
    UserId a;
    UserId b;
    while (f >> a >> b) dataset.AddFriendship(a, b);
  }
  // Optional files (introduced with the signed/group query kinds):
  // absence means a pre-extension dataset directory, not corruption.
  {
    std::ifstream f(dir + "/dislikes.tsv");
    if (f.is_open()) {
      UserId u;
      EventId x;
      while (f >> u >> x) dataset.AddDislike(u, x);
    }
  }
  {
    std::ifstream f(dir + "/groups.tsv");
    if (f.is_open()) {
      std::string line;
      while (std::getline(f, line)) {
        if (line.empty()) continue;
        std::istringstream ss(line);
        AttendanceGroup g;
        if (!(ss >> g.host >> g.event)) {
          return Status::IoError("malformed groups.tsv line: " + line);
        }
        UserId m;
        while (ss >> m) g.members.push_back(m);
        if (g.members.empty()) {
          return Status::IoError("malformed groups.tsv line: " + line);
        }
        dataset.AddGroup(std::move(g));
      }
    }
  }
  GEMREC_RETURN_IF_ERROR(dataset.Finalize());
  return dataset;
}

}  // namespace gemrec::ebsn
