#ifndef GEMREC_EBSN_SPLIT_H_
#define GEMREC_EBSN_SPLIT_H_

#include <vector>

#include "ebsn/dataset.h"
#include "ebsn/types.h"

namespace gemrec::ebsn {

/// Which split an event belongs to.
enum class Split : uint8_t { kTraining = 0, kValidation = 1, kTest = 2 };

/// Chronological event split following §V-A: events are ordered by
/// start time, the first 70% are training and the last 30% are held
/// out; the held-out part is further split 1:2 into validation (10% of
/// all) and test (20% of all). Test/validation events carry no
/// attendance edges at training time, i.e. they are genuinely
/// cold-start.
class ChronologicalSplit {
 public:
  /// Fractions must be positive and sum to <= 1; the remainder is test.
  ChronologicalSplit(const Dataset& dataset, double train_fraction = 0.7,
                     double validation_fraction = 0.1);

  Split SplitOf(EventId x) const { return split_[x]; }
  bool IsTraining(EventId x) const {
    return split_[x] == Split::kTraining;
  }
  bool IsValidation(EventId x) const {
    return split_[x] == Split::kValidation;
  }
  bool IsTest(EventId x) const { return split_[x] == Split::kTest; }

  const std::vector<EventId>& training_events() const {
    return training_events_;
  }
  const std::vector<EventId>& validation_events() const {
    return validation_events_;
  }
  const std::vector<EventId>& test_events() const { return test_events_; }

  /// The (user, event) attendance pairs whose event lies in the given
  /// split — E_UX^training / ^validation / ^test of §V-A.
  std::vector<Attendance> AttendancesIn(const Dataset& dataset,
                                        Split split) const;

 private:
  std::vector<Split> split_;
  std::vector<EventId> training_events_;
  std::vector<EventId> validation_events_;
  std::vector<EventId> test_events_;
};

}  // namespace gemrec::ebsn

#endif  // GEMREC_EBSN_SPLIT_H_
