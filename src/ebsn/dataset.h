#ifndef GEMREC_EBSN_DATASET_H_
#define GEMREC_EBSN_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ebsn/types.h"

namespace gemrec::ebsn {

/// Summary statistics matching the paper's Table I.
struct DatasetStats {
  size_t num_users = 0;
  size_t num_events = 0;
  size_t num_venues = 0;
  size_t num_attendances = 0;
  size_t num_friendships = 0;
  size_t num_dislikes = 0;
  size_t num_groups = 0;
  size_t vocab_size = 0;
};

/// An event-based social network dataset: users, events (with venue,
/// time and text content), venues, RSVP attendance records and the
/// social friendship graph. This is the heterogeneous graph G of
/// Definition 1, in record form.
///
/// Users are implicit (dense ids 0..num_users-1). Adjacency accessors
/// (EventsOf / UsersOf / FriendsOf) are built lazily by Finalize().
class Dataset {
 public:
  Dataset() = default;

  /// Movable but not copyable: attendance indexes can be large.
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  // --- construction -------------------------------------------------

  void set_num_users(uint32_t n) { num_users_ = n; }
  void set_vocab_size(uint32_t n) { vocab_size_ = n; }

  /// Appends a venue; its id must equal the current venue count.
  void AddVenue(Venue venue);

  /// Appends an event; its id must equal the current event count and its
  /// venue must already exist.
  void AddEvent(Event event);

  /// Records that `user` attends `event`. Duplicate records are merged
  /// by Finalize().
  void AddAttendance(UserId user, EventId event);

  /// Records an undirected friendship; self-links are a checked error.
  void AddFriendship(UserId a, UserId b);

  /// Records an explicit negative signal. Duplicates are merged by
  /// Finalize().
  void AddDislike(UserId user, EventId event);

  /// Records a group signup; `group.members` must be non-empty and must
  /// not contain the host (checked by Finalize()).
  void AddGroup(AttendanceGroup group);

  /// Builds (or rebuilds) adjacency indexes: per-user attended events,
  /// per-event attendee lists, per-user friend lists. Deduplicates
  /// attendances and friendships. Must be called before the adjacency
  /// accessors below; returns an error on dangling ids.
  Status Finalize();

  // --- accessors ----------------------------------------------------

  uint32_t num_users() const { return num_users_; }
  uint32_t num_events() const {
    return static_cast<uint32_t>(events_.size());
  }
  uint32_t num_venues() const {
    return static_cast<uint32_t>(venues_.size());
  }
  uint32_t vocab_size() const { return vocab_size_; }

  const Event& event(EventId x) const;
  const Venue& venue(VenueId v) const;
  const std::vector<Event>& events() const { return events_; }
  const std::vector<Venue>& venues() const { return venues_; }
  const std::vector<Attendance>& attendances() const {
    return attendances_;
  }
  const std::vector<Friendship>& friendships() const {
    return friendships_;
  }
  const std::vector<Dislike>& dislikes() const { return dislikes_; }
  const std::vector<AttendanceGroup>& groups() const { return groups_; }

  /// X_u — events user u attends (sorted). Requires Finalize().
  const std::vector<EventId>& EventsOf(UserId u) const;

  /// U_x — users attending event x (sorted). Requires Finalize().
  const std::vector<UserId>& UsersOf(EventId x) const;

  /// Friends of u (sorted). Requires Finalize().
  const std::vector<UserId>& FriendsOf(UserId u) const;

  /// Events user u explicitly disliked (sorted). Requires Finalize().
  const std::vector<EventId>& DislikesOf(UserId u) const;

  bool AreFriends(UserId a, UserId b) const;
  bool Attends(UserId u, EventId x) const;
  bool Dislikes(UserId u, EventId x) const;

  /// |X_u ∩ X_u'| — number of common events two users attended; the
  /// paper uses 1 + this as the user-user edge weight.
  size_t CommonEventCount(UserId a, UserId b) const;

  /// Geographic location of an event (its venue's coordinates).
  const GeoPoint& EventLocation(EventId x) const;

  DatasetStats Stats() const;
  bool finalized() const { return finalized_; }

 private:
  uint32_t num_users_ = 0;
  uint32_t vocab_size_ = 0;
  std::vector<Venue> venues_;
  std::vector<Event> events_;
  std::vector<Attendance> attendances_;
  std::vector<Friendship> friendships_;
  std::vector<Dislike> dislikes_;
  std::vector<AttendanceGroup> groups_;

  bool finalized_ = false;
  std::vector<std::vector<EventId>> user_events_;
  std::vector<std::vector<UserId>> event_users_;
  std::vector<std::vector<UserId>> user_friends_;
  std::vector<std::vector<EventId>> user_dislikes_;
};

}  // namespace gemrec::ebsn

#endif  // GEMREC_EBSN_DATASET_H_
