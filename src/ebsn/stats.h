#ifndef GEMREC_EBSN_STATS_H_
#define GEMREC_EBSN_STATS_H_

#include <cstddef>
#include <vector>

#include "ebsn/dataset.h"

namespace gemrec::ebsn {

/// Summary of a nonnegative integer distribution (degrees, counts).
struct DistributionSummary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  size_t min = 0;
  size_t max = 0;
  size_t p50 = 0;
  size_t p90 = 0;
  size_t p99 = 0;
  /// Gini coefficient in [0, 1]; high values mean heavy skew (EBSN
  /// attendance and social degrees are typically heavily skewed).
  double gini = 0.0;
};

/// Summarizes an arbitrary count vector.
DistributionSummary Summarize(std::vector<size_t> values);

/// Deeper dataset diagnostics used by Table I and by sanity tests on
/// the synthetic generator (real EBSN data exhibits heavy-tailed
/// degrees; the generator must too).
struct DatasetProfile {
  DistributionSummary events_per_user;
  DistributionSummary users_per_event;
  DistributionSummary friends_per_user;
  DistributionSummary words_per_event;
  /// Users attending at least `min_events` events (the paper filters
  /// at 5).
  size_t active_users = 0;
  /// Fraction of attendance pairs (u,x) where u has a friend also
  /// attending x — the joint task's raw signal.
  double coattendance_fraction = 0.0;
};

DatasetProfile ProfileDataset(const Dataset& dataset,
                              uint32_t min_events = 5);

}  // namespace gemrec::ebsn

#endif  // GEMREC_EBSN_STATS_H_
