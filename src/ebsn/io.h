#ifndef GEMREC_EBSN_IO_H_
#define GEMREC_EBSN_IO_H_

#include <string>

#include "common/status.h"
#include "ebsn/dataset.h"

namespace gemrec::ebsn {

/// Persists a dataset as a directory of TSV files:
///   meta.tsv        num_users, vocab_size
///   venues.tsv      id  lat  lon
///   events.tsv      id  venue  start_time  word word word ...
///   attendances.tsv user  event
///   friendships.tsv a  b
/// The directory is created if missing. Files are overwritten.
Status SaveDataset(const Dataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDataset and finalizes it.
Result<Dataset> LoadDataset(const std::string& dir);

}  // namespace gemrec::ebsn

#endif  // GEMREC_EBSN_IO_H_
