#include "ebsn/synthetic.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "common/alias_table.h"
#include "common/logging.h"
#include "common/rng.h"
#include "ebsn/time_slots.h"

namespace gemrec::ebsn {
namespace {

constexpr int64_t kSecondsPerDay = 86400;

/// Sparse Dirichlet-like draw: normalized Gamma(alpha) samples.
/// Small alpha concentrates mass on few coordinates.
std::vector<double> SparseSimplex(Rng* rng, size_t n, double alpha) {
  std::vector<double> v(n);
  double total = 0.0;
  for (auto& x : v) {
    // Gamma(alpha) via Marsaglia-Tsang needs alpha>=1; boost trick for
    // alpha<1: Gamma(alpha) = Gamma(alpha+1) * U^(1/alpha).
    const double a = alpha + 1.0;
    const double d = a - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    double g = 0.0;
    for (;;) {
      const double z = rng->Gaussian();
      const double u = rng->UniformDouble();
      const double w = 1.0 + c * z;
      if (w <= 0.0) continue;
      const double w3 = w * w * w;
      if (std::log(std::max(u, 1e-300)) <
          0.5 * z * z + d - d * w3 + d * std::log(w3)) {
        g = d * w3;
        break;
      }
    }
    g *= std::pow(std::max(rng->UniformDouble(), 1e-12), 1.0 / alpha);
    x = g;
    total += g;
  }
  if (total <= 0.0) {
    v[rng->UniformInt(n)] = 1.0;
    total = 1.0;
  }
  for (auto& x : v) x /= total;
  return v;
}

/// Circular hour distance in [0, 12].
double HourDistance(uint32_t a, uint32_t b) {
  const int d = std::abs(static_cast<int>(a) - static_cast<int>(b));
  return static_cast<double>(std::min(d, 24 - d));
}

}  // namespace

SyntheticConfig SyntheticConfig::Beijing(double scale) {
  SyntheticConfig c;
  c.name = "beijing";
  c.num_users = static_cast<uint32_t>(3000 * scale);
  c.num_events = static_cast<uint32_t>(1500 * scale);
  c.num_venues = static_cast<uint32_t>(320 * scale);
  c.num_geo_clusters = 20;
  c.city_center = GeoPoint{39.9042, 116.4074};
  c.mean_events_per_user = 17.0;
  c.mean_friends_per_user = 13.0;
  c.seed = 20180101;
  return c;
}

SyntheticConfig SyntheticConfig::Shanghai(double scale) {
  SyntheticConfig c;
  c.name = "shanghai";
  c.num_users = static_cast<uint32_t>(1800 * scale);
  c.num_events = static_cast<uint32_t>(800 * scale);
  c.num_venues = static_cast<uint32_t>(200 * scale);
  c.num_geo_clusters = 16;
  c.city_center = GeoPoint{31.2304, 121.4737};
  c.mean_events_per_user = 13.0;
  c.mean_friends_per_user = 8.0;
  c.seed = 20180202;
  return c;
}

SyntheticData GenerateSynthetic(const SyntheticConfig& config) {
  GEMREC_CHECK(config.num_users > 10 && config.num_events > 10 &&
               config.num_venues > 0 && config.num_topics > 1 &&
               config.vocab_size >= 10 * config.num_topics)
      << "synthetic config too small";
  Rng rng(config.seed);
  SyntheticData out;
  Dataset& data = out.dataset;
  data.set_num_users(config.num_users);
  data.set_vocab_size(config.vocab_size);

  const uint32_t kTopics = config.num_topics;
  const uint32_t kClusters = config.num_geo_clusters;

  // ---- Geography: cluster centers around the city center. ----------
  std::vector<GeoPoint> cluster_center(kClusters);
  std::vector<double> cluster_weight(kClusters);
  const double km_per_deg_lat = 111.19;
  const double km_per_deg_lon =
      111.19 * std::cos(config.city_center.lat * M_PI / 180.0);
  for (uint32_t g = 0; g < kClusters; ++g) {
    const double angle = rng.UniformDouble() * 2.0 * M_PI;
    const double radius =
        std::fabs(rng.Gaussian(0.0, config.city_radius_km / 2.0));
    cluster_center[g] = GeoPoint{
        config.city_center.lat +
            radius * std::sin(angle) / km_per_deg_lat,
        config.city_center.lon +
            radius * std::cos(angle) / km_per_deg_lon};
    // Zipf-ish popularity: downtown clusters attract more venues.
    cluster_weight[g] = 1.0 / static_cast<double>(g + 1);
  }
  AliasTable cluster_sampler(cluster_weight);

  // ---- Venues. ------------------------------------------------------
  std::vector<std::vector<VenueId>> cluster_venues(kClusters);
  for (uint32_t v = 0; v < config.num_venues; ++v) {
    const uint32_t g = static_cast<uint32_t>(cluster_sampler.Sample(&rng));
    GeoPoint p = cluster_center[g];
    p.lat += rng.Gaussian(0.0, config.cluster_radius_km / km_per_deg_lat);
    p.lon += rng.Gaussian(0.0, config.cluster_radius_km / km_per_deg_lon);
    data.AddVenue(Venue{v, p});
    cluster_venues[g].push_back(v);
  }
  // Guarantee every cluster owns at least one venue so topic-geo
  // affinities always resolve.
  for (uint32_t g = 0; g < kClusters; ++g) {
    if (cluster_venues[g].empty()) {
      cluster_venues[g].push_back(
          static_cast<VenueId>(rng.UniformInt(config.num_venues)));
    }
  }

  // ---- Topics: vocabulary bands, geo affinity, temporal profile. ----
  const uint32_t shared_band = static_cast<uint32_t>(
      static_cast<double>(config.vocab_size) * config.shared_vocab_fraction);
  const uint32_t topical_vocab = config.vocab_size - shared_band;
  const uint32_t band_width = topical_vocab / kTopics;

  out.topic_hour.resize(kTopics);
  out.topic_weekend.resize(kTopics);
  std::vector<AliasTable> topic_cluster_sampler(kTopics);
  std::vector<double> topic_popularity(kTopics);
  const uint32_t hour_choices[] = {10, 14, 17, 19, 20, 21};
  for (uint32_t t = 0; t < kTopics; ++t) {
    out.topic_hour[t] = hour_choices[rng.UniformInt(6)];
    out.topic_weekend[t] = rng.Bernoulli(0.5);
    std::vector<double> affinity = SparseSimplex(&rng, kClusters, 0.3);
    topic_cluster_sampler[t].Build(affinity);
    topic_popularity[t] = 0.4 + rng.UniformDouble();
  }

  // ---- Users. --------------------------------------------------------
  out.user_profiles.resize(config.num_users);
  for (uint32_t u = 0; u < config.num_users; ++u) {
    UserProfile& p = out.user_profiles[u];
    p.topic_interest = SparseSimplex(&rng, kTopics, 0.15);
    p.home_cluster = static_cast<uint32_t>(cluster_sampler.Sample(&rng));
    // Pareto-like activity: heavy upper tail, mean ~1.
    p.activity = std::min(
        8.0, 0.4 / std::pow(std::max(rng.UniformDouble(), 1e-6), 0.55));
    const uint32_t main_topic = static_cast<uint32_t>(
        std::max_element(p.topic_interest.begin(),
                         p.topic_interest.end()) -
        p.topic_interest.begin());
    p.preferred_hour = static_cast<uint32_t>(
        (out.topic_hour[main_topic] + 24 +
         static_cast<int>(std::lround(rng.Gaussian(0.0, 1.5)))) %
        24);
    p.weekend_preference =
        out.topic_weekend[main_topic] ? 0.85 + 0.12 * rng.UniformDouble()
                                      : 0.03 + 0.12 * rng.UniformDouble();
    p.community = main_topic * 4 + (p.home_cluster % 4);
  }

  // Per-topic user samplers: P(u | t) ∝ interest * activity.
  std::vector<AliasTable> topic_user_sampler(kTopics);
  {
    std::vector<double> weights(config.num_users);
    for (uint32_t t = 0; t < kTopics; ++t) {
      for (uint32_t u = 0; u < config.num_users; ++u) {
        weights[u] = out.user_profiles[u].topic_interest[t] *
                     out.user_profiles[u].activity;
      }
      topic_user_sampler[t].Build(weights);
    }
  }

  // ---- Friendships: community structure. ------------------------------
  const uint32_t num_communities = kTopics * 4;
  std::vector<std::vector<UserId>> community_members(num_communities);
  for (uint32_t u = 0; u < config.num_users; ++u) {
    community_members[out.user_profiles[u].community].push_back(u);
  }
  for (uint32_t u = 0; u < config.num_users; ++u) {
    const UserProfile& p = out.user_profiles[u];
    const double target =
        config.mean_friends_per_user * 0.5 * std::min(p.activity, 3.0);
    const int degree = rng.Poisson(target);
    const auto& mates = community_members[p.community];
    for (int e = 0; e < degree; ++e) {
      UserId v;
      if (mates.size() > 1 &&
          rng.Bernoulli(config.intra_community_friend_fraction)) {
        v = mates[rng.UniformInt(mates.size())];
      } else {
        v = static_cast<UserId>(rng.UniformInt(config.num_users));
      }
      if (v != u) data.AddFriendship(u, v);
    }
  }
  // Build adjacency now so FriendsOf() is usable by the attendance
  // cascade below; attendances are appended afterwards and the dataset
  // is finalized a second time at the end.
  {
    const Status status = data.Finalize();
    GEMREC_CHECK(status.ok()) << status.ToString();
  }

  // ---- Events. --------------------------------------------------------
  AliasTable topic_sampler(topic_popularity);
  std::vector<double> event_popularity(config.num_events);
  for (uint32_t x = 0; x < config.num_events; ++x) {
    Event event;
    event.id = x;
    const uint32_t t = static_cast<uint32_t>(topic_sampler.Sample(&rng));
    event.topic = static_cast<int>(t);

    const uint32_t g =
        static_cast<uint32_t>(topic_cluster_sampler[t].Sample(&rng));
    const auto& venues = cluster_venues[g];
    event.venue = venues[rng.UniformInt(venues.size())];

    // Start time: uniform day in the window, re-drawn (up to 4 times)
    // until the weekday/weekend kind matches the topic preference;
    // hour near the topic's preferred hour.
    int64_t day_start = 0;
    for (int attempt = 0; attempt < 4; ++attempt) {
      const int64_t day =
          static_cast<int64_t>(rng.UniformInt(config.duration_days));
      day_start = config.start_time + day * kSecondsPerDay;
      const bool weekend = IsWeekend(day_start);
      if (weekend == out.topic_weekend[t] || rng.Bernoulli(0.25)) break;
    }
    const int hour =
        (static_cast<int>(out.topic_hour[t]) + 24 +
         static_cast<int>(std::lround(rng.Gaussian(0.0, 1.2)))) %
        24;
    event.start_time = day_start + static_cast<int64_t>(hour) * 3600;

    // Document: topic-band words plus shared stop words.
    const int doc_len =
        std::max(5, rng.Poisson(config.words_per_event_mean));
    event.words.reserve(static_cast<size_t>(doc_len));
    const uint32_t band_lo = t * band_width;
    for (int w = 0; w < doc_len; ++w) {
      if (rng.Bernoulli(config.topic_word_prob)) {
        event.words.push_back(band_lo + static_cast<WordId>(rng.UniformInt(
                                            band_width)));
      } else {
        event.words.push_back(
            topical_vocab + static_cast<WordId>(rng.UniformInt(
                                std::max(1u, shared_band))));
      }
    }
    data.AddEvent(std::move(event));

    // Log-normal popularity drives attendee counts.
    event_popularity[x] = std::exp(rng.Gaussian(0.0, 0.9));
  }

  // ---- Attendance: interest-driven draws + social cascade. ------------
  const double total_target =
      static_cast<double>(config.num_users) * config.mean_events_per_user;
  double popularity_sum = 0.0;
  for (double p : event_popularity) popularity_sum += p;

  std::vector<std::unordered_set<UserId>> attendees(config.num_events);
  for (uint32_t x = 0; x < config.num_events; ++x) {
    const Event& event = data.event(x);
    const uint32_t t = static_cast<uint32_t>(event.topic);
    const GeoPoint& venue_loc = data.venue(event.venue).location;
    const bool weekend = IsWeekend(event.start_time);
    const uint32_t hour = HourOfDay(event.start_time);

    const size_t target = std::max<size_t>(
        2, static_cast<size_t>(event_popularity[x] / popularity_sum *
                               total_target * 0.75));
    auto& joined = attendees[x];
    std::deque<UserId> cascade;

    auto try_join = [&](UserId u, bool is_cascade) {
      if (joined.count(u) != 0) return false;
      const UserProfile& p = out.user_profiles[u];
      const double geo = std::exp(
          -HaversineKm(cluster_center[p.home_cluster], venue_loc) /
          config.geo_tau_km);
      const double hour_match =
          std::exp(-HourDistance(hour, p.preferred_hour) / 3.0);
      const double weekpart_match =
          weekend ? p.weekend_preference : 1.0 - p.weekend_preference;
      double accept = geo * (0.1 + 0.9 * hour_match) *
                      (0.1 + 0.9 * weekpart_match);
      if (is_cascade) {
        accept *= config.social_coattend_prob *
                  (0.25 + 0.75 * std::min(1.0, p.topic_interest[t] *
                                                   kTopics));
      }
      if (!rng.Bernoulli(accept)) return false;
      joined.insert(u);
      cascade.push_back(u);
      return true;
    };

    const size_t max_draws = target * 30 + 50;
    size_t draws = 0;
    while (joined.size() < target && draws++ < max_draws) {
      const UserId u =
          static_cast<UserId>(topic_user_sampler[t].Sample(&rng));
      try_join(u, /*is_cascade=*/false);
      // Social cascade: friends of fresh attendees consider joining.
      while (!cascade.empty() && joined.size() < 2 * target) {
        const UserId seed_user = cascade.front();
        cascade.pop_front();
        for (UserId f : data.FriendsOf(seed_user)) {
          try_join(f, /*is_cascade=*/true);
        }
      }
    }
    // Rejection sampling can run dry for unlucky events (remote venue,
    // odd hour). Guarantee the >=2 attendees every event promises by
    // force-adding draws from the topic pool.
    size_t rescue_draws = 0;
    while (joined.size() < 2 && rescue_draws++ < 1000) {
      joined.insert(
          static_cast<UserId>(topic_user_sampler[t].Sample(&rng)));
    }
  }

  for (uint32_t x = 0; x < config.num_events; ++x) {
    for (UserId u : attendees[x]) data.AddAttendance(u, x);
  }

  const Status status = data.Finalize();
  GEMREC_CHECK(status.ok()) << status.ToString();

  // ---- Signed / group scenarios (opt-in). ------------------------------
  // A fresh, differently-seeded RNG keeps the core records above
  // byte-identical whether or not these scenarios run.
  if (config.mean_dislikes_per_user > 0.0 ||
      config.group_attendance_prob > 0.0) {
    Rng scenario_rng(config.seed ^ 0xd151ac3du);
    // Records are collected first and appended in one batch: Add*
    // invalidates the adjacency indexes the sampling below reads.
    std::vector<Dislike> planted_dislikes;
    std::vector<AttendanceGroup> planted_groups;

    if (config.mean_dislikes_per_user > 0.0) {
      for (uint32_t u = 0; u < config.num_users; ++u) {
        const UserProfile& p = out.user_profiles[u];
        const int count =
            scenario_rng.Poisson(config.mean_dislikes_per_user);
        for (int d = 0; d < count; ++d) {
          // Accept events of the user's weakest topics: anti-interest
          // is the planted signal sign-aware training should recover.
          for (int attempt = 0; attempt < 16; ++attempt) {
            const EventId x = static_cast<EventId>(
                scenario_rng.UniformInt(config.num_events));
            if (data.Attends(u, x)) continue;
            const uint32_t t = static_cast<uint32_t>(data.event(x).topic);
            if (p.topic_interest[t] * kTopics > 0.5 &&
                !scenario_rng.Bernoulli(0.15)) {
              continue;
            }
            planted_dislikes.push_back(Dislike{u, x});
            break;
          }
        }
      }
    }

    if (config.group_attendance_prob > 0.0 &&
        config.max_group_members > 0) {
      for (uint32_t x = 0; x < config.num_events; ++x) {
        const auto& users = data.UsersOf(x);
        if (users.size() < 3 ||
            !scenario_rng.Bernoulli(config.group_attendance_prob)) {
          continue;
        }
        const UserId host = users[scenario_rng.UniformInt(users.size())];
        AttendanceGroup group;
        group.host = host;
        group.event = x;
        // Prefer co-attending friends of the host; pad with other
        // co-attendees so a friendless host still forms a group.
        for (UserId f : data.FriendsOf(host)) {
          if (group.members.size() >= config.max_group_members) break;
          if (data.Attends(f, x)) group.members.push_back(f);
        }
        for (UserId v : users) {
          if (group.members.size() >= config.max_group_members) break;
          if (v == host) continue;
          if (std::find(group.members.begin(), group.members.end(), v) ==
              group.members.end()) {
            group.members.push_back(v);
          }
        }
        if (!group.members.empty()) {
          planted_groups.push_back(std::move(group));
        }
      }
    }

    for (const Dislike& d : planted_dislikes) {
      data.AddDislike(d.user, d.event);
    }
    for (AttendanceGroup& g : planted_groups) data.AddGroup(std::move(g));
    const Status scenario_status = data.Finalize();
    GEMREC_CHECK(scenario_status.ok()) << scenario_status.ToString();
  }
  return out;
}

}  // namespace gemrec::ebsn
