#include "ebsn/time_slots.h"

#include "common/logging.h"

namespace gemrec::ebsn {
namespace {

constexpr int64_t kSecondsPerDay = 86400;

/// Floor division that is correct for negative timestamps too.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

}  // namespace

uint32_t HourOfDay(int64_t unix_seconds) {
  return static_cast<uint32_t>(FloorMod(unix_seconds, kSecondsPerDay) /
                               3600);
}

uint32_t DayOfWeek(int64_t unix_seconds) {
  // 1970-01-01 was a Thursday; with Monday = 0 that is day 3.
  const int64_t days = FloorDiv(unix_seconds, kSecondsPerDay);
  return static_cast<uint32_t>(FloorMod(days + 3, 7));
}

bool IsWeekend(int64_t unix_seconds) {
  return DayOfWeek(unix_seconds) >= 5;
}

std::array<TimeSlotId, 3> TimeSlotsFor(int64_t unix_seconds) {
  return {kHourSlotBase + HourOfDay(unix_seconds),
          kDaySlotBase + DayOfWeek(unix_seconds),
          IsWeekend(unix_seconds) ? kWeekendSlot : kWeekdaySlot};
}

const char* TimeSlotName(TimeSlotId slot) {
  static const char* const kHourNames[] = {
      "00:00", "01:00", "02:00", "03:00", "04:00", "05:00", "06:00",
      "07:00", "08:00", "09:00", "10:00", "11:00", "12:00", "13:00",
      "14:00", "15:00", "16:00", "17:00", "18:00", "19:00", "20:00",
      "21:00", "22:00", "23:00"};
  static const char* const kDayNames[] = {
      "Monday", "Tuesday",  "Wednesday", "Thursday",
      "Friday", "Saturday", "Sunday"};
  GEMREC_CHECK(slot < kNumTimeSlots) << "bad time slot " << slot;
  if (slot < kDaySlotBase) return kHourNames[slot];
  if (slot < kWeekpartSlotBase) return kDayNames[slot - kDaySlotBase];
  return slot == kWeekdaySlot ? "weekday" : "weekend";
}

}  // namespace gemrec::ebsn
