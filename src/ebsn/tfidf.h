#ifndef GEMREC_EBSN_TFIDF_H_
#define GEMREC_EBSN_TFIDF_H_

#include <cstdint>
#include <vector>

#include "ebsn/types.h"

namespace gemrec::ebsn {

/// One weighted (event, word) pair of the event-content graph.
struct WeightedWord {
  WordId word = kInvalidId;
  double weight = 0.0;
};

/// Computes standard TF-IDF weights for the bag-of-words documents of a
/// set of events, as the paper uses for the edge weights w_xc of the
/// event-content graph.
///
///   tf(x, c)  = count of c in D_x / |D_x|
///   idf(c)    = log((1 + N) / (1 + df(c))) + 1   (smoothed)
///   w_xc      = tf * idf
///
/// `documents[i]` is the word bag of event i (word ids < vocab_size).
/// Returns one deduplicated, weight-annotated word list per event.
std::vector<std::vector<WeightedWord>> ComputeTfIdf(
    const std::vector<std::vector<WordId>>& documents,
    uint32_t vocab_size);

}  // namespace gemrec::ebsn

#endif  // GEMREC_EBSN_TFIDF_H_
