#ifndef GEMREC_EBSN_TIME_SLOTS_H_
#define GEMREC_EBSN_TIME_SLOTS_H_

#include <array>
#include <cstdint>

#include "ebsn/types.h"

namespace gemrec::ebsn {

/// The paper discretizes event start times into 33 time slots across
/// three scales: 24 hour-of-day slots, 7 day-of-week slots, and 2
/// weekday/weekend slots. Every event links to exactly three slots
/// (e.g. "2017-06-29 18:00" -> {18:00, Thursday, weekday}).
inline constexpr uint32_t kNumHourSlots = 24;
inline constexpr uint32_t kNumDaySlots = 7;
inline constexpr uint32_t kNumWeekpartSlots = 2;
inline constexpr uint32_t kNumTimeSlots =
    kNumHourSlots + kNumDaySlots + kNumWeekpartSlots;  // 33

inline constexpr uint32_t kHourSlotBase = 0;
inline constexpr uint32_t kDaySlotBase = kNumHourSlots;        // 24..30
inline constexpr uint32_t kWeekpartSlotBase =
    kNumHourSlots + kNumDaySlots;                              // 31..32
inline constexpr uint32_t kWeekdaySlot = kWeekpartSlotBase;     // 31
inline constexpr uint32_t kWeekendSlot = kWeekpartSlotBase + 1; // 32

/// Hour of day (0..23) for a unix timestamp, in UTC.
uint32_t HourOfDay(int64_t unix_seconds);

/// Day of week (0 = Monday .. 6 = Sunday) for a unix timestamp, in UTC.
uint32_t DayOfWeek(int64_t unix_seconds);

/// True for Saturday/Sunday.
bool IsWeekend(int64_t unix_seconds);

/// The three slot ids {hour, day, weekpart} an event at this timestamp
/// links to in the event-time bipartite graph.
std::array<TimeSlotId, 3> TimeSlotsFor(int64_t unix_seconds);

/// Human-readable slot name ("18:00", "Thursday", "weekday").
const char* TimeSlotName(TimeSlotId slot);

}  // namespace gemrec::ebsn

#endif  // GEMREC_EBSN_TIME_SLOTS_H_
