#ifndef GEMREC_EBSN_DBSCAN_H_
#define GEMREC_EBSN_DBSCAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ebsn/types.h"

namespace gemrec::ebsn {

/// Parameters of the density clustering used to discretize event
/// coordinates into region nodes (the paper divides all events into a
/// set of regions V_L with DBSCAN on their geographic coordinates).
struct DbscanParams {
  /// Neighborhood radius in kilometers.
  double eps_km = 1.0;
  /// Minimum neighborhood size (including the point itself) for a core
  /// point.
  uint32_t min_pts = 5;
};

/// Result of a DBSCAN run: a dense region label per input point.
struct DbscanResult {
  /// label[i] in [0, num_regions). Noise points that fall in no cluster
  /// are assigned to the nearest cluster when one exists within
  /// 3*eps_km, otherwise each becomes a singleton region, so every
  /// event always maps to some region node.
  std::vector<RegionId> label;
  uint32_t num_regions = 0;
  /// Number of points DBSCAN originally marked as noise (before the
  /// nearest-cluster / singleton assignment above).
  size_t noise_points = 0;
};

/// Runs DBSCAN over geographic points with haversine distances, using a
/// uniform lat/lon grid index so neighborhood queries do not scan all
/// points. Deterministic: cluster ids follow first-discovery order.
DbscanResult RunDbscan(const std::vector<GeoPoint>& points,
                       const DbscanParams& params);

}  // namespace gemrec::ebsn

#endif  // GEMREC_EBSN_DBSCAN_H_
