#include "ebsn/stats.h"

#include <algorithm>
#include <cmath>

namespace gemrec::ebsn {

DistributionSummary Summarize(std::vector<size_t> values) {
  DistributionSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  auto percentile = [&](double p) {
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(values.size() - 1));
    return values[index];
  };
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);

  double total = 0.0;
  for (size_t v : values) total += static_cast<double>(v);
  s.mean = total / static_cast<double>(values.size());
  double var = 0.0;
  for (size_t v : values) {
    const double d = static_cast<double>(v) - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));

  // Gini over the sorted values: (2 Σ i·x_i) / (n Σ x_i) − (n+1)/n.
  if (total > 0.0) {
    double weighted = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
      weighted += static_cast<double>(i + 1) *
                  static_cast<double>(values[i]);
    }
    const double n = static_cast<double>(values.size());
    s.gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
    if (s.gini < 0.0) s.gini = 0.0;
  }
  return s;
}

DatasetProfile ProfileDataset(const Dataset& dataset,
                              uint32_t min_events) {
  DatasetProfile profile;
  std::vector<size_t> events_per_user(dataset.num_users());
  std::vector<size_t> friends_per_user(dataset.num_users());
  for (uint32_t u = 0; u < dataset.num_users(); ++u) {
    events_per_user[u] = dataset.EventsOf(u).size();
    friends_per_user[u] = dataset.FriendsOf(u).size();
    if (events_per_user[u] >= min_events) ++profile.active_users;
  }
  std::vector<size_t> users_per_event(dataset.num_events());
  std::vector<size_t> words_per_event(dataset.num_events());
  for (uint32_t x = 0; x < dataset.num_events(); ++x) {
    users_per_event[x] = dataset.UsersOf(x).size();
    words_per_event[x] = dataset.event(x).words.size();
  }

  size_t with_friend = 0;
  size_t total = 0;
  for (const auto& att : dataset.attendances()) {
    ++total;
    for (UserId v : dataset.UsersOf(att.event)) {
      if (v != att.user && dataset.AreFriends(att.user, v)) {
        ++with_friend;
        break;
      }
    }
  }
  profile.coattendance_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(with_friend) /
                       static_cast<double>(total);

  profile.events_per_user = Summarize(std::move(events_per_user));
  profile.users_per_event = Summarize(std::move(users_per_event));
  profile.friends_per_user = Summarize(std::move(friends_per_user));
  profile.words_per_event = Summarize(std::move(words_per_event));
  return profile;
}

}  // namespace gemrec::ebsn
