#ifndef GEMREC_EBSN_TYPES_H_
#define GEMREC_EBSN_TYPES_H_

#include <cstdint>
#include <vector>

namespace gemrec::ebsn {

/// Node id types. All ids are dense 0-based indices within their type.
using UserId = uint32_t;
using EventId = uint32_t;
using VenueId = uint32_t;
using RegionId = uint32_t;
using WordId = uint32_t;
using TimeSlotId = uint32_t;

inline constexpr uint32_t kInvalidId = 0xffffffffu;

/// WGS84 coordinate pair.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in kilometers (haversine).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

/// A physical venue where events are held.
struct Venue {
  VenueId id = kInvalidId;
  GeoPoint location;
};

/// A social event. `start_time` is unix seconds; `words` is the
/// bag-of-words of the event's textual description D_x; `topic` records
/// the generator's hidden topic for synthetic data (-1 for real data)
/// and is never visible to models.
struct Event {
  EventId id = kInvalidId;
  VenueId venue = kInvalidId;
  int64_t start_time = 0;
  std::vector<WordId> words;
  int topic = -1;
};

/// A user registering to attend an event (the EBSN's online RSVP).
struct Attendance {
  UserId user = kInvalidId;
  EventId event = kInvalidId;
};

/// An undirected social link.
struct Friendship {
  UserId a = kInvalidId;
  UserId b = kInvalidId;
};

/// An explicit negative signal: `user` declined / downvoted `event`
/// (the EBSN's "not interested" click). Unlike the unobserved pairs
/// negative sampling draws, a dislike carries a definite sign, so the
/// trainer can repel the pair directly (sign-aware negatives).
struct Dislike {
  UserId user = kInvalidId;
  EventId event = kInvalidId;
};

/// A group signup: `host` registered for `event` together with
/// `members` (friends joining through the same RSVP). Ground truth for
/// the group query kind, where a whole partner set is scored at once.
struct AttendanceGroup {
  UserId host = kInvalidId;
  EventId event = kInvalidId;
  std::vector<UserId> members;
};

}  // namespace gemrec::ebsn

#endif  // GEMREC_EBSN_TYPES_H_
