#include "ebsn/tfidf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gemrec::ebsn {

std::vector<std::vector<WeightedWord>> ComputeTfIdf(
    const std::vector<std::vector<WordId>>& documents,
    uint32_t vocab_size) {
  const size_t n = documents.size();
  std::vector<uint32_t> doc_freq(vocab_size, 0);

  // Per-document term counts (sorted unique word lists with counts).
  std::vector<std::vector<WeightedWord>> result(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<WordId> words = documents[i];
    std::sort(words.begin(), words.end());
    auto it = words.begin();
    while (it != words.end()) {
      GEMREC_CHECK(*it < vocab_size)
          << "word id " << *it << " out of vocabulary";
      auto run_end = std::find_if(it, words.end(),
                                  [&](WordId w) { return w != *it; });
      result[i].push_back(WeightedWord{
          *it, static_cast<double>(std::distance(it, run_end))});
      ++doc_freq[*it];
      it = run_end;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    const double doc_len = static_cast<double>(documents[i].size());
    for (auto& ww : result[i]) {
      const double tf = ww.weight / std::max(1.0, doc_len);
      const double idf =
          std::log((1.0 + static_cast<double>(n)) /
                   (1.0 + static_cast<double>(doc_freq[ww.word]))) +
          1.0;
      ww.weight = tf * idf;
    }
  }
  return result;
}

}  // namespace gemrec::ebsn
