#ifndef GEMREC_SERVING_INGEST_JOURNAL_H_
#define GEMREC_SERVING_INGEST_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ebsn/types.h"
#include "embedding/embedding_store.h"
#include "embedding/online_update.h"

namespace gemrec::serving {

/// One acknowledged write of the streaming ingestion path. Two kinds
/// mirror the two wire frames:
///  * kAttendance — "user registered for event". With `new_user` set
///    the user is cold (OffESNs-style cold-start-by-default) and gets a
///    full FoldInColdUser seeded by this first event; otherwise her
///    existing vector is nudged via UpdateUserWithAttendance.
///  * kNewEvent — "event was just published" with its content/context
///    signals; applied via FoldInColdEvent and added to the
///    recommendable pool of subsequent delta publishes.
enum class IngestKind : uint8_t {
  kAttendance = 1,
  kNewEvent = 2,
};

struct IngestRecord {
  IngestKind kind = IngestKind::kAttendance;
  /// Monotonic per-journal sequence number, assigned by the ingestion
  /// queue at admission. 0 means "not yet assigned".
  uint64_t seq = 0;

  // kAttendance fields.
  ebsn::UserId user = 0;
  ebsn::EventId event = 0;  // also the new event id for kNewEvent
  bool new_user = false;

  // kNewEvent fields.
  embedding::NewEventSignals signals;
};

/// Write-ahead journal for the ingestion queue — the GEMREC02 of the
/// write path. Every record the server acknowledges is appended and
/// fdatasync'd here *before* the fold-in touches the staging store, so
/// a SIGKILL at any instruction loses no acknowledged write: startup
/// replays the journal tail onto the staging store before the first
/// publish.
///
/// On-disk layout (little-endian throughout, like GEMREC02 and GMNP):
///
///   [0, 4)   magic "GJL1"
///   [4, 8)   format version (1)
///   [8, 12)  CRC32C over bytes [0, 8)
///   then zero or more records:
///   [0, 4)   payload length N
///   [4, 4+N) payload:
///              u64 seq, u8 kind, then per kind:
///                kAttendance: u32 user, u32 event, u8 flags (bit0 =
///                             new_user)
///                kNewEvent:   u32 event, u32 region, i64 start_time,
///                             u32 word_count,
///                             word_count x (u32 word, u32 float bits)
///   [4+N, 8+N) CRC32C over bytes [0, 4+N) — covering the length
///              field, so a flipped length byte is caught instead of
///              sending the reader off to a bogus offset.
///
/// Torn/corrupt tails: a record whose bytes are incomplete (the
/// process died mid-append) or whose CRC mismatches (bit rot) ends the
/// readable prefix — it and everything after it are dropped, which by
/// the ack-after-fsync protocol can only ever discard *unacknowledged*
/// work. A corrupt file header, by contrast, is a hard error: it means
/// every record is unreadable, and silently serving without them would
/// lose acknowledged writes.
///
/// Not thread-safe: the ingestion queue's single ingest thread owns
/// the open journal (Replay is static and read-only).
class IngestJournal {
 public:
  /// Opens `path` for appending, creating an empty journal (header
  /// only, durably) when the file does not exist. An existing file is
  /// scanned: a torn/corrupt tail is truncated away so new appends
  /// land after the last valid record.
  static Result<IngestJournal> Open(const std::string& path);

  IngestJournal(IngestJournal&& other) noexcept;
  IngestJournal& operator=(IngestJournal&& other) noexcept;
  IngestJournal(const IngestJournal&) = delete;
  IngestJournal& operator=(const IngestJournal&) = delete;
  ~IngestJournal();

  /// Appends every record, then one fdatasync (group commit). After an
  /// OK return the records survive SIGKILL/power loss; only then may
  /// the caller acknowledge them.
  Status Append(const std::vector<IngestRecord>& records);
  Status AppendOne(const IngestRecord& record);

  /// Atomically replaces the file with a fresh empty journal — called
  /// after a checkpoint made the logged records redundant. The open
  /// handle moves to the new file.
  Status Reset();

  /// Highest sequence number among valid records currently in the file
  /// (0 when empty).
  uint64_t last_seq() const { return last_seq_; }
  const std::string& path() const { return path_; }
  size_t bytes() const { return bytes_; }

  struct ReplayResult {
    /// Valid records with seq > the requested threshold, in file
    /// (= append = ack) order.
    std::vector<IngestRecord> records;
    /// False when a torn or corrupt tail was dropped.
    bool clean = true;
    /// Bytes of the unreadable tail (0 when clean).
    uint64_t dropped_bytes = 0;
  };

  /// Reads the journal and returns every valid record with
  /// seq > after_seq — the recovery path (after_seq = the seq baked
  /// into the newest checkpoint, so a crash between checkpoint and
  /// journal truncation replays each record at most once). Fails on a
  /// missing file or corrupt header; a torn/corrupt record tail is
  /// reported via `clean`/`dropped_bytes`, never an error.
  static Result<ReplayResult> Replay(const std::string& path,
                                     uint64_t after_seq);

  /// Serializes one record (length + payload + CRC) — exposed so
  /// fault tests can compute exact record boundaries.
  static void EncodeRecord(const IngestRecord& record,
                           std::vector<uint8_t>* out);

  /// --- Fault-injection hooks (tests/fault/ only; process-global) ---
  /// Forces Append to hand bytes to write(2) in chunks of at most
  /// `bytes` (0 restores whole-buffer writes), so the observer below
  /// sees intermediate states inside one record.
  static void SetWriteChunkForTesting(size_t bytes);
  /// Invoked after every successful write(2) with the journal's
  /// cumulative payload byte count; a harness can raise(SIGKILL)
  /// inside it to model a crash mid-append. nullptr disables.
  static void SetWriteObserverForTesting(
      std::function<void(size_t bytes_written)> observer);

 private:
  IngestJournal(int fd, std::string path, size_t bytes, uint64_t last_seq)
      : fd_(fd),
        path_(std::move(path)),
        bytes_(bytes),
        last_seq_(last_seq) {}

  Status WriteAll(const uint8_t* data, size_t n);

  int fd_ = -1;
  std::string path_;
  size_t bytes_ = 0;  // valid bytes (header + records) in the file
  uint64_t last_seq_ = 0;
};

/// Checkpoint naming: `<base>.<seq>` holds a GEMREC02 store whose
/// contents include every journal record with seq <= seq, and
/// `<base>.<seq>.pool` the recommendable event pool at that watermark
/// (kNewEvent fold-ins extend the pool, and a recovered vector without
/// pool membership would still be unservable). The seq rides in the
/// filename so the checkpoint and its watermark commit in the same
/// atomic rename; a crash between checkpoint save and journal
/// truncation is harmless — recovery replays only records with
/// seq > watermark (double-replay idempotence by construction). The
/// pool sidecar is committed *before* the store, so any `<base>.<seq>`
/// that exists has its pool alongside.
struct IngestCheckpoint {
  embedding::EmbeddingStore store;
  std::vector<ebsn::EventId> event_pool;
  uint64_t seq = 0;
};

Status SaveIngestCheckpoint(const std::string& base,
                            const embedding::EmbeddingStore& store,
                            const std::vector<ebsn::EventId>& event_pool,
                            uint64_t seq);

/// Finds the newest checkpoint `<base>.<seq>` whose store AND pool
/// sidecar load cleanly; NotFound when none exists. Corrupt or torn
/// checkpoints are skipped in favour of older ones.
Result<IngestCheckpoint> LoadIngestCheckpoint(const std::string& base);

/// Deletes checkpoints `<base>.<seq>` (and pool sidecars) with
/// seq < keep_seq.
void PruneIngestCheckpoints(const std::string& base, uint64_t keep_seq);

}  // namespace gemrec::serving

#endif  // GEMREC_SERVING_INGEST_JOURNAL_H_
