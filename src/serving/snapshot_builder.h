#ifndef GEMREC_SERVING_SNAPSHOT_BUILDER_H_
#define GEMREC_SERVING_SNAPSHOT_BUILDER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "ebsn/types.h"
#include "embedding/embedding_store.h"
#include "embedding/online_update.h"
#include "serving/model_snapshot.h"

namespace gemrec::serving {

/// Staging area for the online reload loop: holds a mutable copy of
/// the embedding store, absorbs OnlineUpdate fold-ins (cold events,
/// cold users, attendance nudges), and mints immutable ModelSnapshots
/// to hand to RecommendationService::Publish.
///
/// The staging store is never the one being served — Build() deep-
/// copies it into the snapshot — so fold-ins between builds are
/// invisible to queries until the next Publish, and a half-applied
/// update can never leak into serving.
///
/// Not thread-safe: one updater thread owns the builder (the service
/// handles concurrency on the query side).
class SnapshotBuilder {
 public:
  /// Copies `initial` as the staging store. `events` is the
  /// recommendable pool snapshots are built over (replaceable via
  /// set_event_pool as fresh events fold in).
  SnapshotBuilder(const embedding::EmbeddingStore& initial,
                  std::vector<ebsn::EventId> events, uint32_t num_users,
                  const SnapshotOptions& options);

  /// Fold-in wrappers over embedding/online_update.h, applied to the
  /// staging store only.
  Status FoldInEvent(ebsn::EventId event,
                     const embedding::NewEventSignals& signals,
                     const embedding::OnlineUpdateOptions& options) {
    return embedding::FoldInColdEvent(&staging_, event, signals, options);
  }
  Status FoldInUser(ebsn::UserId user,
                    const embedding::NewUserSignals& signals,
                    const embedding::OnlineUpdateOptions& options) {
    return embedding::FoldInColdUser(&staging_, user, signals, options);
  }
  Status RecordAttendance(ebsn::UserId user, ebsn::EventId event,
                          const embedding::OnlineUpdateOptions& options) {
    return embedding::UpdateUserWithAttendance(&staging_, user, event,
                                               options);
  }

  /// Replaces the event pool of future builds (e.g. after FoldInEvent
  /// makes a just-published event recommendable).
  void set_event_pool(std::vector<ebsn::EventId> events) {
    events_ = std::move(events);
  }
  const std::vector<ebsn::EventId>& event_pool() const { return events_; }
  uint32_t num_users() const { return num_users_; }

  /// Replaces the staging store wholesale — the reload path: a freshly
  /// trained artifact loaded from disk becomes the base for the next
  /// Build. Pending fold-ins applied since the previous reset are
  /// discarded with the old store (they are baked into any snapshot
  /// already built, never lost from serving).
  void ResetStagingStore(embedding::EmbeddingStore store) {
    staging_ = std::move(store);
  }

  /// Direct access for updates not covered by the wrappers.
  embedding::EmbeddingStore* staging_store() { return &staging_; }

  /// Builds an immutable snapshot of the current staging state. Heavy
  /// (candidate build + space transform + TA preprocessing); run it on
  /// the updater thread, then Publish the result.
  std::shared_ptr<ModelSnapshot> Build() const;

 private:
  embedding::EmbeddingStore staging_;
  std::vector<ebsn::EventId> events_;
  uint32_t num_users_;
  SnapshotOptions options_;
};

/// A loaded artifact must cover the serving pool: every recommendable
/// event id and every user id must index into the new store, or
/// QueryVector/TA would walk out of bounds once published. Checked by
/// both reload paths (ModelReloader and IngestionQueue::ReloadBase)
/// before a store reaches ResetStagingStore.
Status ValidateStoreShape(const embedding::EmbeddingStore& store,
                          const SnapshotBuilder& builder);

}  // namespace gemrec::serving

#endif  // GEMREC_SERVING_SNAPSHOT_BUILDER_H_
