#include "serving/result_cache.h"

#include <algorithm>

namespace gemrec::serving {

ResultCache::ResultCache(size_t capacity, size_t num_shards)
    : capacity_(capacity),
      shards_(std::max<size_t>(1, std::min(num_shards,
                                           std::max<size_t>(1, capacity)))) {
  per_shard_capacity_ =
      capacity_ == 0 ? 0
                     : std::max<size_t>(1, capacity_ / shards_.size());
}

bool ResultCache::Lookup(const CacheKey& key, uint64_t epoch,
                         std::vector<recommend::Recommendation>* out) {
  if (capacity_ == 0) return false;
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  if (it->second->epoch != epoch) {
    // Computed on a retired snapshot: never serve it, reclaim now.
    shard.lru.erase(it->second);
    shard.map.erase(it);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->items;
  return true;
}

void ResultCache::Insert(const CacheKey& key, uint64_t epoch,
                         const std::vector<recommend::Recommendation>& items) {
  if (capacity_ == 0) return;
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->epoch = epoch;
    it->second->items = items;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, epoch, items});
  shard.map[key] = shard.lru.begin();
  while (shard.lru.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace gemrec::serving
