#include "serving/result_cache.h"

#include <algorithm>

namespace gemrec::serving {

ResultCache::ResultCache(size_t capacity, size_t num_shards)
    : capacity_(capacity),
      shards_(std::max<size_t>(1, std::min(num_shards,
                                           std::max<size_t>(1, capacity)))) {
  // Exact capacity split: every shard gets the floor share and the
  // first `capacity % shards` shards absorb the remainder, so summed
  // residency equals the configured capacity — never more (the shard
  // count is clamped to <= capacity above, so no shard rounds up from
  // zero), never less (no floor loss).
  const size_t base = capacity_ / shards_.size();
  const size_t remainder = capacity_ % shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].capacity = base + (i < remainder ? 1 : 0);
  }
}

bool ResultCache::Lookup(const CacheKey& key, uint64_t epoch,
                         std::vector<recommend::Recommendation>* out,
                         float* bound_out) {
  if (capacity_ == 0) return false;
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  if (it->second->epoch != epoch) {
    // Computed on a retired snapshot: never serve it, reclaim now.
    shard.lru.erase(it->second);
    shard.map.erase(it);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->items;
  if (bound_out != nullptr) *bound_out = it->second->bound;
  return true;
}

void ResultCache::Insert(const CacheKey& key, uint64_t epoch,
                         const std::vector<recommend::Recommendation>& items,
                         float bound) {
  if (capacity_ == 0) return;
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Never downgrade: a slow worker finishing a batch computed on a
    // retired snapshot must not overwrite results a faster worker
    // already cached under the live epoch.
    if (epoch < it->second->epoch) return;
    it->second->epoch = epoch;
    it->second->items = items;
    it->second->bound = bound;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, epoch, items, bound});
  shard.map[key] = shard.lru.begin();
  while (shard.lru.size() > shard.capacity) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace gemrec::serving
