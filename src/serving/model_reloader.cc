#include "serving/model_reloader.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "embedding/serialization.h"

namespace gemrec::serving {

ModelReloader::ModelReloader(RecommendationService* service,
                             SnapshotBuilder* builder,
                             const ReloaderOptions& options)
    : service_(service), builder_(builder), options_(options) {
  GEMREC_CHECK(service_ != nullptr && builder_ != nullptr);
  options_.max_attempts = std::max(1u, options_.max_attempts);
  if (!options_.sleep_fn) {
    options_.sleep_fn = [](std::chrono::milliseconds d) {
      std::this_thread::sleep_for(d);
    };
  }
}

std::chrono::milliseconds ModelReloader::current_backoff() const {
  if (consecutive_failures_ == 0) return std::chrono::milliseconds::zero();
  // initial * 2^(failures-1), saturating at the cap (shift guarded so a
  // long outage cannot overflow the multiplier).
  const uint64_t shift =
      std::min<uint64_t>(consecutive_failures_ - 1, 20);
  const std::chrono::milliseconds scaled =
      options_.initial_backoff * (int64_t{1} << shift);
  return std::min(scaled, options_.max_backoff);
}

Status ModelReloader::ReloadFromFile(const std::string& path) {
  auto run = [&]() -> Status {
    auto store = embedding::LoadEmbeddingStore(path);
    if (!store.ok()) return store.status();
    GEMREC_RETURN_IF_ERROR(ValidateStoreShape(*store, *builder_));
    builder_->ResetStagingStore(std::move(store).value());
    service_->Publish(builder_->Build());
    return Status::Ok();
  };
  const Status status = run();
  if (status.ok()) {
    consecutive_failures_ = 0;
  } else {
    ++consecutive_failures_;
    service_->RecordReloadFailure();
    GEMREC_LOG(Warning) << "model reload from " << path
                        << " failed (attempt streak "
                        << consecutive_failures_
                        << ", serving keeps previous snapshot): "
                        << status.ToString();
  }
  return status;
}

Status ModelReloader::ReloadWithRetry(const std::string& path) {
  Status status = ReloadFromFile(path);
  for (uint32_t attempt = 1; !status.ok() && attempt < options_.max_attempts;
       ++attempt) {
    options_.sleep_fn(current_backoff());
    status = ReloadFromFile(path);
  }
  return status;
}

}  // namespace gemrec::serving
