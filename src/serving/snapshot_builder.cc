#include "serving/snapshot_builder.h"

#include <utility>

namespace gemrec::serving {

SnapshotBuilder::SnapshotBuilder(const embedding::EmbeddingStore& initial,
                                 std::vector<ebsn::EventId> events,
                                 uint32_t num_users,
                                 const SnapshotOptions& options)
    : staging_(initial),
      events_(std::move(events)),
      num_users_(num_users),
      options_(options) {}

std::shared_ptr<ModelSnapshot> SnapshotBuilder::Build() const {
  return std::make_shared<ModelSnapshot>(staging_, events_, num_users_,
                                         options_);
}

}  // namespace gemrec::serving
