#include "serving/snapshot_builder.h"

#include <utility>

namespace gemrec::serving {

SnapshotBuilder::SnapshotBuilder(const embedding::EmbeddingStore& initial,
                                 std::vector<ebsn::EventId> events,
                                 uint32_t num_users,
                                 const SnapshotOptions& options)
    : staging_(initial),
      events_(std::move(events)),
      num_users_(num_users),
      options_(options) {}

std::shared_ptr<ModelSnapshot> SnapshotBuilder::Build() const {
  return std::make_shared<ModelSnapshot>(staging_, events_, num_users_,
                                         options_);
}

Status ValidateStoreShape(const embedding::EmbeddingStore& store,
                          const SnapshotBuilder& builder) {
  const uint32_t num_events = store.CountOf(graph::NodeType::kEvent);
  for (const ebsn::EventId event : builder.event_pool()) {
    if (event >= num_events) {
      return Status::FailedPrecondition(
          "reloaded store has " + std::to_string(num_events) +
          " events but the serving pool references event " +
          std::to_string(event));
    }
  }
  const uint32_t num_users = store.CountOf(graph::NodeType::kUser);
  if (builder.num_users() > num_users) {
    return Status::FailedPrecondition(
        "reloaded store has " + std::to_string(num_users) +
        " users but the service serves " +
        std::to_string(builder.num_users()));
  }
  return Status::Ok();
}

}  // namespace gemrec::serving
