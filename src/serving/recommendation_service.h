#ifndef GEMREC_SERVING_RECOMMENDATION_SERVICE_H_
#define GEMREC_SERVING_RECOMMENDATION_SERVICE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ebsn/types.h"
#include "obs/metrics.h"
#include "recommend/batch_ta_search.h"
#include "recommend/query_kinds.h"
#include "recommend/recommender.h"
#include "serving/model_snapshot.h"
#include "serving/query_backend.h"
#include "serving/result_cache.h"

namespace gemrec::serving {

struct ServiceOptions {
  /// Fixed-size pool of serving threads, each owning one
  /// TaSearch::Scratch. Not clamped to hardware concurrency: serving
  /// workers block on the queue, so oversubscription is deliberate.
  uint32_t num_workers = 4;
  /// Max requests one worker drains per queue visit; the whole batch
  /// is served under a single snapshot acquisition (one epoch).
  size_t max_batch = 16;
  /// Result-cache entries across all shards (0 disables caching).
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// Serve cache misses through the quantized multi-query BatchTaSearch
  /// (one shared list traversal per drained batch, exact fp32 re-rank)
  /// instead of one exact TaSearch per request. Results are exact
  /// either way; this only changes speed. Falls back to per-query TA
  /// automatically when a snapshot was built without its quantized
  /// companion. `gemrec serve --exact-ta` sets this to false.
  bool use_batch_ta = true;
};

// QueryRequest / QueryResponse moved to serving/query_backend.h (the
// interface the net layer depends on); re-exported here transitively.

/// Thin plain-value view over the service's registry metrics: the
/// monotonic counters (never decrease) plus two instantaneous gauges
/// of saturation. Snapshot via RecommendationService::stats(); the
/// registry (RecommendationService::metrics()) carries the same
/// values under their exposition names plus the latency histograms.
struct ServiceStats {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t batches = 0;
  uint64_t publishes = 0;
  /// Model reloads that failed (corrupt artifact, shape mismatch, ...)
  /// while the service kept serving its previous snapshot. Recorded by
  /// ModelReloader; a monitoring loop that sees this grow while
  /// `publishes` stalls knows the artifact pipeline is wedged.
  uint64_t reload_failures = 0;
  /// Requests refused with QueryResponse::rejected because they
  /// arrived during/after Shutdown.
  uint64_t rejected = 0;
  /// Gauge: requests enqueued but not yet claimed by a worker.
  uint64_t queue_depth = 0;
  /// Gauge: requests claimed by workers and currently being served
  /// (includes requests parked waiting for the first Publish).
  uint64_t in_flight = 0;
};

/// Concurrent query front-end over an atomically swappable
/// ModelSnapshot (the serving half of the paper's §IV online stage).
///
/// Architecture:
///  * Requests enter a bounded-batch FIFO via Submit (future-based) or
///    the synchronous Query wrapper.
///  * A fixed pool of workers drains up to max_batch requests per
///    visit, acquires the current snapshot ONCE for the whole batch
///    (so a batch is served under a single epoch) and answers each
///    request with its thread-private TaSearch::Scratch — the
///    steady-state query path performs no allocation inside TA.
///  * Results are fronted by a sharded LRU keyed on
///    (user, n, filter_hash); entries are epoch-stamped, and a lookup
///    only hits when the entry's epoch matches the batch's snapshot,
///    so cache hits can never resurrect a retired snapshot.
///  * Publish stamps the snapshot with the next epoch and swaps the
///    shared_ptr under a short mutex (pointer copy, no data copy).
///    In-flight batches keep the old snapshot alive through their own
///    reference and drain on it; the retired snapshot is destroyed by
///    whichever thread drops the last reference. No query ever waits
///    for an index build — builds happen on the publisher's thread
///    before Publish is called.
///
/// Typical reload loop: copy the serving store into a staging store,
/// apply OnlineUpdate fold-ins (FoldInColdEvent / FoldInColdUser /
/// UpdateUserWithAttendance), build a ModelSnapshot from the staging
/// store, Publish. Queries continue uninterrupted throughout.
class RecommendationService : public QueryBackend {
 public:
  explicit RecommendationService(const ServiceOptions& options);
  /// Calls Shutdown().
  ~RecommendationService() override;

  /// Graceful stop: drains the queue (every pending promise is
  /// fulfilled) and joins the workers. Idempotent and thread-safe with
  /// respect to concurrent Submit/SubmitAsync: a request that races
  /// Shutdown either gets served by the drain or is completed with an
  /// empty QueryResponse carrying `rejected = true` — never an abort.
  void Shutdown();

  RecommendationService(const RecommendationService&) = delete;
  RecommendationService& operator=(const RecommendationService&) = delete;

  /// Atomically swaps the serving snapshot. Stamps `snapshot` with the
  /// next epoch and returns it. Thread-safe; never blocks queries
  /// beyond a pointer swap.
  uint64_t Publish(std::shared_ptr<ModelSnapshot> snapshot);

  /// The currently published snapshot (nullptr before first Publish).
  std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const;

  /// Enqueues a query; the future resolves when a worker serves it.
  /// Requests submitted before the first Publish wait in the queue.
  std::future<QueryResponse> Submit(const QueryRequest& request);

  /// Enqueues a query that completes via callback instead of a future
  /// — the zero-blocking bridge used by net::NetServer, whose epoll
  /// thread can never wait on a future. The callback fires on the
  /// serving worker's thread (QueryBackend contract).
  void SubmitAsync(const QueryRequest& request,
                   ResponseCallback callback) override;

  /// Synchronous convenience wrapper (blocks the caller, not workers).
  QueryResponse Query(const QueryRequest& request);

  /// Saturation gauges for admission control: how many requests sit
  /// unclaimed in the queue / are being served right now. Cheap relaxed
  /// reads — the net layer consults these on every request.
  size_t QueueDepth() const override {
    return static_cast<size_t>(std::max<int64_t>(0, queue_depth_->Value()));
  }
  size_t InFlight() const override {
    return static_cast<size_t>(std::max<int64_t>(0, in_flight_->Value()));
  }

  /// Bumps the reload-failure counter. The failed reload has no other
  /// effect on the service: the current snapshot keeps serving.
  void RecordReloadFailure();

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

  /// The service's metrics registry. Owned by the service and shared
  /// with the layers wrapping it: NetServer registers its socket-level
  /// metrics here, so one kStatsRequest (or one --stats-interval dump)
  /// exposes the whole serve stack. Stable for the service's lifetime.
  obs::MetricsRegistry* metrics() const override { return registry_.get(); }

 private:
  struct PendingRequest {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    /// When set, completion goes through the callback and the promise
    /// is left untouched.
    ResponseCallback callback;
    /// When the request entered the queue (queue-wait histogram).
    std::chrono::steady_clock::time_point enqueue_time;

    void Complete(QueryResponse response) {
      if (callback) {
        callback(std::move(response));
      } else {
        promise.set_value(std::move(response));
      }
    }
  };

  /// Per-worker reusable buffers for both retrieval paths; everything
  /// keeps its capacity so steady-state serving stays allocation-free.
  struct WorkerState {
    recommend::TaSearch::Scratch scratch;
    recommend::BatchTaSearch::Workspace batch_ws;
    recommend::ReciprocalScratch recip;
    std::vector<float> query_vec;
    std::vector<recommend::SearchHit> hits;
    // Batched-path staging, indexed by cache-miss position.
    std::vector<size_t> miss_index;
    std::vector<std::vector<float>> miss_queries;
    std::vector<recommend::BatchQuery> miss_batch;
    std::vector<std::vector<recommend::SearchHit>> miss_hits;
    std::vector<recommend::SearchStats> miss_stats;
  };

  void Enqueue(PendingRequest pending);
  void WorkerLoop();
  void ServeBatch(std::vector<PendingRequest>* batch,
                  const ModelSnapshot& snapshot, WorkerState* state);
  void ServeBatchQuantized(std::vector<PendingRequest>* batch,
                           const ModelSnapshot& snapshot,
                           WorkerState* state);
  void CompleteMiss(PendingRequest* pending, QueryResponse response,
                    const std::vector<recommend::SearchHit>& hits,
                    uint64_t epoch);
  /// Group/reciprocal path, shared by the exact and quantized batch
  /// modes (both serve these kinds identically — group scoring is an
  /// exhaustive slice scan, reciprocal refinement pins to the exact TA
  /// engine — so answers are mode-independent bit-for-bit).
  void ServeSpecialKind(PendingRequest* pending,
                        const ModelSnapshot& snapshot, WorkerState* state);
  obs::Counter* KindCounter(recommend::QueryKind kind) {
    switch (kind) {
      case recommend::QueryKind::kGroup: return kind_group_;
      case recommend::QueryKind::kReciprocal: return kind_reciprocal_;
      case recommend::QueryKind::kPartner: break;
    }
    return kind_partner_;
  }

  ServiceOptions options_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  std::condition_variable snapshot_ready_;
  uint64_t next_epoch_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_ready_;
  std::deque<PendingRequest> queue_;
  bool shutdown_ = false;
  std::once_flag shutdown_once_;

  ResultCache cache_;

  /// Registry + borrowed metric handles (stable addresses owned by the
  /// registry; see DESIGN.md §12 for the catalogue).
  std::unique_ptr<obs::MetricsRegistry> registry_;
  obs::Counter* queries_;
  obs::Counter* cache_hits_;
  obs::Counter* batches_;
  obs::Counter* publishes_;
  obs::Counter* reload_failures_;
  obs::Counter* rejected_;
  obs::Counter* bad_requests_;
  obs::Counter* kind_partner_;
  obs::Counter* kind_group_;
  obs::Counter* kind_reciprocal_;
  obs::Gauge* queue_depth_;
  obs::Gauge* in_flight_;
  obs::Histogram* queue_wait_us_;
  obs::Histogram* ta_search_us_;
  obs::Histogram* quantize_scan_us_;
  obs::Histogram* rerank_us_;

  std::vector<std::thread> workers_;
};

}  // namespace gemrec::serving

#endif  // GEMREC_SERVING_RECOMMENDATION_SERVICE_H_
