#ifndef GEMREC_SERVING_INGESTION_QUEUE_H_
#define GEMREC_SERVING_INGESTION_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "ebsn/types.h"
#include "embedding/online_update.h"
#include "obs/metrics.h"
#include "serving/ingest_journal.h"
#include "serving/recommendation_service.h"
#include "serving/snapshot_builder.h"

namespace gemrec::serving {

struct IngestionQueueOptions {
  /// Write-ahead journal file (required). Every acknowledged record is
  /// fdatasync'd here before its fold-in runs, and replayed by Start
  /// after a crash.
  std::string journal_path;
  /// Checkpoint base path; empty disables checkpointing (the journal
  /// then grows until the process restarts against a fresh base).
  std::string checkpoint_base;
  /// Admission bound: records accepted but not yet applied. Beyond it
  /// SubmitAsync sheds synchronously (the net layer answers with a
  /// typed OVERLOADED error).
  size_t max_pending = 1024;
  /// Records drained per ingest-thread visit — one journal fsync
  /// covers the whole batch (group commit).
  size_t max_apply_batch = 64;
  /// Publish a delta snapshot once this many records applied since the
  /// last publish...
  size_t publish_threshold = 64;
  /// ...or once the oldest unpublished record is this stale.
  std::chrono::milliseconds publish_interval{200};
  /// Checkpoint (store + pool to checkpoint_base, then journal reset)
  /// every this many applied records; 0 = only explicit Checkpoint().
  size_t checkpoint_every = 0;
  /// Nice value for the ingest thread (0 = inherit the process
  /// priority). Delta publishes rebuild the full snapshot on this
  /// thread, which on few-core hosts steals cycles from the
  /// latency-critical read path; a positive nice keeps rebuild CPU
  /// subordinate to query workers. Writes are durability-critical,
  /// not latency-critical, so acks tolerating a deprioritized thread
  /// is the intended trade.
  int thread_nice = 10;
  /// Fold-in options for cold events and cold users. Must stay fixed
  /// for the journal's lifetime: replay re-applies records with these
  /// options, and bitwise recovery needs the originals.
  embedding::OnlineUpdateOptions foldin;
  /// Attendance-nudge options (iterations is the nudge step count).
  embedding::OnlineUpdateOptions nudge = [] {
    embedding::OnlineUpdateOptions o;
    o.iterations = 20;
    return o;
  }();
  /// Test-only gate invoked on the ingest thread before each batch is
  /// processed; lets tests hold the thread to fill the queue
  /// deterministically.
  std::function<void()> pre_batch_hook_for_testing;
};

/// Admission verdict of SubmitAsync — typed so the net layer can map
/// each case to its wire error without string matching.
enum class IngestAdmission {
  kAccepted,
  kQueueFull,      // -> ErrorCode::kOverloaded
  kShuttingDown,   // -> ErrorCode::kShuttingDown
};

/// The write path of the serving stack: a bounded MPSC queue feeding
/// one ingest thread that (1) validates records against the staging
/// store, (2) appends them to the CRC32C write-ahead journal and
/// fdatasyncs once per batch, (3) acknowledges them, (4) applies the
/// fold-ins to the SnapshotBuilder staging store, and (5) publishes
/// delta snapshots through RecommendationService::Publish on a
/// threshold/interval cadence — so a live attendance/new-event stream
/// becomes retrievable (including through the quantized batched path,
/// which ModelSnapshot rebuilds on every publish) without a retrain.
///
/// Durability contract: an acknowledged record survives SIGKILL at any
/// instruction. Start() recovers the newest checkpoint (or the
/// operator-provided base store the builder was constructed with),
/// replays every journal record past the checkpoint watermark onto the
/// staging store, and publishes the recovered snapshot before
/// accepting new work. Ack order == journal order == replay order, and
/// each fold-in is deterministic given the staging store and fixed
/// options, so recovery is bitwise identical to the crashed timeline.
///
/// Threading: SubmitAsync is thread-safe and non-blocking (net event
/// loop callers). The builder is owned by the ingest thread after
/// Start — respecting SnapshotBuilder's single-updater contract — and
/// control operations (ReloadBase, Checkpoint) are executed on it via
/// a control queue. Ack callbacks run on the ingest thread and must
/// not block.
class IngestionQueue {
 public:
  /// Fired on the ingest thread once the record is durably journaled
  /// and applied (OK + its seq), or with the validation/apply error.
  using AckCallback = std::function<void(Status, uint64_t seq)>;

  /// `service` and `builder` must outlive the queue. The builder's
  /// staging store at Start is the recovery base when no checkpoint
  /// exists.
  IngestionQueue(RecommendationService* service, SnapshotBuilder* builder,
                 IngestionQueueOptions options);
  /// Calls Shutdown().
  ~IngestionQueue();

  IngestionQueue(const IngestionQueue&) = delete;
  IngestionQueue& operator=(const IngestionQueue&) = delete;

  /// Recovery + liftoff: loads the newest checkpoint (if any), opens
  /// the journal (truncating a torn tail), replays records past the
  /// watermark, publishes the recovered snapshot, then starts the
  /// ingest thread. Must be called once before any Submit.
  Status Start();

  /// Non-blocking admission. On kAccepted the ack callback fires on
  /// the ingest thread exactly once; on any other verdict it never
  /// fires.
  IngestAdmission SubmitAsync(IngestRecord record, AckCallback ack);

  /// Blocking wrapper: admission + ack in one call. Returns the
  /// record's seq, the ack error, or the admission verdict mapped to
  /// FailedPrecondition (shutting down) / a "queue full" IoError-free
  /// typed message.
  Result<uint64_t> Submit(IngestRecord record);

  /// Blocks until everything accepted before the call is processed AND
  /// covered by a publish (forces an off-cadence publish if needed).
  void Flush();

  /// Swaps the base artifact under live ingestion — `serve --reload`
  /// composed with the write path. Executed on the ingest thread:
  /// load + shape-validate `path`, reset the staging store, re-apply
  /// the journal tail (acked records since the last checkpoint — older
  /// ones are assumed baked into the retrained artifact), checkpoint
  /// if enabled, build + publish. On failure the staging store and
  /// serving snapshot are untouched and the service's reload-failure
  /// counter is bumped.
  Status ReloadBase(const std::string& path);

  /// Forces a checkpoint now (requires checkpoint_base). On success
  /// the journal has been reset and older checkpoints pruned.
  Status Checkpoint();

  /// Drains accepted records (journal + apply + ack), publishes any
  /// unpublished tail, then stops the ingest thread. Idempotent.
  /// Submissions racing Shutdown are either drained or shed with
  /// kShuttingDown — never dropped silently after an ack.
  void Shutdown();

  /// Observability for tests/bench (thread-safe).
  uint64_t accepted() const;
  uint64_t processed() const;
  uint64_t last_acked_seq() const;
  uint64_t publishes() const;
  /// Records recovered by Start's replay.
  uint64_t replayed() const { return replayed_; }
  /// False when Start found (and dropped) a torn journal tail.
  bool recovered_clean() const { return recovered_clean_; }

 private:
  struct Pending {
    IngestRecord record;
    AckCallback ack;
    std::chrono::steady_clock::time_point accepted_at;
  };
  enum class ControlKind { kReload, kCheckpoint };
  struct Control {
    ControlKind kind;
    std::string path;  // kReload
    std::promise<Status> done;
  };

  void IngestLoop();
  void ProcessBatch(std::vector<Pending>* batch);
  Status ValidateRecord(const IngestRecord& record) const;
  Status ApplyRecord(const IngestRecord& record);
  /// Publishes when forced or when threshold/interval say so.
  void MaybePublish(bool force);
  void DoPublish();
  Status DoCheckpoint();
  Status DoReload(const std::string& path);
  void RegisterMetrics();

  RecommendationService* service_;
  SnapshotBuilder* builder_;
  IngestionQueueOptions options_;

  std::optional<IngestJournal> journal_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // ingest thread wakeups
  std::condition_variable flush_cv_;  // Flush/Submit waiters
  std::deque<Pending> pending_;
  std::deque<Control> controls_;
  bool shutdown_ = false;
  bool started_ = false;
  bool stopped_ = false;  // ingest thread has exited
  uint64_t accepted_count_ = 0;
  uint64_t processed_count_ = 0;  // acked (ok or error)
  /// True while some applied record is not yet covered by a publish —
  /// what Flush actually waits on (rejected records never publish, so
  /// a publish-count watermark would deadlock it).
  bool has_unpublished_ = false;
  uint64_t flush_waiters_ = 0;

  // Ingest-thread-only state.
  uint64_t seq_counter_ = 0;
  uint64_t checkpoint_seq_ = 0;
  uint64_t last_acked_seq_value_ = 0;
  std::vector<ebsn::EventId> pool_;
  std::unordered_set<ebsn::EventId> pool_members_;
  /// Acked records since the last checkpoint (mirrors the journal);
  /// re-applied by ReloadBase onto a fresh base artifact.
  std::vector<IngestRecord> live_records_;
  size_t unpublished_ = 0;
  size_t applied_since_checkpoint_ = 0;
  std::chrono::steady_clock::time_point oldest_unpublished_;

  uint64_t replayed_ = 0;
  bool recovered_clean_ = true;

  // gemrec_ingest_* metric handles (registry owned by the service).
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_applied_ = nullptr;
  obs::Counter* m_journal_appends_ = nullptr;
  obs::Counter* m_journal_bytes_ = nullptr;
  obs::Counter* m_publishes_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_replayed_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_unpublished_ = nullptr;
  obs::Histogram* m_journal_append_us_ = nullptr;
  obs::Histogram* m_apply_us_ = nullptr;
  obs::Histogram* m_publish_build_us_ = nullptr;
  obs::Histogram* m_publish_lag_us_ = nullptr;
  obs::Histogram* m_ack_us_ = nullptr;

  std::thread thread_;
};

}  // namespace gemrec::serving

#endif  // GEMREC_SERVING_INGESTION_QUEUE_H_
