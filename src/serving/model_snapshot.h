#ifndef GEMREC_SERVING_MODEL_SNAPSHOT_H_
#define GEMREC_SERVING_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "ebsn/types.h"
#include "embedding/embedding_store.h"
#include "recommend/batch_ta_search.h"
#include "recommend/gem_model.h"
#include "recommend/quantized_space.h"
#include "recommend/space_index.h"
#include "recommend/space_transform.h"
#include "recommend/ta_search.h"
#include "shard/partitioner.h"

namespace gemrec::serving {

/// Build-time knobs of a snapshot (the offline half of §IV).
struct SnapshotOptions {
  /// Pruning level forwarded to BuildCandidatePairs (0 = unpruned).
  uint32_t top_k_events_per_partner = 20;
  /// Optional pool for the candidate-pair build (caller participates).
  ThreadPool* build_pool = nullptr;
  /// Also build the QuantizedSpace + BatchTaSearch companion at publish
  /// time (the default serving retrieval). Disable to serve exact
  /// per-query TA only (`gemrec serve --exact-ta`).
  bool build_quantized = true;
  /// Keep only this shard's deterministic pair-id-hash slice of the
  /// candidate-pair space (`gemrec serve --shard i/N`). The default
  /// spec keeps everything; the filter applies identically to the
  /// exact and quantized searchers (both are built over the filtered
  /// space).
  shard::ShardSpec shard;
};

/// An immutable, self-contained serving model: a deep copy of the
/// embedding store plus everything derived from it — the GemModel
/// adapter, the transformed (2K+1)-dim event-partner space and the TA
/// index. Because the store is copied at construction, the caller's
/// staging store can keep absorbing OnlineUpdate fold-ins while this
/// snapshot serves; publishing the result is building a new snapshot
/// and handing it to RecommendationService::Publish.
///
/// Lifetime: snapshots are shared-ptr managed. The service's publish
/// slot holds one reference and every in-flight worker batch holds
/// another, so a retired snapshot (swapped out while queries still run
/// on it) stays alive exactly until the last draining query drops its
/// reference — epoch/refcount retirement with no reader-side blocking.
class ModelSnapshot {
 public:
  /// Copies `store` and materializes the candidate space over `events`
  /// x all users (pruned per options). The heavy build runs on the
  /// calling thread (plus `build_pool`), never on serving workers.
  ModelSnapshot(const embedding::EmbeddingStore& store,
                std::vector<ebsn::EventId> events, uint32_t num_users,
                const SnapshotOptions& options);

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  /// Publish epoch; 0 until the snapshot is published (the service
  /// stamps it inside Publish, before the swap becomes visible).
  uint64_t epoch() const { return epoch_; }

  /// FNV-1a hash of the recommendable event pool — the "filter hash"
  /// component of cache keys, so results computed for one filtered
  /// pool are never replayed for another.
  uint64_t pool_hash() const { return pool_hash_; }

  const recommend::GemModel& model() const { return model_; }
  const recommend::TransformedSpace& space() const { return *space_; }
  const recommend::TaSearch& searcher() const { return *ta_; }
  /// Quantized batched retrieval companions; null when the snapshot was
  /// built with build_quantized = false.
  const recommend::QuantizedSpace* quantized() const {
    return quant_.get();
  }
  const recommend::BatchTaSearch* batch_searcher() const {
    return batch_.get();
  }
  const std::vector<ebsn::EventId>& events() const { return events_; }
  /// The shard spec this snapshot was built under (unsharded by
  /// default). Group queries need it at query time: events are
  /// partitioned by event-id hash, not baked into the pair space.
  const shard::ShardSpec& shard_spec() const { return shard_; }
  /// This shard's slice of the event pool under OwnsEvent — the scan
  /// domain of group queries. Equals events() when unsharded; the N
  /// slices are disjoint and their union is events(), so the shard
  /// merger reassembles the single-instance group ranking exactly.
  const std::vector<ebsn::EventId>& shard_events() const {
    return shard_events_;
  }
  uint32_t num_users() const { return num_users_; }
  size_t num_candidate_pairs() const { return space_->num_points(); }
  const embedding::EmbeddingStore& store() const { return store_; }

  /// Fills `out` with the query point q_u of this snapshot's space.
  void QueryVector(ebsn::UserId u, std::vector<float>* out) const {
    space_->QueryVector(model_, u, out);
  }

  /// Hashes an event pool the way pool_hash() does (exposed so callers
  /// can pre-compute cache keys without a snapshot).
  static uint64_t HashEventPool(const std::vector<ebsn::EventId>& events);

 private:
  friend class RecommendationService;  // stamps epoch_ at publish

  uint64_t epoch_ = 0;
  embedding::EmbeddingStore store_;  // deep copy; owned
  recommend::GemModel model_;        // points into store_
  std::vector<ebsn::EventId> events_;
  shard::ShardSpec shard_;
  std::vector<ebsn::EventId> shard_events_;
  uint32_t num_users_;
  uint64_t pool_hash_;
  std::unique_ptr<recommend::TransformedSpace> space_;
  std::unique_ptr<recommend::SpaceIndex> index_;  // shared by searchers
  std::unique_ptr<recommend::TaSearch> ta_;
  std::unique_ptr<recommend::QuantizedSpace> quant_;
  std::unique_ptr<recommend::BatchTaSearch> batch_;
};

}  // namespace gemrec::serving

#endif  // GEMREC_SERVING_MODEL_SNAPSHOT_H_
