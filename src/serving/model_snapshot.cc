#include "serving/model_snapshot.h"

#include <utility>

#include "recommend/candidate_index.h"

namespace gemrec::serving {

uint64_t ModelSnapshot::HashEventPool(
    const std::vector<ebsn::EventId>& events) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const ebsn::EventId x : events) {
    h ^= static_cast<uint64_t>(x);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ModelSnapshot::ModelSnapshot(const embedding::EmbeddingStore& store,
                             std::vector<ebsn::EventId> events,
                             uint32_t num_users,
                             const SnapshotOptions& options)
    : store_(store),
      model_(&store_, "gem-snapshot"),
      events_(std::move(events)),
      shard_(options.shard),
      num_users_(num_users),
      pool_hash_(HashEventPool(events_)) {
  // Group queries scan whole events, which the pair-granular shard
  // filter below does not partition (every shard sees pairs of most
  // events); their disjoint cover is this event-id-hash slice.
  if (shard_.unsharded()) {
    shard_events_ = events_;
  } else {
    for (const ebsn::EventId x : events_) {
      if (shard::OwnsEvent(shard_, x)) shard_events_.push_back(x);
    }
  }
  auto pairs = recommend::BuildCandidatePairs(
      model_, events_, num_users_, options.top_k_events_per_partner,
      options.build_pool);
  // Shard filter AFTER the (deterministic) candidate build: every
  // shard derives the identical full pair list and keeps its disjoint
  // hash slice, so the N slices reassemble the single-instance space
  // exactly.
  if (!options.shard.unsharded()) {
    std::erase_if(pairs, [&](const recommend::CandidatePair& p) {
      return !shard::OwnsPair(options.shard, p.event, p.partner);
    });
  }
  space_ = std::make_unique<recommend::TransformedSpace>(model_,
                                                         std::move(pairs));
  // One grouping/sort pass shared by the exact and quantized searchers.
  index_ = std::make_unique<recommend::SpaceIndex>(space_.get());
  ta_ = std::make_unique<recommend::TaSearch>(index_.get());
  if (options.build_quantized) {
    quant_ = std::make_unique<recommend::QuantizedSpace>(index_.get());
    batch_ = std::make_unique<recommend::BatchTaSearch>(quant_.get());
  }
}

}  // namespace gemrec::serving
