#ifndef GEMREC_SERVING_MODEL_RELOADER_H_
#define GEMREC_SERVING_MODEL_RELOADER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "serving/recommendation_service.h"
#include "serving/snapshot_builder.h"

namespace gemrec::serving {

struct ReloaderOptions {
  /// Backoff after the first consecutive failure; doubles per failure.
  std::chrono::milliseconds initial_backoff{100};
  /// Backoff cap — the exponential never exceeds this.
  std::chrono::milliseconds max_backoff{5000};
  /// Attempts per ReloadWithRetry call (>= 1).
  uint32_t max_attempts = 3;
  /// Sleep implementation between retries; tests inject a recorder so
  /// the suite asserts the backoff schedule without real waiting.
  /// Defaults to std::this_thread::sleep_for.
  std::function<void(std::chrono::milliseconds)> sleep_fn;
};

/// The degradation-safe half of the serve reload loop: pulls a model
/// artifact from disk into the SnapshotBuilder's staging store, builds
/// a snapshot and publishes it — and when anything in that pipeline
/// fails (torn file, checksum mismatch, artifact shape incompatible
/// with the serving pool), the failure is contained: the service keeps
/// answering from its current snapshot, the reload-failure counter is
/// bumped, and the next attempt waits out a capped exponential
/// backoff. A corrupt artifact can therefore never take serving down;
/// it can only delay freshness.
///
/// Not thread-safe: one updater thread owns the reloader (and its
/// builder), matching SnapshotBuilder's threading contract.
class ModelReloader {
 public:
  /// `service` and `builder` must outlive the reloader.
  ModelReloader(RecommendationService* service, SnapshotBuilder* builder,
                const ReloaderOptions& options);

  /// One reload attempt: load + validate `path`, reset staging, build,
  /// publish. On failure returns the precise load error, records it on
  /// the service, and grows the backoff; on success resets the backoff
  /// to zero. Never touches the currently served snapshot on failure.
  Status ReloadFromFile(const std::string& path);

  /// ReloadFromFile with up to `max_attempts` tries, sleeping the
  /// current backoff between consecutive failures. Returns the last
  /// attempt's status.
  Status ReloadWithRetry(const std::string& path);

  /// Failures since the last successful reload.
  uint64_t consecutive_failures() const { return consecutive_failures_; }

  /// The wait the next retry would observe (zero after a success).
  std::chrono::milliseconds current_backoff() const;

 private:
  RecommendationService* service_;
  SnapshotBuilder* builder_;
  ReloaderOptions options_;
  uint64_t consecutive_failures_ = 0;
};

}  // namespace gemrec::serving

#endif  // GEMREC_SERVING_MODEL_RELOADER_H_
