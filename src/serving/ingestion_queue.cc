#include "serving/ingestion_queue.h"

#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "ebsn/time_slots.h"
#include "embedding/serialization.h"

namespace gemrec::serving {
namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since,
                   std::chrono::steady_clock::time_point now) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - since)
          .count());
}

}  // namespace

IngestionQueue::IngestionQueue(RecommendationService* service,
                               SnapshotBuilder* builder,
                               IngestionQueueOptions options)
    : service_(service), builder_(builder), options_(std::move(options)) {
  GEMREC_CHECK(service_ != nullptr && builder_ != nullptr);
  GEMREC_CHECK(!options_.journal_path.empty())
      << "IngestionQueue requires a journal path";
  options_.max_pending = std::max<size_t>(1, options_.max_pending);
  options_.max_apply_batch = std::max<size_t>(1, options_.max_apply_batch);
  options_.publish_threshold = std::max<size_t>(1, options_.publish_threshold);
  RegisterMetrics();
}

IngestionQueue::~IngestionQueue() { Shutdown(); }

void IngestionQueue::RegisterMetrics() {
  obs::MetricsRegistry* r = service_->metrics();
  m_accepted_ = r->GetCounter("gemrec_ingest_accepted_total",
                              "Records admitted to the ingest queue.");
  m_shed_ = r->GetCounter(
      "gemrec_ingest_shed_total",
      "Records shed at admission (queue full or shutting down).");
  m_rejected_ = r->GetCounter(
      "gemrec_ingest_rejected_total",
      "Accepted records acknowledged with a validation/journal/apply "
      "error.");
  m_applied_ = r->GetCounter("gemrec_ingest_applied_total",
                             "Fold-ins applied to the staging store.");
  m_journal_appends_ = r->GetCounter(
      "gemrec_ingest_journal_appends_total",
      "Group commits to the write-ahead journal (one fdatasync each).");
  m_journal_bytes_ = r->GetCounter("gemrec_ingest_journal_bytes_total",
                                   "Bytes appended to the journal.");
  m_publishes_ = r->GetCounter("gemrec_ingest_publishes_total",
                               "Delta snapshots published by the queue.");
  m_checkpoints_ = r->GetCounter(
      "gemrec_ingest_checkpoints_total",
      "Checkpoints written (store + pool), each followed by a journal "
      "reset.");
  m_replayed_ = r->GetCounter(
      "gemrec_ingest_replayed_total",
      "Journal records replayed onto the staging store at startup.");
  m_queue_depth_ = r->GetGauge("gemrec_ingest_queue_depth",
                               "Records accepted but not yet processed.");
  m_unpublished_ = r->GetGauge(
      "gemrec_ingest_unpublished",
      "Applied records not yet covered by a published snapshot.");
  m_journal_append_us_ = r->GetHistogram(
      "gemrec_ingest_journal_append_us",
      "Journal group-commit latency (encode + write + fdatasync).");
  m_apply_us_ = r->GetHistogram("gemrec_ingest_apply_us",
                                "Per-record fold-in latency.");
  m_publish_build_us_ = r->GetHistogram(
      "gemrec_ingest_publish_build_us",
      "Delta snapshot build + publish latency.");
  m_publish_lag_us_ = r->GetHistogram(
      "gemrec_ingest_publish_lag_us",
      "Age of the oldest unpublished record at publish time.");
  m_ack_us_ = r->GetHistogram(
      "gemrec_ingest_ack_us",
      "Admission-to-acknowledgement latency (queue wait + journal + "
      "fold-in).");
}

Status IngestionQueue::Start() {
  GEMREC_CHECK(!started_) << "IngestionQueue started twice";

  // 1. The newest checkpoint (when checkpointing is configured)
  //    replaces the operator-provided base the builder was constructed
  //    with.
  if (!options_.checkpoint_base.empty()) {
    auto checkpoint = LoadIngestCheckpoint(options_.checkpoint_base);
    if (checkpoint.ok()) {
      IngestCheckpoint& cp = checkpoint.value();
      GEMREC_RETURN_IF_ERROR(ValidateStoreShape(cp.store, *builder_));
      builder_->set_event_pool(cp.event_pool);
      builder_->ResetStagingStore(std::move(cp.store));
      checkpoint_seq_ = cp.seq;
      GEMREC_LOG(Info) << "ingest recovery: checkpoint "
                       << options_.checkpoint_base << "." << cp.seq
                       << " loaded (" << builder_->event_pool().size()
                       << " pool events)";
    } else if (checkpoint.status().code() != StatusCode::kNotFound) {
      return checkpoint.status();
    }
  }
  pool_ = builder_->event_pool();
  pool_members_ =
      std::unordered_set<ebsn::EventId>(pool_.begin(), pool_.end());

  // 2. Journal: open (dropping any torn tail), then replay records past
  //    the checkpoint watermark in ack order.
  GEMREC_ASSIGN_OR_RETURN(IngestJournal journal,
                          IngestJournal::Open(options_.journal_path));
  journal_.emplace(std::move(journal));
  GEMREC_ASSIGN_OR_RETURN(
      IngestJournal::ReplayResult replay,
      IngestJournal::Replay(options_.journal_path, checkpoint_seq_));
  recovered_clean_ = replay.clean;
  for (IngestRecord& record : replay.records) {
    Status s = ValidateRecord(record);
    if (s.ok()) s = ApplyRecord(record);
    if (!s.ok()) {
      // The same record failed the same deterministic checks when it
      // was journaled, so it was never acknowledged as applied —
      // skipping it loses nothing.
      GEMREC_LOG(Warning) << "ingest replay skips record seq " << record.seq
                          << ": " << s.ToString();
      continue;
    }
    last_acked_seq_value_ = record.seq;
    ++replayed_;
    live_records_.push_back(std::move(record));
  }
  m_replayed_->Increment(replayed_);
  if (replayed_ > 0 || !recovered_clean_) {
    GEMREC_LOG(Info) << "ingest recovery: replayed " << replayed_
                     << " journal records (tail "
                     << (recovered_clean_ ? "clean" : "torn, dropped")
                     << ")";
  }
  seq_counter_ = std::max(journal_->last_seq(), checkpoint_seq_);

  // 3. Every acknowledged write is retrievable before the first new
  //    submission is accepted.
  service_->Publish(builder_->Build());
  m_publishes_->Increment();

  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  thread_ = std::thread([this] { IngestLoop(); });
  return Status::Ok();
}

IngestAdmission IngestionQueue::SubmitAsync(IngestRecord record,
                                            AckCallback ack) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || shutdown_) {
    m_shed_->Increment();
    return IngestAdmission::kShuttingDown;
  }
  if (pending_.size() >= options_.max_pending) {
    m_shed_->Increment();
    return IngestAdmission::kQueueFull;
  }
  Pending pending;
  pending.record = std::move(record);
  pending.ack = std::move(ack);
  pending.accepted_at = std::chrono::steady_clock::now();
  pending_.push_back(std::move(pending));
  ++accepted_count_;
  m_accepted_->Increment();
  m_queue_depth_->Add(1);
  cv_.notify_one();
  return IngestAdmission::kAccepted;
}

Result<uint64_t> IngestionQueue::Submit(IngestRecord record) {
  auto state = std::make_shared<std::promise<Result<uint64_t>>>();
  std::future<Result<uint64_t>> future = state->get_future();
  const IngestAdmission admission =
      SubmitAsync(std::move(record), [state](Status status, uint64_t seq) {
        if (status.ok()) {
          state->set_value(seq);
        } else {
          state->set_value(std::move(status));
        }
      });
  switch (admission) {
    case IngestAdmission::kAccepted:
      return future.get();
    case IngestAdmission::kQueueFull:
      return Status::FailedPrecondition("ingest queue full");
    case IngestAdmission::kShuttingDown:
      return Status::FailedPrecondition("ingestion shutting down");
  }
  return Status::Internal("unhandled admission verdict");
}

void IngestionQueue::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_) return;
  const uint64_t target = accepted_count_;
  ++flush_waiters_;
  cv_.notify_one();
  flush_cv_.wait(lock, [&] {
    return (processed_count_ >= target && !has_unpublished_) || stopped_;
  });
  --flush_waiters_;
}

Status IngestionQueue::ReloadBase(const std::string& path) {
  std::future<Status> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || shutdown_) {
      return Status::FailedPrecondition("ingestion not running");
    }
    Control control;
    control.kind = ControlKind::kReload;
    control.path = path;
    done = control.done.get_future();
    controls_.push_back(std::move(control));
    cv_.notify_one();
  }
  return done.get();
}

Status IngestionQueue::Checkpoint() {
  std::future<Status> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || shutdown_) {
      return Status::FailedPrecondition("ingestion not running");
    }
    Control control;
    control.kind = ControlKind::kCheckpoint;
    done = control.done.get_future();
    controls_.push_back(std::move(control));
    cv_.notify_one();
  }
  return done.get();
}

void IngestionQueue::Shutdown() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
    if (!started_) {
      stopped_ = true;
      flush_cv_.notify_all();
      return;
    }
    to_join.swap(thread_);  // claims the join; repeat calls see empty
  }
  if (to_join.joinable()) to_join.join();
}

uint64_t IngestionQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_count_;
}

uint64_t IngestionQueue::processed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return processed_count_;
}

uint64_t IngestionQueue::last_acked_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_acked_seq_value_;
}

uint64_t IngestionQueue::publishes() const { return m_publishes_->Value(); }

Status IngestionQueue::ValidateRecord(const IngestRecord& record) const {
  // Mirrors (and tightens) the precondition checks of the fold-ins in
  // embedding/online_update.cc. Journaled-implies-applies is the replay
  // invariant, so anything the fold-in would refuse — or worse, walk
  // out of bounds on — must be refused here, before the journal append.
  const embedding::EmbeddingStore* store = builder_->staging_store();
  const uint32_t num_users = store->CountOf(graph::NodeType::kUser);
  const uint32_t num_events = store->CountOf(graph::NodeType::kEvent);
  switch (record.kind) {
    case IngestKind::kAttendance:
      if (record.user >= num_users) {
        return Status::OutOfRange("attendance user " +
                                  std::to_string(record.user) +
                                  " outside the user matrix");
      }
      if (record.event >= num_events) {
        return Status::OutOfRange("attendance event " +
                                  std::to_string(record.event) +
                                  " outside the event matrix");
      }
      return Status::Ok();
    case IngestKind::kNewEvent: {
      if (record.event >= num_events) {
        return Status::OutOfRange("new event " +
                                  std::to_string(record.event) +
                                  " outside the event matrix");
      }
      if (record.signals.region != ebsn::kInvalidId &&
          record.signals.region >=
              store->CountOf(graph::NodeType::kLocation)) {
        return Status::OutOfRange(
            "new event region outside the location matrix");
      }
      const uint32_t vocab = store->CountOf(graph::NodeType::kWord);
      for (const auto& [word, weight] : record.signals.words) {
        if (word >= vocab) {
          return Status::OutOfRange("new event word outside the vocabulary");
        }
        if (!std::isfinite(weight) || weight <= 0.0f) {
          return Status::InvalidArgument(
              "new event word weights must be finite and positive");
        }
      }
      // FoldInColdEvent links the event to its three time slots without
      // a bounds check of its own — a store trained without time nodes
      // must be refused here, not corrupt memory there.
      const uint32_t num_times = store->CountOf(graph::NodeType::kTime);
      for (const ebsn::TimeSlotId slot :
           ebsn::TimeSlotsFor(record.signals.start_time)) {
        if (slot >= num_times) {
          return Status::OutOfRange(
              "new event time slot outside the time matrix (store has " +
              std::to_string(num_times) + " time nodes)");
        }
      }
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown ingest record kind");
}

Status IngestionQueue::ApplyRecord(const IngestRecord& record) {
  switch (record.kind) {
    case IngestKind::kAttendance:
      if (record.new_user) {
        embedding::NewUserSignals signals;
        signals.attended_events.push_back(record.event);
        return builder_->FoldInUser(record.user, signals, options_.foldin);
      }
      return builder_->RecordAttendance(record.user, record.event,
                                        options_.nudge);
    case IngestKind::kNewEvent: {
      GEMREC_RETURN_IF_ERROR(
          builder_->FoldInEvent(record.event, record.signals,
                                options_.foldin));
      if (pool_members_.insert(record.event).second) {
        pool_.push_back(record.event);
        builder_->set_event_pool(pool_);
      }
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown ingest record kind");
}

void IngestionQueue::IngestLoop() {
  if (options_.thread_nice > 0) {
    // Lowering our own priority never needs privilege; failure (e.g.
    // an exotic sandbox) only costs scheduling fairness, so ignore it.
    (void)::setpriority(PRIO_PROCESS, static_cast<id_t>(::syscall(SYS_gettid)),
                        options_.thread_nice);
  }
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    const bool actionable = !pending_.empty() || !controls_.empty() ||
                            shutdown_ ||
                            (flush_waiters_ > 0 && unpublished_ > 0);
    if (!actionable) {
      if (unpublished_ > 0) {
        // Sleep at most until the interval-driven publish is due;
        // MaybePublish below fires it on timeout.
        cv_.wait_until(lock,
                       oldest_unpublished_ + options_.publish_interval);
      } else {
        cv_.wait(lock);
      }
    }

    // Control operations run between batches, lock released.
    while (!controls_.empty()) {
      Control control = std::move(controls_.front());
      controls_.pop_front();
      lock.unlock();
      Status status;
      switch (control.kind) {
        case ControlKind::kReload:
          status = DoReload(control.path);
          break;
        case ControlKind::kCheckpoint:
          status = DoCheckpoint();
          break;
      }
      control.done.set_value(std::move(status));
      lock.lock();
    }

    std::vector<Pending> batch;
    const size_t take = std::min(options_.max_apply_batch, pending_.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    // A flush or shutdown forces the publish once the queue is drained,
    // so waiters never sit out a full publish interval.
    const bool drained = pending_.empty() && controls_.empty();
    const bool force_publish =
        drained && (flush_waiters_ > 0 || shutdown_);
    lock.unlock();

    if (options_.pre_batch_hook_for_testing) {
      options_.pre_batch_hook_for_testing();
    }
    if (!batch.empty()) {
      m_queue_depth_->Sub(static_cast<int64_t>(batch.size()));
      ProcessBatch(&batch);
    }
    MaybePublish(force_publish);

    lock.lock();
    if (shutdown_ && pending_.empty() && controls_.empty()) break;
  }

  // Shutdown can land between a batch's force_publish decision and the
  // break check; publish any tail it left behind.
  lock.unlock();
  MaybePublish(/*force=*/true);
  lock.lock();
  stopped_ = true;
  flush_cv_.notify_all();
}

void IngestionQueue::ProcessBatch(std::vector<Pending>* batch) {
  struct Valid {
    Pending* pending;
    uint64_t seq;
  };
  std::vector<Valid> valid;
  valid.reserve(batch->size());
  std::vector<IngestRecord> to_journal;
  to_journal.reserve(batch->size());
  size_t processed = 0;
  uint64_t last_ok_seq = 0;
  bool any_applied = false;

  // 1. Validate before journaling: a journaled record is a record that
  //    applies, so replay can never diverge from the live timeline.
  for (Pending& pending : *batch) {
    if (Status s = ValidateRecord(pending.record); !s.ok()) {
      m_rejected_->Increment();
      ++processed;
      if (pending.ack) pending.ack(std::move(s), 0);
      continue;
    }
    const uint64_t seq = ++seq_counter_;
    pending.record.seq = seq;
    valid.push_back({&pending, seq});
    to_journal.push_back(pending.record);
  }

  // 2. Group commit: one fdatasync covers the batch. On failure nothing
  //    is durable, so every record is refused — never acked-then-lost.
  bool journaled = false;
  if (!to_journal.empty()) {
    const auto append_start = std::chrono::steady_clock::now();
    const size_t bytes_before = journal_->bytes();
    const Status journal_status = journal_->Append(to_journal);
    m_journal_append_us_->Record(
        ElapsedUs(append_start, std::chrono::steady_clock::now()));
    if (journal_status.ok()) {
      journaled = true;
      m_journal_appends_->Increment();
      m_journal_bytes_->Increment(journal_->bytes() - bytes_before);
    } else {
      GEMREC_LOG(Warning) << "ingest journal append failed, refusing "
                          << valid.size()
                          << " records: " << journal_status.ToString();
      for (Valid& v : valid) {
        m_rejected_->Increment();
        ++processed;
        if (v.pending->ack) v.pending->ack(journal_status, 0);
      }
    }
  }

  // 3. Apply + acknowledge in journal order.
  if (journaled) {
    for (Valid& v : valid) {
      const auto apply_start = std::chrono::steady_clock::now();
      Status apply_status = ApplyRecord(v.pending->record);
      const auto apply_end = std::chrono::steady_clock::now();
      m_apply_us_->Record(ElapsedUs(apply_start, apply_end));
      if (apply_status.ok()) {
        m_applied_->Increment();
        live_records_.push_back(v.pending->record);
        if (unpublished_ == 0) oldest_unpublished_ = apply_end;
        ++unpublished_;
        m_unpublished_->Add(1);
        ++applied_since_checkpoint_;
        last_ok_seq = v.seq;
        any_applied = true;
      } else {
        // Journaled but refused by the fold-in — replay skips it the
        // same deterministic way, so the timelines still agree.
        m_rejected_->Increment();
        GEMREC_LOG(Warning) << "ingest apply failed for seq " << v.seq
                            << ": " << apply_status.ToString();
      }
      ++processed;
      m_ack_us_->Record(ElapsedUs(v.pending->accepted_at, apply_end));
      if (v.pending->ack) {
        const uint64_t acked_seq = apply_status.ok() ? v.seq : 0;
        v.pending->ack(std::move(apply_status), acked_seq);
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    processed_count_ += processed;
    if (last_ok_seq != 0) last_acked_seq_value_ = last_ok_seq;
    if (any_applied) has_unpublished_ = true;
  }
  flush_cv_.notify_all();
}

void IngestionQueue::MaybePublish(bool force) {
  if (unpublished_ == 0) return;
  if (!force) {
    const auto now = std::chrono::steady_clock::now();
    const bool due =
        unpublished_ >= options_.publish_threshold ||
        now >= oldest_unpublished_ + options_.publish_interval;
    if (!due) return;
  }
  DoPublish();

  if (options_.checkpoint_every > 0 && !options_.checkpoint_base.empty() &&
      applied_since_checkpoint_ >= options_.checkpoint_every) {
    if (Status s = DoCheckpoint(); !s.ok()) {
      GEMREC_LOG(Warning) << "ingest checkpoint failed (journal keeps "
                          << "growing, durability unaffected): "
                          << s.ToString();
    }
  }
}

void IngestionQueue::DoPublish() {
  const auto start = std::chrono::steady_clock::now();
  if (unpublished_ > 0) {
    m_publish_lag_us_->Record(ElapsedUs(oldest_unpublished_, start));
  }
  service_->Publish(builder_->Build());
  m_publish_build_us_->Record(
      ElapsedUs(start, std::chrono::steady_clock::now()));
  m_publishes_->Increment();
  m_unpublished_->Sub(static_cast<int64_t>(unpublished_));
  unpublished_ = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    has_unpublished_ = false;
  }
  flush_cv_.notify_all();
}

Status IngestionQueue::DoCheckpoint() {
  if (options_.checkpoint_base.empty()) {
    return Status::FailedPrecondition(
        "checkpointing disabled (no checkpoint base configured)");
  }
  // Every journaled record is applied (or deterministically skipped) by
  // the time the loop reaches a checkpoint, so the staging store + pool
  // cover the whole journal and seq_counter_ is a valid watermark.
  const uint64_t watermark = seq_counter_;
  GEMREC_RETURN_IF_ERROR(SaveIngestCheckpoint(options_.checkpoint_base,
                                              *builder_->staging_store(),
                                              pool_, watermark));
  // The checkpoint is durable; its records in the journal are now
  // redundant. A crash before this Reset replays them onto the
  // checkpoint, where seq <= watermark filters every one out.
  GEMREC_RETURN_IF_ERROR(journal_->Reset());
  checkpoint_seq_ = watermark;
  applied_since_checkpoint_ = 0;
  live_records_.clear();
  PruneIngestCheckpoints(options_.checkpoint_base, watermark);
  m_checkpoints_->Increment();
  return Status::Ok();
}

Status IngestionQueue::DoReload(const std::string& path) {
  auto run = [&]() -> Status {
    auto store = embedding::LoadEmbeddingStore(path);
    if (!store.ok()) return store.status();
    GEMREC_RETURN_IF_ERROR(ValidateStoreShape(*store, *builder_));
    builder_->ResetStagingStore(std::move(store).value());
    // Re-apply the journal tail: acked records since the last
    // checkpoint survive the base swap (older ones are assumed baked
    // into the retrained artifact). Records the new store cannot hold
    // (e.g. a shrunken vocabulary) are skipped with a warning — their
    // effect on the previous base lives on in already-built snapshots.
    size_t reapplied = 0;
    for (const IngestRecord& record : live_records_) {
      Status s = ValidateRecord(record);
      if (s.ok()) s = ApplyRecord(record);
      if (!s.ok()) {
        GEMREC_LOG(Warning) << "reload skips journaled record seq "
                            << record.seq << ": " << s.ToString();
        continue;
      }
      ++reapplied;
    }
    GEMREC_LOG(Info) << "ingest reload: base " << path << " + " << reapplied
                     << " re-applied journal records";
    if (!options_.checkpoint_base.empty()) {
      // Fold the new base into a checkpoint so recovery after this
      // point starts from it, not from the stale pre-reload base.
      if (Status s = DoCheckpoint(); !s.ok()) {
        GEMREC_LOG(Warning) << "post-reload checkpoint failed: "
                            << s.ToString();
      }
    }
    DoPublish();
    return Status::Ok();
  };
  const Status status = run();
  if (!status.ok()) service_->RecordReloadFailure();
  return status;
}

}  // namespace gemrec::serving
