#ifndef GEMREC_SERVING_QUERY_BACKEND_H_
#define GEMREC_SERVING_QUERY_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "ebsn/types.h"
#include "obs/metrics.h"
#include "recommend/query_kinds.h"
#include "recommend/recommender.h"
#include "recommend/ta_search.h"

namespace gemrec::serving {

/// One top-n query.
struct QueryRequest {
  ebsn::UserId user = 0;
  uint32_t n = 10;
  /// Identifies the filtered event pool the caller expects (cache-key
  /// component; ModelSnapshot::pool_hash() of the pool it was built
  /// over). 0 is a valid value — it simply keys the default pool.
  uint64_t filter_hash = 0;
  /// Skip cache lookup AND insertion (always recompute).
  bool bypass_cache = false;
  /// Which workload this query asks for (see recommend/query_kinds.h).
  /// kPartner keeps the legacy wire encoding byte-for-byte; the other
  /// kinds ride the extended v2 request payload.
  recommend::QueryKind kind = recommend::QueryKind::kPartner;
  /// kGroup only: how per-member pairwise terms fold.
  recommend::GroupAggregator aggregator = recommend::GroupAggregator::kSum;
  /// kGroup only: the fixed partner set G (1..kMaxGroupMembers ids).
  /// Member order is semantic for kSum (float accumulation order) and
  /// part of the cache key.
  std::vector<ebsn::UserId> group;
};

struct QueryResponse {
  std::vector<recommend::Recommendation> items;
  /// Epoch of the snapshot that produced (or validated) the items.
  uint64_t epoch = 0;
  bool cache_hit = false;
  /// The service was shutting down and never served this request
  /// (items is empty). The net layer maps this to a typed
  /// ErrorCode::kShuttingDown instead of a response frame.
  bool rejected = false;
  /// The request was semantically invalid against the live snapshot
  /// (group member id out of range, say) — something the wire decoder
  /// cannot know. The net layer maps this to ErrorCode::kBadRequest;
  /// items is empty.
  bool bad_request = false;
  /// A downstream shard answered OVERLOADED (coordinator only). The
  /// net layer maps this to ErrorCode::kOverloaded.
  bool overloaded = false;
  /// At least one shard's answer is missing from the merge (deadline
  /// miss, dead connection, or breaker eviction), so `items` covers a
  /// subset of the candidate space. Coordinator only; single-instance
  /// answers are always complete.
  bool partial = false;
  /// Sound upper bound on the score of every candidate pair NOT in
  /// `items` (SearchStats::unreturned_bound, replayed verbatim on
  /// cache hits). -inf when nothing was left out; +inf means
  /// "unknown" (legacy peer, rejected request) and forbids any
  /// completeness claim downstream.
  float ta_bound = std::numeric_limits<float>::infinity();
  /// Search instrumentation; zeroed for cache hits.
  recommend::SearchStats stats;
};

/// Abstract asynchronous query sink the network front-end drives.
///
/// Two implementations exist: RecommendationService (a worker pool over
/// one local ModelSnapshot slice) and shard::CoordinatorBackend (a
/// scatter-gather router over N remote shard servers). NetServer and
/// its reactors only see this interface, so the same epoll front-end,
/// admission control, drain logic and stats plumbing serve both roles.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// Callback fired when the request completes — on whatever thread
  /// the backend completes it (serving worker, router thread). Must
  /// not block: the network front-end hands completed responses back
  /// to its event loop here.
  using ResponseCallback = std::function<void(QueryResponse)>;

  /// Enqueues a query that completes via callback — the zero-blocking
  /// bridge used by net::NetServer, whose epoll thread can never wait.
  virtual void SubmitAsync(const QueryRequest& request,
                           ResponseCallback callback) = 0;

  /// Saturation gauges for admission control: requests not yet
  /// claimed / currently being served. Cheap relaxed reads.
  virtual size_t QueueDepth() const = 0;
  virtual size_t InFlight() const = 0;

  /// The backend's metrics registry (stable for its lifetime); the
  /// net layer registers its own socket metrics here.
  virtual obs::MetricsRegistry* metrics() const = 0;

  /// Asynchronous stats snapshot. The default answers synchronously
  /// from the local registry — correct for any in-process backend. A
  /// coordinator overrides it to fan kStatsRequest out to its shards
  /// and merge, without ever blocking the calling reactor thread.
  /// The callback may fire synchronously (before StatsAsync returns)
  /// or later from another thread.
  using StatsCallback = std::function<void(obs::MetricsSnapshot)>;
  virtual void StatsAsync(StatsCallback callback) {
    callback(metrics()->Snapshot());
  }
};

}  // namespace gemrec::serving

#endif  // GEMREC_SERVING_QUERY_BACKEND_H_
