#include "serving/ingest_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "embedding/serialization.h"

namespace gemrec::serving {
namespace {

constexpr uint32_t kJournalMagic = 0x314C4A47u;  // "GJL1" little-endian
constexpr uint32_t kJournalVersion = 1;
constexpr size_t kJournalHeaderSize = 12;
constexpr size_t kRecordFixed = 9;  // seq + kind
constexpr size_t kAttendanceBody = 9;
constexpr size_t kNewEventFixed = 20;
constexpr size_t kWordStride = 8;
/// Sanity cap on one record's payload — far above any real record
/// (the wire layer already bounds word lists), so a corrupt length
/// field cannot make the reader allocate gigabytes.
constexpr uint32_t kMaxRecordPayload = 1u << 20;

size_t g_write_chunk = 0;
std::function<void(size_t)>* g_write_observer = nullptr;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open directory", dir));
  }
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) {
    return Status::IoError(ErrnoMessage("fsync failed on directory", dir));
  }
  return Status::Ok();
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

float BitsFloat(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

constexpr uint8_t kAttendanceFlagNewUser = 1u << 0;

std::vector<uint8_t> EncodeHeader() {
  std::vector<uint8_t> out;
  out.reserve(kJournalHeaderSize);
  PutU32(kJournalMagic, &out);
  PutU32(kJournalVersion, &out);
  PutU32(Crc32c(out.data(), 8), &out);
  return out;
}

Status CheckHeader(const uint8_t* data, size_t n) {
  if (n < kJournalHeaderSize) {
    return Status::InvalidArgument("ingest journal shorter than its header");
  }
  if (GetU32(data) != kJournalMagic) {
    return Status::InvalidArgument("ingest journal bad magic");
  }
  if (GetU32(data + 4) != kJournalVersion) {
    return Status::InvalidArgument("ingest journal unsupported version " +
                                   std::to_string(GetU32(data + 4)));
  }
  if (GetU32(data + 8) != Crc32c(data, 8)) {
    return Status::InvalidArgument("ingest journal header CRC mismatch");
  }
  return Status::Ok();
}

/// Decodes one record payload (already CRC-verified). Strict: length
/// mismatches and unknown kinds fail, so a record that parses is a
/// record the writer produced.
Status DecodeRecordPayload(const uint8_t* p, size_t n, IngestRecord* out) {
  if (n < kRecordFixed) {
    return Status::InvalidArgument("ingest record payload too short");
  }
  out->seq = GetU64(p);
  const uint8_t kind = p[8];
  p += kRecordFixed;
  n -= kRecordFixed;
  switch (kind) {
    case static_cast<uint8_t>(IngestKind::kAttendance): {
      if (n != kAttendanceBody) {
        return Status::InvalidArgument("attendance record length mismatch");
      }
      out->kind = IngestKind::kAttendance;
      out->user = GetU32(p);
      out->event = GetU32(p + 4);
      const uint8_t flags = p[8];
      if ((flags & ~kAttendanceFlagNewUser) != 0) {
        return Status::InvalidArgument("attendance record unknown flags");
      }
      out->new_user = (flags & kAttendanceFlagNewUser) != 0;
      out->signals = {};
      return Status::Ok();
    }
    case static_cast<uint8_t>(IngestKind::kNewEvent): {
      if (n < kNewEventFixed) {
        return Status::InvalidArgument("new-event record too short");
      }
      out->kind = IngestKind::kNewEvent;
      out->user = 0;
      out->new_user = false;
      out->event = GetU32(p);
      out->signals.region = GetU32(p + 4);
      out->signals.start_time = static_cast<int64_t>(GetU64(p + 8));
      const uint32_t words = GetU32(p + 16);
      if (n != kNewEventFixed + kWordStride * size_t{words}) {
        return Status::InvalidArgument("new-event record length mismatch");
      }
      out->signals.words.clear();
      out->signals.words.reserve(words);
      const uint8_t* w = p + kNewEventFixed;
      for (uint32_t i = 0; i < words; ++i, w += kWordStride) {
        out->signals.words.emplace_back(GetU32(w), BitsFloat(GetU32(w + 4)));
      }
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument("ingest record unknown kind " +
                                     std::to_string(kind));
  }
}

struct ScanResult {
  std::vector<IngestRecord> records;
  size_t valid_bytes = kJournalHeaderSize;
  uint64_t last_seq = 0;
  bool clean = true;
};

/// Walks the records after a validated header. The first record that
/// is incomplete, CRC-dirty or unparseable ends the valid prefix.
ScanResult ScanRecords(const uint8_t* data, size_t n) {
  ScanResult result;
  size_t pos = kJournalHeaderSize;
  while (pos < n) {
    const size_t avail = n - pos;
    if (avail < 4) break;
    const uint32_t len = GetU32(data + pos);
    if (len > kMaxRecordPayload) break;
    const size_t total = 4 + size_t{len} + 4;
    if (avail < total) break;
    const uint32_t want = Crc32c(data + pos, 4 + len);
    if (want != GetU32(data + pos + 4 + len)) break;
    IngestRecord record;
    if (!DecodeRecordPayload(data + pos + 4, len, &record).ok()) break;
    result.last_seq = std::max(result.last_seq, record.seq);
    result.records.push_back(std::move(record));
    pos += total;
    result.valid_bytes = pos;
  }
  result.clean = result.valid_bytes == n;
  return result;
}

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open", path));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status s = Status::IoError(ErrnoMessage("read failed on", path));
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    bytes.insert(bytes.end(), buf, buf + r);
  }
  ::close(fd);
  return bytes;
}

}  // namespace

void IngestJournal::EncodeRecord(const IngestRecord& record,
                                 std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  payload.reserve(kRecordFixed + kNewEventFixed +
                  kWordStride * record.signals.words.size());
  PutU64(record.seq, &payload);
  payload.push_back(static_cast<uint8_t>(record.kind));
  switch (record.kind) {
    case IngestKind::kAttendance:
      PutU32(record.user, &payload);
      PutU32(record.event, &payload);
      payload.push_back(record.new_user ? kAttendanceFlagNewUser : 0);
      break;
    case IngestKind::kNewEvent:
      PutU32(record.event, &payload);
      PutU32(record.signals.region, &payload);
      PutU64(static_cast<uint64_t>(record.signals.start_time), &payload);
      PutU32(static_cast<uint32_t>(record.signals.words.size()), &payload);
      for (const auto& [word, weight] : record.signals.words) {
        PutU32(word, &payload);
        PutU32(FloatBits(weight), &payload);
      }
      break;
  }
  GEMREC_CHECK(payload.size() <= kMaxRecordPayload);
  const size_t start = out->size();
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->insert(out->end(), payload.begin(), payload.end());
  PutU32(Crc32c(out->data() + start, 4 + payload.size()), out);
}

Result<IngestJournal> IngestJournal::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open journal", path));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    const Status s = Status::IoError(ErrnoMessage("lseek failed on", path));
    ::close(fd);
    return s;
  }
  if (size == 0) {
    // Fresh journal: a durable header before the first append, so a
    // crash right after Open leaves a well-formed (empty) file.
    const std::vector<uint8_t> header = EncodeHeader();
    IngestJournal journal(fd, path, header.size(), 0);
    if (Status s = journal.WriteAll(header.data(), header.size()); !s.ok()) {
      return s;
    }
    if (::fdatasync(fd) != 0) {
      return Status::IoError(ErrnoMessage("fdatasync failed on", path));
    }
    GEMREC_RETURN_IF_ERROR(SyncParentDir(path));
    return journal;
  }

  auto bytes_or = ReadWholeFile(path);
  if (!bytes_or.ok()) {
    ::close(fd);
    return bytes_or.status();
  }
  std::vector<uint8_t> bytes = std::move(bytes_or).value();
  if (Status s = CheckHeader(bytes.data(), bytes.size()); !s.ok()) {
    ::close(fd);
    return s;
  }
  ScanResult scan = ScanRecords(bytes.data(), bytes.size());
  if (!scan.clean) {
    // Torn/corrupt tail from a crashed predecessor: cut it so new
    // records append after the last valid one. Every byte dropped here
    // belongs to a record that was never fsynced-and-acknowledged.
    GEMREC_LOG(Warning) << "ingest journal " << path << " drops "
                        << (bytes.size() - scan.valid_bytes)
                        << " torn tail bytes ("
                        << scan.records.size() << " valid records kept)";
    if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
      const Status s =
          Status::IoError(ErrnoMessage("ftruncate failed on", path));
      ::close(fd);
      return s;
    }
    if (::fdatasync(fd) != 0) {
      const Status s =
          Status::IoError(ErrnoMessage("fdatasync failed on", path));
      ::close(fd);
      return s;
    }
  }
  if (::lseek(fd, static_cast<off_t>(scan.valid_bytes), SEEK_SET) < 0) {
    const Status s = Status::IoError(ErrnoMessage("lseek failed on", path));
    ::close(fd);
    return s;
  }
  return IngestJournal(fd, path, scan.valid_bytes, scan.last_seq);
}

IngestJournal::IngestJournal(IngestJournal&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      bytes_(other.bytes_),
      last_seq_(other.last_seq_) {
  other.fd_ = -1;
}

IngestJournal& IngestJournal::operator=(IngestJournal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    bytes_ = other.bytes_;
    last_seq_ = other.last_seq_;
    other.fd_ = -1;
  }
  return *this;
}

IngestJournal::~IngestJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status IngestJournal::WriteAll(const uint8_t* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    size_t chunk = n - written;
    if (g_write_chunk > 0) chunk = std::min(chunk, g_write_chunk);
    const ssize_t w = ::write(fd_, data + written, chunk);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write failed on", path_));
    }
    written += static_cast<size_t>(w);
    if (g_write_observer != nullptr) {
      (*g_write_observer)(bytes_ + written);
    }
  }
  return Status::Ok();
}

Status IngestJournal::Append(const std::vector<IngestRecord>& records) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("append on a closed journal");
  }
  if (records.empty()) return Status::Ok();
  std::vector<uint8_t> buf;
  for (const IngestRecord& record : records) {
    GEMREC_CHECK(record.seq > last_seq_)
        << "ingest journal seq must be monotonic: " << record.seq
        << " after " << last_seq_;
    EncodeRecord(record, &buf);
  }
  if (Status s = WriteAll(buf.data(), buf.size()); !s.ok()) {
    // A partial batch may be on disk; roll the file back so the
    // in-memory watermark and the bytes stay in sync (the records were
    // never acknowledged). If even that fails, Open's scan drops the
    // torn tail on the next start.
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) == 0) {
      ::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET);
    }
    return s;
  }
  // The durability point: ack only after this returns.
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(ErrnoMessage("fdatasync failed on", path_));
  }
  bytes_ += buf.size();
  for (const IngestRecord& record : records) {
    last_seq_ = std::max(last_seq_, record.seq);
  }
  return Status::Ok();
}

Status IngestJournal::AppendOne(const IngestRecord& record) {
  return Append({record});
}

Status IngestJournal::Reset() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("reset on a closed journal");
  }
  GEMREC_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Create(path_));
  const std::vector<uint8_t> header = EncodeHeader();
  GEMREC_RETURN_IF_ERROR(file.Append(header.data(), header.size()));
  GEMREC_RETURN_IF_ERROR(file.Commit());
  const int fd = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot reopen journal", path_));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const Status s = Status::IoError(ErrnoMessage("lseek failed on", path_));
    ::close(fd);
    return s;
  }
  ::close(fd_);
  fd_ = fd;
  bytes_ = kJournalHeaderSize;
  last_seq_ = 0;
  return Status::Ok();
}

Result<IngestJournal::ReplayResult> IngestJournal::Replay(
    const std::string& path, uint64_t after_seq) {
  GEMREC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadWholeFile(path));
  GEMREC_RETURN_IF_ERROR(CheckHeader(bytes.data(), bytes.size()));
  ScanResult scan = ScanRecords(bytes.data(), bytes.size());
  ReplayResult result;
  result.clean = scan.clean;
  result.dropped_bytes = bytes.size() - scan.valid_bytes;
  for (IngestRecord& record : scan.records) {
    if (record.seq > after_seq) result.records.push_back(std::move(record));
  }
  return result;
}

void IngestJournal::SetWriteChunkForTesting(size_t bytes) {
  g_write_chunk = bytes;
}

void IngestJournal::SetWriteObserverForTesting(
    std::function<void(size_t)> observer) {
  delete g_write_observer;
  g_write_observer =
      observer ? new std::function<void(size_t)>(std::move(observer))
               : nullptr;
}

namespace {

constexpr uint32_t kPoolMagic = 0x4C4F5047u;  // "GPOL" little-endian

std::string CheckpointPath(const std::string& base, uint64_t seq) {
  return base + "." + std::to_string(seq);
}

Status SavePoolSidecar(const std::string& path,
                       const std::vector<ebsn::EventId>& pool) {
  std::vector<uint8_t> bytes;
  bytes.reserve(12 + 4 * pool.size());
  PutU32(kPoolMagic, &bytes);
  PutU32(static_cast<uint32_t>(pool.size()), &bytes);
  for (const ebsn::EventId event : pool) PutU32(event, &bytes);
  PutU32(Crc32c(bytes.data(), bytes.size()), &bytes);
  GEMREC_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Create(path));
  GEMREC_RETURN_IF_ERROR(file.Append(bytes.data(), bytes.size()));
  return file.Commit();
}

Result<std::vector<ebsn::EventId>> LoadPoolSidecar(const std::string& path) {
  GEMREC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadWholeFile(path));
  if (bytes.size() < 12) {
    return Status::InvalidArgument("pool sidecar too short: " + path);
  }
  if (GetU32(bytes.data()) != kPoolMagic) {
    return Status::InvalidArgument("pool sidecar bad magic: " + path);
  }
  if (GetU32(bytes.data() + bytes.size() - 4) !=
      Crc32c(bytes.data(), bytes.size() - 4)) {
    return Status::InvalidArgument("pool sidecar CRC mismatch: " + path);
  }
  const uint32_t count = GetU32(bytes.data() + 4);
  if (bytes.size() != 12 + 4 * size_t{count}) {
    return Status::InvalidArgument("pool sidecar length mismatch: " + path);
  }
  std::vector<ebsn::EventId> pool;
  pool.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    pool.push_back(GetU32(bytes.data() + 8 + 4 * size_t{i}));
  }
  return pool;
}

/// Lists the numeric suffixes of `<base>.<seq>` entries, newest first.
std::vector<uint64_t> ListCheckpointSeqs(const std::string& base) {
  namespace fs = std::filesystem;
  const fs::path base_path(base);
  const fs::path dir = base_path.parent_path().empty()
                           ? fs::path(".")
                           : base_path.parent_path();
  const std::string prefix = base_path.filename().string() + ".";
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix))
      continue;
    const std::string suffix = name.substr(prefix.size());
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const uint64_t seq = std::strtoull(suffix.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') continue;
    seqs.push_back(seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

}  // namespace

Status SaveIngestCheckpoint(const std::string& base,
                            const embedding::EmbeddingStore& store,
                            const std::vector<ebsn::EventId>& event_pool,
                            uint64_t seq) {
  const std::string path = CheckpointPath(base, seq);
  // Pool first: the store rename is the commit point, and a committed
  // store must always find its pool.
  GEMREC_RETURN_IF_ERROR(SavePoolSidecar(path + ".pool", event_pool));
  return embedding::SaveEmbeddingStore(store, path);
}

Result<IngestCheckpoint> LoadIngestCheckpoint(const std::string& base) {
  for (const uint64_t seq : ListCheckpointSeqs(base)) {
    const std::string path = CheckpointPath(base, seq);
    auto store = embedding::LoadEmbeddingStore(path);
    if (!store.ok()) {
      GEMREC_LOG(Warning) << "ingest checkpoint " << path
                          << " unreadable, trying an older one: "
                          << store.status().ToString();
      continue;
    }
    auto pool = LoadPoolSidecar(path + ".pool");
    if (!pool.ok()) {
      GEMREC_LOG(Warning) << "ingest checkpoint " << path
                          << " has an unreadable pool sidecar, trying an "
                          << "older one: " << pool.status().ToString();
      continue;
    }
    return IngestCheckpoint{std::move(store).value(),
                            std::move(pool).value(), seq};
  }
  return Status::NotFound("no readable checkpoint under " + base + ".*");
}

void PruneIngestCheckpoints(const std::string& base, uint64_t keep_seq) {
  namespace fs = std::filesystem;
  for (const uint64_t seq : ListCheckpointSeqs(base)) {
    if (seq >= keep_seq) continue;
    std::error_code rm;
    fs::remove(fs::path(CheckpointPath(base, seq)), rm);
    fs::remove(fs::path(CheckpointPath(base, seq) + ".pool"), rm);
  }
}

}  // namespace gemrec::serving
