#include "serving/recommendation_service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace gemrec::serving {

RecommendationService::RecommendationService(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      registry_(std::make_unique<obs::MetricsRegistry>()) {
  queries_ = registry_->GetCounter(
      "gemrec_service_queries_total",
      "Queries served (cache hits included); bumped by workers.");
  cache_hits_ = registry_->GetCounter(
      "gemrec_service_cache_hits_total",
      "Queries answered from the epoch-stamped result cache.");
  batches_ = registry_->GetCounter(
      "gemrec_service_batches_total",
      "Queue visits that drained at least one request.");
  publishes_ = registry_->GetCounter(
      "gemrec_service_publishes_total",
      "Snapshot swaps (model epochs made live).");
  reload_failures_ = registry_->GetCounter(
      "gemrec_service_reload_failures_total",
      "Model reloads that failed while the previous snapshot kept "
      "serving.");
  rejected_ = registry_->GetCounter(
      "gemrec_service_rejected_total",
      "Requests refused because they arrived during/after Shutdown.");
  bad_requests_ = registry_->GetCounter(
      "gemrec_service_bad_requests_total",
      "Requests refused as semantically invalid against the live "
      "snapshot (out-of-range user or group member, empty group).");
  kind_partner_ = registry_->GetCounter(
      "gemrec_query_kind_total{kind=\"partner\"}",
      "Queries served by kind: joint event-partner ranking (Eqn 8).");
  kind_group_ = registry_->GetCounter(
      "gemrec_query_kind_total{kind=\"group\"}",
      "Queries served by kind: group-event ranking (aggregated "
      "pairwise terms over a fixed partner set).");
  kind_reciprocal_ = registry_->GetCounter(
      "gemrec_query_kind_total{kind=\"reciprocal\"}",
      "Queries served by kind: reciprocal partner ranking "
      "(min of the two directed scores).");
  queue_depth_ = registry_->GetGauge(
      "gemrec_service_queue_depth",
      "Requests enqueued but not yet claimed by a worker.");
  in_flight_ = registry_->GetGauge(
      "gemrec_service_in_flight",
      "Requests claimed by workers and currently being served.");
  queue_wait_us_ = registry_->GetHistogram(
      "gemrec_service_queue_wait_us",
      "Microseconds a request waited in the queue before a worker "
      "claimed it.");
  ta_search_us_ = registry_->GetHistogram(
      "gemrec_service_ta_search_us",
      "Microseconds one TA top-n search took on a worker (cache "
      "misses only; batched-mode entries are the per-miss share of "
      "their batch).");
  quantize_scan_us_ = registry_->GetHistogram(
      "gemrec_service_quantize_scan_us",
      "Microseconds one batch spent in the quantized stage (query "
      "quantization, batched components, sorts, TA walk). Batched "
      "retrieval only.");
  rerank_us_ = registry_->GetHistogram(
      "gemrec_service_rerank_us",
      "Microseconds one batch spent re-scoring survivors in exact "
      "fp32. Batched retrieval only.");

  options_.num_workers = std::max(1u, options_.num_workers);
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RecommendationService::~RecommendationService() { Shutdown(); }

void RecommendationService::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      shutdown_ = true;
    }
    queue_ready_.notify_all();
    // Taking snapshot_mu_ before notifying closes the race with a
    // worker that evaluated the snapshot-wait predicate (shutdown_
    // still false) but has not blocked yet: it holds snapshot_mu_
    // until the wait parks, so this lock acquisition orders the
    // notification after it.
    { std::lock_guard<std::mutex> lock(snapshot_mu_); }
    snapshot_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  });
}

uint64_t RecommendationService::Publish(
    std::shared_ptr<ModelSnapshot> snapshot) {
  GEMREC_CHECK(snapshot != nullptr);
  // Publish-once: a snapshot is immutable while readable, so stamping
  // the epoch of an already-published (possibly still-draining)
  // snapshot would be a data race. Build a fresh one per publish.
  GEMREC_CHECK(snapshot->epoch_ == 0)
      << "snapshot published twice (epoch " << snapshot->epoch_ << ")";
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    epoch = next_epoch_++;
    // Stamp before the swap becomes visible: any reader that sees this
    // snapshot sees its final epoch.
    snapshot->epoch_ = epoch;
    snapshot_ = std::move(snapshot);
  }
  publishes_->Increment();
  snapshot_ready_.notify_all();
  return epoch;
}

std::shared_ptr<const ModelSnapshot>
RecommendationService::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::future<QueryResponse> RecommendationService::Submit(
    const QueryRequest& request) {
  PendingRequest pending;
  pending.request = request;
  std::future<QueryResponse> future = pending.promise.get_future();
  Enqueue(std::move(pending));
  return future;
}

void RecommendationService::SubmitAsync(const QueryRequest& request,
                                        ResponseCallback callback) {
  GEMREC_CHECK(callback != nullptr);
  PendingRequest pending;
  pending.request = request;
  pending.callback = std::move(callback);
  Enqueue(std::move(pending));
}

void RecommendationService::Enqueue(PendingRequest pending) {
  pending.enqueue_time = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!shutdown_) {
      queue_.push_back(std::move(pending));
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      queue_ready_.notify_one();
      return;
    }
  }
  // Racing Shutdown (a SubmitAsync from a net worker while the server
  // tears down, say) must fail the one request, not abort the process:
  // complete it — outside queue_mu_, the callback may take other locks
  // — with an empty response marked rejected.
  rejected_->Increment();
  QueryResponse response;
  response.rejected = true;
  pending.Complete(std::move(response));
}

QueryResponse RecommendationService::Query(const QueryRequest& request) {
  return Submit(request).get();
}

void RecommendationService::RecordReloadFailure() {
  reload_failures_->Increment();
}

ServiceStats RecommendationService::stats() const {
  ServiceStats s;
  s.queries = queries_->Value();
  s.cache_hits = cache_hits_->Value();
  s.batches = batches_->Value();
  s.publishes = publishes_->Value();
  s.reload_failures = reload_failures_->Value();
  s.rejected = rejected_->Value();
  s.queue_depth = QueueDepth();
  s.in_flight = InFlight();
  return s;
}

void RecommendationService::WorkerLoop() {
  // Per-worker reusable state: after warm-up the TA query path makes
  // no heap allocation (scratch + hits keep their capacity).
  WorkerState state;
  std::vector<PendingRequest> batch;

  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_ready_.wait(lock,
                        [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      const size_t take = std::min(options_.max_batch, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      in_flight_->Add(static_cast<int64_t>(take));
    }
    // Queue-wait latency, recorded outside the lock: how long each
    // claimed request sat unowned (the batching/saturation signal the
    // queue_depth gauge cannot show in time units).
    const auto claimed_at = std::chrono::steady_clock::now();
    for (const PendingRequest& pending : batch) {
      queue_wait_us_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              claimed_at - pending.enqueue_time)
              .count()));
    }

    // Acquire the serving snapshot once per batch: the whole batch is
    // answered under a single epoch. Blocks only before the FIRST
    // publish ever; a reload never blocks queries, it just swaps what
    // the next batch acquires.
    std::shared_ptr<const ModelSnapshot> snapshot;
    {
      std::unique_lock<std::mutex> lock(snapshot_mu_);
      snapshot_ready_.wait(lock, [this] {
        if (snapshot_ != nullptr) return true;
        std::lock_guard<std::mutex> qlock(queue_mu_);
        return shutdown_;
      });
      snapshot = snapshot_;
    }
    if (snapshot == nullptr) {
      // Shutting down before any model was published: answer with
      // empty epoch-0 rejected responses rather than leaving broken
      // promises (the net layer turns these into SHUTTING_DOWN).
      for (PendingRequest& pending : batch) {
        rejected_->Increment();
        QueryResponse response;
        response.rejected = true;
        pending.Complete(std::move(response));
      }
      in_flight_->Sub(static_cast<int64_t>(batch.size()));
      continue;
    }

    batches_->Increment();
    ServeBatch(&batch, *snapshot, &state);
    in_flight_->Sub(static_cast<int64_t>(batch.size()));
    // `snapshot` drops its reference here; if a Publish retired it
    // mid-batch and this was the last reader, it is destroyed now.
  }
}

void RecommendationService::CompleteMiss(
    PendingRequest* pending, QueryResponse response,
    const std::vector<recommend::SearchHit>& hits, uint64_t epoch) {
  const QueryRequest& request = pending->request;
  response.items.reserve(hits.size());
  for (const recommend::SearchHit& hit : hits) {
    response.items.push_back(recommend::Recommendation{
        hit.pair.event, hit.pair.partner, hit.score});
  }
  // The search's unreturned-score bound travels with the response (a
  // sharded coordinator needs it to certify merge completeness) and
  // into the cache, so a future hit replays the same certificate.
  response.ta_bound = response.stats.unreturned_bound;
  if (!request.bypass_cache) {
    cache_.Insert(CacheKey::For(request), epoch, response.items,
                  response.ta_bound);
  }
  pending->Complete(std::move(response));
}

/// Group and reciprocal queries, identical in both retrieval modes:
/// group scoring has no sorted-list structure to prune with (the
/// aggregate depends on the whole member set), so it scans the shard's
/// event slice exhaustively; reciprocal refinement runs on the exact
/// TA engine because its certificate compares reciprocal scores
/// against the forward bound in the engine's own A+B score domain —
/// the quantized path's flat re-rank domain differs by float rounding,
/// which would make the strict-inequality stopping rule unsound.
void RecommendationService::ServeSpecialKind(PendingRequest* pending,
                                             const ModelSnapshot& snapshot,
                                             WorkerState* state) {
  const uint64_t epoch = snapshot.epoch();
  const QueryRequest& request = pending->request;
  QueryResponse response;
  response.epoch = epoch;
  const CacheKey key = CacheKey::For(request);
  if (!request.bypass_cache &&
      cache_.Lookup(key, epoch, &response.items, &response.ta_bound)) {
    response.cache_hit = true;
    cache_hits_->Increment();
    pending->Complete(std::move(response));
    return;
  }

  // Semantic validation the wire decoder cannot do: ids must resolve
  // in the live snapshot's store. Typed bad_request, never a crash or
  // a silently-empty answer.
  const uint32_t user_rows =
      snapshot.store().CountOf(graph::NodeType::kUser);
  bool invalid = request.user >= user_rows;
  if (request.kind == recommend::QueryKind::kGroup) {
    invalid = invalid || request.group.empty();
    for (const ebsn::UserId m : request.group) {
      invalid = invalid || m >= user_rows;
    }
  }
  if (invalid) {
    bad_requests_->Increment();
    response.bad_request = true;
    pending->Complete(std::move(response));
    return;
  }

  const auto search_start = std::chrono::steady_clock::now();
  if (request.kind == recommend::QueryKind::kGroup) {
    float bound = 0.0f;
    response.items = recommend::GroupTopEvents(
        snapshot.model(), snapshot.shard_events(), request.user,
        request.group, request.aggregator, request.n, &bound);
    response.stats.points_examined = snapshot.shard_events().size();
    response.stats.examined_fraction =
        snapshot.shard_events().empty() ? 0.0 : 1.0;
    response.stats.unreturned_bound = bound;
  } else {
    float bound = 0.0f;
    response.items = recommend::ReciprocalSearch(
        snapshot.model(), snapshot.searcher(), snapshot.space(),
        request.user, request.n, &state->recip, &bound, &response.stats);
  }
  ta_search_us_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - search_start)
          .count()));
  response.ta_bound = response.stats.unreturned_bound;
  if (!request.bypass_cache) {
    cache_.Insert(key, epoch, response.items, response.ta_bound);
  }
  pending->Complete(std::move(response));
}

void RecommendationService::ServeBatch(std::vector<PendingRequest>* batch,
                                       const ModelSnapshot& snapshot,
                                       WorkerState* state) {
  if (options_.use_batch_ta && snapshot.batch_searcher() != nullptr) {
    ServeBatchQuantized(batch, snapshot, state);
    return;
  }
  const uint64_t epoch = snapshot.epoch();
  const uint32_t user_rows = snapshot.store().CountOf(graph::NodeType::kUser);
  for (PendingRequest& pending : *batch) {
    const QueryRequest& request = pending.request;
    queries_->Increment();
    KindCounter(request.kind)->Increment();
    if (request.kind != recommend::QueryKind::kPartner) {
      ServeSpecialKind(&pending, snapshot, state);
      continue;
    }

    QueryResponse response;
    response.epoch = epoch;
    // An out-of-range user would index past the user matrix when the
    // query vector is built. Same typed bad_request contract as the
    // special kinds.
    if (request.user >= user_rows) {
      bad_requests_->Increment();
      response.bad_request = true;
      pending.Complete(std::move(response));
      continue;
    }
    const CacheKey key = CacheKey::For(request);
    if (!request.bypass_cache &&
        cache_.Lookup(key, epoch, &response.items, &response.ta_bound)) {
      response.cache_hit = true;
      cache_hits_->Increment();
      pending.Complete(std::move(response));
      continue;
    }

    const auto search_start = std::chrono::steady_clock::now();
    snapshot.QueryVector(request.user, &state->query_vec);
    snapshot.searcher().SearchInto(state->query_vec, request.n,
                                   /*exclude_partner=*/request.user,
                                   &state->hits, &response.stats,
                                   &state->scratch);
    ta_search_us_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - search_start)
            .count()));
    CompleteMiss(&pending, std::move(response), state->hits, epoch);
  }
}

/// Batched path: answer cache hits first, then run every miss through
/// ONE BatchTaSearch traversal (shared component stage and sorted-list
/// walk, exact fp32 re-rank). Completions happen only after the whole
/// search so the per-worker staging buffers stay stable.
void RecommendationService::ServeBatchQuantized(
    std::vector<PendingRequest>* batch, const ModelSnapshot& snapshot,
    WorkerState* state) {
  const uint64_t epoch = snapshot.epoch();
  const uint32_t user_rows = snapshot.store().CountOf(graph::NodeType::kUser);
  state->miss_index.clear();
  for (size_t i = 0; i < batch->size(); ++i) {
    PendingRequest& pending = (*batch)[i];
    const QueryRequest& request = pending.request;
    queries_->Increment();
    KindCounter(request.kind)->Increment();
    if (request.kind != recommend::QueryKind::kPartner) {
      // Mode-independent kinds: served the same way as the exact path
      // (never through the batch engine), cache handling included.
      ServeSpecialKind(&pending, snapshot, state);
      continue;
    }

    QueryResponse response;
    response.epoch = epoch;
    if (request.user >= user_rows) {
      bad_requests_->Increment();
      response.bad_request = true;
      pending.Complete(std::move(response));
      continue;
    }
    const CacheKey key = CacheKey::For(request);
    if (!request.bypass_cache &&
        cache_.Lookup(key, epoch, &response.items, &response.ta_bound)) {
      response.cache_hit = true;
      cache_hits_->Increment();
      pending.Complete(std::move(response));
      continue;
    }
    state->miss_index.push_back(i);
  }
  const size_t misses = state->miss_index.size();
  if (misses == 0) return;

  if (state->miss_queries.size() < misses) {
    state->miss_queries.resize(misses);
    state->miss_hits.resize(misses);
  }
  state->miss_batch.resize(misses);
  state->miss_stats.resize(misses);
  for (size_t m = 0; m < misses; ++m) {
    const QueryRequest& request = (*batch)[state->miss_index[m]].request;
    snapshot.QueryVector(request.user, &state->miss_queries[m]);
    state->miss_batch[m] =
        recommend::BatchQuery{state->miss_queries[m].data(), request.n,
                              /*exclude_partner=*/request.user};
  }

  recommend::BatchSearchStats batch_stats;
  snapshot.batch_searcher()->SearchBatch(
      state->miss_batch.data(), misses, state->miss_hits.data(),
      &batch_stats, &state->batch_ws, state->miss_stats.data());
  quantize_scan_us_->Record(batch_stats.quantize_scan_us);
  rerank_us_->Record(batch_stats.rerank_us);
  // Keep the per-query latency histogram meaningful in batched mode:
  // each miss is charged its share of the batch's search time.
  const uint64_t per_miss_us =
      (batch_stats.quantize_scan_us + batch_stats.rerank_us) / misses;
  for (size_t m = 0; m < misses; ++m) {
    PendingRequest& pending = (*batch)[state->miss_index[m]];
    ta_search_us_->Record(per_miss_us);
    QueryResponse response;
    response.epoch = epoch;
    response.stats = state->miss_stats[m];
    CompleteMiss(&pending, std::move(response), state->miss_hits[m], epoch);
  }
}

}  // namespace gemrec::serving
