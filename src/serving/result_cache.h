#ifndef GEMREC_SERVING_RESULT_CACHE_H_
#define GEMREC_SERVING_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ebsn/types.h"
#include "recommend/query_kinds.h"
#include "recommend/recommender.h"
#include "serving/query_backend.h"

namespace gemrec::serving {

/// Cache key of one top-n query: who asked, how many results, which
/// filtered event pool the snapshot was built over — and which
/// workload. The kind, aggregator and group-member digest are key
/// components because every kind ranks a different objective over a
/// different result shape: without them a kGroup answer (events, no
/// partners) would replay for the same user's kPartner query and vice
/// versa.
struct CacheKey {
  ebsn::UserId user = 0;
  uint32_t n = 0;
  uint64_t filter_hash = 0;
  recommend::QueryKind kind = recommend::QueryKind::kPartner;
  recommend::GroupAggregator aggregator = recommend::GroupAggregator::kSum;
  /// FNV-1a over the group member list, order-sensitive (member order
  /// is semantic for the sum aggregator); 0 for groupless kinds.
  uint64_t group_hash = 0;

  /// Order-sensitive FNV-1a digest of a group member list.
  static uint64_t HashGroup(const std::vector<ebsn::UserId>& members) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const ebsn::UserId m : members) {
      h ^= static_cast<uint64_t>(m);
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  /// The cache key a request resolves to (the single place the
  /// request -> key mapping is defined, so every lookup/insert site
  /// agrees on what distinguishes two queries).
  static CacheKey For(const QueryRequest& request) {
    CacheKey key;
    key.user = request.user;
    key.n = request.n;
    key.filter_hash = request.filter_hash;
    key.kind = request.kind;
    key.aggregator = request.aggregator;
    key.group_hash = request.kind == recommend::QueryKind::kGroup
                         ? HashGroup(request.group)
                         : 0;
    return key;
  }

  bool operator==(const CacheKey& other) const {
    return user == other.user && n == other.n &&
           filter_hash == other.filter_hash && kind == other.kind &&
           aggregator == other.aggregator &&
           group_hash == other.group_hash;
  }
};

/// Sharded LRU cache for recommendation lists.
///
/// Staleness safety: every entry records the epoch of the snapshot
/// that produced it, and Lookup only returns entries whose epoch
/// equals the caller's current-snapshot epoch — so a hit can never
/// serve results computed on a retired snapshot. Swap "invalidation"
/// is therefore O(1): publishing a new epoch makes every older entry
/// unreturnable; the stale storage is reclaimed lazily, either by the
/// epoch-mismatch eviction in Lookup or by normal LRU pressure.
///
/// Sharding: the key hash picks one of `num_shards` independently
/// locked shards, so concurrent workers rarely contend on the same
/// mutex. The shard count is clamped to `capacity`, and capacity is
/// split exactly across shards (floor share + distributed remainder),
/// so total residency never exceeds the configured capacity —
/// `size() <= capacity()` is an invariant, pinned by tests.
class ResultCache {
 public:
  /// `capacity` 0 disables the cache entirely (every Lookup misses and
  /// Insert is a no-op). `num_shards` is clamped to >= 1.
  ResultCache(size_t capacity, size_t num_shards);

  /// If present with a matching epoch, copies the list into `*out` and
  /// refreshes recency. An entry found with a stale epoch is erased.
  /// `bound_out`, when non-null, receives the entry's stored
  /// unreturned-score bound — cached hits must replay the bound the
  /// original search certified, or a sharded coordinator would see
  /// +inf/-inf garbage from hot shards and misjudge completeness.
  bool Lookup(const CacheKey& key, uint64_t epoch,
              std::vector<recommend::Recommendation>* out,
              float* bound_out = nullptr);

  /// Inserts (or overwrites) the entry, evicting the shard's LRU tail
  /// beyond capacity. An insert carrying an epoch older than the
  /// resident entry's is dropped — a straggler from a retired snapshot
  /// never downgrades a fresh result. `bound` is the search's
  /// unreturned-score bound, replayed by later Lookup hits.
  void Insert(const CacheKey& key, uint64_t epoch,
              const std::vector<recommend::Recommendation>& items,
              float bound = 0.0f);

  /// Drops every entry (used by tests; swaps rely on epoch checks).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    CacheKey key;
    uint64_t epoch = 0;
    std::vector<recommend::Recommendation> items;
    /// Unreturned-score bound certified by the search that produced
    /// `items` (SearchStats::unreturned_bound).
    float bound = 0.0f;
  };
  /// Full-avalanche finalizer (splitmix64): every output bit depends
  /// on every input bit. Shard selection takes `hash % num_shards`, so
  /// the LOW bits must vary with `user` — a single multiply + one
  /// xor-shift leaves them constant across users (user sits in the
  /// high word) and collapses the cache onto one shard.
  struct KeyHash {
    size_t operator()(const CacheKey& k) const {
      uint64_t h =
          k.filter_hash ^ ((static_cast<uint64_t>(k.user) << 32) | k.n);
      h ^= k.group_hash;
      h ^= (static_cast<uint64_t>(k.kind) << 8 |
            static_cast<uint64_t>(k.aggregator))
           << 48;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      h *= 0xc4ceb9fe1a85ec53ULL;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };
  struct Shard {
    mutable std::mutex mu;
    /// This shard's slice of the total capacity (floor + remainder).
    size_t capacity = 0;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> map;
  };

  Shard& ShardOf(const CacheKey& key) {
    return shards_[KeyHash{}(key) % shards_.size()];
  }

  size_t capacity_;
  std::vector<Shard> shards_;
};

}  // namespace gemrec::serving

#endif  // GEMREC_SERVING_RESULT_CACHE_H_
