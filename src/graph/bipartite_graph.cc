#include "graph/bipartite_graph.h"

#include <cmath>

#include "common/logging.h"

namespace gemrec::graph {
namespace {

uint64_t EdgeKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kUser:
      return "user";
    case NodeType::kEvent:
      return "event";
    case NodeType::kLocation:
      return "location";
    case NodeType::kTime:
      return "time";
    case NodeType::kWord:
      return "word";
  }
  return "?";
}

BipartiteGraph::BipartiteGraph(NodeType type_a, uint32_t num_a,
                               NodeType type_b, uint32_t num_b)
    : type_a_(type_a),
      type_b_(type_b),
      num_a_(num_a),
      num_b_(num_b),
      degree_a_(num_a, 0.0),
      degree_b_(num_b, 0.0) {}

void BipartiteGraph::AddEdge(uint32_t a, uint32_t b, double weight) {
  GEMREC_CHECK(a < num_a_ && b < num_b_)
      << "edge (" << a << "," << b << ") out of range for "
      << NodeTypeName(type_a_) << "-" << NodeTypeName(type_b_);
  GEMREC_CHECK(weight > 0.0) << "edge weight must be positive";
  edges_.push_back(Edge{a, b, weight});
  degree_a_[a] += weight;
  degree_b_[b] += weight;
  total_weight_ += weight;
  sealed_ = false;
}

void BipartiteGraph::Seal() {
  if (sealed_) return;
  std::vector<double> weights;
  weights.reserve(edges_.size());
  for (const auto& e : edges_) weights.push_back(e.weight);
  edge_sampler_.Build(weights);

  auto pow_degrees = [](const std::vector<double>& degrees) {
    std::vector<double> out(degrees.size());
    for (size_t i = 0; i < degrees.size(); ++i) {
      out[i] = degrees[i] > 0.0 ? std::pow(degrees[i], 0.75) : 0.0;
    }
    return out;
  };
  noise_a_.Build(pow_degrees(degree_a_));
  noise_b_.Build(pow_degrees(degree_b_));

  edge_set_.clear();
  edge_set_.reserve(edges_.size() * 2);
  for (const auto& e : edges_) edge_set_.insert(EdgeKey(e.a, e.b));
  sealed_ = true;
}

const Edge& BipartiteGraph::SampleEdge(Rng* rng) const {
  GEMREC_DCHECK(sealed_);
  GEMREC_CHECK(!edges_.empty()) << "sampling from an empty graph";
  return edges_[edge_sampler_.Sample(rng)];
}

uint32_t BipartiteGraph::SampleNoiseB(Rng* rng) const {
  GEMREC_DCHECK(sealed_);
  return static_cast<uint32_t>(noise_b_.Sample(rng));
}

uint32_t BipartiteGraph::SampleNoiseA(Rng* rng) const {
  GEMREC_DCHECK(sealed_);
  return static_cast<uint32_t>(noise_a_.Sample(rng));
}

bool BipartiteGraph::HasEdge(uint32_t a, uint32_t b) const {
  GEMREC_DCHECK(sealed_);
  return edge_set_.count(EdgeKey(a, b)) != 0;
}

}  // namespace gemrec::graph
