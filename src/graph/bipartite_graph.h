#ifndef GEMREC_GRAPH_BIPARTITE_GRAPH_H_
#define GEMREC_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/alias_table.h"
#include "common/rng.h"

namespace gemrec::graph {

/// The node types of the EBSN heterogeneous graph (Definition 1).
enum class NodeType : uint8_t {
  kUser = 0,
  kEvent = 1,
  kLocation = 2,
  kTime = 3,
  kWord = 4,
};

const char* NodeTypeName(NodeType type);

/// One weighted edge between side-A node `a` and side-B node `b`.
struct Edge {
  uint32_t a = 0;
  uint32_t b = 0;
  double weight = 1.0;
};

/// A weighted bipartite graph G_AB = (V_A ∪ V_B, E_AB) between two node
/// types, with the sampling machinery the trainer needs:
///  * positive-edge draws with probability ∝ edge weight (edge
///    sampling of Tang et al., adopted in §III-A so SGD gradients stay
///    weight-free);
///  * degree-based noise draws P_n(v) ∝ d_v^0.75 on either side;
///  * O(1) membership tests so noise draws can avoid true neighbors.
///
/// The user-user social graph is represented as a bipartite graph with
/// the same user set on both sides (each undirected friendship becomes
/// one (a,b) edge plus its mirror (b,a)), exactly as the paper treats
/// G_UU in joint training.
class BipartiteGraph {
 public:
  BipartiteGraph(NodeType type_a, uint32_t num_a, NodeType type_b,
                 uint32_t num_b);

  void AddEdge(uint32_t a, uint32_t b, double weight);

  /// Builds the samplers; must be called once after all AddEdge calls
  /// and before any sampling. Idempotent until new edges are added.
  void Seal();

  NodeType type_a() const { return type_a_; }
  NodeType type_b() const { return type_b_; }
  uint32_t num_a() const { return num_a_; }
  uint32_t num_b() const { return num_b_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  bool sealed() const { return sealed_; }

  /// Draws a positive edge with probability ∝ weight. Requires Seal().
  const Edge& SampleEdge(Rng* rng) const;

  /// Draws a noise node from side B (resp. A) from P_n(v) ∝ d_v^0.75,
  /// where d_v is the weighted degree. Requires Seal() and at least one
  /// edge.
  uint32_t SampleNoiseB(Rng* rng) const;
  uint32_t SampleNoiseA(Rng* rng) const;

  /// True if the edge (a, b) exists.
  bool HasEdge(uint32_t a, uint32_t b) const;

  /// Weighted degrees.
  double DegreeA(uint32_t a) const { return degree_a_[a]; }
  double DegreeB(uint32_t b) const { return degree_b_[b]; }

  /// Sum of all edge weights.
  double total_weight() const { return total_weight_; }

 private:
  NodeType type_a_;
  NodeType type_b_;
  uint32_t num_a_;
  uint32_t num_b_;
  std::vector<Edge> edges_;
  std::vector<double> degree_a_;
  std::vector<double> degree_b_;
  double total_weight_ = 0.0;

  bool sealed_ = false;
  AliasTable edge_sampler_;
  AliasTable noise_a_;
  AliasTable noise_b_;
  std::unordered_set<uint64_t> edge_set_;
};

}  // namespace gemrec::graph

#endif  // GEMREC_GRAPH_BIPARTITE_GRAPH_H_
