#ifndef GEMREC_GRAPH_GRAPH_BUILDER_H_
#define GEMREC_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "ebsn/dataset.h"
#include "ebsn/dbscan.h"
#include "ebsn/split.h"
#include "graph/bipartite_graph.h"

namespace gemrec::graph {

/// The five bipartite graphs of Figure 2 built from a training split,
/// plus the region mapping produced by DBSCAN.
struct EbsnGraphs {
  std::unique_ptr<BipartiteGraph> user_event;     // G_UX
  std::unique_ptr<BipartiteGraph> event_location; // G_XL
  std::unique_ptr<BipartiteGraph> event_time;     // G_XT
  std::unique_ptr<BipartiteGraph> event_word;     // G_XC
  std::unique_ptr<BipartiteGraph> user_user;      // G_UU

  uint32_t num_users = 0;
  uint32_t num_events = 0;
  uint32_t num_regions = 0;
  uint32_t num_time_slots = 0;
  uint32_t num_words = 0;

  /// RegionId per event (DBSCAN label).
  std::vector<ebsn::RegionId> event_region;

  /// The five graphs in Algorithm-2 order.
  std::vector<const BipartiteGraph*> All() const;
};

/// Options controlling graph construction.
struct GraphBuilderOptions {
  ebsn::DbscanParams dbscan;
  /// User-event edges are restricted to events in this split (§V-A:
  /// test/validation attendance is withheld so those events stay
  /// cold-start). Event-location/time/word edges always cover all
  /// events — cold-start vectors are learned from those.
  ebsn::Split user_event_split = ebsn::Split::kTraining;
  /// Friend pairs (a<b packed as a<<32|b) to omit from G_UU. Used for
  /// event-partner scenario 2, where the ground-truth pairs' social
  /// links are removed at training time.
  std::unordered_set<uint64_t> removed_friendships;
};

/// Packs a user pair for GraphBuilderOptions::removed_friendships.
uint64_t PackUserPair(ebsn::UserId a, ebsn::UserId b);

/// Builds the five bipartite graphs from a dataset + chronological
/// split:
///  * G_UX: weight 1 per (training) attendance (no ratings on EBSNs);
///  * G_UU: weight 1 + |X_u ∩ X_u'| over training events (Definition 2);
///  * G_XL: DBSCAN regions, weight 1 (Definition 4);
///  * G_XT: three slots per event across the 33-slot vocabulary,
///    weight 1 (Definition 5);
///  * G_XC: TF-IDF weights over the event documents (Definition 6).
/// All graphs come back sealed.
Result<EbsnGraphs> BuildEbsnGraphs(const ebsn::Dataset& dataset,
                                   const ebsn::ChronologicalSplit& split,
                                   const GraphBuilderOptions& options);

}  // namespace gemrec::graph

#endif  // GEMREC_GRAPH_GRAPH_BUILDER_H_
