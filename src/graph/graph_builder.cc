#include "graph/graph_builder.h"

#include <algorithm>

#include "common/logging.h"
#include "ebsn/tfidf.h"
#include "ebsn/time_slots.h"

namespace gemrec::graph {

std::vector<const BipartiteGraph*> EbsnGraphs::All() const {
  return {user_event.get(), event_time.get(), event_word.get(),
          event_location.get(), user_user.get()};
}

uint64_t PackUserPair(ebsn::UserId a, ebsn::UserId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

Result<EbsnGraphs> BuildEbsnGraphs(const ebsn::Dataset& dataset,
                                   const ebsn::ChronologicalSplit& split,
                                   const GraphBuilderOptions& options) {
  if (!dataset.finalized()) {
    return Status::FailedPrecondition(
        "dataset must be finalized before building graphs");
  }
  EbsnGraphs graphs;
  graphs.num_users = dataset.num_users();
  graphs.num_events = dataset.num_events();
  graphs.num_time_slots = ebsn::kNumTimeSlots;
  graphs.num_words = dataset.vocab_size();

  // ---- G_UX: training attendance only. -----------------------------
  graphs.user_event = std::make_unique<BipartiteGraph>(
      NodeType::kUser, graphs.num_users, NodeType::kEvent,
      graphs.num_events);
  for (const auto& att : dataset.attendances()) {
    if (split.SplitOf(att.event) != options.user_event_split) continue;
    graphs.user_event->AddEdge(att.user, att.event, 1.0);
  }

  // ---- G_UU: mirrored undirected edges, weight 1 + common events
  //      (common events counted over the training split only, so no
  //      test signal leaks through edge weights). ---------------------
  graphs.user_user = std::make_unique<BipartiteGraph>(
      NodeType::kUser, graphs.num_users, NodeType::kUser,
      graphs.num_users);
  for (const auto& f : dataset.friendships()) {
    if (options.removed_friendships.count(PackUserPair(f.a, f.b)) != 0) {
      continue;
    }
    size_t common = 0;
    {
      const auto& xa = dataset.EventsOf(f.a);
      const auto& xb = dataset.EventsOf(f.b);
      auto ia = xa.begin();
      auto ib = xb.begin();
      while (ia != xa.end() && ib != xb.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          if (split.IsTraining(*ia)) ++common;
          ++ia;
          ++ib;
        }
      }
    }
    const double w = 1.0 + static_cast<double>(common);
    graphs.user_user->AddEdge(f.a, f.b, w);
    graphs.user_user->AddEdge(f.b, f.a, w);
  }

  // ---- G_XL: DBSCAN regions over event coordinates. -----------------
  std::vector<ebsn::GeoPoint> coords;
  coords.reserve(graphs.num_events);
  for (uint32_t x = 0; x < graphs.num_events; ++x) {
    coords.push_back(dataset.EventLocation(x));
  }
  const ebsn::DbscanResult regions =
      ebsn::RunDbscan(coords, options.dbscan);
  graphs.num_regions = std::max(1u, regions.num_regions);
  graphs.event_region = regions.label;
  graphs.event_location = std::make_unique<BipartiteGraph>(
      NodeType::kEvent, graphs.num_events, NodeType::kLocation,
      graphs.num_regions);
  for (uint32_t x = 0; x < graphs.num_events; ++x) {
    graphs.event_location->AddEdge(x, regions.label[x], 1.0);
  }

  // ---- G_XT: three slots per event. ----------------------------------
  graphs.event_time = std::make_unique<BipartiteGraph>(
      NodeType::kEvent, graphs.num_events, NodeType::kTime,
      graphs.num_time_slots);
  for (uint32_t x = 0; x < graphs.num_events; ++x) {
    for (ebsn::TimeSlotId slot :
         ebsn::TimeSlotsFor(dataset.event(x).start_time)) {
      graphs.event_time->AddEdge(x, slot, 1.0);
    }
  }

  // ---- G_XC: TF-IDF weighted content words. --------------------------
  std::vector<std::vector<ebsn::WordId>> documents(graphs.num_events);
  for (uint32_t x = 0; x < graphs.num_events; ++x) {
    documents[x] = dataset.event(x).words;
  }
  const auto tfidf = ebsn::ComputeTfIdf(documents, dataset.vocab_size());
  graphs.event_word = std::make_unique<BipartiteGraph>(
      NodeType::kEvent, graphs.num_events, NodeType::kWord,
      graphs.num_words);
  for (uint32_t x = 0; x < graphs.num_events; ++x) {
    for (const auto& ww : tfidf[x]) {
      if (ww.weight > 0.0) {
        graphs.event_word->AddEdge(x, ww.word, ww.weight);
      }
    }
  }

  graphs.user_event->Seal();
  graphs.user_user->Seal();
  graphs.event_location->Seal();
  graphs.event_time->Seal();
  graphs.event_word->Seal();
  return graphs;
}

}  // namespace gemrec::graph
