#include "eval/report_io.h"

#include <cstdio>
#include <fstream>

namespace gemrec::eval {
namespace {

/// Escapes a CSV field (labels may contain commas or quotes).
std::string Escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string ResultsToCsv(const std::vector<LabeledResult>& results) {
  std::string csv = "label,cutoff,accuracy,ndcg,mrr,mean_rank,cases\n";
  char buffer[160];
  for (const auto& labeled : results) {
    const AccuracyResult& r = labeled.result;
    for (size_t i = 0; i < r.cutoffs.size(); ++i) {
      const double ndcg = i < r.ndcg.size() ? r.ndcg[i] : 0.0;
      std::snprintf(buffer, sizeof(buffer),
                    ",%zu,%.6f,%.6f,%.6f,%.3f,%zu\n", r.cutoffs[i],
                    r.accuracy[i], ndcg, r.mrr, r.mean_rank,
                    r.num_cases);
      csv += Escape(labeled.label);
      csv += buffer;
    }
  }
  return csv;
}

Status WriteResultsCsv(const std::vector<LabeledResult>& results,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << ResultsToCsv(results);
  if (!out.good()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

}  // namespace gemrec::eval
