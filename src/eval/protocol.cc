#include "eval/protocol.h"

#include <algorithm>

#include "common/logging.h"

namespace gemrec::eval {
namespace {

/// Deterministically subsamples `cases` down to at most `max_cases`.
template <typename T>
std::vector<T> Subsample(std::vector<T> cases, size_t max_cases,
                         Rng* rng) {
  if (max_cases == 0 || cases.size() <= max_cases) return cases;
  rng->Shuffle(&cases);
  cases.resize(max_cases);
  return cases;
}

AccuracyResult MakeResult(const RankingAccumulator& accumulator) {
  const RankingReport report = accumulator.Report();
  AccuracyResult result;
  result.cutoffs = report.cutoffs;
  result.accuracy = report.accuracy;
  result.ndcg = report.ndcg;
  result.mrr = report.mrr;
  result.mean_rank = report.mean_rank;
  result.num_cases = report.num_cases;
  return result;
}

}  // namespace

double AccuracyResult::At(size_t n) const {
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    if (cutoffs[i] == n) return accuracy[i];
  }
  GEMREC_CHECK(false) << "cutoff " << n << " was not evaluated";
  return 0.0;
}

double AccuracyResult::NdcgAt(size_t n) const {
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    if (cutoffs[i] == n) return ndcg[i];
  }
  GEMREC_CHECK(false) << "cutoff " << n << " was not evaluated";
  return 0.0;
}

AccuracyResult EvaluateColdStartEvents(
    const recommend::RecModel& model, const ebsn::Dataset& dataset,
    const ebsn::ChronologicalSplit& split,
    const ProtocolOptions& options) {
  GEMREC_CHECK(options.target_split != ebsn::Split::kTraining)
      << "evaluating on the training split is meaningless";
  Rng rng(options.seed);
  std::vector<ebsn::Attendance> cases =
      split.AttendancesIn(dataset, options.target_split);
  cases = Subsample(std::move(cases), options.max_cases, &rng);

  const auto& test_events =
      options.target_split == ebsn::Split::kValidation
          ? split.validation_events()
          : split.test_events();
  RankingAccumulator accumulator(options.cutoffs);

  for (const auto& att : cases) {
    const ebsn::UserId u = att.user;
    const ebsn::EventId positive = att.event;
    // Negatives: test events the user did not attend. When the test
    // pool is smaller than requested, use every available negative.
    const size_t want = options.event_negatives;
    const float positive_score = model.ScoreUserEvent(u, positive);
    size_t better = 0;
    size_t drawn = 0;
    if (test_events.size() <= want + 1) {
      for (ebsn::EventId x : test_events) {
        if (x == positive || dataset.Attends(u, x)) continue;
        ++drawn;
        if (model.ScoreUserEvent(u, x) > positive_score) ++better;
      }
    } else {
      size_t attempts = 0;
      while (drawn < want && attempts++ < want * 20) {
        const ebsn::EventId x =
            test_events[rng.UniformInt(test_events.size())];
        if (x == positive || dataset.Attends(u, x)) continue;
        ++drawn;
        if (model.ScoreUserEvent(u, x) > positive_score) ++better;
      }
    }
    accumulator.AddRank(better + 1);
  }
  return MakeResult(accumulator);
}

AccuracyResult EvaluateEventPartner(
    const recommend::RecModel& model, const ebsn::Dataset& dataset,
    const ebsn::ChronologicalSplit& split,
    const std::vector<PartnerTriple>& ground_truth,
    const ProtocolOptions& options) {
  GEMREC_CHECK(options.target_split != ebsn::Split::kTraining)
      << "evaluating on the training split is meaningless";
  Rng rng(options.seed + 1);
  std::vector<PartnerTriple> cases =
      Subsample(ground_truth, options.max_cases, &rng);

  const auto& test_events =
      options.target_split == ebsn::Split::kValidation
          ? split.validation_events()
          : split.test_events();
  const uint32_t num_users = dataset.num_users();
  RankingAccumulator accumulator(options.cutoffs);

  for (const auto& triple : cases) {
    const float positive_score =
        model.ScoreTriple(triple.user, triple.partner, triple.event);
    size_t better = 0;

    // Negative events: fix (u, u'), replace x. Drawn from test events
    // neither user attends together (X_test \ (X_u ∩ X_u')).
    {
      size_t drawn = 0;
      size_t attempts = 0;
      const size_t want =
          std::min(options.partner_task_event_negatives,
                   test_events.size());
      while (drawn < want && attempts++ < want * 20) {
        const ebsn::EventId x =
            test_events[rng.UniformInt(test_events.size())];
        if (x == triple.event) continue;
        if (dataset.Attends(triple.user, x) &&
            dataset.Attends(triple.partner, x)) {
          continue;
        }
        ++drawn;
        if (model.ScoreTriple(triple.user, triple.partner, x) >
            positive_score) {
          ++better;
        }
      }
    }

    // Negative partners: fix (u, x), replace u'. Drawn from users not
    // attending x (U \ U_x).
    {
      size_t drawn = 0;
      size_t attempts = 0;
      const size_t want =
          std::min(options.partner_task_user_negatives,
                   static_cast<size_t>(num_users));
      while (drawn < want && attempts++ < want * 20) {
        const ebsn::UserId v =
            static_cast<ebsn::UserId>(rng.UniformInt(num_users));
        if (v == triple.user || v == triple.partner) continue;
        if (dataset.Attends(v, triple.event)) continue;
        ++drawn;
        if (model.ScoreTriple(triple.user, v, triple.event) >
            positive_score) {
          ++better;
        }
      }
    }

    accumulator.AddRank(better + 1);
  }
  return MakeResult(accumulator);
}

}  // namespace gemrec::eval
