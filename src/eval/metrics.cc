#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace gemrec::eval {

double RankingReport::AccuracyAt(size_t n) const {
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    if (cutoffs[i] == n) return accuracy[i];
  }
  GEMREC_CHECK(false) << "cutoff " << n << " was not evaluated";
  return 0.0;
}

double RankingReport::NdcgAt(size_t n) const {
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    if (cutoffs[i] == n) return ndcg[i];
  }
  GEMREC_CHECK(false) << "cutoff " << n << " was not evaluated";
  return 0.0;
}

RankingAccumulator::RankingAccumulator(std::vector<size_t> cutoffs)
    : cutoffs_(std::move(cutoffs)) {
  GEMREC_CHECK(!cutoffs_.empty());
}

void RankingAccumulator::AddRank(size_t rank) {
  GEMREC_CHECK(rank >= 1) << "ranks are 1-based";
  ranks_.push_back(rank);
}

RankingReport RankingAccumulator::Report() const {
  RankingReport report;
  report.cutoffs = cutoffs_;
  report.num_cases = ranks_.size();
  report.accuracy.assign(cutoffs_.size(), 0.0);
  report.ndcg.assign(cutoffs_.size(), 0.0);
  if (ranks_.empty()) return report;

  double reciprocal_sum = 0.0;
  double rank_sum = 0.0;
  for (size_t rank : ranks_) {
    reciprocal_sum += 1.0 / static_cast<double>(rank);
    rank_sum += static_cast<double>(rank);
    for (size_t i = 0; i < cutoffs_.size(); ++i) {
      if (rank <= cutoffs_[i]) {
        report.accuracy[i] += 1.0;
        // Binary relevance, single positive: DCG = 1/log2(1+rank) and
        // the ideal DCG is 1, so NDCG = 1/log2(1+rank).
        report.ndcg[i] += 1.0 / std::log2(1.0 + static_cast<double>(rank));
      }
    }
  }
  const double n = static_cast<double>(ranks_.size());
  for (size_t i = 0; i < cutoffs_.size(); ++i) {
    report.accuracy[i] /= n;
    report.ndcg[i] /= n;
  }
  report.mrr = reciprocal_sum / n;
  report.mean_rank = rank_sum / n;
  return report;
}

double RecallAtK(const std::vector<uint64_t>& ranked,
                 const std::vector<uint64_t>& relevant, size_t k) {
  if (relevant.empty() || k == 0 || ranked.empty()) return 0.0;
  const std::unordered_set<uint64_t> truth(relevant.begin(),
                                           relevant.end());
  const size_t depth = std::min(k, ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < depth; ++i) {
    if (truth.count(ranked[i]) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double NdcgAtK(const std::vector<uint64_t>& ranked,
               const std::vector<uint64_t>& relevant, size_t k) {
  if (relevant.empty() || k == 0 || ranked.empty()) return 0.0;
  const std::unordered_set<uint64_t> truth(relevant.begin(),
                                           relevant.end());
  const size_t depth = std::min(k, ranked.size());
  double dcg = 0.0;
  for (size_t i = 0; i < depth; ++i) {
    if (truth.count(ranked[i]) != 0) {
      dcg += 1.0 / std::log2(2.0 + static_cast<double>(i));
    }
  }
  double idcg = 0.0;
  const size_t ideal_hits = std::min(std::min(k, truth.size()),
                                     ranked.size());
  for (size_t i = 0; i < ideal_hits; ++i) {
    idcg += 1.0 / std::log2(2.0 + static_cast<double>(i));
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

}  // namespace gemrec::eval
