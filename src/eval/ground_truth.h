#ifndef GEMREC_EVAL_GROUND_TRUTH_H_
#define GEMREC_EVAL_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ebsn/dataset.h"
#include "ebsn/split.h"
#include "ebsn/types.h"

namespace gemrec::eval {

/// One ground-truth case of the joint task: user u and partner u'
/// attended test event x together and are (or become) friends.
struct PartnerTriple {
  ebsn::UserId user = ebsn::kInvalidId;
  ebsn::UserId partner = ebsn::kInvalidId;
  ebsn::EventId event = ebsn::kInvalidId;
};

/// Builds the event-partner test set Y of §V-A: for each test event x,
/// every ordered pair (u, u') of friends who both attend x yields a
/// triple (u, u', x).
std::vector<PartnerTriple> BuildPartnerGroundTruth(
    const ebsn::Dataset& dataset, const ebsn::ChronologicalSplit& split);

/// For scenario 2 ("partners are potential friends"), the ground-truth
/// pairs' social links are removed from G_UU at training time. Returns
/// the set of PackUserPair keys to pass to
/// GraphBuilderOptions::removed_friendships.
std::unordered_set<uint64_t> FriendshipsToRemove(
    const std::vector<PartnerTriple>& triples);

}  // namespace gemrec::eval

#endif  // GEMREC_EVAL_GROUND_TRUTH_H_
