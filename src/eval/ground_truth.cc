#include "eval/ground_truth.h"

#include "graph/graph_builder.h"

namespace gemrec::eval {

std::vector<PartnerTriple> BuildPartnerGroundTruth(
    const ebsn::Dataset& dataset, const ebsn::ChronologicalSplit& split) {
  std::vector<PartnerTriple> triples;
  for (ebsn::EventId x : split.test_events()) {
    const auto& attendees = dataset.UsersOf(x);
    for (size_t i = 0; i < attendees.size(); ++i) {
      for (size_t j = i + 1; j < attendees.size(); ++j) {
        const ebsn::UserId u = attendees[i];
        const ebsn::UserId v = attendees[j];
        if (!dataset.AreFriends(u, v)) continue;
        triples.push_back(PartnerTriple{u, v, x});
        triples.push_back(PartnerTriple{v, u, x});
      }
    }
  }
  return triples;
}

std::unordered_set<uint64_t> FriendshipsToRemove(
    const std::vector<PartnerTriple>& triples) {
  std::unordered_set<uint64_t> removed;
  removed.reserve(triples.size());
  for (const auto& t : triples) {
    removed.insert(graph::PackUserPair(t.user, t.partner));
  }
  return removed;
}

}  // namespace gemrec::eval
