#ifndef GEMREC_EVAL_MODEL_SELECTION_H_
#define GEMREC_EVAL_MODEL_SELECTION_H_

#include <cstdint>
#include <vector>

#include "ebsn/dataset.h"
#include "ebsn/split.h"
#include "embedding/trainer.h"
#include "graph/graph_builder.h"

namespace gemrec::eval {

/// Grid-search model selection on the *validation* split, as §V-A
/// prescribes ("we use the conventional grid search algorithm to
/// obtain the optimal hyper-parameter setup on the validation
/// dataset"). Every candidate in the grid is a full TrainerOptions;
/// each is trained from scratch and scored by validation Accuracy@n on
/// the cold-start event task.
struct GridSearchOptions {
  /// Accuracy cutoff used as the selection criterion.
  size_t selection_cutoff = 10;
  /// Validation cases cap per candidate (0 = all).
  size_t max_cases = 300;
  uint64_t eval_seed = 99;
};

struct GridSearchCandidate {
  embedding::TrainerOptions options;
  double validation_accuracy = 0.0;
};

struct GridSearchResult {
  /// All candidates with their scores, in input order.
  std::vector<GridSearchCandidate> candidates;
  /// Index of the winner in `candidates`.
  size_t best_index = 0;

  const embedding::TrainerOptions& best_options() const {
    return candidates[best_index].options;
  }
};

/// Builds the default grid the paper tunes over: K and λ around their
/// published values (learning rate and M fixed at the published
/// α = 0.05, M = 2). `num_samples` bounds per-candidate training.
std::vector<embedding::TrainerOptions> DefaultGemGrid(
    uint64_t num_samples);

/// Trains every candidate and selects the best by validation accuracy.
/// `graphs` must have been built from `split`'s training attendance.
GridSearchResult GridSearch(
    const ebsn::Dataset& dataset, const ebsn::ChronologicalSplit& split,
    const graph::EbsnGraphs& graphs,
    const std::vector<embedding::TrainerOptions>& grid,
    const GridSearchOptions& options);

}  // namespace gemrec::eval

#endif  // GEMREC_EVAL_MODEL_SELECTION_H_
