#include "eval/model_selection.h"

#include "common/logging.h"
#include "eval/protocol.h"
#include "recommend/gem_model.h"

namespace gemrec::eval {

std::vector<embedding::TrainerOptions> DefaultGemGrid(
    uint64_t num_samples) {
  std::vector<embedding::TrainerOptions> grid;
  for (uint32_t dim : {40u, 60u, 80u}) {
    for (double lambda : {200.0, 500.0, 1000.0}) {
      embedding::TrainerOptions options =
          embedding::TrainerOptions::GemA();
      options.dim = dim;
      options.lambda = lambda;
      options.num_samples = num_samples;
      grid.push_back(options);
    }
  }
  return grid;
}

GridSearchResult GridSearch(
    const ebsn::Dataset& dataset, const ebsn::ChronologicalSplit& split,
    const graph::EbsnGraphs& graphs,
    const std::vector<embedding::TrainerOptions>& grid,
    const GridSearchOptions& options) {
  GEMREC_CHECK(!grid.empty()) << "empty hyper-parameter grid";
  GridSearchResult result;
  result.candidates.reserve(grid.size());

  ProtocolOptions protocol;
  protocol.target_split = ebsn::Split::kValidation;
  protocol.cutoffs = {options.selection_cutoff};
  protocol.max_cases = options.max_cases;
  protocol.seed = options.eval_seed;

  for (const auto& candidate_options : grid) {
    embedding::JointTrainer trainer(&graphs, candidate_options);
    trainer.Train();
    recommend::GemModel model(&trainer.store(), "grid-candidate");
    const auto report =
        EvaluateColdStartEvents(model, dataset, split, protocol);
    GridSearchCandidate candidate;
    candidate.options = candidate_options;
    candidate.validation_accuracy =
        report.At(options.selection_cutoff);
    result.candidates.push_back(candidate);
    if (candidate.validation_accuracy >
        result.candidates[result.best_index].validation_accuracy) {
      result.best_index = result.candidates.size() - 1;
    }
  }
  return result;
}

}  // namespace gemrec::eval
