#ifndef GEMREC_EVAL_METRICS_H_
#define GEMREC_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gemrec::eval {

/// Ranking metrics over a set of test cases where each case yields the
/// 1-based rank of the single positive among its candidates (the
/// paper's protocol). Beyond the paper's Accuracy@n (= hit ratio =
/// recall@n with one relevant item) we report MRR and binary NDCG@n —
/// standard in top-n recommendation evaluation.
struct RankingReport {
  std::vector<size_t> cutoffs;
  std::vector<double> accuracy;  // Accuracy@n per cutoff (Eqn 9/10)
  std::vector<double> ndcg;      // 1/log2(1+rank) when rank <= n
  double mrr = 0.0;              // mean of 1/rank
  double mean_rank = 0.0;
  size_t num_cases = 0;

  double AccuracyAt(size_t n) const;
  double NdcgAt(size_t n) const;
};

/// Accumulates per-case ranks and produces a RankingReport.
class RankingAccumulator {
 public:
  explicit RankingAccumulator(std::vector<size_t> cutoffs);

  /// Records one test case whose positive landed at `rank` (1-based).
  void AddRank(size_t rank);

  RankingReport Report() const;
  size_t num_cases() const { return ranks_.size(); }

 private:
  std::vector<size_t> cutoffs_;
  std::vector<size_t> ranks_;
};

/// Set-based Recall@k over arbitrary item keys (event ids, packed
/// (event, partner) pairs for the partner/reciprocal kinds, packed
/// group signups): |top-k ∩ relevant| / |relevant|.
///
/// Degenerate inputs have DEFINED values instead of dividing by zero
/// or reading past the list: empty `relevant` or k == 0 returns 0.0,
/// and k > ranked.size() evaluates the whole list (recall cannot see
/// items the ranker never produced).
double RecallAtK(const std::vector<uint64_t>& ranked,
                 const std::vector<uint64_t>& relevant, size_t k);

/// Binary NDCG@k over the same inputs: DCG sums 1/log2(1+pos) over
/// relevant items in the top-k; IDCG places min(k, |relevant|) hits at
/// the top. Same guards as RecallAtK — empty `relevant` or k == 0
/// returns 0.0, oversized k is clamped to the list.
double NdcgAtK(const std::vector<uint64_t>& ranked,
               const std::vector<uint64_t>& relevant, size_t k);

}  // namespace gemrec::eval

#endif  // GEMREC_EVAL_METRICS_H_
