#ifndef GEMREC_EVAL_REPORT_IO_H_
#define GEMREC_EVAL_REPORT_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eval/protocol.h"

namespace gemrec::eval {

/// One labeled evaluation result (a model or a configuration).
struct LabeledResult {
  std::string label;
  AccuracyResult result;
};

/// Renders results as CSV — one row per (label, cutoff) with accuracy,
/// NDCG, MRR, mean rank and case count — ready for plotting the
/// paper's figures from a reproduction run:
///   label,cutoff,accuracy,ndcg,mrr,mean_rank,cases
std::string ResultsToCsv(const std::vector<LabeledResult>& results);

/// Writes ResultsToCsv(results) to a file.
Status WriteResultsCsv(const std::vector<LabeledResult>& results,
                       const std::string& path);

}  // namespace gemrec::eval

#endif  // GEMREC_EVAL_REPORT_IO_H_
