#ifndef GEMREC_EVAL_PROTOCOL_H_
#define GEMREC_EVAL_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ebsn/dataset.h"
#include "ebsn/split.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "recommend/rec_model.h"

namespace gemrec::eval {

/// Accuracy@n values for a list of cutoffs, plus the auxiliary
/// ranking metrics of eval/metrics.h (MRR, NDCG@n, mean rank).
struct AccuracyResult {
  std::vector<size_t> cutoffs;
  std::vector<double> accuracy;  // parallel to cutoffs
  std::vector<double> ndcg;      // parallel to cutoffs
  double mrr = 0.0;
  double mean_rank = 0.0;
  size_t num_cases = 0;

  double At(size_t n) const;
  double NdcgAt(size_t n) const;
};

/// Protocol parameters shared by both tasks.
struct ProtocolOptions {
  std::vector<size_t> cutoffs = {1, 5, 10, 15, 20};
  /// Cold-start event task: negatives per case (paper: 1000).
  size_t event_negatives = 1000;
  /// Event-partner task: negative events and negative partners per
  /// case (paper: 500 + 500).
  size_t partner_task_event_negatives = 500;
  size_t partner_task_user_negatives = 500;
  /// Deterministic subsample of test cases (0 = use all). Keeps bench
  /// runtime bounded.
  size_t max_cases = 0;
  uint64_t seed = 99;
  /// Which held-out split supplies the positive cases and the negative
  /// pool: kTest for final numbers, kValidation for hyper-parameter
  /// tuning (§V-A tunes on the validation set). kTraining is rejected.
  ebsn::Split target_split = ebsn::Split::kTest;
};

/// Cold-start event recommendation protocol of §V-B: for each test
/// attendance (u, x), rank x against `event_negatives` events drawn
/// from X_test \ X_u; a hit at cutoff n means x ranks within the top n.
AccuracyResult EvaluateColdStartEvents(
    const recommend::RecModel& model, const ebsn::Dataset& dataset,
    const ebsn::ChronologicalSplit& split, const ProtocolOptions& options);

/// Joint event-partner protocol of §V-B: for each ground-truth triple
/// (u, u', x), build 500 negative triples by replacing x with events
/// from X_test \ (X_u ∩ X_u') and 500 by replacing u' with users from
/// U \ U_x, then rank the positive triple among the 1001 by
/// ScoreTriple.
AccuracyResult EvaluateEventPartner(
    const recommend::RecModel& model, const ebsn::Dataset& dataset,
    const ebsn::ChronologicalSplit& split,
    const std::vector<PartnerTriple>& ground_truth,
    const ProtocolOptions& options);

}  // namespace gemrec::eval

#endif  // GEMREC_EVAL_PROTOCOL_H_
