#ifndef GEMREC_EMBEDDING_EMBEDDING_STORE_H_
#define GEMREC_EMBEDDING_EMBEDDING_STORE_H_

#include <array>
#include <cstdint>

#include "common/matrix.h"
#include "common/rng.h"
#include "graph/bipartite_graph.h"

namespace gemrec::embedding {

/// The shared K-dimensional latent space: one embedding matrix per node
/// type (user, event, location, time, word). This is the parameter set
/// Θ = {x̄, l̄, t̄, c̄, ū} of Algorithm 2.
class EmbeddingStore {
 public:
  static constexpr size_t kNumTypes = 5;

  /// Allocates zeroed matrices. `counts[i]` is the node count of
  /// NodeType(i).
  EmbeddingStore(uint32_t dim, const std::array<uint32_t, kNumTypes>& counts);

  /// The paper's random Gaussian initialization N(0, stddev^2), clamped
  /// to nonnegative values (the rectifier keeps parameters nonnegative
  /// throughout training, so we start inside the feasible set).
  void InitGaussian(Rng* rng, double stddev);

  uint32_t dim() const { return dim_; }

  Matrix& MatrixOf(graph::NodeType type) {
    return matrices_[static_cast<size_t>(type)];
  }
  const Matrix& MatrixOf(graph::NodeType type) const {
    return matrices_[static_cast<size_t>(type)];
  }

  float* VectorOf(graph::NodeType type, uint32_t id) {
    return MatrixOf(type).Row(id);
  }
  const float* VectorOf(graph::NodeType type, uint32_t id) const {
    return MatrixOf(type).Row(id);
  }

  uint32_t CountOf(graph::NodeType type) const {
    return static_cast<uint32_t>(MatrixOf(type).rows());
  }

 private:
  uint32_t dim_;
  std::array<Matrix, kNumTypes> matrices_;
};

}  // namespace gemrec::embedding

#endif  // GEMREC_EMBEDDING_EMBEDDING_STORE_H_
