#include "embedding/online_update.h"

#include <cmath>
#include <cstring>
#include <unordered_set>

#include "common/alias_table.h"
#include "common/vec_math.h"
#include "ebsn/time_slots.h"

namespace gemrec::embedding {

Status FoldInColdEvent(EmbeddingStore* store, ebsn::EventId event,
                       const NewEventSignals& signals,
                       const OnlineUpdateOptions& options) {
  if (store == nullptr) {
    return Status::InvalidArgument("store is null");
  }
  if (event >= store->CountOf(graph::NodeType::kEvent)) {
    return Status::OutOfRange("event id outside the event matrix");
  }
  if (signals.region != ebsn::kInvalidId &&
      signals.region >= store->CountOf(graph::NodeType::kLocation)) {
    return Status::OutOfRange("region id outside the location matrix");
  }
  const uint32_t vocab = store->CountOf(graph::NodeType::kWord);
  for (const auto& [word, weight] : signals.words) {
    if (word >= vocab) {
      return Status::OutOfRange("word id outside the vocabulary");
    }
    if (weight <= 0.0f) {
      return Status::InvalidArgument("word weights must be positive");
    }
  }

  const uint32_t dim = store->dim();
  Rng rng(options.seed);
  float* v = store->VectorOf(graph::NodeType::kEvent, event);
  for (uint32_t f = 0; f < dim; ++f) {
    v[f] = static_cast<float>(
        std::fabs(rng.Gaussian(0.0, options.init_stddev)));
  }

  // The new event's positive neighbors (with edge weights): its words,
  // its region and its three time slots — exactly the edges the
  // offline graphs would contain.
  struct Neighbor {
    graph::NodeType type;
    uint32_t id;
    double weight;
  };
  std::vector<Neighbor> neighbors;
  for (const auto& [word, weight] : signals.words) {
    neighbors.push_back({graph::NodeType::kWord, word, weight});
  }
  if (signals.region != ebsn::kInvalidId) {
    neighbors.push_back({graph::NodeType::kLocation, signals.region, 1.0});
  }
  for (ebsn::TimeSlotId slot : ebsn::TimeSlotsFor(signals.start_time)) {
    neighbors.push_back({graph::NodeType::kTime, slot, 1.0});
  }
  if (neighbors.empty()) {
    return Status::InvalidArgument("event has no signals to fold in");
  }
  std::vector<double> weights;
  weights.reserve(neighbors.size());
  for (const auto& n : neighbors) weights.push_back(n.weight);
  AliasTable edge_sampler(weights);

  // Negative word sampling needs a non-empty vocabulary (a store built
  // without text features has vocab == 0 — drawing from it would be
  // UB) and must never pull one of the event's own words as noise,
  // matching the positive-exclusion rule of UpdateUserWithAttendance.
  const bool sample_negatives = options.negatives > 0 && vocab > 0;
  std::unordered_set<uint32_t> positive_words;
  if (sample_negatives) {
    positive_words.reserve(signals.words.size());
    for (const auto& [word, weight] : signals.words) {
      positive_words.insert(word);
    }
  }

  std::vector<float> grad(dim);
  for (uint32_t it = 0; it < options.iterations; ++it) {
    const Neighbor& n = neighbors[edge_sampler.Sample(&rng)];
    const float* w = store->VectorOf(n.type, n.id);
    std::memset(grad.data(), 0, dim * sizeof(float));
    const float positive_coeff =
        1.0f - Sigmoid(Dot(v, w, dim) - options.bias);
    Axpy(positive_coeff, w, grad.data(), dim);
    // Negative words keep the vector from inflating along dimensions
    // shared by the whole vocabulary. Only the event vector moves.
    for (uint32_t m = 0; sample_negatives && m < options.negatives; ++m) {
      const uint32_t noise = static_cast<uint32_t>(rng.UniformInt(vocab));
      if (positive_words.count(noise) != 0) continue;
      const float* wn = store->VectorOf(graph::NodeType::kWord, noise);
      const float coeff = Sigmoid(Dot(v, wn, dim) - options.bias);
      Axpy(-coeff, wn, grad.data(), dim);
    }
    const float progress =
        static_cast<float>(it) / static_cast<float>(options.iterations);
    Axpy(options.learning_rate * (1.0f - 0.9f * progress), grad.data(), v,
         dim);
    ReluInPlace(v, dim);
  }
  return Status::Ok();
}

Status FoldInColdUser(EmbeddingStore* store, ebsn::UserId user,
                      const NewUserSignals& signals,
                      const OnlineUpdateOptions& options) {
  if (store == nullptr) {
    return Status::InvalidArgument("store is null");
  }
  if (user >= store->CountOf(graph::NodeType::kUser)) {
    return Status::OutOfRange("user id outside the user matrix");
  }
  for (ebsn::EventId x : signals.attended_events) {
    if (x >= store->CountOf(graph::NodeType::kEvent)) {
      return Status::OutOfRange("event id outside the event matrix");
    }
  }
  for (ebsn::UserId v : signals.friends) {
    if (v >= store->CountOf(graph::NodeType::kUser)) {
      return Status::OutOfRange("friend id outside the user matrix");
    }
    if (v == user) {
      return Status::InvalidArgument("a user cannot befriend herself");
    }
  }
  if (signals.attended_events.empty() && signals.friends.empty()) {
    return Status::InvalidArgument("user has no signals to fold in");
  }

  const uint32_t dim = store->dim();
  const uint32_t num_events = store->CountOf(graph::NodeType::kEvent);
  Rng rng(options.seed);
  float* v = store->VectorOf(graph::NodeType::kUser, user);
  for (uint32_t f = 0; f < dim; ++f) {
    v[f] = static_cast<float>(
        std::fabs(rng.Gaussian(0.0, options.init_stddev)));
  }

  struct Neighbor {
    graph::NodeType type;
    uint32_t id;
  };
  std::vector<Neighbor> neighbors;
  for (ebsn::EventId x : signals.attended_events) {
    neighbors.push_back({graph::NodeType::kEvent, x});
  }
  for (ebsn::UserId u : signals.friends) {
    neighbors.push_back({graph::NodeType::kUser, u});
  }

  // Same rules as FoldInColdEvent: an empty event matrix (friends-only
  // store) must not be sampled at all, and the user's own attended
  // events are positives — never valid noise.
  const bool sample_negatives = options.negatives > 0 && num_events > 0;
  const std::unordered_set<uint32_t> positive_events(
      signals.attended_events.begin(), signals.attended_events.end());

  std::vector<float> grad(dim);
  for (uint32_t it = 0; it < options.iterations; ++it) {
    const Neighbor& n = neighbors[rng.UniformInt(neighbors.size())];
    const float* w = store->VectorOf(n.type, n.id);
    std::memset(grad.data(), 0, dim * sizeof(float));
    const float positive_coeff =
        1.0f - Sigmoid(Dot(v, w, dim) - options.bias);
    Axpy(positive_coeff, w, grad.data(), dim);
    // Negative events keep the vector discriminative.
    for (uint32_t m = 0; sample_negatives && m < options.negatives; ++m) {
      const uint32_t noise =
          static_cast<uint32_t>(rng.UniformInt(num_events));
      if (positive_events.count(noise) != 0) continue;
      const float* wn = store->VectorOf(graph::NodeType::kEvent, noise);
      const float coeff = Sigmoid(Dot(v, wn, dim) - options.bias);
      Axpy(-coeff, wn, grad.data(), dim);
    }
    const float progress =
        static_cast<float>(it) / static_cast<float>(options.iterations);
    Axpy(options.learning_rate * (1.0f - 0.9f * progress), grad.data(), v,
         dim);
    ReluInPlace(v, dim);
  }
  return Status::Ok();
}

Status UpdateUserWithAttendance(EmbeddingStore* store,
                                ebsn::UserId user, ebsn::EventId event,
                                const OnlineUpdateOptions& options) {
  if (store == nullptr) {
    return Status::InvalidArgument("store is null");
  }
  if (user >= store->CountOf(graph::NodeType::kUser)) {
    return Status::OutOfRange("user id outside the user matrix");
  }
  if (event >= store->CountOf(graph::NodeType::kEvent)) {
    return Status::OutOfRange("event id outside the event matrix");
  }
  const uint32_t dim = store->dim();
  const uint32_t num_events = store->CountOf(graph::NodeType::kEvent);
  Rng rng(options.seed ^ (static_cast<uint64_t>(user) << 20 ^ event));
  float* v = store->VectorOf(graph::NodeType::kUser, user);
  const float* w = store->VectorOf(graph::NodeType::kEvent, event);

  std::vector<float> grad(dim);
  for (uint32_t it = 0; it < options.iterations; ++it) {
    std::memset(grad.data(), 0, dim * sizeof(float));
    const float positive_coeff =
        1.0f - Sigmoid(Dot(v, w, dim) - options.bias);
    Axpy(positive_coeff, w, grad.data(), dim);
    for (uint32_t m = 0; m < options.negatives; ++m) {
      const uint32_t noise =
          static_cast<uint32_t>(rng.UniformInt(num_events));
      if (noise == event) continue;
      const float* wn = store->VectorOf(graph::NodeType::kEvent, noise);
      const float coeff = Sigmoid(Dot(v, wn, dim) - options.bias);
      Axpy(-coeff, wn, grad.data(), dim);
    }
    Axpy(options.learning_rate, grad.data(), v, dim);
    ReluInPlace(v, dim);
  }
  return Status::Ok();
}

}  // namespace gemrec::embedding
