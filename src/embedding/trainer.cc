#include "embedding/trainer.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace gemrec::embedding {

TrainerOptions TrainerOptions::GemA() {
  TrainerOptions o;
  o.bidirectional = true;
  o.sampler = NoiseSamplerKind::kAdaptive;
  o.schedule = GraphSchedule::kProportionalToEdges;
  return o;
}

TrainerOptions TrainerOptions::GemP() {
  TrainerOptions o;
  o.bidirectional = true;
  o.sampler = NoiseSamplerKind::kDegree;
  o.schedule = GraphSchedule::kProportionalToEdges;
  return o;
}

TrainerOptions TrainerOptions::Pte() {
  TrainerOptions o;
  o.bidirectional = false;
  o.sampler = NoiseSamplerKind::kDegree;
  o.schedule = GraphSchedule::kUniform;
  return o;
}

JointTrainer::JointTrainer(const graph::EbsnGraphs* graphs,
                           TrainerOptions options)
    : graphs_(graphs), options_(options), root_rng_(options.seed) {
  GEMREC_CHECK(graphs != nullptr);
  GEMREC_CHECK(options_.dim > 0 && options_.negatives_per_side > 0);
  // 0 = "all hardware threads"; oversized requests are capped —
  // oversubscribing hogwild workers only adds scheduler churn.
  options_.num_threads = static_cast<uint32_t>(
      ThreadPool::ClampThreads(options_.num_threads));

  store_ = std::make_unique<EmbeddingStore>(
      options_.dim,
      std::array<uint32_t, EmbeddingStore::kNumTypes>{
          graphs->num_users, graphs->num_events, graphs->num_regions,
          graphs->num_time_slots, graphs->num_words});
  store_->InitGaussian(&root_rng_, options_.init_stddev);

  switch (options_.sampler) {
    case NoiseSamplerKind::kUniform:
      noise_sampler_ = std::make_unique<UniformNoiseSampler>();
      break;
    case NoiseSamplerKind::kDegree:
      noise_sampler_ = std::make_unique<DegreeNoiseSampler>();
      break;
    case NoiseSamplerKind::kAdaptive:
      noise_sampler_ = std::make_unique<AdaptiveNoiseSampler>(
          store_.get(), options_.lambda);
      break;
  }

  // Algorithm 2 line 3: draw a graph with probability proportional to
  // its edge count (or uniformly, for the PTE configuration). Graphs
  // with no edges are excluded up front.
  std::vector<double> weights;
  for (const graph::BipartiteGraph* g : graphs->All()) {
    if (g->num_edges() == 0) continue;
    active_graphs_.push_back(g);
    weights.push_back(options_.schedule ==
                              GraphSchedule::kProportionalToEdges
                          ? static_cast<double>(g->num_edges())
                          : 1.0);
  }
  GEMREC_CHECK(!active_graphs_.empty()) << "all graphs are empty";
  graph_sampler_.Build(weights);
}

void JointTrainer::SetSignedNegatives(
    const std::vector<std::pair<uint32_t, uint32_t>>& dislikes) {
  signed_negatives_.clear();
  user_signed_negatives_.assign(graphs_->num_users, {});
  for (const auto& [user, event] : dislikes) {
    if (user >= graphs_->num_users || event >= graphs_->num_events) {
      continue;
    }
    signed_negatives_.emplace_back(user, event);
    user_signed_negatives_[user].push_back(event);
  }
}

void JointTrainer::WorkerRun(uint64_t steps, Rng* rng,
                             SgdScratch* scratch) {
  // Generous redraw budget: the adaptive sampler's top-ranked noise
  // candidates are frequently true neighbors of the context node, and
  // using a positive as a negative actively corrupts the model.
  const uint32_t kMaxRedraw = 64;
  std::vector<uint32_t> noise_b;
  std::vector<uint32_t> noise_a;
  noise_b.reserve(options_.negatives_per_side);
  noise_a.reserve(options_.negatives_per_side);
  // Evaluated once so a disabled configuration draws exactly the same
  // random sequence as builds that predate sign-aware negatives.
  const bool signed_active =
      options_.signed_negative_prob > 0.0f && !signed_negatives_.empty();

  for (uint64_t step = 0; step < steps; ++step) {
    const graph::BipartiteGraph& g =
        *active_graphs_[graph_sampler_.Sample(rng)];
    const graph::Edge& edge = g.SampleEdge(rng);
    const float* vi = store_->VectorOf(g.type_a(), edge.a);
    const float* vj = store_->VectorOf(g.type_b(), edge.b);

    // Side-B noise for context v_i.
    noise_b.clear();
    for (uint32_t m = 0; m < options_.negatives_per_side; ++m) {
      uint32_t k =
          noise_sampler_->SampleNoise(g, Side::kB, vi, rng);
      if (options_.avoid_positive_noise) {
        for (uint32_t attempt = 0;
             attempt < kMaxRedraw && (k == edge.b || g.HasEdge(edge.a, k));
             ++attempt) {
          k = noise_sampler_->SampleNoise(g, Side::kB, vi, rng);
        }
      }
      noise_b.push_back(k);
    }
    // Dislike-as-noise: on the user-event graph, a context user with
    // recorded dislikes replaces their first sampled noise event with
    // one of them — the repelled "negative" is then known-negative
    // rather than merely unobserved.
    if (signed_active && &g == graphs_->user_event.get()) {
      const auto& dislikes = user_signed_negatives_[edge.a];
      if (!dislikes.empty() &&
          rng->Bernoulli(options_.signed_negative_prob)) {
        noise_b[0] = dislikes[rng->UniformInt(dislikes.size())];
      }
    }

    // Side-A noise for context v_j (bidirectional strategy only).
    noise_a.clear();
    if (options_.bidirectional) {
      for (uint32_t m = 0; m < options_.negatives_per_side; ++m) {
        uint32_t k =
            noise_sampler_->SampleNoise(g, Side::kA, vj, rng);
        if (options_.avoid_positive_noise) {
          for (uint32_t attempt = 0;
               attempt < kMaxRedraw &&
               (k == edge.a || g.HasEdge(k, edge.b));
               ++attempt) {
            k = noise_sampler_->SampleNoise(g, Side::kA, vj, rng);
          }
        }
        noise_a.push_back(k);
      }
    }

    // Linear learning-rate decay over the configured horizon, as in
    // LINE's edge-sampling SGD.
    const uint64_t global_step =
        global_step_.fetch_add(1, std::memory_order_relaxed);
    const float progress =
        options_.num_samples == 0
            ? 0.0f
            : static_cast<float>(global_step) /
                  static_cast<float>(options_.num_samples);
    const float rate =
        options_.learning_rate *
        std::max(options_.min_rate_fraction, 1.0f - progress);
    SgdEdgeStep(store_.get(), g, edge, noise_b, noise_a, rate,
                options_.bias, scratch);
    // Explicit repulsion on a uniformly drawn dislike pair.
    if (signed_active && rng->Bernoulli(options_.signed_negative_prob)) {
      const auto& pair =
          signed_negatives_[rng->UniformInt(signed_negatives_.size())];
      SgdSignedNegativeStep(store_.get(), pair.first, pair.second, rate,
                            options_.bias, options_.signed_negative_weight,
                            scratch);
    }
    noise_sampler_->OnGradientStep();
  }
}

void JointTrainer::TrainChunk(uint64_t steps) {
  if (steps == 0) return;
  const uint32_t threads = options_.num_threads;
  if (threads == 1) {
    SgdScratch scratch(options_.dim);
    WorkerRun(steps, &root_rng_, &scratch);
  } else {
    // Hogwild: workers update the shared store without locks, as in
    // Recht et al. (the paper's asynchronous SGD choice). The pool is
    // persistent: threads - 1 workers plus the calling thread, reused
    // across chunks.
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(threads - 1);
      if (auto* adaptive =
              dynamic_cast<AdaptiveNoiseSampler*>(noise_sampler_.get())) {
        adaptive->set_rebuild_pool(pool_.get());
      }
    }
    std::vector<Rng> rngs;
    rngs.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) rngs.push_back(root_rng_.Fork());
    const uint64_t per_thread = steps / threads;
    const uint64_t remainder = steps % threads;
    pool_->ParallelFor(threads, [&](size_t t) {
      const uint64_t n = per_thread + (t < remainder ? 1 : 0);
      SgdScratch scratch(options_.dim);
      WorkerRun(n, &rngs[t], &scratch);
    });
  }
  steps_done_ += steps;
}

}  // namespace gemrec::embedding
