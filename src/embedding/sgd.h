#ifndef GEMREC_EMBEDDING_SGD_H_
#define GEMREC_EMBEDDING_SGD_H_

#include <cstdint>
#include <vector>

#include "embedding/embedding_store.h"
#include "graph/bipartite_graph.h"

namespace gemrec::embedding {

/// Scratch buffers reused across gradient steps so the hot loop does no
/// allocation. One instance per training thread.
struct SgdScratch {
  explicit SgdScratch(uint32_t dim)
      : grad_i(dim, 0.0f), grad_j(dim, 0.0f) {}
  std::vector<float> grad_i;
  std::vector<float> grad_j;
};

/// Applies one stochastic gradient step for a sampled positive edge
/// e_ij of graph `g` with the given noise nodes (Eqn 5 of the paper):
///
///   v_i += α [ (1-σ(v_iᵀv_j)) v_j − Σ_k σ(v_iᵀv_k) v_k ]   k ∈ noise_b
///   v_j += α [ (1-σ(v_iᵀv_j)) v_i − Σ_k σ(v_kᵀv_j) v_k ]   k ∈ noise_a
///   v_k −= α σ(v_iᵀv_k) v_i                                 k ∈ noise_b
///   v_k −= α σ(v_kᵀv_j) v_j                                 k ∈ noise_a
///
/// followed by the rectifier projection of every touched vector to
/// nonnegative coordinates. `noise_a` may be empty (unidirectional
/// sampling, the PTE configuration). Gradients for v_i/v_j are
/// accumulated in `scratch` before being applied, so the update matches
/// Eqn 5 exactly (no within-step feedback).
///
/// `bias` shifts the link function to σ(v_iᵀv_j − bias) — the constant
/// bias β the paper carries in its scoring function (Eqn 8). It is
/// essential under the rectifier: with all-nonnegative embeddings
/// every inner product is ≥ 0, so an unbiased σ gives every noise pair
/// repulsion ≥ 0.5 that never decays, and the all-zeros parameter
/// point becomes a global absorbing state (training collapses). With
/// bias > 0, attraction dominates repulsion near the boundary and the
/// model trains to a meaningful nonnegative equilibrium. The bias is a
/// constant, so rankings (all the recommendation tasks use) are
/// unaffected.
void SgdEdgeStep(EmbeddingStore* store, const graph::BipartiteGraph& g,
                 const graph::Edge& edge,
                 const std::vector<uint32_t>& noise_b,
                 const std::vector<uint32_t>& noise_a, float learning_rate,
                 float bias, SgdScratch* scratch);

/// Applies one sign-aware repulsion step for an explicit negative
/// (user, event) pair — a recorded dislike, not a sampled unobserved
/// pair:
///
///   v_u −= α w σ(v_uᵀv_x − bias) v_x
///   v_x −= α w σ(v_uᵀv_x − bias) v_u
///
/// followed by the rectifier projection of both vectors. This is the
/// noise term of Eqn 5 applied symmetrically with confidence weight
/// `w` (dislikes carry a definite sign, unlike sampled noise, so both
/// endpoints are pushed). Both updates use the pre-step values (the
/// event vector is snapshotted into `scratch`), so the step has no
/// within-step feedback.
void SgdSignedNegativeStep(EmbeddingStore* store, uint32_t user,
                           uint32_t event, float learning_rate, float bias,
                           float weight, SgdScratch* scratch);

}  // namespace gemrec::embedding

#endif  // GEMREC_EMBEDDING_SGD_H_
