#ifndef GEMREC_EMBEDDING_ONLINE_UPDATE_H_
#define GEMREC_EMBEDDING_ONLINE_UPDATE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ebsn/types.h"
#include "embedding/embedding_store.h"

namespace gemrec::embedding {

/// Description of a just-published event: the same content and context
/// signals the paper's cold-start argument builds on.
struct NewEventSignals {
  /// Content words with their weights (e.g. TF-IDF over the event's
  /// description against the training corpus).
  std::vector<std::pair<ebsn::WordId, float>> words;
  /// DBSCAN region the venue falls into.
  ebsn::RegionId region = ebsn::kInvalidId;
  /// Unix start time (discretized internally into the 3 time slots).
  int64_t start_time = 0;
};

/// Options of the fold-in optimization.
struct OnlineUpdateOptions {
  uint32_t iterations = 400;
  float learning_rate = 0.1f;
  /// Link-function bias; must match the bias the store was trained
  /// with (TrainerOptions::bias).
  float bias = 4.0f;
  /// Negative words sampled per positive edge.
  uint32_t negatives = 2;
  float init_stddev = 0.01f;
  uint64_t seed = 71;
};

/// Online cold-start fold-in (an extension beyond the paper's offline
/// pipeline): computes an embedding for one brand-new event from its
/// content/region/time signals *without retraining*, by running the
/// Eqn-5 update with every other vector frozen. The new vector
/// converges in milliseconds, so freshly published events become
/// recommendable immediately; periodic full retraining then folds them
/// in properly.
///
/// `store` is mutated only at row `event` of the event matrix; `event`
/// must be a valid (pre-allocated) event id. Frozen-side vectors are
/// never written, so concurrent reads of other rows stay safe.
Status FoldInColdEvent(EmbeddingStore* store, ebsn::EventId event,
                       const NewEventSignals& signals,
                       const OnlineUpdateOptions& options);

/// Online fold-in for a just-registered user: computes a user vector
/// from the first few events she registered for (and optionally her
/// initial friends), with everything else frozen — the user-side twin
/// of FoldInColdEvent. Solves the symmetric user cold-start problem at
/// serving time.
struct NewUserSignals {
  /// Events the new user registered for.
  std::vector<ebsn::EventId> attended_events;
  /// Friends she connected with at sign-up (may be empty).
  std::vector<ebsn::UserId> friends;
};

Status FoldInColdUser(EmbeddingStore* store, ebsn::UserId user,
                      const NewUserSignals& signals,
                      const OnlineUpdateOptions& options);

/// Incremental feedback update: after `user` registers for `event`,
/// nudge her *existing* vector toward the event (a handful of Eqn-5
/// positive steps plus sampled negative events, event side frozen).
/// Unlike the fold-ins above this does NOT reinitialize the vector, so
/// interest drift accumulates smoothly between retrains. `iterations`
/// in `options` is reinterpreted as the (small) number of nudge steps;
/// 10-50 is typical.
Status UpdateUserWithAttendance(EmbeddingStore* store, ebsn::UserId user,
                                ebsn::EventId event,
                                const OnlineUpdateOptions& options);

}  // namespace gemrec::embedding

#endif  // GEMREC_EMBEDDING_ONLINE_UPDATE_H_
