#include "embedding/serialization.h"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "common/logging.h"

namespace gemrec::embedding {
namespace {

constexpr char kMagicV1[8] = {'G', 'E', 'M', 'R', 'E', 'C', '0', '1'};
constexpr char kMagicV2[8] = {'G', 'E', 'M', 'R', 'E', 'C', '0', '2'};

// GEMREC02 layout constants (see serialization.h / DESIGN.md §10).
constexpr size_t kHeaderBytes = sizeof(kMagicV2) + 4 + 4 * EmbeddingStore::kNumTypes;  // 32
constexpr size_t kCrcBytes = 4;
constexpr uint32_t kMaxDim = 100000;

static_assert(std::endian::native == std::endian::little ||
                  std::endian::native == std::endian::big,
              "mixed-endian hosts are not supported");

void AppendU32Le(std::vector<uint8_t>* buf, uint32_t v) {
  buf->push_back(static_cast<uint8_t>(v));
  buf->push_back(static_cast<uint8_t>(v >> 8));
  buf->push_back(static_cast<uint8_t>(v >> 16));
  buf->push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t ReadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

/// Encodes `n` floats as little-endian binary32 into `dst` (4n bytes).
/// On little-endian hosts the representation is the raw memory.
void EncodeFloatsLe(const float* src, size_t n, uint8_t* dst) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, src, n * sizeof(float));
  } else {
    for (size_t i = 0; i < n; ++i) {
      uint32_t bits;
      std::memcpy(&bits, &src[i], sizeof(bits));
      dst[4 * i] = static_cast<uint8_t>(bits);
      dst[4 * i + 1] = static_cast<uint8_t>(bits >> 8);
      dst[4 * i + 2] = static_cast<uint8_t>(bits >> 16);
      dst[4 * i + 3] = static_cast<uint8_t>(bits >> 24);
    }
  }
}

void DecodeFloatsLe(const uint8_t* src, size_t n, float* dst) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, src, n * sizeof(float));
  } else {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t bits = ReadU32Le(src + 4 * i);
      std::memcpy(&dst[i], &bits, sizeof(bits));
    }
  }
}

Result<EmbeddingStore> LoadV1(std::ifstream& in, const std::string& path) {
  GEMREC_LOG(Warning)
      << "loading deprecated GEMREC01 artifact " << path
      << " (native-endian, no checksums); re-save to upgrade to GEMREC02";
  uint32_t dim = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!in.good() || dim == 0 || dim > kMaxDim) {
    return Status::InvalidArgument("bad dimension in " + path);
  }
  std::array<uint32_t, EmbeddingStore::kNumTypes> counts{};
  for (auto& count : counts) {
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
  }
  if (!in.good()) return Status::IoError("truncated header: " + path);

  EmbeddingStore store(dim, counts);
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    Matrix& m = store.MatrixOf(static_cast<graph::NodeType>(t));
    for (size_t r = 0; r < m.rows(); ++r) {
      in.read(reinterpret_cast<char*>(m.Row(r)),
              static_cast<std::streamsize>(m.cols() * sizeof(float)));
      if (!in.good()) {
        return Status::IoError("truncated matrix payload: " + path);
      }
    }
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument("trailing garbage after payload in " +
                                   path);
  }
  return store;
}

Result<EmbeddingStore> LoadV2(std::ifstream& in, const std::string& path,
                              const char magic[8]) {
  // Header: the magic already consumed plus dim/counts/header_crc.
  std::array<uint8_t, kHeaderBytes + kCrcBytes> header{};
  std::memcpy(header.data(), magic, sizeof(kMagicV2));
  in.read(reinterpret_cast<char*>(header.data() + sizeof(kMagicV2)),
          static_cast<std::streamsize>(header.size() - sizeof(kMagicV2)));
  if (!in.good()) {
    return Status::IoError("truncated header (file shorter than " +
                           std::to_string(header.size()) + " bytes): " +
                           path);
  }
  const uint32_t stored_header_crc = ReadU32Le(header.data() + kHeaderBytes);
  const uint32_t header_crc = Crc32c(header.data(), kHeaderBytes);
  if (stored_header_crc != header_crc) {
    return Status::IoError("header checksum mismatch in " + path +
                           " (corrupt dim/count fields?)");
  }
  const uint32_t dim = ReadU32Le(header.data() + sizeof(kMagicV2));
  if (dim == 0 || dim > kMaxDim) {
    return Status::InvalidArgument("bad dimension in " + path);
  }
  std::array<uint32_t, EmbeddingStore::kNumTypes> counts{};
  for (size_t t = 0; t < counts.size(); ++t) {
    counts[t] = ReadU32Le(header.data() + sizeof(kMagicV2) + 4 + 4 * t);
  }

  EmbeddingStore store(dim, counts);
  std::array<uint32_t, EmbeddingStore::kNumTypes + 1> section_crcs{};
  section_crcs[0] = header_crc;
  std::vector<uint8_t> row_buf(static_cast<size_t>(dim) * sizeof(float));
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    const auto type = static_cast<graph::NodeType>(t);
    Matrix& m = store.MatrixOf(type);
    uint32_t crc = 0;
    for (size_t r = 0; r < m.rows(); ++r) {
      in.read(reinterpret_cast<char*>(row_buf.data()),
              static_cast<std::streamsize>(row_buf.size()));
      if (!in.good()) {
        return Status::IoError(
            std::string("truncated payload in ") +
            graph::NodeTypeName(type) + " section (row " +
            std::to_string(r) + " of " + std::to_string(m.rows()) +
            "): " + path);
      }
      crc = ExtendCrc32c(crc, row_buf.data(), row_buf.size());
      DecodeFloatsLe(row_buf.data(), m.cols(), m.Row(r));
    }
    uint8_t crc_bytes[kCrcBytes];
    in.read(reinterpret_cast<char*>(crc_bytes), kCrcBytes);
    if (!in.good()) {
      return Status::IoError(std::string("truncated checksum after ") +
                             graph::NodeTypeName(type) + " section: " +
                             path);
    }
    if (ReadU32Le(crc_bytes) != crc) {
      return Status::IoError(std::string("checksum mismatch in ") +
                             graph::NodeTypeName(type) + " section: " +
                             path);
    }
    section_crcs[t + 1] = crc;
  }

  std::vector<uint8_t> crc_words;
  crc_words.reserve(section_crcs.size() * 4);
  for (const uint32_t crc : section_crcs) AppendU32Le(&crc_words, crc);
  uint8_t footer_bytes[kCrcBytes];
  in.read(reinterpret_cast<char*>(footer_bytes), kCrcBytes);
  if (!in.good()) {
    return Status::IoError("truncated footer checksum: " + path);
  }
  if (ReadU32Le(footer_bytes) !=
      Crc32c(crc_words.data(), crc_words.size())) {
    return Status::IoError("footer checksum mismatch in " + path);
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument("trailing garbage after footer in " +
                                   path);
  }
  return store;
}

}  // namespace

size_t SerializedSizeV2(const EmbeddingStore& store) {
  size_t size = kHeaderBytes + kCrcBytes;
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    const auto type = static_cast<graph::NodeType>(t);
    size += static_cast<size_t>(store.CountOf(type)) * store.dim() *
                sizeof(float) +
            kCrcBytes;
  }
  return size + kCrcBytes;  // footer
}

Status SaveEmbeddingStore(const EmbeddingStore& store,
                          const std::string& path) {
  GEMREC_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Create(path));

  std::vector<uint8_t> header;
  header.reserve(kHeaderBytes + kCrcBytes);
  header.insert(header.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));
  AppendU32Le(&header, store.dim());
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    AppendU32Le(&header,
                store.CountOf(static_cast<graph::NodeType>(t)));
  }
  std::array<uint32_t, EmbeddingStore::kNumTypes + 1> section_crcs{};
  section_crcs[0] = Crc32c(header.data(), header.size());
  AppendU32Le(&header, section_crcs[0]);
  GEMREC_RETURN_IF_ERROR(file.Append(header.data(), header.size()));

  // Row-wise so the dense little-endian on-disk layout is independent
  // of the in-memory aligned row stride.
  std::vector<uint8_t> row_buf(static_cast<size_t>(store.dim()) *
                               sizeof(float));
  std::vector<uint8_t> crc_word;
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    const Matrix& m = store.MatrixOf(static_cast<graph::NodeType>(t));
    uint32_t crc = 0;
    for (size_t r = 0; r < m.rows(); ++r) {
      EncodeFloatsLe(m.Row(r), m.cols(), row_buf.data());
      crc = ExtendCrc32c(crc, row_buf.data(), row_buf.size());
      GEMREC_RETURN_IF_ERROR(file.Append(row_buf.data(), row_buf.size()));
    }
    section_crcs[t + 1] = crc;
    crc_word.clear();
    AppendU32Le(&crc_word, crc);
    GEMREC_RETURN_IF_ERROR(file.Append(crc_word.data(), crc_word.size()));
  }

  std::vector<uint8_t> crc_words;
  crc_words.reserve(section_crcs.size() * 4);
  for (const uint32_t crc : section_crcs) AppendU32Le(&crc_words, crc);
  crc_word.clear();
  AppendU32Le(&crc_word, Crc32c(crc_words.data(), crc_words.size()));
  GEMREC_RETURN_IF_ERROR(file.Append(crc_word.data(), crc_word.size()));

  return file.Commit();
}

Status SaveEmbeddingStoreV1ForTesting(const EmbeddingStore& store,
                                      const std::string& path) {
  GEMREC_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Create(path));
  GEMREC_RETURN_IF_ERROR(file.Append(kMagicV1, sizeof(kMagicV1)));
  const uint32_t dim = store.dim();
  GEMREC_RETURN_IF_ERROR(file.Append(&dim, sizeof(dim)));
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    const uint32_t count = store.CountOf(static_cast<graph::NodeType>(t));
    GEMREC_RETURN_IF_ERROR(file.Append(&count, sizeof(count)));
  }
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    const Matrix& m = store.MatrixOf(static_cast<graph::NodeType>(t));
    for (size_t r = 0; r < m.rows(); ++r) {
      GEMREC_RETURN_IF_ERROR(
          file.Append(m.Row(r), m.cols() * sizeof(float)));
    }
  }
  return file.Commit();
}

Result<EmbeddingStore> LoadEmbeddingStore(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good()) {
    return Status::IoError("truncated magic (file shorter than 8 bytes): " +
                           path);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    return LoadV2(in, path, magic);
  }
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    return LoadV1(in, path);
  }
  return Status::InvalidArgument("bad magic in " + path +
                                 " (not a GEMREC artifact)");
}

}  // namespace gemrec::embedding
