#include "embedding/serialization.h"

#include <array>
#include <cstring>
#include <fstream>

namespace gemrec::embedding {
namespace {

constexpr char kMagic[8] = {'G', 'E', 'M', 'R', 'E', 'C', '0', '1'};

}  // namespace

Status SaveEmbeddingStore(const EmbeddingStore& store,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  const uint32_t dim = store.dim();
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    const uint32_t count =
        store.CountOf(static_cast<graph::NodeType>(t));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    // Row-wise so the dense on-disk layout (count*dim f32) is
    // independent of the in-memory aligned row stride.
    const Matrix& m = store.MatrixOf(static_cast<graph::NodeType>(t));
    for (size_t r = 0; r < m.rows(); ++r) {
      out.write(reinterpret_cast<const char*>(m.Row(r)),
                static_cast<std::streamsize>(m.cols() * sizeof(float)));
    }
  }
  if (!out.good()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Result<EmbeddingStore> LoadEmbeddingStore(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint32_t dim = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!in.good() || dim == 0 || dim > 100000) {
    return Status::InvalidArgument("bad dimension in " + path);
  }
  std::array<uint32_t, EmbeddingStore::kNumTypes> counts{};
  for (auto& count : counts) {
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
  }
  if (!in.good()) return Status::IoError("truncated header: " + path);

  EmbeddingStore store(dim, counts);
  for (size_t t = 0; t < EmbeddingStore::kNumTypes; ++t) {
    Matrix& m = store.MatrixOf(static_cast<graph::NodeType>(t));
    for (size_t r = 0; r < m.rows(); ++r) {
      in.read(reinterpret_cast<char*>(m.Row(r)),
              static_cast<std::streamsize>(m.cols() * sizeof(float)));
      if (!in.good()) {
        return Status::IoError("truncated matrix payload: " + path);
      }
    }
  }
  return store;
}

}  // namespace gemrec::embedding
