#include "embedding/noise_sampler.h"

namespace gemrec::embedding {

uint32_t UniformNoiseSampler::SampleNoise(const graph::BipartiteGraph& g,
                                          Side noise_side,
                                          const float* /*context_vec*/,
                                          Rng* rng) {
  const uint32_t n =
      noise_side == Side::kA ? g.num_a() : g.num_b();
  return static_cast<uint32_t>(rng->UniformInt(n));
}

uint32_t DegreeNoiseSampler::SampleNoise(const graph::BipartiteGraph& g,
                                         Side noise_side,
                                         const float* /*context_vec*/,
                                         Rng* rng) {
  return noise_side == Side::kA ? g.SampleNoiseA(rng)
                                : g.SampleNoiseB(rng);
}

}  // namespace gemrec::embedding
