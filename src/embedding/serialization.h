#ifndef GEMREC_EMBEDDING_SERIALIZATION_H_
#define GEMREC_EMBEDDING_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "embedding/embedding_store.h"

namespace gemrec::embedding {

/// Binary persistence for trained embedding stores, so a model trained
/// offline (hours) can be shipped to the online recommender without
/// retraining.
///
/// Format (little-endian):
///   magic "GEMREC01" | u32 dim | 5 x (u32 count) | 5 x (count*dim f32)
///
/// The format is versioned through the magic; loading rejects
/// mismatched magics and truncated files.
Status SaveEmbeddingStore(const EmbeddingStore& store,
                          const std::string& path);

/// Loads a store written by SaveEmbeddingStore.
Result<EmbeddingStore> LoadEmbeddingStore(const std::string& path);

}  // namespace gemrec::embedding

#endif  // GEMREC_EMBEDDING_SERIALIZATION_H_
