#ifndef GEMREC_EMBEDDING_SERIALIZATION_H_
#define GEMREC_EMBEDDING_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "embedding/embedding_store.h"

namespace gemrec::embedding {

/// Binary persistence for trained embedding stores, so a model trained
/// offline (hours) can be shipped to the online recommender without
/// retraining — and reloaded indefinitely by `gemrec serve` without
/// ever feeding a torn or bit-rotted file into a snapshot.
///
/// Current wire format, GEMREC02 (all integers little-endian; floats
/// are IEEE-754 binary32, little-endian; full byte layout in
/// DESIGN.md §10):
///
///   magic "GEMREC02"                              8 bytes
///   u32 dim | 5 x u32 count                      24 bytes
///   u32 header_crc   — CRC32C of bytes [0, 32)    4 bytes
///   5 x node-type section:
///     count*dim f32 payload (dense rows)
///     u32 section_crc — CRC32C of that payload    4 bytes
///   u32 footer_crc — CRC32C of the 6 CRC words    4 bytes
///   (strict EOF: trailing bytes are an error)
///
/// Durability: SaveEmbeddingStore never writes in place. Bytes go to
/// `<path>.tmp.<pid>`, are fsynced and renamed over `path` (see
/// common/atomic_file.h), so a crash mid-save leaves the previous
/// artifact intact and readers never observe a partial file.
///
/// Versioning policy: the 8-byte magic carries the version. Readers
/// accept the current version plus one legacy version back
/// ("GEMREC01", native-endian, checksum-free) with a deprecation
/// warning; writers only emit the current version. Any other magic is
/// rejected.
Status SaveEmbeddingStore(const EmbeddingStore& store,
                          const std::string& path);

/// Loads a store written by SaveEmbeddingStore (GEMREC02) or by the
/// pre-checksum writer (GEMREC01, with a deprecation warning).
///
/// Every failure mode returns a precise non-OK Status instead of a
/// corrupt store: bad magic, truncation (at any byte), header/section/
/// footer checksum mismatch, and trailing garbage after the footer.
Result<EmbeddingStore> LoadEmbeddingStore(const std::string& path);

/// Legacy GEMREC01 writer (native-endian, no checksums, non-atomic
/// layout semantics but still written via the atomic temp-file path).
/// Kept only so tests and migration tooling can fabricate v1 artifacts;
/// production code paths must use SaveEmbeddingStore.
Status SaveEmbeddingStoreV1ForTesting(const EmbeddingStore& store,
                                      const std::string& path);

/// Size in bytes of a GEMREC02 file for a store of this shape — the
/// fault harness uses it to enumerate section boundaries.
size_t SerializedSizeV2(const EmbeddingStore& store);

}  // namespace gemrec::embedding

#endif  // GEMREC_EMBEDDING_SERIALIZATION_H_
