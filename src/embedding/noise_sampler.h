#ifndef GEMREC_EMBEDDING_NOISE_SAMPLER_H_
#define GEMREC_EMBEDDING_NOISE_SAMPLER_H_

#include <cstdint>

#include "common/rng.h"
#include "graph/bipartite_graph.h"

namespace gemrec::embedding {

/// Which side of a bipartite graph a noise node is drawn from.
enum class Side : uint8_t { kA = 0, kB = 1 };

/// Strategy for drawing noise (negative-edge) nodes during training.
/// Implementations:
///  * UniformNoiseSampler — uniform over the side's nodes (PCMF-style);
///  * DegreeNoiseSampler  — the classic P_n(v) ∝ d_v^0.75 of
///    word2vec/LINE/PTE (GEM-P);
///  * AdaptiveNoiseSampler — the paper's rank-based adversarial sampler
///    (GEM-A, §III-B / Algorithm 1).
class NoiseSampler {
 public:
  virtual ~NoiseSampler() = default;

  /// Draws a noise node id from `noise_side` of `g`, for a positive
  /// edge whose *context* node (the fixed endpoint, on the opposite
  /// side) has embedding `context_vec`. `context_vec` may be ignored by
  /// static samplers.
  virtual uint32_t SampleNoise(const graph::BipartiteGraph& g,
                               Side noise_side, const float* context_vec,
                               Rng* rng) = 0;

  /// Called once per gradient step; adaptive samplers use it to
  /// schedule their periodic ranking recomputation. Thread-safe.
  virtual void OnGradientStep() {}
};

/// Uniform noise over the target side.
class UniformNoiseSampler : public NoiseSampler {
 public:
  uint32_t SampleNoise(const graph::BipartiteGraph& g, Side noise_side,
                       const float* context_vec, Rng* rng) override;
};

/// Degree-based noise, P_n(v) ∝ d_v^0.75.
class DegreeNoiseSampler : public NoiseSampler {
 public:
  uint32_t SampleNoise(const graph::BipartiteGraph& g, Side noise_side,
                       const float* context_vec, Rng* rng) override;
};

}  // namespace gemrec::embedding

#endif  // GEMREC_EMBEDDING_NOISE_SAMPLER_H_
