#include "embedding/embedding_store.h"

#include "common/logging.h"

namespace gemrec::embedding {

EmbeddingStore::EmbeddingStore(
    uint32_t dim, const std::array<uint32_t, kNumTypes>& counts)
    : dim_(dim) {
  GEMREC_CHECK(dim > 0);
  for (size_t i = 0; i < kNumTypes; ++i) {
    matrices_[i] = Matrix(counts[i], dim);
  }
}

void EmbeddingStore::InitGaussian(Rng* rng, double stddev) {
  for (auto& m : matrices_) m.FillAbsGaussian(rng, 0.0, stddev);
}

}  // namespace gemrec::embedding
