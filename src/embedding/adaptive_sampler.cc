#include "embedding/adaptive_sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/vec_math.h"

namespace gemrec::embedding {
namespace {

graph::NodeType SideType(const graph::BipartiteGraph& g, Side side) {
  return side == Side::kA ? g.type_a() : g.type_b();
}

uint64_t RebuildPeriod(size_t n) {
  if (n < 2) return 64;
  const double period =
      static_cast<double>(n) * std::log2(static_cast<double>(n));
  return std::max<uint64_t>(64, static_cast<uint64_t>(period));
}

/// Thread-local snapshot cache: one slot per node type, validated
/// against (owner, version). Avoids a mutex acquisition and shared_ptr
/// reference-count churn on every noise draw — the dominant fixed cost
/// of the seed implementation. A stale entry pins at most one old
/// snapshot per (thread, type) until that thread draws again.
struct SnapshotCacheEntry {
  uint64_t owner = 0;  // sampler instance id; 0 = empty
  uint64_t version = ~uint64_t{0};
  std::shared_ptr<const void> snapshot;
};

thread_local std::array<SnapshotCacheEntry, EmbeddingStore::kNumTypes>
    t_snapshot_cache;

std::atomic<uint64_t> g_next_sampler_id{1};

}  // namespace

AdaptiveNoiseSampler::AdaptiveNoiseSampler(const EmbeddingStore* store,
                                           double lambda)
    : store_(store),
      lambda_(lambda),
      instance_id_(
          g_next_sampler_id.fetch_add(1, std::memory_order_relaxed)) {
  GEMREC_CHECK(store != nullptr);
  GEMREC_CHECK(lambda > 0.0);
  for (size_t i = 0; i < EmbeddingStore::kNumTypes; ++i) {
    const size_t n =
        store_->CountOf(static_cast<graph::NodeType>(i));
    types_[i].rebuild_period = RebuildPeriod(n);
    if (n > 0) types_[i].geo.emplace(lambda_, n);
  }
}

void AdaptiveNoiseSampler::Rebuild(graph::NodeType type) {
  TypeState& state = types_[static_cast<size_t>(type)];
  std::lock_guard<std::mutex> lock(state.rebuild_mu);
  const Matrix& m = store_->MatrixOf(type);
  auto snapshot = std::make_shared<TypeState::Snapshot>();
  const uint32_t dim = store_->dim();
  const size_t n = m.rows();

  snapshot->n = n;
  snapshot->ranking.resize(static_cast<size_t>(dim) * n);
  // The per-dimension sorts are independent; fan them out when a pool
  // is attached (caller participates, so this is safe — and merely
  // serial — even when invoked from inside a busy pool task). Each
  // sorts a contiguous (value, id) buffer: one strided matrix read per
  // element up front instead of two per comparison, which is the
  // difference between a cache-resident and a cache-thrashing sort.
  // The (value desc, id asc) key reproduces stable_sort's order, so
  // rankings stay deterministic.
  auto sort_dimension = [&](size_t f) {
    std::vector<std::pair<float, uint32_t>> keyed(n);
    for (size_t x = 0; x < n; ++x) {
      keyed[x] = {m.At(x, f), static_cast<uint32_t>(x)};
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const std::pair<float, uint32_t>& a,
                 const std::pair<float, uint32_t>& b) {
                return a.first > b.first ||
                       (a.first == b.first && a.second < b.second);
              });
    uint32_t* out = snapshot->ranking.data() + f * n;
    for (size_t s = 0; s < n; ++s) out[s] = keyed[s].second;
  };
  if (rebuild_pool_ != nullptr && dim > 1 && n > 1) {
    rebuild_pool_->ParallelFor(dim, sort_dimension);
  } else {
    for (uint32_t f = 0; f < dim; ++f) sort_dimension(f);
  }
  snapshot->sigma = m.ColumnVariances();
  // Eqn p(f|v_c) ∝ v_{c,f} · σ_f with σ_f the std-dev: take sqrt of
  // the variance (the paper writes σ_f = Var(v_{.,f}); either works as
  // an importance weight — we follow the symbol σ, a std-dev).
  for (auto& s : snapshot->sigma) s = std::sqrt(s);

  // Publish, then bump the version so thread-local caches refetch.
  state.snapshot = std::move(snapshot);
  state.version.fetch_add(1, std::memory_order_release);
  state.steps_since_rebuild.store(0, std::memory_order_relaxed);
  rebuild_count_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const AdaptiveNoiseSampler::TypeState::Snapshot>
AdaptiveNoiseSampler::SnapshotOf(graph::NodeType type) {
  TypeState& state = types_[static_cast<size_t>(type)];
  {
    std::lock_guard<std::mutex> lock(state.rebuild_mu);
    if (state.snapshot != nullptr) return state.snapshot;
  }
  Rebuild(type);
  std::lock_guard<std::mutex> lock(state.rebuild_mu);
  return state.snapshot;
}

void AdaptiveNoiseSampler::RebuildAll() {
  for (size_t i = 0; i < EmbeddingStore::kNumTypes; ++i) {
    Rebuild(static_cast<graph::NodeType>(i));
  }
}

uint32_t AdaptiveNoiseSampler::SampleNoise(const graph::BipartiteGraph& g,
                                           Side noise_side,
                                           const float* context_vec,
                                           Rng* rng) {
  const graph::NodeType type = SideType(g, noise_side);
  TypeState& state = types_[static_cast<size_t>(type)];

  // Fast path: revalidate the thread-local snapshot with one version
  // load; fall back to the locked fetch on miss or first use. The
  // version is read *before* fetching, so a publish racing the fetch
  // at worst marks the entry stale again on the next draw.
  SnapshotCacheEntry& cache =
      t_snapshot_cache[static_cast<size_t>(type)];
  const uint64_t version = state.version.load(std::memory_order_acquire);
  if (cache.owner != instance_id_ || cache.version != version ||
      cache.snapshot == nullptr) {
    cache.snapshot = SnapshotOf(type);
    cache.owner = instance_id_;
    cache.version = version;
  }
  const auto* snapshot =
      static_cast<const TypeState::Snapshot*>(cache.snapshot.get());

  const uint32_t dim = store_->dim();
  const size_t n = snapshot->n;
  GEMREC_DCHECK(n > 0);

  // Draw dimension f from p(f|v_c) ∝ v_{c,f} · σ_f. Embeddings are
  // nonnegative (rectifier projection) so these weights are valid; if
  // they all vanish (e.g. right after a cold start) fall back to a
  // uniform dimension. The normalizer is a plain dot product, so it
  // runs on the SIMD kernel; the prefix scan stops after the chosen
  // dimension (K/2 expected scalar ops).
  const float* sigma = snapshot->sigma.data();
  const float total = Dot(context_vec, sigma, dim);
  uint32_t dimension = 0;
  if (total > 1e-12f) {
    float target = static_cast<float>(rng->UniformDouble()) * total;
    dimension = dim - 1;  // guard: float prefix sums may undershoot
    for (uint32_t f = 0; f < dim; ++f) {
      target -= context_vec[f] * sigma[f];
      if (target < 0.0f) {
        dimension = f;
        break;
      }
    }
  } else {
    dimension = static_cast<uint32_t>(rng->UniformInt(dim));
  }

  // Draw the rank from the truncated geometric (built once per type)
  // and return the node at that position on the chosen dimension.
  const uint64_t rank = state.geo->Sample(rng);
  const uint32_t node =
      snapshot->ranking[static_cast<size_t>(dimension) * n + rank];

  // Schedule the periodic recomputation (Algorithm 1 lines 4-15).
  const uint64_t steps =
      state.steps_since_rebuild.fetch_add(1, std::memory_order_relaxed);
  if (steps + 1 >= state.rebuild_period) {
    // Reset eagerly so concurrent threads do not all rebuild.
    uint64_t expected = steps + 1;
    if (state.steps_since_rebuild.compare_exchange_strong(
            expected, 0, std::memory_order_relaxed)) {
      Rebuild(type);
    }
  }
  return node;
}

}  // namespace gemrec::embedding
