#include "embedding/adaptive_sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace gemrec::embedding {
namespace {

graph::NodeType SideType(const graph::BipartiteGraph& g, Side side) {
  return side == Side::kA ? g.type_a() : g.type_b();
}

uint64_t RebuildPeriod(size_t n) {
  if (n < 2) return 64;
  const double period =
      static_cast<double>(n) * std::log2(static_cast<double>(n));
  return std::max<uint64_t>(64, static_cast<uint64_t>(period));
}

}  // namespace

AdaptiveNoiseSampler::AdaptiveNoiseSampler(const EmbeddingStore* store,
                                           double lambda)
    : store_(store), lambda_(lambda) {
  GEMREC_CHECK(store != nullptr);
  GEMREC_CHECK(lambda > 0.0);
  for (size_t i = 0; i < EmbeddingStore::kNumTypes; ++i) {
    types_[i].rebuild_period =
        RebuildPeriod(store_->CountOf(static_cast<graph::NodeType>(i)));
  }
}

void AdaptiveNoiseSampler::Rebuild(graph::NodeType type) {
  TypeState& state = types_[static_cast<size_t>(type)];
  std::lock_guard<std::mutex> lock(state.rebuild_mu);
  const Matrix& m = store_->MatrixOf(type);
  auto snapshot = std::make_shared<TypeState::Snapshot>();
  const uint32_t dim = store_->dim();
  const size_t n = m.rows();

  snapshot->ranking.resize(dim);
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  for (uint32_t f = 0; f < dim; ++f) {
    snapshot->ranking[f] = ids;
    auto& order = snapshot->ranking[f];
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t x, uint32_t y) {
                       return m.At(x, f) > m.At(y, f);
                     });
  }
  snapshot->sigma = m.ColumnVariances();
  // Eqn p(f|v_c) ∝ v_{c,f} · σ_f with σ_f the std-dev: take sqrt of
  // the variance (the paper writes σ_f = Var(v_{.,f}); either works as
  // an importance weight — we follow the symbol σ, a std-dev).
  for (auto& s : snapshot->sigma) s = std::sqrt(s);

  {
    // Publish. Readers copy the shared_ptr under the same mutex via
    // SnapshotOf, so no torn reads.
    state.snapshot = std::move(snapshot);
  }
  state.steps_since_rebuild.store(0, std::memory_order_relaxed);
  rebuild_count_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const AdaptiveNoiseSampler::TypeState::Snapshot>
AdaptiveNoiseSampler::SnapshotOf(graph::NodeType type) {
  TypeState& state = types_[static_cast<size_t>(type)];
  {
    std::lock_guard<std::mutex> lock(state.rebuild_mu);
    if (state.snapshot != nullptr) return state.snapshot;
  }
  Rebuild(type);
  std::lock_guard<std::mutex> lock(state.rebuild_mu);
  return state.snapshot;
}

void AdaptiveNoiseSampler::RebuildAll() {
  for (size_t i = 0; i < EmbeddingStore::kNumTypes; ++i) {
    Rebuild(static_cast<graph::NodeType>(i));
  }
}

uint32_t AdaptiveNoiseSampler::SampleNoise(const graph::BipartiteGraph& g,
                                           Side noise_side,
                                           const float* context_vec,
                                           Rng* rng) {
  const graph::NodeType type = SideType(g, noise_side);
  TypeState& state = types_[static_cast<size_t>(type)];
  auto snapshot = SnapshotOf(type);

  const uint32_t dim = store_->dim();
  const size_t n = snapshot->ranking.empty()
                       ? 0
                       : snapshot->ranking[0].size();
  GEMREC_DCHECK(n > 0);

  // Draw dimension f from p(f|v_c) ∝ v_{c,f} · σ_f. Embeddings are
  // nonnegative (rectifier projection) so these weights are valid; if
  // they all vanish (e.g. right after a cold start) fall back to a
  // uniform dimension.
  double total = 0.0;
  for (uint32_t f = 0; f < dim; ++f) {
    total += static_cast<double>(context_vec[f]) * snapshot->sigma[f];
  }
  uint32_t dimension = 0;
  if (total > 1e-20) {
    double target = rng->UniformDouble() * total;
    for (uint32_t f = 0; f < dim; ++f) {
      target -= static_cast<double>(context_vec[f]) * snapshot->sigma[f];
      if (target < 0.0) {
        dimension = f;
        break;
      }
    }
  } else {
    dimension = static_cast<uint32_t>(rng->UniformInt(dim));
  }

  // Draw the rank from the truncated geometric and return the node at
  // that position on the chosen dimension.
  const GeometricSampler geo(lambda_, n);
  const uint64_t rank = geo.Sample(rng);
  const uint32_t node = snapshot->ranking[dimension][rank];

  // Schedule the periodic recomputation (Algorithm 1 lines 4-15).
  const uint64_t steps =
      state.steps_since_rebuild.fetch_add(1, std::memory_order_relaxed);
  if (steps + 1 >= state.rebuild_period) {
    // Reset eagerly so concurrent threads do not all rebuild.
    uint64_t expected = steps + 1;
    if (state.steps_since_rebuild.compare_exchange_strong(
            expected, 0, std::memory_order_relaxed)) {
      Rebuild(type);
    }
  }
  return node;
}

}  // namespace gemrec::embedding
