#ifndef GEMREC_EMBEDDING_TRAINER_H_
#define GEMREC_EMBEDDING_TRAINER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "embedding/adaptive_sampler.h"
#include "embedding/embedding_store.h"
#include "embedding/noise_sampler.h"
#include "embedding/sgd.h"
#include "graph/graph_builder.h"

namespace gemrec::embedding {

/// Which noise distribution generates negative edges.
enum class NoiseSamplerKind : uint8_t {
  kUniform = 0,   // PCMF-style
  kDegree = 1,    // d^0.75 (word2vec/LINE/PTE; the GEM-P variant)
  kAdaptive = 2,  // the paper's rank-based adversarial sampler (GEM-A)
};

/// How Algorithm 2 draws a bipartite graph each step.
enum class GraphSchedule : uint8_t {
  /// P(G) ∝ |E_G| — the paper's proposal, which balances exploitation
  /// across skewed edge distributions.
  kProportionalToEdges = 0,
  /// Every graph equally likely — the PTE baseline behaviour the paper
  /// argues against.
  kUniform = 1,
};

/// Hyper-parameters of joint training (§III, §V-A).
struct TrainerOptions {
  uint32_t dim = 60;                   // K (Table IV tunes it)
  uint64_t num_samples = 2'000'000;    // N gradient steps
  uint32_t negatives_per_side = 2;     // M
  float learning_rate = 0.05f;         // α (decays linearly over N)
  /// α_t = α · max(min_rate_fraction, 1 − t/num_samples), the linear
  /// decay LINE/PTE use (the paper follows their edge-sampling SGD).
  float min_rate_fraction = 1e-3f;
  float init_stddev = 0.01f;           // Gaussian N(0, 0.01) init
  /// Constant bias β of the link function σ(vᵀv' − bias); required for
  /// stable training under the rectifier projection (see sgd.h).
  float bias = 4.0f;
  bool bidirectional = true;           // both-side negative sampling
  NoiseSamplerKind sampler = NoiseSamplerKind::kAdaptive;
  GraphSchedule schedule = GraphSchedule::kProportionalToEdges;
  double lambda = 500.0;               // λ of Eqn 6 (Table V tunes it)
  /// Hogwild workers (Fig. 6). Normalized by the trainer: 0 means "all
  /// hardware threads" and oversized requests are capped at
  /// std::thread::hardware_concurrency().
  uint32_t num_threads = 1;
  uint64_t seed = 7;
  /// Redraw a noise node (up to 8 times) when it is a true neighbor of
  /// the context node, so "negative" edges are actually unobserved.
  bool avoid_positive_noise = true;

  /// Sign-aware negatives. When dislikes are installed (see
  /// SetSignedNegatives) and this probability is > 0, each step
  /// additionally applies, with this probability, one explicit
  /// repulsion step on a uniformly drawn dislike pair — and user-event
  /// steps whose context user has dislikes replace their first sampled
  /// noise event with one of those dislikes. 0 disables both, which
  /// keeps every pre-existing training path bit-identical.
  float signed_negative_prob = 0.0f;
  /// Confidence weight w of the explicit repulsion (dislikes carry a
  /// definite sign, so w > 1 pushes harder than sampled noise).
  float signed_negative_weight = 1.0f;

  /// The published configurations.
  static TrainerOptions GemA();  // bidirectional + adaptive + ∝|E|
  static TrainerOptions GemP();  // bidirectional + degree    + ∝|E|
  static TrainerOptions Pte();   // unidirectional + degree   + uniform
};

/// Joint trainer over the five EBSN bipartite graphs (Algorithm 2):
/// each step draws a graph (by the configured schedule), a positive
/// edge ∝ weight, 2M (or M, unidirectional) noise nodes, and applies
/// the Eqn-5 update. Training can be run in increments so convergence
/// studies (Tables II/III) can evaluate between chunks.
class JointTrainer {
 public:
  /// `graphs` must outlive the trainer. `options.num_threads` is
  /// normalized on entry (see TrainerOptions); options() reflects the
  /// effective value.
  JointTrainer(const graph::EbsnGraphs* graphs, TrainerOptions options);

  /// Runs `steps` gradient steps (split across options.num_threads).
  /// Multi-threaded runs reuse a persistent ThreadPool created on the
  /// first chunk — repeated chunked training (the convergence-study
  /// pattern) pays no per-chunk thread create/join cost.
  void TrainChunk(uint64_t steps);

  /// Runs options.num_samples steps.
  void Train() { TrainChunk(options_.num_samples); }

  /// Installs explicit negative (user, event) pairs for sign-aware
  /// training. Pairs with out-of-range ids are dropped. Must not be
  /// called while TrainChunk is running; takes effect from the next
  /// chunk. No-op on training behaviour unless
  /// options.signed_negative_prob > 0.
  void SetSignedNegatives(
      const std::vector<std::pair<uint32_t, uint32_t>>& dislikes);

  size_t num_signed_negatives() const { return signed_negatives_.size(); }

  const EmbeddingStore& store() const { return *store_; }
  EmbeddingStore* mutable_store() { return store_.get(); }
  const TrainerOptions& options() const { return options_; }
  uint64_t steps_done() const { return steps_done_; }

 private:
  void WorkerRun(uint64_t steps, Rng* rng, SgdScratch* scratch);

  const graph::EbsnGraphs* graphs_;
  TrainerOptions options_;
  std::unique_ptr<EmbeddingStore> store_;
  std::unique_ptr<NoiseSampler> noise_sampler_;
  /// Persistent hogwild worker pool (num_threads - 1 workers; the
  /// calling thread runs the remaining shard). Created lazily on the
  /// first multi-threaded chunk.
  std::unique_ptr<ThreadPool> pool_;
  AliasTable graph_sampler_;
  std::vector<const graph::BipartiteGraph*> active_graphs_;
  /// Explicit negative pairs, flat for uniform draws plus per-user
  /// adjacency for dislike-as-noise substitution. Read-only during
  /// training (hogwild-safe).
  std::vector<std::pair<uint32_t, uint32_t>> signed_negatives_;
  std::vector<std::vector<uint32_t>> user_signed_negatives_;
  Rng root_rng_;
  uint64_t steps_done_ = 0;
  /// Shared step counter driving the learning-rate decay (threads
  /// increment it relaxed; exactness is irrelevant for a schedule).
  std::atomic<uint64_t> global_step_{0};
};

}  // namespace gemrec::embedding

#endif  // GEMREC_EMBEDDING_TRAINER_H_
