#ifndef GEMREC_EMBEDDING_ADAPTIVE_SAMPLER_H_
#define GEMREC_EMBEDDING_ADAPTIVE_SAMPLER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/geometric_sampler.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "embedding/embedding_store.h"
#include "embedding/noise_sampler.h"

namespace gemrec::embedding {

/// The paper's adaptive adversarial noise sampler (§III-B, Algorithm 1,
/// approximate implementation):
///
///   1. draw a rank s from the truncated geometric p(s) ∝ exp(-s/λ);
///   2. draw a dimension f from p(f | v_c) ∝ v_{c,f} · σ_f, where σ_f
///      is the variance of coordinate f over the noise side's nodes;
///   3. return the node ranked s-th on dimension f (descending).
///
/// Rankings r̂^{-1}(·|f) and variances σ_f are kept per *node type*
/// (they only depend on the type's embedding matrix, so the five graphs
/// share them) and rebuilt every |V| · log₂ |V| gradient steps on that
/// type, giving the paper's amortized O(K) per draw.
///
/// Thread-safety (hogwild): snapshots are immutable once published and
/// versioned; draw paths cache the current snapshot in a thread-local
/// slot and revalidate it with a single relaxed version load, so the
/// steady-state draw takes no lock and touches no shared reference
/// count. The thread whose step trips the rebuild budget rebuilds
/// under a mutex while others keep sampling the stale snapshot —
/// consistent with the asynchronous SGD the paper adopts.
class AdaptiveNoiseSampler : public NoiseSampler {
 public:
  /// `store` must outlive the sampler. `lambda` is the paper's λ
  /// (Table V tunes it; 200 is the chosen default).
  AdaptiveNoiseSampler(const EmbeddingStore* store, double lambda);

  /// Also drives the periodic recomputation: every draw counts toward
  /// the noise type's rebuild budget (so OnGradientStep needs no
  /// override).
  uint32_t SampleNoise(const graph::BipartiteGraph& g, Side noise_side,
                       const float* context_vec, Rng* rng) override;

  /// Forces an immediate rebuild of every type's ranking (used by the
  /// trainer right after initialization and by tests).
  void RebuildAll();

  /// Optional pool for the per-dimension ranking sorts inside Rebuild.
  /// The pool is used with caller participation, so it is safe to pass
  /// a pool whose workers may themselves trigger rebuilds (the trainer
  /// shares its hogwild pool); in that case the rebuild simply runs on
  /// the tripping thread. Pass nullptr to sort serially.
  void set_rebuild_pool(ThreadPool* pool) { rebuild_pool_ = pool; }

  /// Number of ranking rebuilds performed so far (diagnostics).
  uint64_t rebuild_count() const {
    return rebuild_count_.load(std::memory_order_relaxed);
  }

 private:
  struct TypeState {
    /// Immutable once published. The ranking is flat and
    /// dimension-major: ranking[f * n + s] = the node ranked s-th on
    /// coordinate f (descending) — one indirection per draw, and the
    /// rebuild sorts contiguous (value, id) spans instead of chasing
    /// strided matrix reads through a comparator.
    struct Snapshot {
      std::vector<uint32_t> ranking;  // dim * n ids
      std::vector<float> sigma;       // per-dimension std-dev weight
      size_t n = 0;                   // nodes per dimension
    };
    std::shared_ptr<const Snapshot> snapshot;
    std::mutex rebuild_mu;
    /// Bumped on every publish; readers revalidate their thread-local
    /// snapshot cache against it with one relaxed load.
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> steps_since_rebuild{0};
    uint64_t rebuild_period = 1;
    /// Truncated-geometric rank sampler; (λ, node count) are fixed per
    /// type, so it is built once instead of per draw.
    std::optional<GeometricSampler> geo;
  };

  void Rebuild(graph::NodeType type);
  std::shared_ptr<const TypeState::Snapshot> SnapshotOf(
      graph::NodeType type);

  const EmbeddingStore* store_;
  double lambda_;
  std::array<TypeState, EmbeddingStore::kNumTypes> types_;
  std::atomic<uint64_t> rebuild_count_{0};
  ThreadPool* rebuild_pool_ = nullptr;
  /// Process-unique id keying the thread-local snapshot caches; a
  /// pointer would be ambiguous when a new sampler reuses a freed
  /// sampler's address.
  const uint64_t instance_id_;
};

}  // namespace gemrec::embedding

#endif  // GEMREC_EMBEDDING_ADAPTIVE_SAMPLER_H_
