#include "embedding/sgd.h"

#include <cstring>

#include "common/vec_math.h"

namespace gemrec::embedding {

void SgdEdgeStep(EmbeddingStore* store, const graph::BipartiteGraph& g,
                 const graph::Edge& edge,
                 const std::vector<uint32_t>& noise_b,
                 const std::vector<uint32_t>& noise_a, float learning_rate,
                 float bias, SgdScratch* scratch) {
  const uint32_t dim = store->dim();
  float* vi = store->VectorOf(g.type_a(), edge.a);
  float* vj = store->VectorOf(g.type_b(), edge.b);

  float* grad_i = scratch->grad_i.data();
  float* grad_j = scratch->grad_j.data();
  std::memset(grad_i, 0, dim * sizeof(float));
  std::memset(grad_j, 0, dim * sizeof(float));

  // Positive part: (1 - σ(v_i·v_j)) pushes the endpoints together.
  // FastSigmoid (table lookup, error < 1e-6) is used throughout the
  // hot loop; the exact σ stays available as Sigmoid for cold paths.
  const float positive_coeff =
      1.0f - FastSigmoid(Dot(vi, vj, dim) - bias);
  Axpy(positive_coeff, vj, grad_i, dim);
  Axpy(positive_coeff, vi, grad_j, dim);

  // Noise on side B repels v_i; each noise vector is itself repelled
  // from v_i and can be updated immediately (it contributes to no other
  // gradient in this step).
  for (uint32_t k : noise_b) {
    float* vk = store->VectorOf(g.type_b(), k);
    const float coeff = FastSigmoid(Dot(vi, vk, dim) - bias);
    Axpy(-coeff, vk, grad_i, dim);
    Axpy(-learning_rate * coeff, vi, vk, dim);
    ReluInPlace(vk, dim);
  }

  // Noise on side A repels v_j (bidirectional sampling only).
  for (uint32_t k : noise_a) {
    float* vk = store->VectorOf(g.type_a(), k);
    const float coeff = FastSigmoid(Dot(vk, vj, dim) - bias);
    Axpy(-coeff, vk, grad_j, dim);
    Axpy(-learning_rate * coeff, vj, vk, dim);
    ReluInPlace(vk, dim);
  }

  Axpy(learning_rate, grad_i, vi, dim);
  Axpy(learning_rate, grad_j, vj, dim);
  ReluInPlace(vi, dim);
  ReluInPlace(vj, dim);
}

void SgdSignedNegativeStep(EmbeddingStore* store, uint32_t user,
                           uint32_t event, float learning_rate, float bias,
                           float weight, SgdScratch* scratch) {
  const uint32_t dim = store->dim();
  float* vu = store->VectorOf(graph::NodeType::kUser, user);
  float* vx = store->VectorOf(graph::NodeType::kEvent, event);

  const float coeff =
      weight * FastSigmoid(Dot(vu, vx, dim) - bias);

  // Snapshot v_x so the v_u update sees pre-step values after v_x has
  // already been moved.
  float* vx_before = scratch->grad_i.data();
  std::memcpy(vx_before, vx, dim * sizeof(float));

  Axpy(-learning_rate * coeff, vu, vx, dim);
  Axpy(-learning_rate * coeff, vx_before, vu, dim);
  ReluInPlace(vx, dim);
  ReluInPlace(vu, dim);
}

}  // namespace gemrec::embedding
