#include "common/matrix.h"

#include <cmath>

namespace gemrec {

void Matrix::FillGaussian(Rng* rng, double mean, double stddev) {
  // Padding floats are filled too: the draw stream stays a pure
  // function of (rows, cols, rng) and data()-wide scans see the same
  // distribution everywhere.
  for (float& v : data_) {
    v = static_cast<float>(rng->Gaussian(mean, stddev));
  }
}

void Matrix::FillAbsGaussian(Rng* rng, double mean, double stddev) {
  for (float& v : data_) {
    v = static_cast<float>(std::fabs(rng->Gaussian(mean, stddev)));
  }
}

void Matrix::Fill(float value) {
  for (float& v : data_) v = value;
}

std::vector<float> Matrix::ColumnVariances() const {
  std::vector<float> variances(cols_, 0.0f);
  if (rows_ == 0) return variances;
  std::vector<double> sum(cols_, 0.0);
  std::vector<double> sum_sq(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const float* row = Row(r);
    for (size_t c = 0; c < cols_; ++c) {
      sum[c] += row[c];
      sum_sq[c] += static_cast<double>(row[c]) * row[c];
    }
  }
  const double n = static_cast<double>(rows_);
  for (size_t c = 0; c < cols_; ++c) {
    const double mean = sum[c] / n;
    double var = sum_sq[c] / n - mean * mean;
    if (var < 0.0) var = 0.0;  // numeric guard
    variances[c] = static_cast<float>(var);
  }
  return variances;
}

}  // namespace gemrec
