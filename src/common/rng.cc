#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace gemrec {
namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& s : s_) s = mixer.Next();
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  GEMREC_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  GEMREC_DCHECK(lo < hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo)));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat() {
  return static_cast<float>(Next64() >> 40) * 0x1.0p-24f;
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  GEMREC_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    GEMREC_DCHECK(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return weights.size() - 1;
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

int Rng::Poisson(double mean) {
  GEMREC_DCHECK(mean >= 0.0);
  const double limit = std::exp(-mean);
  double product = UniformDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= UniformDouble();
  }
  return count;
}

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace gemrec
