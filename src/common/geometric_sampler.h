#ifndef GEMREC_COMMON_GEOMETRIC_SAMPLER_H_
#define GEMREC_COMMON_GEOMETRIC_SAMPLER_H_

#include <cstdint>

#include "common/rng.h"

namespace gemrec {

/// Samples ranks s in {0, 1, ..., max_rank-1} from the truncated
/// geometric distribution p(s) ∝ exp(-s / lambda) used by the paper's
/// adaptive noise sampler (Eqn 6): small ranks (strong, adversarial
/// noise candidates) are exponentially more likely.
///
/// Uses inverse-CDF sampling of the continuous exponential, floored and
/// rejected against the truncation bound, so a draw is O(1) expected.
class GeometricSampler {
 public:
  /// `lambda` tunes the density (paper's λ; larger means flatter);
  /// `max_rank` is the exclusive upper bound on returned ranks.
  /// Requires lambda > 0 and max_rank > 0.
  GeometricSampler(double lambda, uint64_t max_rank);

  /// Draws one rank in [0, max_rank).
  uint64_t Sample(Rng* rng) const;

  double lambda() const { return lambda_; }
  uint64_t max_rank() const { return max_rank_; }

 private:
  double lambda_;
  uint64_t max_rank_;
  // Probability mass of the untruncated distribution that lies inside
  // [0, max_rank); used to decide between fast path and clamping.
  double inside_mass_;
};

}  // namespace gemrec

#endif  // GEMREC_COMMON_GEOMETRIC_SAMPLER_H_
