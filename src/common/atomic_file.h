#ifndef GEMREC_COMMON_ATOMIC_FILE_H_
#define GEMREC_COMMON_ATOMIC_FILE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace gemrec {

/// Crash-safe whole-file replacement: all bytes go to a sibling
/// temporary (`<path>.tmp.<pid>`), are fsynced, and only then renamed
/// over the destination — so readers of `path` observe either the
/// complete old file or the complete new file, never a torn mix, even
/// if the writer dies at any instruction. The parent directory is
/// fsynced after the rename so the replacement survives power loss.
///
/// Usage:
///   GEMREC_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Create(path));
///   GEMREC_RETURN_IF_ERROR(file.Append(buf, n));
///   ...
///   GEMREC_RETURN_IF_ERROR(file.Commit());
///
/// Destroying an uncommitted AtomicFile aborts the write: the
/// temporary is closed and unlinked and the destination is untouched.
/// Not thread-safe; one writer owns an instance.
class AtomicFile {
 public:
  /// Opens `<path>.tmp.<pid>` for writing (O_TRUNC — a leftover
  /// temporary from a crashed predecessor with the same pid is
  /// overwritten, never appended to).
  static Result<AtomicFile> Create(const std::string& path);

  AtomicFile(AtomicFile&& other) noexcept;
  AtomicFile& operator=(AtomicFile&& other) noexcept;
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;
  ~AtomicFile();

  /// Appends `n` bytes to the temporary. On failure (including an
  /// injected short write) the instance is poisoned: Commit will
  /// refuse and destruction aborts the write.
  Status Append(const void* data, size_t n);

  /// fsync + close + rename over the destination + fsync of the parent
  /// directory. After an OK return the destination durably holds
  /// exactly the appended bytes. On failure the temporary is removed
  /// and the destination is untouched.
  Status Commit();

  /// Closes and unlinks the temporary without touching the
  /// destination. Idempotent; also run by the destructor.
  void Abort();

  const std::string& path() const { return path_; }
  const std::string& tmp_path() const { return tmp_path_; }
  size_t bytes_written() const { return written_; }

  /// --- Fault-injection hooks (tests/fault/ only; process-global) ---
  /// Limits the total bytes any AtomicFile accepts before Append fails
  /// with IoError, simulating a full disk / short write. < 0 disables.
  static void SetWriteLimitForTesting(int64_t max_bytes);
  /// Observer invoked after every successful Append with the writer's
  /// cumulative byte count — a harness can raise(SIGKILL) inside it to
  /// model a crash at an exact mid-save point. nullptr disables.
  static void SetWriteObserverForTesting(
      std::function<void(size_t bytes_written)> observer);

 private:
  AtomicFile(int fd, std::string path, std::string tmp_path)
      : fd_(fd), path_(std::move(path)), tmp_path_(std::move(tmp_path)) {}

  int fd_ = -1;
  std::string path_;
  std::string tmp_path_;
  size_t written_ = 0;
  bool failed_ = false;
};

}  // namespace gemrec

#endif  // GEMREC_COMMON_ATOMIC_FILE_H_
