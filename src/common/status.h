#ifndef GEMREC_COMMON_STATUS_H_
#define GEMREC_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace gemrec {

/// Error categories used across the library. Modeled after the
/// Status idiom used by RocksDB/Arrow: library code never throws;
/// fallible operations return a Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  /// A bounded wait elapsed before the operation completed. Distinct
  /// from kIoError so callers with per-attempt deadlines (the shard
  /// coordinator's per-RPC budget) can tell "the peer is slow" from
  /// "the connection is broken" and only evict on the latter.
  kTimeout,
  kInternal,
};

/// Returns a short human-readable name for a StatusCode ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error container, analogous to absl::StatusOr<T>.
///
/// Accessing value() on an error Result is a checked fatal error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps
  /// call sites terse (`return value;` / `return Status::NotFound(..)`).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the contained status; Ok if a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(data_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(data_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void FatalResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::FatalResultAccess(std::get<Status>(data_));
}

}  // namespace gemrec

/// Propagates an error Status from an expression, else continues.
#define GEMREC_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::gemrec::Status gemrec_status_ = (expr);         \
    if (!gemrec_status_.ok()) return gemrec_status_;  \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error. `lhs` may include a declaration, e.g.
/// GEMREC_ASSIGN_OR_RETURN(auto g, BuildGraph(...));
#define GEMREC_ASSIGN_OR_RETURN(lhs, expr)                       \
  GEMREC_ASSIGN_OR_RETURN_IMPL_(                                 \
      GEMREC_STATUS_CONCAT_(gemrec_result_, __LINE__), lhs, expr)

#define GEMREC_STATUS_CONCAT_INNER_(a, b) a##b
#define GEMREC_STATUS_CONCAT_(a, b) GEMREC_STATUS_CONCAT_INNER_(a, b)
#define GEMREC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // GEMREC_COMMON_STATUS_H_
