#ifndef GEMREC_COMMON_ALIAS_TABLE_H_
#define GEMREC_COMMON_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace gemrec {

/// Walker's alias method: O(n) construction, O(1) sampling from a fixed
/// discrete distribution given by unnormalized nonnegative weights.
///
/// Used for (a) drawing positive edges with probability proportional to
/// their weight and (b) the degree-based noise distribution d^0.75.
class AliasTable {
 public:
  /// Constructs an empty table; Sample() on it is invalid.
  AliasTable() = default;

  /// Builds the table from unnormalized weights. Negative weights are a
  /// checked error; an all-zero or empty vector yields an empty table.
  explicit AliasTable(const std::vector<double>& weights) { Build(weights); }

  /// Rebuilds the table in place.
  void Build(const std::vector<double>& weights);

  /// Number of outcomes.
  size_t size() const { return probability_.size(); }
  bool empty() const { return probability_.empty(); }

  /// Draws one outcome index in [0, size()). Requires !empty().
  size_t Sample(Rng* rng) const;

  /// Total unnormalized weight the table was built from.
  double total_weight() const { return total_weight_; }

 private:
  std::vector<float> probability_;
  std::vector<uint32_t> alias_;
  double total_weight_ = 0.0;
};

}  // namespace gemrec

#endif  // GEMREC_COMMON_ALIAS_TABLE_H_
