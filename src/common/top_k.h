#ifndef GEMREC_COMMON_TOP_K_H_
#define GEMREC_COMMON_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace gemrec {

/// Bounded max-collector: keeps the k items with the largest scores seen
/// so far, with O(log k) insertion via a min-heap.
///
/// `Id` is any copyable handle type (typically uint32_t).
template <typename Id, typename Score = float>
class TopK {
 public:
  struct Entry {
    Score score;
    Id id;
  };

  explicit TopK(size_t k) : k_(k) { GEMREC_CHECK(k > 0); }

  /// Offers an item; keeps it only if it beats the current k-th best.
  void Push(Id id, Score score) {
    if (heap_.size() < k_) {
      heap_.push_back(Entry{score, id});
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
      return;
    }
    if (score <= heap_.front().score) return;
    std::pop_heap(heap_.begin(), heap_.end(), MinFirst);
    heap_.back() = Entry{score, id};
    std::push_heap(heap_.begin(), heap_.end(), MinFirst);
  }

  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// Empties the collector (and optionally changes k) while keeping the
  /// heap's storage, so a reused collector allocates nothing after its
  /// first query.
  void Reset(size_t k) {
    GEMREC_CHECK(k > 0);
    k_ = k;
    heap_.clear();
  }

  /// Smallest retained score; only meaningful when full().
  Score Threshold() const {
    GEMREC_DCHECK(!heap_.empty());
    return heap_.front().score;
  }

  /// Extracts the retained entries ordered by descending score.
  /// Leaves the collector empty.
  std::vector<Entry> TakeSortedDescending() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.score > b.score;
    });
    return out;
  }

  /// Sorts the retained entries by descending score *in place* and
  /// returns a view. Unlike TakeSortedDescending this keeps the storage
  /// inside the collector (the heap invariant is gone afterwards; call
  /// Reset before reuse), so callers that copy the results out can run
  /// allocation-free.
  const std::vector<Entry>& SortDescendingInPlace() {
    std::sort(heap_.begin(), heap_.end(),
              [](const Entry& a, const Entry& b) {
                return a.score > b.score;
              });
    return heap_;
  }

 private:
  static bool MinFirst(const Entry& a, const Entry& b) {
    return a.score > b.score;
  }

  size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace gemrec

#endif  // GEMREC_COMMON_TOP_K_H_
