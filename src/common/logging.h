#ifndef GEMREC_COMMON_LOGGING_H_
#define GEMREC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gemrec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted by GEMREC_LOG. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits one line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gemrec

#define GEMREC_LOG(level)                                              \
  ::gemrec::internal::LogMessage(::gemrec::LogLevel::k##level,         \
                                 __FILE__, __LINE__)                   \
      .stream()

/// Fatal invariant check, always on. Streams extra context:
///   GEMREC_CHECK(n > 0) << "need positive n, got " << n;
#define GEMREC_CHECK(condition)                                        \
  (condition) ? (void)0                                                \
              : ::gemrec::internal::FatalVoidify() &                   \
                    ::gemrec::internal::FatalMessage(__FILE__,         \
                                                     __LINE__,         \
                                                     #condition)       \
                        .stream()

/// Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define GEMREC_DCHECK(condition) \
  while (false) GEMREC_CHECK(condition)
#else
#define GEMREC_DCHECK(condition) GEMREC_CHECK(condition)
#endif

namespace gemrec::internal {

/// Helper giving GEMREC_CHECK a void expression type so it can be used in
/// ternary position.
struct FatalVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace gemrec::internal

#endif  // GEMREC_COMMON_LOGGING_H_
