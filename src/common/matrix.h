#ifndef GEMREC_COMMON_MATRIX_H_
#define GEMREC_COMMON_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned_alloc.h"
#include "common/logging.h"
#include "common/rng.h"

namespace gemrec {

/// Dense row-major float matrix used to store embeddings: one row per
/// node, one column per latent dimension. Rows are handed out as raw
/// float spans so hot SGD loops stay allocation-free.
///
/// Alignment contract: the storage base is 32-byte aligned and the row
/// stride is padded to a multiple of 8 floats, so every Row(r) pointer
/// is 32-byte aligned — the SIMD kernels in vec_math.h can process
/// whole rows without a misaligned head. Padding floats live between
/// rows; Fill* methods write them (keeping data()-wide invariant
/// checks valid) but ColumnVariances and all per-row consumers ignore
/// them.
class Matrix {
 public:
  Matrix() = default;

  /// Allocates rows*row_stride floats, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), stride_(PaddedStride(cols)),
        data_(rows * PaddedStride(cols), 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Floats between consecutive row starts (cols rounded up to 8).
  size_t row_stride() const { return stride_; }
  bool empty() const { return data_.empty(); }

  float* Row(size_t r) {
    GEMREC_DCHECK(r < rows_);
    return data_.data() + r * stride_;
  }
  const float* Row(size_t r) const {
    GEMREC_DCHECK(r < rows_);
    return data_.data() + r * stride_;
  }

  float& At(size_t r, size_t c) {
    GEMREC_DCHECK(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }
  float At(size_t r, size_t c) const {
    GEMREC_DCHECK(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }

  /// Fills every entry with independent N(mean, stddev) draws — the
  /// paper's random Gaussian initialization N(0, 0.01).
  void FillGaussian(Rng* rng, double mean, double stddev);

  /// Fills every entry with |N(mean, stddev)| draws; used when the model
  /// requires nonnegative parameters from the start (Poisson factors,
  /// ReLU-projected embeddings).
  void FillAbsGaussian(Rng* rng, double mean, double stddev);

  /// Fills with a constant.
  void Fill(float value);

  /// Per-column variance over all rows: Var(v_{.,f}) in the paper's
  /// adaptive-sampler dimension draw. Returns a cols()-sized vector.
  std::vector<float> ColumnVariances() const;

  const AlignedFloatVector& data() const { return data_; }
  AlignedFloatVector& data() { return data_; }

 private:
  static size_t PaddedStride(size_t cols) {
    return cols == 0 ? 0 : (cols + 7) & ~static_cast<size_t>(7);
  }

  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  AlignedFloatVector data_;
};

}  // namespace gemrec

#endif  // GEMREC_COMMON_MATRIX_H_
