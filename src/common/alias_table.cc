#include "common/alias_table.h"

#include "common/logging.h"

namespace gemrec {

void AliasTable::Build(const std::vector<double>& weights) {
  probability_.clear();
  alias_.clear();
  total_weight_ = 0.0;
  for (double w : weights) {
    GEMREC_CHECK(w >= 0.0) << "alias table weight must be nonnegative";
    total_weight_ += w;
  }
  if (weights.empty() || total_weight_ <= 0.0) return;

  const size_t n = weights.size();
  probability_.assign(n, 0.0f);
  alias_.assign(n, 0);

  // Scaled weights sum to n; split into under- and over-full buckets.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total_weight_;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    probability_[s] = static_cast<float>(scaled[s]);
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining buckets are (numerically) exactly full.
  for (uint32_t s : small) probability_[s] = 1.0f;
  for (uint32_t l : large) probability_[l] = 1.0f;
}

size_t AliasTable::Sample(Rng* rng) const {
  GEMREC_DCHECK(!empty());
  const size_t bucket = rng->UniformInt(probability_.size());
  if (rng->UniformFloat() < probability_[bucket]) return bucket;
  return alias_[bucket];
}

}  // namespace gemrec
