#include "common/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gemrec {
namespace {

int64_t g_write_limit = -1;
std::function<void(size_t)>* g_write_observer = nullptr;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// Directory half of the durability contract: after renaming the
/// temporary into place, the new directory entry itself must be
/// fsynced or a power cut can roll the rename back.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open directory", dir));
  }
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) {
    return Status::IoError(ErrnoMessage("fsync failed on directory", dir));
  }
  return Status::Ok();
}

}  // namespace

Result<AtomicFile> AtomicFile::Create(const std::string& path) {
  std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open for writing", tmp_path));
  }
  return AtomicFile(fd, path, std::move(tmp_path));
}

AtomicFile::AtomicFile(AtomicFile&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      tmp_path_(std::move(other.tmp_path_)),
      written_(other.written_),
      failed_(other.failed_) {
  other.fd_ = -1;
}

AtomicFile& AtomicFile::operator=(AtomicFile&& other) noexcept {
  if (this != &other) {
    Abort();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    tmp_path_ = std::move(other.tmp_path_);
    written_ = other.written_;
    failed_ = other.failed_;
    other.fd_ = -1;
  }
  return *this;
}

AtomicFile::~AtomicFile() { Abort(); }

Status AtomicFile::Append(const void* data, size_t n) {
  if (fd_ < 0 || failed_) {
    return Status::FailedPrecondition("append on a closed or failed writer: " +
                                      tmp_path_);
  }
  size_t allowed = n;
  bool injected_short_write = false;
  if (g_write_limit >= 0) {
    const uint64_t limit = static_cast<uint64_t>(g_write_limit);
    const uint64_t room = written_ >= limit ? 0 : limit - written_;
    if (n > room) {
      allowed = static_cast<size_t>(room);
      injected_short_write = true;
    }
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t remaining = allowed;
  while (remaining > 0) {
    const ssize_t wrote = ::write(fd_, p, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      failed_ = true;
      return Status::IoError(ErrnoMessage("write failed on", tmp_path_));
    }
    p += wrote;
    remaining -= static_cast<size_t>(wrote);
    written_ += static_cast<size_t>(wrote);
  }
  if (injected_short_write) {
    failed_ = true;
    return Status::IoError("short write on " + tmp_path_ +
                           ": no space left on device (injected)");
  }
  if (g_write_observer != nullptr) (*g_write_observer)(written_);
  return Status::Ok();
}

Status AtomicFile::Commit() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("commit on a closed writer: " +
                                      tmp_path_);
  }
  if (failed_) {
    Abort();
    return Status::FailedPrecondition(
        "commit refused after a failed append: " + tmp_path_);
  }
  if (::fsync(fd_) != 0) {
    const Status s =
        Status::IoError(ErrnoMessage("fsync failed on", tmp_path_));
    Abort();
    return s;
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    const Status s =
        Status::IoError(ErrnoMessage("close failed on", tmp_path_));
    ::unlink(tmp_path_.c_str());
    return s;
  }
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const Status s = Status::IoError(
        ErrnoMessage("rename failed for", tmp_path_ + " -> " + path_));
    ::unlink(tmp_path_.c_str());
    return s;
  }
  return SyncParentDir(path_);
}

void AtomicFile::Abort() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  ::unlink(tmp_path_.c_str());
}

void AtomicFile::SetWriteLimitForTesting(int64_t max_bytes) {
  g_write_limit = max_bytes;
}

void AtomicFile::SetWriteObserverForTesting(
    std::function<void(size_t)> observer) {
  delete g_write_observer;
  g_write_observer =
      observer ? new std::function<void(size_t)>(std::move(observer))
               : nullptr;
}

}  // namespace gemrec
