#ifndef GEMREC_COMMON_RNG_H_
#define GEMREC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gemrec {

/// SplitMix64 — used to seed the main generator and as a cheap
/// stateless mixer. Reference: Steele, Lea & Flood (2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic pseudo-random generator used throughout the library.
/// Implements xoshiro256** (Blackman & Vigna), seeded via SplitMix64 so
/// that any 64-bit seed yields a well-mixed state.
///
/// Not thread-safe; give each thread its own Rng (see Fork()).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x8f1db60ed3f9a9ceULL);

  /// Uniform 64-bit value (UniformRandomBitGenerator interface).
  uint64_t operator()() { return Next64(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  uint64_t Next64();

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi). Requires lo < hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [0, 1).
  float UniformFloat();

  /// Standard normal via Box-Muller (cached spare value).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples an index from unnormalized nonnegative weights in O(n).
  /// Returns weights.size()-1 if all weights are zero. Requires
  /// !weights.empty(). For repeated sampling use AliasTable instead.
  size_t Categorical(const std::vector<double>& weights);

  /// Poisson-distributed count (Knuth's method; fine for small means).
  int Poisson(double mean);

  /// Returns an independently seeded child generator; deterministic in
  /// (parent state, call order). Use to hand one Rng per thread.
  Rng Fork();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace gemrec

#endif  // GEMREC_COMMON_RNG_H_
