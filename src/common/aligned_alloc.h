#ifndef GEMREC_COMMON_ALIGNED_ALLOC_H_
#define GEMREC_COMMON_ALIGNED_ALLOC_H_

#include <cstddef>
#include <new>
#include <vector>

namespace gemrec {

/// Minimal C++17 allocator handing out `Align`-byte-aligned storage.
/// Used by Matrix so embedding rows start on 32-byte boundaries and the
/// vectorized kernels in vec_math.h never straddle a cache line at the
/// row head.
template <typename T, size_t Align = 32>
class AlignedAllocator {
 public:
  static_assert(Align >= alignof(T), "Align must be at least alignof(T)");
  static_assert((Align & (Align - 1)) == 0, "Align must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// 32-byte-aligned float storage (one AVX2 register width).
using AlignedFloatVector = std::vector<float, AlignedAllocator<float, 32>>;

}  // namespace gemrec

#endif  // GEMREC_COMMON_ALIGNED_ALLOC_H_
