// CRC-32C implementations behind the crc32c.h dispatch.
//
// Two tiers, mirroring vec_math.cc:
//   - portable: slicing-by-8 over compile-time-generated tables
//     (processes 8 input bytes per iteration with table lookups only);
//   - x86-64 SSE4.2 crc32 instructions via a function target attribute,
//     selected at runtime with __builtin_cpu_supports so default builds
//     stay portable.
//
// The checksum is the reflected CRC with init/xorout 0xFFFFFFFF, i.e.
// the same value RocksDB/LevelDB/iSCSI compute, which makes the on-disk
// artifacts verifiable with standard tools.

#include "common/crc32c.h"

#include <array>
#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#define GEMREC_X86 1
#include <nmmintrin.h>
#endif

namespace gemrec {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int t = 1; t < 8; ++t) {
      tables[t][i] =
          (tables[t - 1][i] >> 8) ^ tables[0][tables[t - 1][i] & 0xFFu];
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint32_t ExtendTable(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 8) {
    const uint32_t lo = LoadLe32(p) ^ crc;
    const uint32_t hi = LoadLe32(p + 4);
    crc = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
          kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
          kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

#ifdef GEMREC_X86

__attribute__((target("sse4.2"))) uint32_t ExtendSse42(uint32_t crc,
                                                       const void* data,
                                                       size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (n >= 4) {
    uint32_t chunk;
    __builtin_memcpy(&chunk, p, 4);
    crc = _mm_crc32_u32(crc, chunk);
    p += 4;
    n -= 4;
  }
  while (n-- > 0) crc = _mm_crc32_u8(crc, *p++);
  return ~crc;
}

bool CpuHasSse42() { return __builtin_cpu_supports("sse4.2"); }

#endif  // GEMREC_X86

using ExtendFn = uint32_t (*)(uint32_t, const void*, size_t);

uint32_t ExtendResolve(uint32_t crc, const void* data, size_t n);

std::atomic<ExtendFn> g_extend{&ExtendResolve};

bool UseSse42() {
#ifdef GEMREC_X86
  return CpuHasSse42();
#else
  return false;
#endif
}

uint32_t ExtendResolve(uint32_t crc, const void* data, size_t n) {
#ifdef GEMREC_X86
  const ExtendFn fn = UseSse42() ? &ExtendSse42 : &ExtendTable;
#else
  const ExtendFn fn = &ExtendTable;
#endif
  g_extend.store(fn, std::memory_order_relaxed);
  return fn(crc, data, n);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n) {
  return ExtendCrc32c(0, data, n);
}

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  return g_extend.load(std::memory_order_relaxed)(crc, data, n);
}

namespace crc_detail {
const char* Crc32cVariant() { return UseSse42() ? "sse4.2" : "table"; }
}  // namespace crc_detail

}  // namespace gemrec
