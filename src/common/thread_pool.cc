#include "common/thread_pool.h"

#include "common/logging.h"

namespace gemrec {

ThreadPool::ThreadPool(size_t num_threads) {
  GEMREC_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    Submit([i, &fn] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gemrec
