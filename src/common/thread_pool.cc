#include "common/thread_pool.h"

#include <atomic>
#include <memory>

#include "common/logging.h"

namespace gemrec {
namespace {

/// Shared state of one ParallelFor call. Owned jointly by the caller
/// and the helper tasks (shared_ptr), so a helper that is dequeued
/// after the call returned finds all indices claimed and exits without
/// touching anything that may have gone out of scope.
struct ParallelForState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t n = 0;
  std::function<void(size_t)> fn;  // owned copy
  std::mutex mu;
  std::condition_variable cv;

  void RunShard() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  GEMREC_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // The caller claims indices too, so n == 1 (or an empty pool) needs
  // no shared state at all.
  const size_t helpers = std::min(workers_.size(), n - 1);
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->fn = fn;
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { state->RunShard(); });
  }
  state->RunShard();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == n;
  });
}

size_t ThreadPool::ClampThreads(size_t requested) {
  const size_t hw =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  if (requested == 0 || requested > hw) return hw;
  return requested;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gemrec
