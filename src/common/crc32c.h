#ifndef GEMREC_COMMON_CRC32C_H_
#define GEMREC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace gemrec {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used by the GEMREC02 model-artifact format to detect
/// torn writes and bit rot before a store reaches serving. Hardware
/// SSE4.2 CRC32 instructions are used when the CPU has them (runtime
/// dispatch, same resolver-pointer pattern as vec_math); the portable
/// fallback is a slicing-by-8 table walk. Both produce identical
/// values, so checksums written on one machine verify on any other.

/// CRC of a standalone buffer.
uint32_t Crc32c(const void* data, size_t n);

/// Extends a running CRC with more bytes: feeding a buffer in chunks
/// through ExtendCrc32c yields the same value as one Crc32c call over
/// the concatenation. Start chains with `crc = 0` via Crc32c, i.e.
/// ExtendCrc32c(0, p, n) == Crc32c(p, n).
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

namespace crc_detail {
/// "sse4.2" or "table" — which implementation dispatch selected.
const char* Crc32cVariant();
}  // namespace crc_detail

}  // namespace gemrec

#endif  // GEMREC_COMMON_CRC32C_H_
