#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace gemrec {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void FatalResultAccess(const Status& status) {
  std::fprintf(stderr, "gemrec: value() called on error Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace gemrec
