#ifndef GEMREC_COMMON_VEC_MATH_H_
#define GEMREC_COMMON_VEC_MATH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace gemrec {

/// Numerically clamped logistic sigmoid (the paper's f(x)). Exact
/// (libm) evaluation; the hot SGD loop uses FastSigmoid below.
inline float Sigmoid(float x) {
  if (x > 15.0f) return 1.0f;
  if (x < -15.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

namespace vec_detail {

/// Precomputed sigmoid table (word2vec-style), linearly interpolated.
/// kSigmoidEntries intervals over [-kSigmoidRange, kSigmoidRange]; the
/// interpolation error bound is h^2 * max|sigma''| / 8 < 1e-6 for
/// h = 2 * 16 / 4096.
constexpr int kSigmoidEntries = 4096;
constexpr float kSigmoidRange = 16.0f;
extern const float* SigmoidTable();  // kSigmoidEntries + 1 floats

// Kernel entry points, resolved once at first call to the best
// implementation the host CPU supports (AVX2+FMA on x86-64, an
// unrolled multi-accumulator scalar loop elsewhere).
float DotDispatch(const float* a, const float* b, size_t n);
void AxpyDispatch(float alpha, const float* x, float* y, size_t n);
void ReluDispatch(float* x, size_t n);
int32_t DotQ8Dispatch(const uint8_t* a, const int8_t* b, size_t n);
int32_t DotQ16Dispatch(const int16_t* a, const int16_t* b, size_t n);

/// Name of the kernel variant in use ("avx2" or "scalar"); for logs,
/// benches and tests.
const char* KernelVariant();

}  // namespace vec_detail

/// Table-interpolated sigmoid for hot loops: ~10x cheaper than expf
/// with absolute error < 1e-6. Exactly 0/1 outside +/-kSigmoidRange,
/// exactly 0.5 at 0.
inline float FastSigmoid(float x) {
  using vec_detail::kSigmoidEntries;
  using vec_detail::kSigmoidRange;
  if (x >= kSigmoidRange) return 1.0f;
  if (x <= -kSigmoidRange) return 0.0f;
  const float* table = vec_detail::SigmoidTable();
  const float t =
      (x + kSigmoidRange) *
      (static_cast<float>(kSigmoidEntries) / (2.0f * kSigmoidRange));
  const int i = static_cast<int>(t);
  const float frac = t - static_cast<float>(i);
  return table[i] + frac * (table[i + 1] - table[i]);
}

/// Scalar reference kernels. These define the semantics the vectorized
/// paths must match (up to float summation reordering for Dot); the
/// differential tests in tests/common/vec_math_test.cc pin the
/// dispatched kernels to these.
namespace scalar {

inline float Dot(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

inline void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

inline void ReluInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (x[i] < 0.0f) x[i] = 0.0f;
  }
}

inline float Norm(const float* x, size_t n) {
  return std::sqrt(Dot(x, x, n));
}

/// Quantized dot products. Value-range contracts (enforced by the
/// quantizers, not the kernels) exist so the AVX2 variants can use
/// _mm256_maddubs_epi16 / _mm256_madd_epi16 without saturating and the
/// scalar references can accumulate in int32 without signed overflow
/// (which UBSan would flag):
///   DotQ8:  a in [0, 127], b in [0, 127]  -> n up to ~2^17 is safe
///           (pairwise i16 sums stay <= 2*127*127 = 32258 < 2^15).
///   DotQ16: both in [0, 2047]             -> n up to 512 is safe
///           (per-product <= 2047^2 ~ 2^22; 512 of them < 2^31).
inline int32_t DotQ8(const uint8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

inline int32_t DotQ16(const int16_t* a, const int16_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

}  // namespace scalar

/// Dense dot product over contiguous float spans of length n.
/// Works on any alignment; Matrix rows are additionally 32-byte
/// aligned so whole-row calls start on a vector boundary.
inline float Dot(const float* a, const float* b, size_t n) {
  return vec_detail::DotDispatch(a, b, n);
}

/// y += alpha * x, over contiguous spans of length n.
inline void Axpy(float alpha, const float* x, float* y, size_t n) {
  vec_detail::AxpyDispatch(alpha, x, y, n);
}

/// Clamps every coordinate to be nonnegative (the paper's rectifier
/// projection applied after each SGD update).
inline void ReluInPlace(float* x, size_t n) {
  vec_detail::ReluDispatch(x, n);
}

/// Euclidean norm.
inline float Norm(const float* x, size_t n) {
  return std::sqrt(Dot(x, x, n));
}

/// Quantized-code dot product: unsigned 7-bit codes against signed
/// 7-bit codes (see the scalar reference for the [0, 127] range
/// contract). Integer-exact: the dispatched kernel returns the same
/// int32 as the scalar loop, bit for bit — no float reassociation
/// caveat like Dot.
inline int32_t DotQ8(const uint8_t* a, const int8_t* b, size_t n) {
  return vec_detail::DotQ8Dispatch(a, b, n);
}

/// Quantized-code dot product over 11-bit codes ([0, 2047] both sides,
/// n <= 512); integer-exact like DotQ8.
inline int32_t DotQ16(const int16_t* a, const int16_t* b, size_t n) {
  return vec_detail::DotQ16Dispatch(a, b, n);
}

}  // namespace gemrec

#endif  // GEMREC_COMMON_VEC_MATH_H_
