#ifndef GEMREC_COMMON_VEC_MATH_H_
#define GEMREC_COMMON_VEC_MATH_H_

#include <cmath>
#include <cstddef>

namespace gemrec {

/// Numerically clamped logistic sigmoid (the paper's f(x)).
inline float Sigmoid(float x) {
  if (x > 15.0f) return 1.0f;
  if (x < -15.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

/// Dense dot product over contiguous float spans of length n.
inline float Dot(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// y += alpha * x, over contiguous spans of length n.
inline void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// Clamps every coordinate to be nonnegative (the paper's rectifier
/// projection applied after each SGD update).
inline void ReluInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (x[i] < 0.0f) x[i] = 0.0f;
  }
}

/// Euclidean norm.
inline float Norm(const float* x, size_t n) {
  return std::sqrt(Dot(x, x, n));
}

}  // namespace gemrec

#endif  // GEMREC_COMMON_VEC_MATH_H_
