#ifndef GEMREC_COMMON_TABLE_PRINTER_H_
#define GEMREC_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace gemrec {

/// Formats aligned plain-text tables for the benchmark harness so every
/// bench binary prints its paper table/figure series the same way.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; it is padded or truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string Num(double value, int precision = 3);

  /// Renders the table with a header rule.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used before each bench table.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace gemrec

#endif  // GEMREC_COMMON_TABLE_PRINTER_H_
