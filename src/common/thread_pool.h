#ifndef GEMREC_COMMON_THREAD_POOL_H_
#define GEMREC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gemrec {

/// Minimal fixed-size worker pool. Used by the hogwild trainer and the
/// parallel sections of the bench harness; tasks must not throw.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gemrec

#endif  // GEMREC_COMMON_THREAD_POOL_H_
