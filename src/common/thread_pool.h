#ifndef GEMREC_COMMON_THREAD_POOL_H_
#define GEMREC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gemrec {

/// Minimal fixed-size worker pool. Used by the hogwild trainer, the
/// adaptive sampler's ranking rebuilds and the candidate-index build;
/// tasks must not throw.
///
/// Workers are created once and reused across submissions — callers on
/// a hot path (e.g. JointTrainer::TrainChunk every chunk) pay no
/// thread create/join cost.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) and returns when all calls finished.
  /// The calling thread participates: indices are claimed from a shared
  /// atomic cursor by the caller and by up to num_threads() pool
  /// workers. Because the caller always makes progress on its own, a
  /// ParallelFor issued from *inside* a pool task (or against a pool
  /// whose workers are busy with long-running work) degrades to serial
  /// execution on the caller instead of deadlocking.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Caps a requested worker count at the host's hardware concurrency
  /// (0 means "use all hardware threads"); never returns 0.
  static size_t ClampThreads(size_t requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gemrec

#endif  // GEMREC_COMMON_THREAD_POOL_H_
