// Vectorized kernel implementations behind the vec_math.h dispatch.
//
// Two tiers per kernel:
//   - portable: 4-way unrolled scalar with independent accumulators
//     (breaks the addss dependency chain that makes the naive reference
//     loop latency-bound), auto-vectorizable by the compiler;
//   - x86-64 AVX2+FMA via function target attributes, selected at
//     runtime with __builtin_cpu_supports, so default builds get SIMD
//     without -march flags and the binary stays portable.
//
// Dispatch uses the resolver-pointer pattern: each entry point starts
// as a resolver that probes the CPU once, retargets the atomic function
// pointer, and tail-calls the chosen kernel. Concurrent first calls
// race benignly (both write the same value).

#include "common/vec_math.h"

#include <atomic>
#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
#define GEMREC_X86 1
#include <immintrin.h>
#endif

namespace gemrec::vec_detail {
namespace {

// ---------------------------------------------------------------------------
// Portable kernels.

float DotPortable(const float* a, const float* b, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void AxpyPortable(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ReluPortable(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = x[i] < 0.0f ? 0.0f : x[i];
}

// Quantized-code dots: 4-way unrolled like DotPortable so the compiler
// can vectorize; int32 accumulators are safe under the [0,127] /
// [0,2047] caller contracts documented in vec_math.h.
int32_t DotQ8Portable(const uint8_t* a, const int8_t* b, size_t n) {
  int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<int32_t>(a[i]) * b[i];
    acc1 += static_cast<int32_t>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<int32_t>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<int32_t>(a[i + 3]) * b[i + 3];
  }
  int32_t acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += static_cast<int32_t>(a[i]) * b[i];
  return acc;
}

int32_t DotQ16Portable(const int16_t* a, const int16_t* b, size_t n) {
  int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<int32_t>(a[i]) * b[i];
    acc1 += static_cast<int32_t>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<int32_t>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<int32_t>(a[i + 3]) * b[i + 3];
  }
  int32_t acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += static_cast<int32_t>(a[i]) * b[i];
  return acc;
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels (runtime-gated; unaligned loads so callers may
// pass arbitrary spans, e.g. query.data() + k in TA search).

#ifdef GEMREC_X86

__attribute__((target("avx2,fma"))) float DotAvx2(const float* a,
                                                  const float* b,
                                                  size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
  }
  acc0 = _mm256_add_ps(acc0, acc1);
  __m128 lo = _mm256_castps256_ps128(acc0);
  __m128 hi = _mm256_extractf128_ps(acc0, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  float acc = _mm_cvtss_f32(lo);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(float alpha,
                                                  const float* x, float* y,
                                                  size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                                      _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void ReluAvx2(float* x, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) x[i] = x[i] < 0.0f ? 0.0f : x[i];
}

// 32 codes per iteration: u8*i8 -> pairwise i16 (maddubs; pair sums
// <= 2*127*127 = 32258, no saturation under the 7-bit contract), i16
// pairs -> i32 (madd against ones), i32 lanes accumulate. Each i32
// lane grows by <= 4*127^2 per iteration, so overflow needs n beyond
// 2^21 — far past any embedding width.
__attribute__((target("avx2"))) int32_t DotQ8Avx2(const uint8_t* a,
                                                  const int8_t* b,
                                                  size_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));
    const __m256i prods16 = _mm256_maddubs_epi16(va, vb);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prods16, ones));
  }
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_hadd_epi32(lo, lo);
  lo = _mm_hadd_epi32(lo, lo);
  int32_t sum = _mm_cvtsi128_si32(lo);
  for (; i < n; ++i) sum += static_cast<int32_t>(a[i]) * b[i];
  return sum;
}

// 16 codes per iteration via madd_epi16 (pair sums <= 2*2047^2 < 2^31
// under the 11-bit contract); i32 lanes accumulate, each growing by
// <= 2*2047^2 per iteration, so the n <= 512 caller contract keeps the
// lanes far from overflow.
__attribute__((target("avx2"))) int32_t DotQ16Avx2(const int16_t* a,
                                                   const int16_t* b,
                                                   size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_hadd_epi32(lo, lo);
  lo = _mm_hadd_epi32(lo, lo);
  int32_t sum = _mm_cvtsi128_si32(lo);
  for (; i < n; ++i) sum += static_cast<int32_t>(a[i]) * b[i];
  return sum;
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // GEMREC_X86

// ---------------------------------------------------------------------------
// Resolvers.

using DotFn = float (*)(const float*, const float*, size_t);
using AxpyFn = void (*)(float, const float*, float*, size_t);
using ReluFn = void (*)(float*, size_t);
using DotQ8Fn = int32_t (*)(const uint8_t*, const int8_t*, size_t);
using DotQ16Fn = int32_t (*)(const int16_t*, const int16_t*, size_t);

float DotResolve(const float* a, const float* b, size_t n);
void AxpyResolve(float alpha, const float* x, float* y, size_t n);
void ReluResolve(float* x, size_t n);
int32_t DotQ8Resolve(const uint8_t* a, const int8_t* b, size_t n);
int32_t DotQ16Resolve(const int16_t* a, const int16_t* b, size_t n);

std::atomic<DotFn> g_dot{&DotResolve};
std::atomic<AxpyFn> g_axpy{&AxpyResolve};
std::atomic<ReluFn> g_relu{&ReluResolve};
std::atomic<DotQ8Fn> g_dot_q8{&DotQ8Resolve};
std::atomic<DotQ16Fn> g_dot_q16{&DotQ16Resolve};

bool UseAvx2() {
#ifdef GEMREC_X86
  return CpuHasAvx2Fma();
#else
  return false;
#endif
}

float DotResolve(const float* a, const float* b, size_t n) {
#ifdef GEMREC_X86
  const DotFn fn = UseAvx2() ? &DotAvx2 : &DotPortable;
#else
  const DotFn fn = &DotPortable;
#endif
  g_dot.store(fn, std::memory_order_relaxed);
  return fn(a, b, n);
}

void AxpyResolve(float alpha, const float* x, float* y, size_t n) {
#ifdef GEMREC_X86
  const AxpyFn fn = UseAvx2() ? &AxpyAvx2 : &AxpyPortable;
#else
  const AxpyFn fn = &AxpyPortable;
#endif
  g_axpy.store(fn, std::memory_order_relaxed);
  fn(alpha, x, y, n);
}

void ReluResolve(float* x, size_t n) {
#ifdef GEMREC_X86
  const ReluFn fn = UseAvx2() ? &ReluAvx2 : &ReluPortable;
#else
  const ReluFn fn = &ReluPortable;
#endif
  g_relu.store(fn, std::memory_order_relaxed);
  fn(x, n);
}

int32_t DotQ8Resolve(const uint8_t* a, const int8_t* b, size_t n) {
#ifdef GEMREC_X86
  const DotQ8Fn fn = UseAvx2() ? &DotQ8Avx2 : &DotQ8Portable;
#else
  const DotQ8Fn fn = &DotQ8Portable;
#endif
  g_dot_q8.store(fn, std::memory_order_relaxed);
  return fn(a, b, n);
}

int32_t DotQ16Resolve(const int16_t* a, const int16_t* b, size_t n) {
#ifdef GEMREC_X86
  const DotQ16Fn fn = UseAvx2() ? &DotQ16Avx2 : &DotQ16Portable;
#else
  const DotQ16Fn fn = &DotQ16Portable;
#endif
  g_dot_q16.store(fn, std::memory_order_relaxed);
  return fn(a, b, n);
}

}  // namespace

float DotDispatch(const float* a, const float* b, size_t n) {
  return g_dot.load(std::memory_order_relaxed)(a, b, n);
}

void AxpyDispatch(float alpha, const float* x, float* y, size_t n) {
  g_axpy.load(std::memory_order_relaxed)(alpha, x, y, n);
}

void ReluDispatch(float* x, size_t n) {
  g_relu.load(std::memory_order_relaxed)(x, n);
}

int32_t DotQ8Dispatch(const uint8_t* a, const int8_t* b, size_t n) {
  return g_dot_q8.load(std::memory_order_relaxed)(a, b, n);
}

int32_t DotQ16Dispatch(const int16_t* a, const int16_t* b, size_t n) {
  return g_dot_q16.load(std::memory_order_relaxed)(a, b, n);
}

const char* KernelVariant() { return UseAvx2() ? "avx2" : "scalar"; }

const float* SigmoidTable() {
  static const float* table = [] {
    static float storage[kSigmoidEntries + 1];
    for (int i = 0; i <= kSigmoidEntries; ++i) {
      const double x = -kSigmoidRange +
                       2.0 * kSigmoidRange * i / kSigmoidEntries;
      storage[i] = static_cast<float>(1.0 / (1.0 + std::exp(-x)));
    }
    return storage;
  }();
  return table;
}

}  // namespace gemrec::vec_detail
