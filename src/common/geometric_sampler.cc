#include "common/geometric_sampler.h"

#include <cmath>

#include "common/logging.h"

namespace gemrec {

GeometricSampler::GeometricSampler(double lambda, uint64_t max_rank)
    : lambda_(lambda), max_rank_(max_rank) {
  GEMREC_CHECK(lambda > 0.0) << "lambda must be positive";
  GEMREC_CHECK(max_rank > 0) << "max_rank must be positive";
  inside_mass_ =
      1.0 - std::exp(-static_cast<double>(max_rank) / lambda_);
}

uint64_t GeometricSampler::Sample(Rng* rng) const {
  // Inverse CDF of Exp(1/lambda), with u scaled so the result lands in
  // [0, max_rank) directly — an exact truncated sample, no rejection
  // loop needed.
  const double u = rng->UniformDouble() * inside_mass_;
  const double x = -lambda_ * std::log1p(-u);
  uint64_t rank = static_cast<uint64_t>(x);
  if (rank >= max_rank_) rank = max_rank_ - 1;  // numeric edge guard
  return rank;
}

}  // namespace gemrec
