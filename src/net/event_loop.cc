#include "net/event_loop.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace gemrec::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  GEMREC_CHECK(epoll_fd_ >= 0)
      << "epoll_create1: " << std::strerror(errno);
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  GEMREC_CHECK(wakeup_fd_ >= 0) << "eventfd: " << std::strerror(errno);
  Add(wakeup_fd_, EPOLLIN, kWakeupTag);
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Add(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  GEMREC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl ADD fd " << fd << ": " << std::strerror(errno);
}

void EventLoop::Mod(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  GEMREC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
      << "epoll_ctl MOD fd " << fd << ": " << std::strerror(errno);
}

void EventLoop::Del(int fd) {
  GEMREC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) == 0)
      << "epoll_ctl DEL fd " << fd << ": " << std::strerror(errno);
}

int EventLoop::Poll(int timeout_ms, std::vector<epoll_event>* out) {
  if (out->size() < 64) out->resize(64);
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, out->data(),
                               static_cast<int>(out->size()), timeout_ms);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    GEMREC_CHECK(false) << "epoll_wait: " << std::strerror(errno);
  }
}

void EventLoop::Wakeup() {
  // write(2) on an eventfd is async-signal-safe; the counter saturates
  // rather than blocks, and a full counter still leaves EPOLLIN set.
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::DrainWakeup() {
  uint64_t value;
  while (::read(wakeup_fd_, &value, sizeof(value)) > 0) {
  }
}

}  // namespace gemrec::net
