#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace gemrec::net {
namespace {

constexpr uint64_t kListenTag = 1;
constexpr int kListenBacklog = 512;
/// Upper bound on one Poll sleep so gauge-style bookkeeping (timeout
/// sweeps, drain progress) never stalls for long.
constexpr int kMaxPollMs = 500;

int ToMillisCeil(std::chrono::steady_clock::duration d) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  return static_cast<int>(std::max<int64_t>(0, ms)) +
         (d > std::chrono::milliseconds(ms) ? 1 : 0);
}

}  // namespace

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    return Status::InvalidArgument("expected host:port, got '" + spec +
                                   "'");
  }
  *host = spec.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  char* end = nullptr;
  const unsigned long value =  // NOLINT(runtime/int)
      std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value > 65535) {
    return Status::InvalidArgument("invalid port in '" + spec + "'");
  }
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

NetServer::NetServer(serving::RecommendationService* service,
                     const ServerOptions& options,
                     serving::IngestionQueue* ingest)
    : service_(service), ingest_(ingest), options_(options) {
  GEMREC_CHECK(service_ != nullptr);
  // One registry for the whole serve stack: socket metrics live next
  // to the service's own, so a single stats scrape sees both.
  metrics_.RegisterInto(service_->metrics());
  options_.max_in_flight = std::max(1u, options_.max_in_flight);
  options_.max_service_saturation =
      std::max<size_t>(1, options_.max_service_saturation);
}

obs::MetricsRegistry* NetServer::metrics_registry() const {
  return service_->metrics();
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  GEMREC_CHECK(!started_) << "NetServer started twice";

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.listen_address.c_str(),
                  &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" +
                                   options_.listen_address + "'");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  // Ephemeral binds (port 0) cannot collide; fixed ports get a bounded
  // EADDRINUSE retry so a restart over a TIME_WAIT remnant succeeds.
  Status bind_status;
  for (uint32_t attempt = 0;; ++attempt) {
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) == 0) {
      bind_status = Status::Ok();
      break;
    }
    bind_status =
        Status::IoError(std::string("bind ") + options_.listen_address +
                        ":" + std::to_string(options_.port) + ": " +
                        std::strerror(errno));
    if (errno != EADDRINUSE || options_.port == 0 ||
        attempt >= options_.bind_retries) {
      break;
    }
    std::this_thread::sleep_for(options_.bind_retry_delay);
  }
  if (!bind_status.ok()) {
    ::close(fd);
    return bind_status;
  }
  if (::listen(fd, kListenBacklog) != 0) {
    const Status s =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  GEMREC_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                             &bound_len) == 0);
  bound_port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  loop_.Add(listen_fd_, EPOLLIN, kListenTag);

  completions_ = std::make_shared<CompletionQueue>();
  completions_->loop = &loop_;

  started_ = true;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void NetServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  loop_.Wakeup();
}

void NetServer::NotifyDrainFromSignal() {
  // Only async-signal-safe operations: a lock-free atomic store and an
  // eventfd write inside Wakeup.
  drain_requested_.store(true, std::memory_order_relaxed);
  loop_.Wakeup();
}

void NetServer::WaitUntilStopped() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  stopped_cv_.wait(lock, [this] {
    return !started_ || !running_.load(std::memory_order_acquire);
  });
}

void NetServer::Stop() {
  if (!started_) return;
  RequestDrain();
  if (loop_thread_.joinable()) loop_thread_.join();
}

NetServer::Connection* NetServer::FindConnection(uint64_t id) {
  const auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : it->second.get();
}

void NetServer::Loop() {
  std::vector<epoll_event> events;
  while (true) {
    auto now = std::chrono::steady_clock::now();
    if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
      EnterDrain(now);
    }
    if (draining_ &&
        (connections_.empty() || now >= drain_deadline_)) {
      break;
    }

    const int n = loop_.Poll(PollTimeoutMs(now), &events);
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == EventLoop::kWakeupTag) {
        loop_.DrainWakeup();
        continue;
      }
      if (tag == kListenTag) {
        HandleAccept();
        continue;
      }
      Connection* conn = reinterpret_cast<Connection*>(tag);
      if (events[i].events & (EPOLLHUP | EPOLLERR)) conn->dead = true;
      if (!conn->dead && (events[i].events & EPOLLIN)) {
        HandleReadable(conn);
      }
      if (!conn->dead && (events[i].events & EPOLLOUT)) {
        FlushWrites(conn);
      }
      if (conn->dead) {
        CloseConnection(conn);
      } else {
        UpdateInterest(conn);
      }
    }
    DrainCompletions();
    SweepTimeouts(std::chrono::steady_clock::now());
  }

  // Teardown: cut surviving connections (drain deadline passed or all
  // work flushed), close the completion channel so late worker
  // callbacks become no-ops, then announce the stop.
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (const uint64_t id : ids) {
    if (Connection* conn = FindConnection(id)) CloseConnection(conn);
  }
  {
    std::lock_guard<std::mutex> lock(completions_->mu);
    completions_->closed = true;
    completions_->loop = nullptr;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    running_.store(false, std::memory_order_release);
  }
  stopped_cv_.notify_all();
}

void NetServer::EnterDrain(std::chrono::steady_clock::time_point now) {
  draining_ = true;
  drain_deadline_ = now + options_.drain_timeout;
  if (listen_fd_ >= 0) {
    loop_.Del(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Stop reading everywhere; in-flight responses still flush. Idle
  // connections fall to the sweep immediately below.
  for (const auto& [id, conn] : connections_) {
    conn->draining = true;
    UpdateInterest(conn.get());
  }
  SweepTimeouts(now);
}

void NetServer::HandleAccept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN (drained) or transient failure: try next round
    }
    if (connections_.size() >= options_.max_connections) {
      GEMREC_LOG(Warning) << "connection limit "
                          << options_.max_connections
                          << " reached; refusing fd " << fd;
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->last_activity = std::chrono::steady_clock::now();
    conn->interest = EPOLLIN;
    loop_.Add(fd, EPOLLIN, reinterpret_cast<uint64_t>(conn.get()));
    metrics_.accepted->Increment();
    metrics_.active_connections->Add(1);
    connections_.emplace(conn->id, std::move(conn));
  }
}

void NetServer::HandleReadable(Connection* conn) {
  uint8_t buf[64 * 1024];
  const auto now = std::chrono::steady_clock::now();
  while (!conn->dead && !conn->draining) {
    const ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r == 0) {  // peer closed its write half
      conn->dead = true;
      break;
    }
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn->dead = true;
      break;
    }
    metrics_.bytes_received->Increment(static_cast<uint64_t>(r));
    conn->last_activity = now;
    if (const Status s =
            conn->decoder.Feed(buf, static_cast<size_t>(r));
        !s.ok()) {
      GEMREC_LOG(Debug) << "protocol error on conn " << conn->id << ": "
                        << s.ToString();
      metrics_.protocol_errors->Increment();
      conn->dead = true;
      break;
    }
    Frame frame;
    while (!conn->dead && !conn->draining &&
           conn->decoder.Next(&frame)) {
      HandleFrame(conn, frame);
    }
    if (r < static_cast<ssize_t>(sizeof(buf))) break;  // socket drained
  }
  // Read-timeout anchor: a partial frame's clock starts when its first
  // bytes arrive and resets once the frame completes.
  if (!conn->dead && conn->decoder.mid_frame()) {
    if (!conn->has_partial) {
      conn->has_partial = true;
      conn->partial_since = now;
    }
  } else {
    conn->has_partial = false;
  }
}

void NetServer::HandleFrame(Connection* conn, const Frame& frame) {
  switch (frame.type) {
    case MessageType::kPing: {
      metrics_.pings->Increment();
      AppendFrame(MessageType::kPong, nullptr, 0, &conn->write_buf);
      AfterQueue(conn);
      return;
    }
    case MessageType::kStatsRequest: {
      if (const Status s =
              DecodeStatsRequest(frame.payload.data(), frame.payload.size());
          !s.ok()) {
        metrics_.bad_requests->Increment();
        SendError(conn, ErrorCode::kBadRequest, s.message());
        return;
      }
      // Served unconditionally — no admission control, no drain
      // refusal: an operator asking "why is this server shedding /
      // draining" must get an answer from exactly that server.
      metrics_.stats_requests->Increment();
      AppendStatsResponseFrame(service_->metrics()->Snapshot(),
                               &conn->write_buf);
      AfterQueue(conn);
      return;
    }
    case MessageType::kQueryRequest: {
      metrics_.requests->Increment();
      if (draining_) {
        metrics_.drain_rejects->Increment();
        SendError(conn, ErrorCode::kShuttingDown, "server draining");
        return;
      }
      serving::QueryRequest request;
      if (const Status s = DecodeQueryRequest(
              frame.payload.data(), frame.payload.size(), &request);
          !s.ok()) {
        metrics_.bad_requests->Increment();
        SendError(conn, ErrorCode::kBadRequest, s.message());
        return;
      }
      // Admission control: the server's own budget of unanswered
      // requests, then the service's real saturation gauges. Both
      // gates shed with a typed error the client sees immediately —
      // the request never enters a queue it would wait in unboundedly.
      if (total_in_flight_ >= options_.max_in_flight ||
          service_->QueueDepth() + service_->InFlight() >=
              options_.max_service_saturation) {
        metrics_.overload_sheds->Increment();
        SendError(conn, ErrorCode::kOverloaded, "server overloaded");
        return;
      }
      ++total_in_flight_;
      ++conn->in_flight;
      const uint64_t conn_id = conn->id;
      // Round-trip anchor: decode time, so the histogram covers the
      // service queue wait, the search and the hop back to this thread.
      const auto received_at = std::chrono::steady_clock::now();
      std::shared_ptr<CompletionQueue> cq = completions_;
      service_->SubmitAsync(
          request,
          [cq, conn_id, received_at](serving::QueryResponse response) {
            std::lock_guard<std::mutex> lock(cq->mu);
            if (cq->closed) return;
            const bool was_empty = cq->items.empty();
            cq->items.push_back(
                Completion{conn_id, std::move(response), received_at});
            // One wakeup per burst: later completions piggyback on the
            // pending eventfd tick.
            if (was_empty && cq->loop != nullptr) cq->loop->Wakeup();
          });
      return;
    }
    case MessageType::kAttendance:
    case MessageType::kNewEvent: {
      metrics_.ingest_requests->Increment();
      if (draining_) {
        metrics_.drain_rejects->Increment();
        SendError(conn, ErrorCode::kShuttingDown, "server draining");
        return;
      }
      if (ingest_ == nullptr) {
        metrics_.bad_requests->Increment();
        SendError(conn, ErrorCode::kBadRequest,
                  "ingestion disabled on this server");
        return;
      }
      serving::IngestRecord record;
      const Status s =
          frame.type == MessageType::kAttendance
              ? DecodeAttendance(frame.payload.data(),
                                 frame.payload.size(), &record)
              : DecodeNewEvent(frame.payload.data(), frame.payload.size(),
                               &record);
      if (!s.ok()) {
        metrics_.bad_requests->Increment();
        SendError(conn, ErrorCode::kBadRequest, s.message());
        return;
      }
      // Write-side admission control lives in the queue itself
      // (max_pending); a full queue answers kOverloaded immediately —
      // the fail-fast twin of the read path's in-flight budget.
      const uint64_t conn_id = conn->id;
      const auto received_at = std::chrono::steady_clock::now();
      ++total_in_flight_;
      ++conn->in_flight;
      std::shared_ptr<CompletionQueue> cq = completions_;
      const serving::IngestAdmission admission = ingest_->SubmitAsync(
          std::move(record),
          [cq, conn_id, received_at](Status status, uint64_t seq) {
            std::lock_guard<std::mutex> lock(cq->mu);
            if (cq->closed) return;
            const bool was_empty = cq->items.empty();
            Completion completion;
            completion.conn_id = conn_id;
            completion.received_at = received_at;
            completion.is_ingest = true;
            completion.ingest_status = std::move(status);
            completion.ingest_seq = seq;
            cq->items.push_back(std::move(completion));
            if (was_empty && cq->loop != nullptr) cq->loop->Wakeup();
          });
      if (admission != serving::IngestAdmission::kAccepted) {
        // The ack callback never fires for a refused submission.
        --total_in_flight_;
        --conn->in_flight;
        if (admission == serving::IngestAdmission::kQueueFull) {
          metrics_.overload_sheds->Increment();
          SendError(conn, ErrorCode::kOverloaded, "ingest queue full");
        } else {
          metrics_.drain_rejects->Increment();
          SendError(conn, ErrorCode::kShuttingDown,
                    "ingestion shutting down");
        }
      }
      return;
    }
    case MessageType::kQueryResponse:
    case MessageType::kPong:
    case MessageType::kError:
    case MessageType::kStatsResponse:
    case MessageType::kIngestAck:
      break;
  }
  metrics_.bad_requests->Increment();
  SendError(conn, ErrorCode::kBadRequest, "unexpected message type");
}

void NetServer::SendError(Connection* conn, ErrorCode code,
                          std::string_view msg) {
  AppendErrorFrame(code, msg, &conn->write_buf);
  AfterQueue(conn);
}

void NetServer::AfterQueue(Connection* conn) {
  FlushWrites(conn);
  if (!conn->dead && conn->pending_write() > options_.max_write_buffer) {
    metrics_.slow_reader_disconnects->Increment();
    conn->dead = true;
  }
}

void NetServer::FlushWrites(Connection* conn) {
  while (conn->pending_write() > 0) {
    const ssize_t w =
        ::send(conn->fd, conn->write_buf.data() + conn->write_pos,
               conn->pending_write(), MSG_NOSIGNAL);
    if (w > 0) {
      conn->write_pos += static_cast<size_t>(w);
      metrics_.bytes_sent->Increment(static_cast<uint64_t>(w));
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    conn->dead = true;  // EPIPE/ECONNRESET/...
    return;
  }
  if (conn->write_pos == conn->write_buf.size()) {
    conn->write_buf.clear();
    conn->write_pos = 0;
  } else if (conn->write_pos > (64u << 10)) {
    conn->write_buf.erase(
        conn->write_buf.begin(),
        conn->write_buf.begin() + static_cast<ptrdiff_t>(conn->write_pos));
    conn->write_pos = 0;
  }
}

void NetServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_->mu);
    batch.swap(completions_->items);
  }
  for (Completion& completion : batch) {
    GEMREC_CHECK(total_in_flight_ > 0);
    --total_in_flight_;
    Connection* conn = FindConnection(completion.conn_id);
    if (conn == nullptr || conn->dead) {
      // The connection died (timeout, slow reader, protocol error)
      // while its request was being served.
      metrics_.orphaned_responses->Increment();
      continue;
    }
    GEMREC_CHECK(conn->in_flight > 0);
    --conn->in_flight;
    if (completion.is_ingest) {
      if (completion.ingest_status.ok()) {
        AppendIngestAckFrame(completion.ingest_seq, &conn->write_buf);
        metrics_.ingest_acks->Increment();
        const auto elapsed =
            std::chrono::steady_clock::now() - completion.received_at;
        metrics_.round_trip_us->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count()));
        AfterQueue(conn);
      } else {
        // Typed mapping: caller mistakes are kBadRequest, anything the
        // server did to itself (journal I/O, apply) is kInternal.
        const StatusCode code = completion.ingest_status.code();
        const ErrorCode wire_code =
            (code == StatusCode::kInvalidArgument ||
             code == StatusCode::kOutOfRange)
                ? ErrorCode::kBadRequest
                : ErrorCode::kInternal;
        if (wire_code == ErrorCode::kBadRequest) {
          metrics_.bad_requests->Increment();
        }
        SendError(conn, wire_code, completion.ingest_status.message());
      }
      if (conn->dead) {
        CloseConnection(conn);
      } else {
        UpdateInterest(conn);
      }
      continue;
    }
    if (completion.response.rejected) {
      // The service refused the request racing its own Shutdown; the
      // client gets the same typed error as an up-front drain refusal
      // instead of an empty result it might mistake for a real answer.
      metrics_.drain_rejects->Increment();
      SendError(conn, ErrorCode::kShuttingDown, "service shutting down");
    } else {
      AppendQueryResponseFrame(completion.response, &conn->write_buf);
      metrics_.responses->Increment();
      const auto elapsed =
          std::chrono::steady_clock::now() - completion.received_at;
      metrics_.round_trip_us->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count()));
      AfterQueue(conn);
    }
    if (conn->dead) {
      CloseConnection(conn);
    } else {
      UpdateInterest(conn);
    }
  }
}

void NetServer::SweepTimeouts(std::chrono::steady_clock::time_point now) {
  std::vector<uint64_t> doomed;
  for (const auto& [id, conn] : connections_) {
    if (conn->dead) {
      doomed.push_back(id);
      continue;
    }
    if (conn->draining) {
      // Drain completion for this connection: everything answered and
      // flushed — or the peer gets cut at the global drain deadline.
      if (conn->in_flight == 0 && conn->pending_write() == 0) {
        doomed.push_back(id);
      }
      continue;
    }
    if (conn->has_partial &&
        now - conn->partial_since >= options_.read_timeout) {
      metrics_.read_timeouts->Increment();
      doomed.push_back(id);
      continue;
    }
    if (!conn->has_partial && conn->in_flight == 0 &&
        conn->pending_write() == 0 &&
        now - conn->last_activity >= options_.idle_timeout) {
      metrics_.idle_timeouts->Increment();
      doomed.push_back(id);
    }
  }
  for (const uint64_t id : doomed) {
    if (Connection* conn = FindConnection(id)) CloseConnection(conn);
  }
}

int NetServer::PollTimeoutMs(
    std::chrono::steady_clock::time_point now) const {
  auto deadline = now + std::chrono::milliseconds(kMaxPollMs);
  for (const auto& [id, conn] : connections_) {
    if (conn->draining) continue;
    if (conn->has_partial) {
      deadline =
          std::min(deadline, conn->partial_since + options_.read_timeout);
    } else if (conn->in_flight == 0 && conn->pending_write() == 0) {
      deadline =
          std::min(deadline, conn->last_activity + options_.idle_timeout);
    }
  }
  if (draining_) deadline = std::min(deadline, drain_deadline_);
  return std::min(kMaxPollMs, ToMillisCeil(deadline - now));
}

void NetServer::UpdateInterest(Connection* conn) {
  uint32_t want = 0;
  if (!conn->draining) want |= EPOLLIN;
  if (conn->pending_write() > 0) want |= EPOLLOUT;
  if (want != conn->interest) {
    loop_.Mod(conn->fd, want, reinterpret_cast<uint64_t>(conn));
    conn->interest = want;
  }
}

void NetServer::CloseConnection(Connection* conn) {
  loop_.Del(conn->fd);
  ::close(conn->fd);
  metrics_.active_connections->Sub(1);
  connections_.erase(conn->id);  // destroys *conn
}

}  // namespace gemrec::net
