#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "net/reactor.h"

namespace gemrec::net {
namespace {

constexpr int kListenBacklog = 512;

}  // namespace

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    return Status::InvalidArgument("expected host:port, got '" + spec +
                                   "'");
  }
  *host = spec.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  // All-digits only: strtoul alone would skip leading whitespace and
  // accept a sign, quietly turning "host: 80" / "host:+80" into 80.
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(spec[i]))) {
      return Status::InvalidArgument("invalid port in '" + spec + "'");
    }
  }
  char* end = nullptr;
  const unsigned long value =  // NOLINT(runtime/int)
      std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value > 65535) {
    return Status::InvalidArgument("invalid port in '" + spec + "'");
  }
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

NetServer::NetServer(serving::QueryBackend* service,
                     const ServerOptions& options,
                     serving::IngestionQueue* ingest)
    : service_(service), ingest_(ingest), options_(options) {
  GEMREC_CHECK(service_ != nullptr);
  // One registry for the whole serve stack: socket metrics live next
  // to the service's own, so a single stats scrape sees both.
  metrics_.RegisterInto(service_->metrics());
  options_.num_reactors = std::max(1u, options_.num_reactors);
  options_.max_in_flight = std::max(1u, options_.max_in_flight);
  options_.max_service_saturation =
      std::max<size_t>(1, options_.max_service_saturation);
}

obs::MetricsRegistry* NetServer::metrics_registry() const {
  return service_->metrics();
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  GEMREC_CHECK(!started_) << "NetServer started twice";

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.listen_address.c_str(),
                  &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" +
                                   options_.listen_address + "'");
  }

  const uint32_t n = options_.num_reactors;
  bool handoff = options_.force_acceptor_handoff;

  const int fd0 = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                           0);
  if (fd0 < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd0, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (!handoff && n > 1) {
    // The first socket needs SO_REUSEPORT set BEFORE bind or the
    // siblings' binds to the same port will fail. If the kernel
    // refuses the option, fall back to the shared-acceptor topology.
    if (::setsockopt(fd0, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
        0) {
      GEMREC_LOG(Warning)
          << "SO_REUSEPORT unavailable (" << std::strerror(errno)
          << "); falling back to single acceptor with fd handoff";
      handoff = true;
    }
  }

  // Ephemeral binds (port 0) cannot collide; fixed ports get a bounded
  // EADDRINUSE retry so a restart over a TIME_WAIT remnant succeeds.
  Status bind_status;
  for (uint32_t attempt = 0;; ++attempt) {
    if (::bind(fd0, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) == 0) {
      bind_status = Status::Ok();
      break;
    }
    bind_status =
        Status::IoError(std::string("bind ") + options_.listen_address +
                        ":" + std::to_string(options_.port) + ": " +
                        std::strerror(errno));
    if (errno != EADDRINUSE || options_.port == 0 ||
        attempt >= options_.bind_retries) {
      break;
    }
    std::this_thread::sleep_for(options_.bind_retry_delay);
  }
  if (!bind_status.ok()) {
    ::close(fd0);
    return bind_status;
  }
  if (::listen(fd0, kListenBacklog) != 0) {
    const Status s =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd0);
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  GEMREC_CHECK(::getsockname(fd0, reinterpret_cast<sockaddr*>(&bound),
                             &bound_len) == 0);
  bound_port_ = ntohs(bound.sin_port);

  // Sibling listeners bind the RESOLVED port (a port-0 request already
  // got its ephemeral port above), so the whole group shares one
  // address and the kernel load-balances accepts across reactors.
  std::vector<int> listen_fds(n, -1);
  listen_fds[0] = fd0;
  if (!handoff) {
    sockaddr_in sibling = addr;
    sibling.sin_port = htons(bound_port_);
    for (uint32_t r = 1; r < n; ++r) {
      const int fd = ::socket(
          AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      Status s;
      if (fd < 0) {
        s = Status::IoError(std::string("socket: ") +
                            std::strerror(errno));
      } else {
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&sibling),
                   sizeof(sibling)) != 0 ||
            ::listen(fd, kListenBacklog) != 0) {
          s = Status::IoError(std::string("reactor ") + std::to_string(r) +
                              " listener: " + std::strerror(errno));
        }
      }
      if (!s.ok()) {
        if (fd >= 0) ::close(fd);
        for (const int open_fd : listen_fds) {
          if (open_fd >= 0) ::close(open_fd);
        }
        return s;
      }
      listen_fds[r] = fd;
    }
  }

  Reactor::Shared shared;
  shared.service = service_;
  shared.ingest = ingest_;
  shared.options = &options_;
  shared.metrics = &metrics_;
  shared.total_in_flight = &total_in_flight_;
  shared.total_connections = &total_connections_;
  reactors_.reserve(n);
  for (uint32_t r = 0; r < n; ++r) {
    reactors_.push_back(std::make_unique<Reactor>(r, shared));
  }
  std::vector<Reactor*> peers;
  if (handoff && n > 1) {
    peers.reserve(n);
    for (const auto& reactor : reactors_) peers.push_back(reactor.get());
  }
  service_->metrics()
      ->GetGauge("gemrec_net_reactors",
                 "Reactor (event-loop) threads of the network front-end.")
      ->Set(static_cast<int64_t>(n));
  for (uint32_t r = 0; r < n; ++r) {
    reactors_[r]->Start(listen_fds[r],
                        r == 0 ? peers : std::vector<Reactor*>{});
  }
  started_ = true;
  return Status::Ok();
}

void NetServer::RequestDrain() {
  for (const auto& reactor : reactors_) reactor->RequestDrain();
}

void NetServer::NotifyDrainFromSignal() {
  // Only async-signal-safe operations: reactors_ is immutable after
  // Start, and each RequestDrain is a lock-free atomic store plus an
  // eventfd write.
  for (const auto& reactor : reactors_) reactor->RequestDrain();
}

void NetServer::WaitUntilStopped() {
  for (const auto& reactor : reactors_) reactor->WaitUntilStopped();
}

void NetServer::Stop() {
  if (!started_) return;
  RequestDrain();
  for (const auto& reactor : reactors_) reactor->Join();
}

bool NetServer::running() const {
  for (const auto& reactor : reactors_) {
    if (reactor->running()) return true;
  }
  return false;
}

}  // namespace gemrec::net
