#ifndef GEMREC_NET_NET_STATS_H_
#define GEMREC_NET_NET_STATS_H_

#include <atomic>
#include <cstdint>

namespace gemrec::net {

/// Monotonic counters of the network front-end, the socket-level
/// sibling of serving::ServiceStats. Snapshot via NetServer::stats().
struct NetStats {
  uint64_t accepted = 0;
  uint64_t active_connections = 0;
  uint64_t requests = 0;   // CRC-clean query frames decoded
  uint64_t responses = 0;  // response frames queued for write
  /// Requests answered with a typed OVERLOADED error because the
  /// in-flight budget or the service queue was saturated.
  uint64_t overload_sheds = 0;
  /// Requests refused with SHUTTING_DOWN while draining.
  uint64_t drain_rejects = 0;
  uint64_t bad_requests = 0;      // decodable frame, bogus payload
  uint64_t protocol_errors = 0;   // connection killed by FrameDecoder
  uint64_t idle_timeouts = 0;     // closed: silent past idle_timeout
  uint64_t read_timeouts = 0;     // closed: partial frame past read_timeout
  /// Closed because the peer stopped reading and the connection's
  /// write buffer exceeded max_write_buffer.
  uint64_t slow_reader_disconnects = 0;
  /// Responses completed after their connection was already gone.
  uint64_t orphaned_responses = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
};

namespace internal {

/// Atomic backing for NetStats: the event-loop thread and service
/// workers bump these concurrently with readers snapshotting them.
struct AtomicNetStats {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> active_connections{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> overload_sheds{0};
  std::atomic<uint64_t> drain_rejects{0};
  std::atomic<uint64_t> bad_requests{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> idle_timeouts{0};
  std::atomic<uint64_t> read_timeouts{0};
  std::atomic<uint64_t> slow_reader_disconnects{0};
  std::atomic<uint64_t> orphaned_responses{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};

  NetStats Snapshot() const {
    NetStats s;
    s.accepted = accepted.load(std::memory_order_relaxed);
    s.active_connections =
        active_connections.load(std::memory_order_relaxed);
    s.requests = requests.load(std::memory_order_relaxed);
    s.responses = responses.load(std::memory_order_relaxed);
    s.overload_sheds = overload_sheds.load(std::memory_order_relaxed);
    s.drain_rejects = drain_rejects.load(std::memory_order_relaxed);
    s.bad_requests = bad_requests.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    s.idle_timeouts = idle_timeouts.load(std::memory_order_relaxed);
    s.read_timeouts = read_timeouts.load(std::memory_order_relaxed);
    s.slow_reader_disconnects =
        slow_reader_disconnects.load(std::memory_order_relaxed);
    s.orphaned_responses =
        orphaned_responses.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace internal
}  // namespace gemrec::net

#endif  // GEMREC_NET_NET_STATS_H_
