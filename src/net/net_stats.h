#ifndef GEMREC_NET_NET_STATS_H_
#define GEMREC_NET_NET_STATS_H_

#include <algorithm>
#include <cstdint>

#include "obs/metrics.h"

namespace gemrec::net {

/// Thin plain-value view of the network front-end's registry metrics,
/// the socket-level sibling of serving::ServiceStats. Snapshot via
/// NetServer::stats(); the registry carries the same values under
/// their `gemrec_net_*` exposition names plus the round-trip latency
/// histogram.
///
/// All fields are monotonic counters EXCEPT `active_connections`,
/// which is an instantaneous gauge (rises on accept, falls on close —
/// an earlier revision mislabelled it a counter; the registry now
/// types it properly as a gauge).
struct NetStats {
  uint64_t accepted = 0;
  /// accept4 failures beyond the benign EAGAIN/EINTR/ECONNABORTED
  /// trio — chiefly EMFILE/ENFILE fd exhaustion (each such failure
  /// burns the reactor's reserved spare fd to refuse the pending
  /// connection instead of spinning on a forever-readable listener).
  uint64_t accept_errors = 0;
  /// Connections refused (accepted then closed) at max_connections.
  uint64_t conn_limit_rejects = 0;
  /// Gauge: connections currently open.
  uint64_t active_connections = 0;
  uint64_t requests = 0;   // CRC-clean query frames decoded
  uint64_t responses = 0;  // response frames queued for write
  /// Write path: attendance/new-event frames received, and the acks
  /// queued after the record was journaled and applied.
  uint64_t ingest_requests = 0;
  uint64_t ingest_acks = 0;
  /// Ping frames answered with a pong (health checks were previously
  /// invisible to operators).
  uint64_t pings = 0;
  /// Stats frames answered with a metrics snapshot.
  uint64_t stats_requests = 0;
  /// Requests answered with a typed OVERLOADED error because the
  /// in-flight budget or the service queue was saturated.
  uint64_t overload_sheds = 0;
  /// Requests refused with SHUTTING_DOWN: refused up front while
  /// draining, or rejected by the service racing its own Shutdown.
  uint64_t drain_rejects = 0;
  uint64_t bad_requests = 0;      // decodable frame, bogus payload
  uint64_t protocol_errors = 0;   // connection killed by FrameDecoder
  uint64_t idle_timeouts = 0;     // closed: silent past idle_timeout
  uint64_t read_timeouts = 0;     // closed: partial frame past read_timeout
  /// Closed because the peer stopped reading and the connection's
  /// write buffer exceeded max_write_buffer.
  uint64_t slow_reader_disconnects = 0;
  /// Responses completed after their connection was already gone.
  uint64_t orphaned_responses = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
};

namespace internal {

/// Registry-backed metric handles for NetStats: the event-loop thread
/// and service workers bump these concurrently with readers
/// snapshotting them. Registered into the owning service's registry
/// (RecommendationService::metrics()), so one stats scrape covers the
/// whole serve stack; re-registration (a second server over the same
/// service) re-attaches to the same metrics.
struct NetMetrics {
  obs::Counter* accepted = nullptr;
  obs::Counter* accept_errors = nullptr;
  obs::Counter* conn_limit_rejects = nullptr;
  obs::Gauge* active_connections = nullptr;
  obs::Counter* requests = nullptr;
  obs::Counter* responses = nullptr;
  obs::Counter* ingest_requests = nullptr;
  obs::Counter* ingest_acks = nullptr;
  obs::Counter* pings = nullptr;
  obs::Counter* stats_requests = nullptr;
  obs::Counter* overload_sheds = nullptr;
  obs::Counter* drain_rejects = nullptr;
  obs::Counter* bad_requests = nullptr;
  obs::Counter* protocol_errors = nullptr;
  obs::Counter* idle_timeouts = nullptr;
  obs::Counter* read_timeouts = nullptr;
  obs::Counter* slow_reader_disconnects = nullptr;
  obs::Counter* orphaned_responses = nullptr;
  obs::Counter* bytes_received = nullptr;
  obs::Counter* bytes_sent = nullptr;
  /// End-to-end server-side latency: query frame decoded -> response
  /// frame queued on the connection (covers service queue wait, the
  /// TA search and the completion hop back to the loop thread).
  obs::Histogram* round_trip_us = nullptr;

  void RegisterInto(obs::MetricsRegistry* registry) {
    accepted = registry->GetCounter("gemrec_net_accepted_total",
                                    "Connections accepted.");
    accept_errors = registry->GetCounter(
        "gemrec_net_accept_errors_total",
        "accept4 failures (EMFILE/ENFILE and other non-transient "
        "errors); the listener recovers via its reserved spare fd.");
    conn_limit_rejects = registry->GetCounter(
        "gemrec_net_conn_limit_rejects_total",
        "Connections refused because max_connections was reached.");
    active_connections =
        registry->GetGauge("gemrec_net_active_connections",
                           "Connections currently open.");
    requests = registry->GetCounter("gemrec_net_requests_total",
                                    "CRC-clean query frames decoded.");
    responses = registry->GetCounter(
        "gemrec_net_responses_total",
        "Query response frames queued for write.");
    ingest_requests = registry->GetCounter(
        "gemrec_net_ingest_requests_total",
        "Attendance/new-event frames received.");
    ingest_acks = registry->GetCounter(
        "gemrec_net_ingest_acks_total",
        "Ingest ack frames queued after a durable, applied write.");
    pings = registry->GetCounter("gemrec_net_pings_total",
                                 "Ping frames answered with a pong.");
    stats_requests = registry->GetCounter(
        "gemrec_net_stats_requests_total",
        "Stats frames answered with a metrics snapshot.");
    overload_sheds = registry->GetCounter(
        "gemrec_net_overload_sheds_total",
        "Requests shed with OVERLOADED by admission control.");
    drain_rejects = registry->GetCounter(
        "gemrec_net_drain_rejects_total",
        "Requests refused with SHUTTING_DOWN.");
    bad_requests = registry->GetCounter(
        "gemrec_net_bad_requests_total",
        "Decodable frames with bogus payloads.");
    protocol_errors = registry->GetCounter(
        "gemrec_net_protocol_errors_total",
        "Connections killed by a frame decode error.");
    idle_timeouts = registry->GetCounter(
        "gemrec_net_idle_timeouts_total",
        "Connections closed after silence past idle_timeout.");
    read_timeouts = registry->GetCounter(
        "gemrec_net_read_timeouts_total",
        "Connections closed with a partial frame past read_timeout.");
    slow_reader_disconnects = registry->GetCounter(
        "gemrec_net_slow_reader_disconnects_total",
        "Connections cut because their write buffer exceeded the "
        "cap.");
    orphaned_responses = registry->GetCounter(
        "gemrec_net_orphaned_responses_total",
        "Responses completed after their connection was gone.");
    bytes_received = registry->GetCounter("gemrec_net_bytes_received_total",
                                          "Bytes read from sockets.");
    bytes_sent = registry->GetCounter("gemrec_net_bytes_sent_total",
                                      "Bytes written to sockets.");
    round_trip_us = registry->GetHistogram(
        "gemrec_net_round_trip_us",
        "Microseconds from query frame decoded to response frame "
        "queued (server-side round trip).");
  }

  NetStats Snapshot() const {
    NetStats s;
    s.accepted = accepted->Value();
    s.accept_errors = accept_errors->Value();
    s.conn_limit_rejects = conn_limit_rejects->Value();
    s.active_connections = static_cast<uint64_t>(
        std::max<int64_t>(0, active_connections->Value()));
    s.requests = requests->Value();
    s.responses = responses->Value();
    s.ingest_requests = ingest_requests->Value();
    s.ingest_acks = ingest_acks->Value();
    s.pings = pings->Value();
    s.stats_requests = stats_requests->Value();
    s.overload_sheds = overload_sheds->Value();
    s.drain_rejects = drain_rejects->Value();
    s.bad_requests = bad_requests->Value();
    s.protocol_errors = protocol_errors->Value();
    s.idle_timeouts = idle_timeouts->Value();
    s.read_timeouts = read_timeouts->Value();
    s.slow_reader_disconnects = slow_reader_disconnects->Value();
    s.orphaned_responses = orphaned_responses->Value();
    s.bytes_received = bytes_received->Value();
    s.bytes_sent = bytes_sent->Value();
    return s;
  }
};

}  // namespace internal
}  // namespace gemrec::net

#endif  // GEMREC_NET_NET_STATS_H_
