#ifndef GEMREC_NET_REACTOR_H_
#define GEMREC_NET_REACTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/net_stats.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serving/ingestion_queue.h"
#include "serving/query_backend.h"

namespace gemrec::net {

/// One event-loop thread of the multi-reactor front-end. A reactor
/// exclusively owns: its epoll EventLoop, (usually) one SO_REUSEPORT
/// listening socket, every connection it accepted or adopted — table,
/// decode buffers, write buffers — and the completion queue worker
/// callbacks route responses back through. Nothing here is touched by
/// another reactor; the only cross-reactor state is the pair of
/// atomic admission counters and the shared registry metrics, both
/// concurrency-safe by construction.
///
/// Fallback topology (SO_REUSEPORT unavailable, or
/// ServerOptions::force_acceptor_handoff): only reactor 0 listens and
/// it round-robins accepted fds to its peers via SubmitConnection —
/// a mutex-guarded inbox plus an eventfd wakeup.
class Reactor {
 public:
  /// Dependencies shared across all reactors of one NetServer; every
  /// pointer must outlive the reactor.
  struct Shared {
    serving::QueryBackend* service = nullptr;
    serving::IngestionQueue* ingest = nullptr;
    const ServerOptions* options = nullptr;
    internal::NetMetrics* metrics = nullptr;
    std::atomic<uint32_t>* total_in_flight = nullptr;
    std::atomic<uint32_t>* total_connections = nullptr;
  };

  Reactor(uint32_t index, const Shared& shared);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Takes ownership of `listen_fd` (already bound + listening;
  /// -1 = no listener on this reactor, connections arrive through
  /// SubmitConnection). A non-empty `peers` makes this reactor the
  /// shared acceptor of the handoff fallback: accepted fds round-robin
  /// across `peers` (which includes this reactor itself). Spawns the
  /// loop thread.
  void Start(int listen_fd, std::vector<Reactor*> peers);

  /// Async-signal-safe: atomic store + eventfd write.
  void RequestDrain();

  /// Blocks until the loop thread has exited.
  void WaitUntilStopped();

  /// Joins the loop thread (after a drain request).
  void Join();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint32_t index() const { return index_; }

  /// Hands an accepted, nonblocking fd to this reactor (callable from
  /// any thread). The fd was already counted against the global
  /// connection limit by the acceptor; if the reactor already shut
  /// down the fd is closed and uncounted here.
  void SubmitConnection(int fd);

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    /// Pending outbound bytes ([write_pos, buf.size()) unsent).
    std::vector<uint8_t> write_buf;
    size_t write_pos = 0;
    size_t pending_write() const { return write_buf.size() - write_pos; }
    /// Requests submitted to the service, responses not yet queued.
    uint32_t in_flight = 0;
    uint32_t interest = 0;    // currently registered epoll mask
    /// Draining: reads stay ALIVE (kPing/kStatsRequest probes are
    /// still answered) but every other frame gets kShuttingDown; the
    /// connection closes once nothing is in flight or pending.
    bool draining = false;
    /// Doomed: torn down by the dispatcher at a safe point (never
    /// mid-callstack, so no use-after-free inside frame handling).
    bool dead = false;
    std::chrono::steady_clock::time_point last_activity;
    /// Set while decoder.mid_frame(): when the current partial frame
    /// started arriving (read-timeout anchor).
    std::chrono::steady_clock::time_point partial_since;
    bool has_partial = false;
  };

  /// Completed service responses travel worker -> owning reactor
  /// through this queue. shared_ptr-owned so a response that completes
  /// after the reactor died is dropped safely instead of touching
  /// freed state.
  struct Completion {
    uint64_t conn_id = 0;
    serving::QueryResponse response;
    /// When the query frame was decoded (round-trip histogram anchor).
    std::chrono::steady_clock::time_point received_at;
    /// Echoed into the response frame (v2 pipelining).
    FrameTag tag;
    /// Ingest acks ride the same queue: `is_ingest` selects the
    /// ack/error encoding instead of the query-response one.
    bool is_ingest = false;
    Status ingest_status;
    uint64_t ingest_seq = 0;
    /// Stats answers ride the queue too (QueryBackend::StatsAsync may
    /// complete from another thread — a coordinator fans kStatsRequest
    /// out to its shards). Stats completions hold conn->in_flight (a
    /// draining connection must stay open until the answer flushes)
    /// but never the total_in_flight admission budget.
    bool is_stats = false;
    obs::MetricsSnapshot stats;
  };
  struct CompletionQueue {
    std::mutex mu;
    std::vector<Completion> items;
    bool closed = false;
    EventLoop* loop = nullptr;  // null once closed
  };

  void Loop();
  void EnterDrain(std::chrono::steady_clock::time_point now);
  void HandleAccept();
  /// Register an accepted/handed-off fd as a connection owned here.
  void AdoptConnection(int fd);
  void DrainInbox();
  void HandleReadable(Connection* conn);
  void HandleFrame(Connection* conn, const Frame& frame);
  void SendError(Connection* conn, ErrorCode code, std::string_view msg,
                 const FrameTag& tag);
  /// Flush + slow-reader cap check after any frame lands in write_buf.
  void AfterQueue(Connection* conn);
  void FlushWrites(Connection* conn);
  void DrainCompletions();
  void SweepTimeouts(std::chrono::steady_clock::time_point now);
  int PollTimeoutMs(std::chrono::steady_clock::time_point now) const;
  void UpdateInterest(Connection* conn);
  void CloseConnection(Connection* conn);
  Connection* FindConnection(uint64_t id);
  const ServerOptions& options() const { return *shared_.options; }
  internal::NetMetrics& metrics() { return *shared_.metrics; }

  const uint32_t index_;
  Shared shared_;
  EventLoop loop_;
  int listen_fd_ = -1;
  /// EMFILE insurance: a reserved /dev/null fd burned to accept+close
  /// the pending connection when the process is out of fds, so a
  /// level-triggered listener cannot stay readable-forever and spin.
  int spare_fd_ = -1;
  /// Last-resort EMFILE handling when even the spare fd is gone: the
  /// listener is deregistered and re-armed after a short pause.
  bool listen_parked_ = false;
  std::chrono::steady_clock::time_point listen_rearm_at_;

  /// Handoff fallback: non-empty only on the acceptor reactor.
  std::vector<Reactor*> peers_;
  size_t next_peer_ = 0;
  struct Inbox {
    std::mutex mu;
    std::vector<int> fds;
    bool closed = false;
  };
  Inbox inbox_;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  std::shared_ptr<CompletionQueue> completions_;

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_;

  /// Per-reactor breakdown of the shared counters
  /// (gemrec_net_reactor{r}_owned_total / _connections).
  obs::Counter* owned_total_ = nullptr;
  obs::Gauge* owned_connections_ = nullptr;

  std::atomic<bool> running_{false};
  std::mutex lifecycle_mu_;
  std::condition_variable stopped_cv_;
  std::thread loop_thread_;
  bool started_ = false;
};

}  // namespace gemrec::net

#endif  // GEMREC_NET_REACTOR_H_
