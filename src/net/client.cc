#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gemrec::net {
namespace {

timeval ToTimeval(std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& host, uint16_t port, const ClientOptions& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host '" + host +
                                   "' (numeric IPv4 expected)");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (options.so_rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.so_rcvbuf,
                 sizeof(options.so_rcvbuf));
  }
  const timeval connect_tv = ToTimeval(options.connect_timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &connect_tv,
               sizeof(connect_tv));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status s = Status::IoError(
        std::string("connect ") + resolved + ":" + std::to_string(port) +
        ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const timeval io_tv = ToTimeval(options.io_timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io_tv, sizeof(io_tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io_tv, sizeof(io_tv));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendAll(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w =
        ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IoError("send timeout");
    }
    return Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Result<Frame> Client::ReceiveFrame() {
  Frame frame;
  if (decoder_.Next(&frame)) return frame;
  uint8_t buf[16 * 1024];
  while (true) {
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r == 0) {
      return Status::IoError("connection closed by server");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("receive timeout");
      }
      return Status::IoError(std::string("recv: ") +
                             std::strerror(errno));
    }
    GEMREC_RETURN_IF_ERROR(
        decoder_.Feed(buf, static_cast<size_t>(r)));
    if (decoder_.Next(&frame)) return frame;
  }
}

Status Client::SendTagged(const serving::QueryRequest& request,
                          uint64_t frame_id) {
  std::vector<uint8_t> bytes;
  AppendQueryRequestFrame(request, FrameTag{true, frame_id}, &bytes);
  return SendAll(bytes.data(), bytes.size());
}

Status Client::Send(const serving::QueryRequest& request) {
  return SendTagged(request, next_frame_id_++);
}

Result<TaggedReply> Client::DecodeReply(Frame frame) {
  TaggedReply reply;
  reply.frame_id = frame.frame_id;
  reply.tagged = frame.tagged;
  switch (frame.type) {
    case MessageType::kQueryResponse:
      GEMREC_RETURN_IF_ERROR(
          DecodeQueryResponse(frame.payload.data(), frame.payload.size(),
                              &reply.outcome.response));
      reply.outcome.ok = true;
      return reply;
    case MessageType::kStatsResponse:
      GEMREC_RETURN_IF_ERROR(DecodeStatsResponse(
          frame.payload.data(), frame.payload.size(), &reply.stats));
      reply.is_stats = true;
      return reply;
    case MessageType::kError:
      GEMREC_RETURN_IF_ERROR(
          DecodeError(frame.payload.data(), frame.payload.size(),
                      &reply.outcome.error, &reply.outcome.error_message));
      reply.outcome.ok = false;
      return reply;
    default:
      return Status::Internal("unexpected frame type " +
                              std::to_string(static_cast<int>(frame.type)));
  }
}

Result<TaggedReply> Client::ReceiveAny() {
  GEMREC_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  return DecodeReply(std::move(frame));
}

Result<Frame> Client::ReceiveFrameWithin(std::chrono::milliseconds timeout) {
  Frame frame;
  // Already-buffered frames are free — even a zero timeout drains them.
  if (decoder_.Next(&frame)) return frame;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  uint8_t buf[16 * 1024];
  while (true) {
    // Drain what the kernel already holds BEFORE consulting the
    // deadline: ReceiveAny(0ms) must surface replies that landed in
    // the socket buffer since the caller's own poll (the coordinator's
    // readable-fd drain), not just frames already fed to the decoder.
    while (true) {
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (r == 0) {
        return Status::IoError("connection closed by server");
      }
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return Status::IoError(std::string("recv: ") +
                               std::strerror(errno));
      }
      GEMREC_RETURN_IF_ERROR(decoder_.Feed(buf, static_cast<size_t>(r)));
      if (decoder_.Next(&frame)) return frame;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::Timeout("receive deadline (" +
                             std::to_string(timeout.count()) +
                             "ms) elapsed");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              now);
    // +1: round up so a sub-millisecond remainder still waits instead
    // of spinning poll(fd, 0) until the clock ticks over.
    pollfd p{fd_, POLLIN, 0};
    const int rc =
        ::poll(&p, 1, static_cast<int>(remaining.count()) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    // rc == 0 or readable: the loop head re-drains and re-checks the
    // deadline either way.
  }
}

Result<TaggedReply> Client::ReceiveAny(std::chrono::milliseconds timeout) {
  GEMREC_ASSIGN_OR_RETURN(Frame frame, ReceiveFrameWithin(timeout));
  return DecodeReply(std::move(frame));
}

Status Client::SendStatsRequest(uint64_t frame_id) {
  std::vector<uint8_t> bytes;
  AppendStatsRequestFrame(FrameTag{true, frame_id}, &bytes);
  return SendAll(bytes.data(), bytes.size());
}

Result<QueryOutcome> Client::Receive() {
  GEMREC_ASSIGN_OR_RETURN(TaggedReply reply, ReceiveAny());
  return std::move(reply.outcome);
}

Result<QueryOutcome> Client::Query(const serving::QueryRequest& request) {
  const uint64_t id = next_frame_id_++;
  GEMREC_RETURN_IF_ERROR(SendTagged(request, id));
  GEMREC_ASSIGN_OR_RETURN(TaggedReply reply, ReceiveAny());
  // Lockstep: exactly one request is outstanding, so a tagged reply
  // must echo its id (v1 peers answer untagged — nothing to check).
  if (reply.tagged && reply.frame_id != id) {
    return Status::Internal(
        "frame id mismatch: sent " + std::to_string(id) + ", got " +
        std::to_string(reply.frame_id));
  }
  return std::move(reply.outcome);
}

Result<obs::MetricsSnapshot> Client::Stats() {
  std::vector<uint8_t> bytes;
  AppendStatsRequestFrame(NextTag(), &bytes);
  GEMREC_RETURN_IF_ERROR(SendAll(bytes.data(), bytes.size()));
  GEMREC_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  if (frame.type != MessageType::kStatsResponse) {
    return Status::Internal("expected stats response, got frame type " +
                            std::to_string(static_cast<int>(frame.type)));
  }
  obs::MetricsSnapshot snapshot;
  GEMREC_RETURN_IF_ERROR(DecodeStatsResponse(
      frame.payload.data(), frame.payload.size(), &snapshot));
  return snapshot;
}

Status Client::SendAttendance(ebsn::UserId user, ebsn::EventId event,
                              bool new_user) {
  std::vector<uint8_t> bytes;
  AppendAttendanceFrame(user, event, new_user, NextTag(), &bytes);
  return SendAll(bytes.data(), bytes.size());
}

Status Client::SendNewEvent(ebsn::EventId event,
                            const embedding::NewEventSignals& signals) {
  std::vector<uint8_t> bytes;
  AppendNewEventFrame(event, signals, NextTag(), &bytes);
  return SendAll(bytes.data(), bytes.size());
}

Result<IngestOutcome> Client::ReceiveIngestAck() {
  GEMREC_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  IngestOutcome outcome;
  switch (frame.type) {
    case MessageType::kIngestAck:
      GEMREC_RETURN_IF_ERROR(DecodeIngestAck(
          frame.payload.data(), frame.payload.size(), &outcome.seq));
      outcome.ok = true;
      return outcome;
    case MessageType::kError:
      GEMREC_RETURN_IF_ERROR(
          DecodeError(frame.payload.data(), frame.payload.size(),
                      &outcome.error, &outcome.error_message));
      outcome.ok = false;
      return outcome;
    default:
      return Status::Internal("unexpected frame type " +
                              std::to_string(static_cast<int>(frame.type)));
  }
}

Result<IngestOutcome> Client::Attend(ebsn::UserId user, ebsn::EventId event,
                                     bool new_user) {
  GEMREC_RETURN_IF_ERROR(SendAttendance(user, event, new_user));
  return ReceiveIngestAck();
}

Result<IngestOutcome> Client::PublishNewEvent(
    ebsn::EventId event, const embedding::NewEventSignals& signals) {
  GEMREC_RETURN_IF_ERROR(SendNewEvent(event, signals));
  return ReceiveIngestAck();
}

Status Client::Ping() {
  std::vector<uint8_t> bytes;
  const FrameTag tag = NextTag();
  AppendFrame(MessageType::kPing, nullptr, 0, tag, &bytes);
  GEMREC_RETURN_IF_ERROR(SendAll(bytes.data(), bytes.size()));
  GEMREC_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  if (frame.type != MessageType::kPong) {
    return Status::Internal("expected pong");
  }
  if (frame.tagged && frame.frame_id != tag.frame_id) {
    return Status::Internal("pong echoed wrong frame id");
  }
  return Status::Ok();
}

}  // namespace gemrec::net
