#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gemrec::net {
namespace {

timeval ToTimeval(std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& host, uint16_t port, const ClientOptions& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host '" + host +
                                   "' (numeric IPv4 expected)");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (options.so_rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.so_rcvbuf,
                 sizeof(options.so_rcvbuf));
  }
  const timeval connect_tv = ToTimeval(options.connect_timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &connect_tv,
               sizeof(connect_tv));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status s = Status::IoError(
        std::string("connect ") + resolved + ":" + std::to_string(port) +
        ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const timeval io_tv = ToTimeval(options.io_timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io_tv, sizeof(io_tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io_tv, sizeof(io_tv));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendAll(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w =
        ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IoError("send timeout");
    }
    return Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Result<Frame> Client::ReceiveFrame() {
  Frame frame;
  if (decoder_.Next(&frame)) return frame;
  uint8_t buf[16 * 1024];
  while (true) {
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r == 0) {
      return Status::IoError("connection closed by server");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("receive timeout");
      }
      return Status::IoError(std::string("recv: ") +
                             std::strerror(errno));
    }
    GEMREC_RETURN_IF_ERROR(
        decoder_.Feed(buf, static_cast<size_t>(r)));
    if (decoder_.Next(&frame)) return frame;
  }
}

Status Client::SendTagged(const serving::QueryRequest& request,
                          uint64_t frame_id) {
  std::vector<uint8_t> bytes;
  AppendQueryRequestFrame(request, FrameTag{true, frame_id}, &bytes);
  return SendAll(bytes.data(), bytes.size());
}

Status Client::Send(const serving::QueryRequest& request) {
  return SendTagged(request, next_frame_id_++);
}

Result<TaggedReply> Client::ReceiveAny() {
  GEMREC_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  TaggedReply reply;
  reply.frame_id = frame.frame_id;
  reply.tagged = frame.tagged;
  switch (frame.type) {
    case MessageType::kQueryResponse:
      GEMREC_RETURN_IF_ERROR(
          DecodeQueryResponse(frame.payload.data(), frame.payload.size(),
                              &reply.outcome.response));
      reply.outcome.ok = true;
      return reply;
    case MessageType::kError:
      GEMREC_RETURN_IF_ERROR(
          DecodeError(frame.payload.data(), frame.payload.size(),
                      &reply.outcome.error, &reply.outcome.error_message));
      reply.outcome.ok = false;
      return reply;
    default:
      return Status::Internal("unexpected frame type " +
                              std::to_string(static_cast<int>(frame.type)));
  }
}

Result<QueryOutcome> Client::Receive() {
  GEMREC_ASSIGN_OR_RETURN(TaggedReply reply, ReceiveAny());
  return std::move(reply.outcome);
}

Result<QueryOutcome> Client::Query(const serving::QueryRequest& request) {
  const uint64_t id = next_frame_id_++;
  GEMREC_RETURN_IF_ERROR(SendTagged(request, id));
  GEMREC_ASSIGN_OR_RETURN(TaggedReply reply, ReceiveAny());
  // Lockstep: exactly one request is outstanding, so a tagged reply
  // must echo its id (v1 peers answer untagged — nothing to check).
  if (reply.tagged && reply.frame_id != id) {
    return Status::Internal(
        "frame id mismatch: sent " + std::to_string(id) + ", got " +
        std::to_string(reply.frame_id));
  }
  return std::move(reply.outcome);
}

Result<obs::MetricsSnapshot> Client::Stats() {
  std::vector<uint8_t> bytes;
  AppendStatsRequestFrame(NextTag(), &bytes);
  GEMREC_RETURN_IF_ERROR(SendAll(bytes.data(), bytes.size()));
  GEMREC_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  if (frame.type != MessageType::kStatsResponse) {
    return Status::Internal("expected stats response, got frame type " +
                            std::to_string(static_cast<int>(frame.type)));
  }
  obs::MetricsSnapshot snapshot;
  GEMREC_RETURN_IF_ERROR(DecodeStatsResponse(
      frame.payload.data(), frame.payload.size(), &snapshot));
  return snapshot;
}

Status Client::SendAttendance(ebsn::UserId user, ebsn::EventId event,
                              bool new_user) {
  std::vector<uint8_t> bytes;
  AppendAttendanceFrame(user, event, new_user, NextTag(), &bytes);
  return SendAll(bytes.data(), bytes.size());
}

Status Client::SendNewEvent(ebsn::EventId event,
                            const embedding::NewEventSignals& signals) {
  std::vector<uint8_t> bytes;
  AppendNewEventFrame(event, signals, NextTag(), &bytes);
  return SendAll(bytes.data(), bytes.size());
}

Result<IngestOutcome> Client::ReceiveIngestAck() {
  GEMREC_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  IngestOutcome outcome;
  switch (frame.type) {
    case MessageType::kIngestAck:
      GEMREC_RETURN_IF_ERROR(DecodeIngestAck(
          frame.payload.data(), frame.payload.size(), &outcome.seq));
      outcome.ok = true;
      return outcome;
    case MessageType::kError:
      GEMREC_RETURN_IF_ERROR(
          DecodeError(frame.payload.data(), frame.payload.size(),
                      &outcome.error, &outcome.error_message));
      outcome.ok = false;
      return outcome;
    default:
      return Status::Internal("unexpected frame type " +
                              std::to_string(static_cast<int>(frame.type)));
  }
}

Result<IngestOutcome> Client::Attend(ebsn::UserId user, ebsn::EventId event,
                                     bool new_user) {
  GEMREC_RETURN_IF_ERROR(SendAttendance(user, event, new_user));
  return ReceiveIngestAck();
}

Result<IngestOutcome> Client::PublishNewEvent(
    ebsn::EventId event, const embedding::NewEventSignals& signals) {
  GEMREC_RETURN_IF_ERROR(SendNewEvent(event, signals));
  return ReceiveIngestAck();
}

Status Client::Ping() {
  std::vector<uint8_t> bytes;
  const FrameTag tag = NextTag();
  AppendFrame(MessageType::kPing, nullptr, 0, tag, &bytes);
  GEMREC_RETURN_IF_ERROR(SendAll(bytes.data(), bytes.size()));
  GEMREC_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  if (frame.type != MessageType::kPong) {
    return Status::Internal("expected pong");
  }
  if (frame.tagged && frame.frame_id != tag.frame_id) {
    return Status::Internal("pong echoed wrong frame id");
  }
  return Status::Ok();
}

}  // namespace gemrec::net
