#ifndef GEMREC_NET_SERVER_H_
#define GEMREC_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/net_stats.h"
#include "net/wire.h"
#include "serving/ingestion_queue.h"
#include "serving/query_backend.h"

namespace gemrec::net {

class Reactor;

struct ServerOptions {
  /// IPv4 address to bind; tests and the bench use 127.0.0.1.
  std::string listen_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port (collision-free by
  /// construction — the CI-safe default; read it back via port()).
  uint16_t port = 0;
  /// Fixed-port binds retry EADDRINUSE this many times before failing,
  /// so a just-restarted server survives a lingering TIME_WAIT socket.
  uint32_t bind_retries = 5;
  std::chrono::milliseconds bind_retry_delay{200};

  /// Event-loop threads. Each reactor owns a SO_REUSEPORT listener on
  /// the same port (the kernel load-balances accepts across them), a
  /// private connection table with per-connection decode/write
  /// buffers, and a private completion queue — no state is shared
  /// between reactors beyond the atomic admission counters and the
  /// registry metrics. 1 reproduces the old single-threaded front-end
  /// exactly; `gemrec serve` defaults to min(4, hw_concurrency).
  uint32_t num_reactors = 1;
  /// Test hook: pretend SO_REUSEPORT is unavailable and exercise the
  /// fallback — reactor 0 owns the only listener and hands accepted
  /// fds to its peers round-robin through their eventfd-woken inboxes.
  bool force_acceptor_handoff = false;

  /// Across ALL reactors (enforced through one shared atomic).
  uint32_t max_connections = 1024;
  /// Admission budget: requests accepted onto the service but not yet
  /// answered, across all connections and reactors. Beyond it,
  /// requests are shed with a typed OVERLOADED error instead of
  /// queueing unboundedly.
  uint32_t max_in_flight = 256;
  /// Second admission gate: shed when the service itself reports this
  /// much saturation (queue depth + in-flight) — real backpressure
  /// from ServiceStats, not a guess.
  size_t max_service_saturation = 1024;
  /// Per-connection write-buffer cap. A peer that stops reading while
  /// responses accumulate past this is disconnected (slow-reader
  /// protection) rather than ballooning server memory.
  size_t max_write_buffer = 1 << 20;
  /// A peer that starts a frame must finish it within this window.
  std::chrono::milliseconds read_timeout{2000};
  /// Connections with nothing pending are closed after this silence.
  std::chrono::milliseconds idle_timeout{60000};
  /// Graceful-drain budget: after a drain request, in-flight responses
  /// get this long to flush before remaining connections are cut.
  std::chrono::milliseconds drain_timeout{5000};
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default.
  /// Tests shrink it to provoke the slow-reader path deterministically.
  int so_sndbuf = 0;
};

/// Multi-reactor epoll TCP front-end for a serving::QueryBackend —
/// either a local RecommendationService or a shard::CoordinatorBackend
/// (the scatter-gather tier reuses this exact front-end):
/// num_reactors event-loop threads, each owning a SO_REUSEPORT
/// listening socket plus the complete lifecycle of every connection
/// the kernel hashes to it, speaking the wire.h framed protocol (v1
/// lockstep and v2 pipelined frames mix freely per connection; every
/// response echoes its request's version and frame id). Decoded
/// queries bridge into RecommendationService::SubmitAsync; completions
/// hop back to the OWNING reactor through its private wakeup queue —
/// reactors never touch each other's connections, so the hot path has
/// no cross-reactor lock. Workers never touch a socket.
///
/// Overload behaviour is fail-fast by design: admission control (the
/// shared in-flight budget plus the service's own saturation gauges)
/// sheds excess requests with typed OVERLOADED errors, partial frames
/// and silent connections are timed out, peers that stop reading are
/// disconnected once their write buffer hits the cap, and an
/// fd-exhausted listener refuses pending connections through a
/// reserved spare fd instead of spinning. A saturated server therefore
/// answers or closes within the read timeout — it never queues
/// unboundedly.
///
/// Shutdown: RequestDrain (or the async-signal-safe
/// NotifyDrainFromSignal) fans out to every reactor: acceptors close,
/// in-flight requests finish and flush (bounded by drain_timeout), and
/// draining connections keep READING so kPing/kStatsRequest probes are
/// still answered — everything else gets a typed SHUTTING_DOWN.
/// WaitUntilStopped blocks until every reactor exited; Stop also joins
/// the threads.
class NetServer {
 public:
  /// `service` (and `ingest`, when given) must outlive the server.
  /// With an ingestion queue attached, kAttendance/kNewEvent frames
  /// bridge into IngestionQueue::SubmitAsync and are answered with
  /// kIngestAck frames once durable and applied; without one they get
  /// kBadRequest ("ingestion disabled"), so a read-only server keeps
  /// its exact pre-write-path behaviour.
  NetServer(serving::QueryBackend* service, const ServerOptions& options,
            serving::IngestionQueue* ingest = nullptr);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens (one SO_REUSEPORT socket per reactor, all on the
  /// same resolved port) + starts the reactor threads.
  Status Start();

  /// Bound port (after a successful Start; resolves port 0 requests).
  uint16_t port() const { return bound_port_; }

  /// Begins graceful drain on every reactor: stop accepting, refuse
  /// new work with SHUTTING_DOWN (stats/ping still answered), flush
  /// in-flight responses, then stop.
  void RequestDrain();

  /// Async-signal-safe drain trigger for SIGINT/SIGTERM handlers.
  void NotifyDrainFromSignal();

  /// Blocks until every reactor has exited (drain complete).
  void WaitUntilStopped();

  /// RequestDrain + join all reactors. Idempotent; also called by the
  /// destructor.
  void Stop();

  /// True while at least one reactor thread is still running.
  bool running() const;

  /// Aggregate across all reactors (the registry counters are shared;
  /// per-reactor gemrec_net_reactor{r}_* metrics break them down).
  NetStats stats() const { return metrics_.Snapshot(); }

  /// The registry everything is recorded into — the owning service's
  /// (service->metrics()), which kStatsRequest frames serialize.
  obs::MetricsRegistry* metrics_registry() const;

 private:
  serving::QueryBackend* service_;
  /// Write path; nullptr = ingestion disabled (read-only server).
  serving::IngestionQueue* ingest_;
  ServerOptions options_;
  uint16_t bound_port_ = 0;

  /// Shared admission state: every reactor admits against the same
  /// budget, so the documented max_in_flight/max_connections limits
  /// stay global regardless of how the kernel spreads connections.
  std::atomic<uint32_t> total_in_flight_{0};
  std::atomic<uint32_t> total_connections_{0};

  std::vector<std::unique_ptr<Reactor>> reactors_;

  internal::NetMetrics metrics_;
  bool started_ = false;
};

/// Splits "host:port" (host may be empty -> 127.0.0.1). Fails on a
/// missing/invalid port; the port substring must be all digits (no
/// sign, no whitespace — strtoul's leniency let "host: 80" and
/// "host:+80" slip through once).
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port);

}  // namespace gemrec::net

#endif  // GEMREC_NET_SERVER_H_
