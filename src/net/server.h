#ifndef GEMREC_NET_SERVER_H_
#define GEMREC_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/net_stats.h"
#include "net/wire.h"
#include "serving/ingestion_queue.h"
#include "serving/recommendation_service.h"

namespace gemrec::net {

struct ServerOptions {
  /// IPv4 address to bind; tests and the bench use 127.0.0.1.
  std::string listen_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port (collision-free by
  /// construction — the CI-safe default; read it back via port()).
  uint16_t port = 0;
  /// Fixed-port binds retry EADDRINUSE this many times before failing,
  /// so a just-restarted server survives a lingering TIME_WAIT socket.
  uint32_t bind_retries = 5;
  std::chrono::milliseconds bind_retry_delay{200};

  uint32_t max_connections = 1024;
  /// Admission budget: requests accepted onto the service but not yet
  /// answered, across all connections. Beyond it, requests are shed
  /// with a typed OVERLOADED error instead of queueing unboundedly.
  uint32_t max_in_flight = 256;
  /// Second admission gate: shed when the service itself reports this
  /// much saturation (queue depth + in-flight) — real backpressure
  /// from ServiceStats, not a guess.
  size_t max_service_saturation = 1024;
  /// Per-connection write-buffer cap. A peer that stops reading while
  /// responses accumulate past this is disconnected (slow-reader
  /// protection) rather than ballooning server memory.
  size_t max_write_buffer = 1 << 20;
  /// A peer that starts a frame must finish it within this window.
  std::chrono::milliseconds read_timeout{2000};
  /// Connections with nothing pending are closed after this silence.
  std::chrono::milliseconds idle_timeout{60000};
  /// Graceful-drain budget: after a drain request, in-flight responses
  /// get this long to flush before remaining connections are cut.
  std::chrono::milliseconds drain_timeout{5000};
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default.
  /// Tests shrink it to provoke the slow-reader path deterministically.
  int so_sndbuf = 0;
};

/// Epoll-based TCP front-end for RecommendationService: one event-loop
/// thread multiplexes an acceptor plus every connection, speaking the
/// wire.h framed protocol. Decoded queries bridge into
/// RecommendationService::SubmitAsync; completions hop back to the
/// loop thread through a wakeup queue and are flushed as response
/// frames. The loop never blocks on the service and workers never
/// touch a socket.
///
/// Overload behaviour is fail-fast by design: admission control (the
/// in-flight budget plus the service's own saturation gauges) sheds
/// excess requests with typed OVERLOADED errors, partial frames and
/// silent connections are timed out, and peers that stop reading are
/// disconnected once their write buffer hits the cap. A saturated
/// server therefore answers or closes within the read timeout — it
/// never queues unboundedly.
///
/// Shutdown: RequestDrain (or the async-signal-safe
/// NotifyDrainFromSignal) stops the acceptor, lets in-flight requests
/// finish and their responses flush (bounded by drain_timeout), then
/// the loop exits. WaitUntilStopped blocks until then; Stop also
/// joins the thread.
class NetServer {
 public:
  /// `service` (and `ingest`, when given) must outlive the server.
  /// With an ingestion queue attached, kAttendance/kNewEvent frames
  /// bridge into IngestionQueue::SubmitAsync and are answered with
  /// kIngestAck frames once durable and applied; without one they get
  /// kBadRequest ("ingestion disabled"), so a read-only server keeps
  /// its exact pre-write-path behaviour.
  NetServer(serving::RecommendationService* service,
            const ServerOptions& options,
            serving::IngestionQueue* ingest = nullptr);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens + starts the event-loop thread.
  Status Start();

  /// Bound port (after a successful Start; resolves port 0 requests).
  uint16_t port() const { return bound_port_; }

  /// Begins graceful drain: stop accepting, refuse new work with
  /// SHUTTING_DOWN, flush in-flight responses, then stop.
  void RequestDrain();

  /// Async-signal-safe drain trigger for SIGINT/SIGTERM handlers.
  void NotifyDrainFromSignal();

  /// Blocks until the event loop has exited (drain complete).
  void WaitUntilStopped();

  /// RequestDrain + join. Idempotent; also called by the destructor.
  void Stop();

  bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  NetStats stats() const { return metrics_.Snapshot(); }

  /// The registry everything is recorded into — the owning service's
  /// (service->metrics()), which kStatsRequest frames serialize.
  obs::MetricsRegistry* metrics_registry() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    /// Pending outbound bytes ([write_pos, buf.size()) unsent).
    std::vector<uint8_t> write_buf;
    size_t write_pos = 0;
    size_t pending_write() const { return write_buf.size() - write_pos; }
    /// Requests submitted to the service, responses not yet queued.
    uint32_t in_flight = 0;
    uint32_t interest = 0;    // currently registered epoll mask
    bool draining = false;    // no further reads; close once flushed
    /// Doomed: torn down by the dispatcher at a safe point (never
    /// mid-callstack, so no use-after-free inside frame handling).
    bool dead = false;
    std::chrono::steady_clock::time_point last_activity;
    /// Set while decoder.mid_frame(): when the current partial frame
    /// started arriving (read-timeout anchor).
    std::chrono::steady_clock::time_point partial_since;
    bool has_partial = false;
  };

  /// Completed service responses travel worker -> loop through this
  /// shared queue. shared_ptr-owned so a response that completes after
  /// the server died is dropped safely instead of touching freed
  /// state.
  struct Completion {
    uint64_t conn_id = 0;
    serving::QueryResponse response;
    /// When the query frame was decoded (round-trip histogram anchor).
    std::chrono::steady_clock::time_point received_at;
    /// Ingest acks ride the same queue: `is_ingest` selects the
    /// ack/error encoding instead of the query-response one.
    bool is_ingest = false;
    Status ingest_status;
    uint64_t ingest_seq = 0;
  };
  struct CompletionQueue {
    std::mutex mu;
    std::vector<Completion> items;
    bool closed = false;
    EventLoop* loop = nullptr;  // null once closed
  };

  void Loop();
  void EnterDrain(std::chrono::steady_clock::time_point now);
  void HandleAccept();
  void HandleReadable(Connection* conn);
  void HandleFrame(Connection* conn, const Frame& frame);
  void SendError(Connection* conn, ErrorCode code, std::string_view msg);
  /// Flush + slow-reader cap check after any frame lands in write_buf.
  void AfterQueue(Connection* conn);
  void FlushWrites(Connection* conn);
  void DrainCompletions();
  void SweepTimeouts(std::chrono::steady_clock::time_point now);
  int PollTimeoutMs(std::chrono::steady_clock::time_point now) const;
  void UpdateInterest(Connection* conn);
  void CloseConnection(Connection* conn);
  Connection* FindConnection(uint64_t id);

  serving::RecommendationService* service_;
  /// Write path; nullptr = ingestion disabled (read-only server).
  serving::IngestionQueue* ingest_;
  ServerOptions options_;
  EventLoop loop_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;
  /// Loop-thread-only: total requests inside the service on behalf of
  /// this server (the admission budget's numerator).
  uint32_t total_in_flight_ = 0;

  std::shared_ptr<CompletionQueue> completions_;

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_;

  internal::NetMetrics metrics_;

  std::atomic<bool> running_{false};
  std::mutex lifecycle_mu_;
  std::condition_variable stopped_cv_;
  std::thread loop_thread_;
  bool started_ = false;
};

/// Splits "host:port" (host may be empty -> 127.0.0.1). Fails on a
/// missing/invalid port.
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port);

}  // namespace gemrec::net

#endif  // GEMREC_NET_SERVER_H_
