#ifndef GEMREC_NET_WIRE_H_
#define GEMREC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "serving/ingest_journal.h"
#include "serving/recommendation_service.h"

namespace gemrec::net {

/// Length-prefixed binary frame carried over TCP (all integers
/// little-endian, matching the GEMREC02 artifact convention). Two
/// header layouts share the stream, selected by the version byte:
///
/// v1 (kWireVersionV1 — lockstep, one request in flight):
///   [0, 4)        magic "GMNP"
///   [4]           wire version = 1
///   [5]           message type
///   [6, 8)        reserved, must be zero
///   [8, 12)       payload size N (<= kMaxPayload)
///   [12, 12+N)    payload
///   [12+N, 16+N)  CRC32C over bytes [0, 12+N)  (common/crc32c)
///
/// v2 (kWireVersion — pipelined): identical through byte 12, then a
/// client-chosen u64 frame id the server echoes verbatim in the
/// answering kQueryResponse/kIngestAck/kError/kPong/kStatsResponse,
/// so one connection carries many in-flight requests completing out
/// of order:
///   [12, 20)      frame id (u64, chosen by the requester)
///   [20, 20+N)    payload
///   [20+N, 24+N)  CRC32C over bytes [0, 20+N)
///
/// Versions mix freely on one connection: every response reuses the
/// version (and id) of the request it answers, so a v1-only peer
/// never sees a v2 frame. The CRC covers header AND payload, so a
/// flipped byte anywhere in a frame — including the length field
/// itself — is rejected before the payload is interpreted. Header
/// fields are validated as soon as the first 12 bytes arrive: a bad
/// magic/version/size poisons the connection immediately instead of
/// waiting for a bogus length.
inline constexpr uint32_t kMagic = 0x504E4D47u;  // "GMNP" little-endian
inline constexpr uint8_t kWireVersionV1 = 1;
inline constexpr uint8_t kWireVersion = 2;
inline constexpr size_t kHeaderSize = 12;        // v1 header
inline constexpr size_t kTaggedHeaderSize = 20;  // v2: v1 + u64 frame id
inline constexpr size_t kTrailerSize = 4;
inline constexpr size_t kMaxPayload = 1u << 20;  // 1 MiB
/// Largest top-n a query may request; keeps every response frame well
/// under kMaxPayload (13 + 12n bytes of payload).
inline constexpr uint32_t kMaxTopN = 4096;
/// Largest word list a kNewEvent frame may carry (20 + 8w payload
/// bytes, so the cap keeps new-event frames well under kMaxPayload).
inline constexpr uint32_t kMaxIngestWords = 4096;
/// Largest partner set a kGroup query request may carry (21 + 4g
/// payload bytes in the extended request layout).
inline constexpr uint32_t kMaxGroupMembers = 256;

enum class MessageType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
  /// Remote observability: an empty kStatsRequest frame is answered
  /// with a kStatsResponse carrying the server's full metrics
  /// snapshot (counters, gauges and latency histograms). Served even
  /// while draining or overloaded — that is when operators need it.
  kStatsRequest = 6,
  kStatsResponse = 7,
  /// Write path (wire v1 extension; old clients never send these and
  /// old servers answer them with kBadRequest, keeping both directions
  /// compatible). kAttendance carries "user registered for event",
  /// kNewEvent a just-published event's fold-in signals; the server
  /// answers each with kIngestAck (the record's journal sequence
  /// number) once the write is durable and applied, or with a typed
  /// kError (kOverloaded under write-side admission control).
  kAttendance = 8,
  kNewEvent = 9,
  kIngestAck = 10,
};

/// Typed application errors carried in kError frames. These travel to
/// well-behaved clients instead of a dropped connection: an overloaded
/// server answers kOverloaded within the read timeout rather than
/// queueing the request unboundedly.
enum class ErrorCode : uint16_t {
  kOverloaded = 1,    // admission control shed the request
  kBadRequest = 2,    // frame was sound but the payload was not
  kShuttingDown = 3,  // server is draining; retry elsewhere/later
  kInternal = 4,
};

const char* ErrorCodeName(ErrorCode code);

/// The pipelining half of a frame's identity: whether it was a v2
/// frame, and if so the u64 id the requester chose. A responder
/// passes the request frame's tag() straight into the Append*
/// overloads below so the answer travels in the same version, with
/// the same id — v1 requests get v1 (untagged) answers.
struct FrameTag {
  bool tagged = false;
  uint64_t frame_id = 0;
};

struct Frame {
  MessageType type = MessageType::kPing;
  std::vector<uint8_t> payload;
  /// Set for v2 frames: the client-chosen id to echo back.
  bool tagged = false;
  uint64_t frame_id = 0;
  FrameTag tag() const { return FrameTag{tagged, frame_id}; }
};

/// Appends one complete v1 frame (header + payload + CRC trailer) to
/// `out`. Payload larger than kMaxPayload is a programming error.
void AppendFrame(MessageType type, const uint8_t* payload, size_t n,
                 std::vector<uint8_t>* out);
/// Tag-dispatched overload: emits a v2 frame carrying tag.frame_id
/// when tag.tagged, a plain v1 frame otherwise.
void AppendFrame(MessageType type, const uint8_t* payload, size_t n,
                 const FrameTag& tag, std::vector<uint8_t>* out);
std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload);
std::vector<uint8_t> EncodeTaggedFrame(MessageType type,
                                       const std::vector<uint8_t>& payload,
                                       uint64_t frame_id);

/// Payload codecs. Encoders append a full frame (the FrameTag
/// overloads choose v1/v2 framing; the tag-less legacy signatures emit
/// v1); decoders take the payload bytes of an already-CRC-verified
/// frame — the frame id, living in the header, never appears here.
///
/// Query requests have two payload layouts, disambiguated by length:
///   legacy (17 bytes): u32 user, u32 n, u64 filter_hash, u8 flags —
///     always QueryKind::kPartner. Emitted whenever the request IS a
///     partner query, so partner traffic stays byte-identical to every
///     deployed peer.
///   extended (21 + 4g bytes): the 17 legacy bytes, then u8 kind
///     (must be a non-partner QueryKind the decoder knows — anything
///     else is InvalidArgument, which the server answers with a typed
///     kBadRequest), u8 aggregator, u16 group count g (kGroup: 1 ..
///     kMaxGroupMembers; kReciprocal: 0), then g u32 member ids.
///     A legacy decoder rejects the unexpected length outright, so a
///     coordinator fanning a new kind out to an old shard gets a typed
///     kBadRequest back and degrades to a typed partial — never a
///     silently-wrong kPartner answer.
void AppendQueryRequestFrame(const serving::QueryRequest& request,
                             std::vector<uint8_t>* out);
void AppendQueryRequestFrame(const serving::QueryRequest& request,
                             const FrameTag& tag, std::vector<uint8_t>* out);
Status DecodeQueryRequest(const uint8_t* payload, size_t n,
                          serving::QueryRequest* out);

/// Query responses carry two v2-only fields for the sharded
/// scatter-gather tier, both inside the CRC-covered payload:
///   * a `partial` flag bit (the answer is missing at least one
///     shard's contribution), and
///   * a 4-byte fp32 trailer after the item list with the responding
///     search's TA unreturned-score bound (ta_bound).
/// The tagged (v2) encoder emits both; the untagged (v1) encoder
/// suppresses them, so v1 peers — whose decoders reject unknown flag
/// bits — keep interoperating. The decoder accepts both shapes by
/// length: 13 + 12*count is a legacy payload (ta_bound = +inf, "no
/// completeness claim"), 13 + 12*count + 4 carries the bound. The two
/// lengths can never collide across counts (12c + 4 = 12c' has no
/// solution), so the framing stays unambiguous.
void AppendQueryResponseFrame(const serving::QueryResponse& response,
                              std::vector<uint8_t>* out);
void AppendQueryResponseFrame(const serving::QueryResponse& response,
                              const FrameTag& tag,
                              std::vector<uint8_t>* out);
Status DecodeQueryResponse(const uint8_t* payload, size_t n,
                           serving::QueryResponse* out);

void AppendErrorFrame(ErrorCode code, std::string_view message,
                      std::vector<uint8_t>* out);
void AppendErrorFrame(ErrorCode code, std::string_view message,
                      const FrameTag& tag, std::vector<uint8_t>* out);
Status DecodeError(const uint8_t* payload, size_t n, ErrorCode* code,
                   std::string* message);

/// Stats pair. The request carries no payload; the response payload
/// serializes an obs::MetricsSnapshot (little-endian, like every
/// other payload): u32 metric count, then per metric a u8 type, a
/// u16-length-prefixed name, and a type-specific body — u64 for
/// counters, i64 for gauges, and (u64 count, u64 sum, u16 nonzero
/// bucket count, (u8 bucket index, u64 bucket count)...) for
/// histograms (buckets are sparse: only nonzero entries travel).
/// Help strings stay server-side.
void AppendStatsRequestFrame(std::vector<uint8_t>* out);
void AppendStatsRequestFrame(const FrameTag& tag, std::vector<uint8_t>* out);
Status DecodeStatsRequest(const uint8_t* payload, size_t n);

void AppendStatsResponseFrame(const obs::MetricsSnapshot& snapshot,
                              std::vector<uint8_t>* out);
void AppendStatsResponseFrame(const obs::MetricsSnapshot& snapshot,
                              const FrameTag& tag,
                              std::vector<uint8_t>* out);
Status DecodeStatsResponse(const uint8_t* payload, size_t n,
                           obs::MetricsSnapshot* out);

/// Ingest frames. kAttendance payload (9 bytes): u32 user, u32 event,
/// u8 flags (bit0 = new user → cold-user fold-in instead of a nudge).
/// kNewEvent payload (20 + 8w bytes): u32 event, u32 region
/// (ebsn::kInvalidId when unknown), i64 start_time, u32 word count
/// (<= kMaxIngestWords), then per word u32 id + u32 float bits of its
/// weight. kIngestAck payload (8 bytes): u64 journal sequence number.
/// The decoders fill a serving::IngestRecord ready for the ingestion
/// queue (seq stays 0 — the queue assigns it).
void AppendAttendanceFrame(ebsn::UserId user, ebsn::EventId event,
                           bool new_user, std::vector<uint8_t>* out);
void AppendAttendanceFrame(ebsn::UserId user, ebsn::EventId event,
                           bool new_user, const FrameTag& tag,
                           std::vector<uint8_t>* out);
Status DecodeAttendance(const uint8_t* payload, size_t n,
                        serving::IngestRecord* out);

void AppendNewEventFrame(ebsn::EventId event,
                         const embedding::NewEventSignals& signals,
                         std::vector<uint8_t>* out);
void AppendNewEventFrame(ebsn::EventId event,
                         const embedding::NewEventSignals& signals,
                         const FrameTag& tag, std::vector<uint8_t>* out);
Status DecodeNewEvent(const uint8_t* payload, size_t n,
                      serving::IngestRecord* out);

void AppendIngestAckFrame(uint64_t seq, std::vector<uint8_t>* out);
void AppendIngestAckFrame(uint64_t seq, const FrameTag& tag,
                          std::vector<uint8_t>* out);
Status DecodeIngestAck(const uint8_t* payload, size_t n, uint64_t* seq);

/// Incremental frame parser — the receive half of a connection's state
/// machine. Feed() accepts bytes in arbitrary fragments (a frame may
/// arrive one byte at a time across many reads); complete, CRC-clean
/// frames become poppable via Next(). Any protocol violation (bad
/// magic/version/reserved, oversized length, CRC mismatch) makes the
/// decoder sticky-failed: Feed() keeps returning the first error and
/// the connection must be torn down.
class FrameDecoder {
 public:
  /// Appends bytes and parses as many complete frames as they finish.
  Status Feed(const uint8_t* data, size_t n);

  /// Pops the next complete frame; false when none is pending.
  bool Next(Frame* out);

  /// True when buffered bytes form only part of a frame — the signal
  /// the server's read timeout watches (a peer that starts a frame
  /// must finish it promptly).
  bool mid_frame() const { return ok() && buffer_.size() > pos_; }

  bool ok() const { return error_.ok(); }
  const Status& error() const { return error_; }

 private:
  Status Parse();

  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;  // consumed prefix of buffer_
  std::deque<Frame> frames_;
  Status error_;
};

}  // namespace gemrec::net

#endif  // GEMREC_NET_WIRE_H_
