#include "net/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "common/logging.h"

namespace gemrec::net {
namespace {

constexpr uint64_t kListenTag = 1;
/// Upper bound on one Poll sleep so gauge-style bookkeeping (timeout
/// sweeps, drain progress) never stalls for long.
constexpr int kMaxPollMs = 500;
/// How long an EMFILE-parked listener stays deregistered before the
/// reactor re-arms it (only reached when the spare fd could not be
/// reopened — the process is completely out of descriptors).
constexpr std::chrono::milliseconds kListenRearmDelay{100};

int ToMillisCeil(std::chrono::steady_clock::duration d) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  return static_cast<int>(std::max<int64_t>(0, ms)) +
         (d > std::chrono::milliseconds(ms) ? 1 : 0);
}

}  // namespace

Reactor::Reactor(uint32_t index, const Shared& shared)
    : index_(index), shared_(shared) {
  GEMREC_CHECK(shared_.service != nullptr);
  GEMREC_CHECK(shared_.options != nullptr);
  GEMREC_CHECK(shared_.metrics != nullptr);
  GEMREC_CHECK(shared_.total_in_flight != nullptr);
  GEMREC_CHECK(shared_.total_connections != nullptr);
}

Reactor::~Reactor() {
  if (started_) {
    RequestDrain();
    Join();
  }
}

void Reactor::Start(int listen_fd, std::vector<Reactor*> peers) {
  GEMREC_CHECK(!started_) << "Reactor started twice";
  listen_fd_ = listen_fd;
  peers_ = std::move(peers);
  if (listen_fd_ >= 0) {
    loop_.Add(listen_fd_, EPOLLIN, kListenTag);
    spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  }

  completions_ = std::make_shared<CompletionQueue>();
  completions_->loop = &loop_;

  const std::string prefix =
      "gemrec_net_reactor" + std::to_string(index_) + "_";
  obs::MetricsRegistry* registry = shared_.service->metrics();
  owned_total_ = registry->GetCounter(
      prefix + "owned_total",
      "Connections this reactor accepted or adopted over its lifetime.");
  owned_connections_ = registry->GetGauge(
      prefix + "connections",
      "Connections currently owned by this reactor.");

  started_ = true;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
}

void Reactor::RequestDrain() {
  // Only async-signal-safe operations: a lock-free atomic store and an
  // eventfd write inside Wakeup.
  drain_requested_.store(true, std::memory_order_relaxed);
  loop_.Wakeup();
}

void Reactor::WaitUntilStopped() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  stopped_cv_.wait(lock, [this] {
    return !started_ || !running_.load(std::memory_order_acquire);
  });
}

void Reactor::Join() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Reactor::SubmitConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(inbox_.mu);
    if (!inbox_.closed) {
      inbox_.fds.push_back(fd);
      loop_.Wakeup();
      return;
    }
  }
  // The reactor already shut down; undo the acceptor's accounting.
  ::close(fd);
  shared_.total_connections->fetch_sub(1, std::memory_order_relaxed);
  metrics().active_connections->Sub(1);
}

Reactor::Connection* Reactor::FindConnection(uint64_t id) {
  const auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : it->second.get();
}

void Reactor::Loop() {
  std::vector<epoll_event> events;
  while (true) {
    auto now = std::chrono::steady_clock::now();
    if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
      EnterDrain(now);
    }
    if (draining_ &&
        (connections_.empty() || now >= drain_deadline_)) {
      break;
    }
    if (listen_parked_ && now >= listen_rearm_at_ && listen_fd_ >= 0) {
      listen_parked_ = false;
      loop_.Add(listen_fd_, EPOLLIN, kListenTag);
    }

    const int n = loop_.Poll(PollTimeoutMs(now), &events);
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == EventLoop::kWakeupTag) {
        loop_.DrainWakeup();
        continue;
      }
      if (tag == kListenTag) {
        HandleAccept();
        continue;
      }
      Connection* conn = reinterpret_cast<Connection*>(tag);
      if (events[i].events & (EPOLLHUP | EPOLLERR)) conn->dead = true;
      if (!conn->dead && (events[i].events & EPOLLIN)) {
        HandleReadable(conn);
      }
      if (!conn->dead && (events[i].events & EPOLLOUT)) {
        FlushWrites(conn);
      }
      if (conn->dead) {
        CloseConnection(conn);
      } else {
        UpdateInterest(conn);
      }
    }
    DrainInbox();
    DrainCompletions();
    SweepTimeouts(std::chrono::steady_clock::now());
  }

  // Teardown: cut surviving connections (drain deadline passed or all
  // work flushed), close the completion channel so late worker
  // callbacks become no-ops, refuse late fd handoffs, then announce
  // the stop.
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (const uint64_t id : ids) {
    if (Connection* conn = FindConnection(id)) CloseConnection(conn);
  }
  {
    std::lock_guard<std::mutex> lock(completions_->mu);
    completions_->closed = true;
    completions_->loop = nullptr;
  }
  std::vector<int> late_fds;
  {
    std::lock_guard<std::mutex> lock(inbox_.mu);
    inbox_.closed = true;
    late_fds.swap(inbox_.fds);
  }
  for (const int fd : late_fds) {
    ::close(fd);
    shared_.total_connections->fetch_sub(1, std::memory_order_relaxed);
    metrics().active_connections->Sub(1);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (spare_fd_ >= 0) {
    ::close(spare_fd_);
    spare_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    running_.store(false, std::memory_order_release);
  }
  stopped_cv_.notify_all();
}

void Reactor::EnterDrain(std::chrono::steady_clock::time_point now) {
  draining_ = true;
  drain_deadline_ = now + options().drain_timeout;
  if (listen_fd_ >= 0) {
    if (!listen_parked_) loop_.Del(listen_fd_);
    listen_parked_ = false;
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Reads stay alive so ping/stats probes are still answered; every
  // other frame now gets kShuttingDown from HandleFrame. In-flight
  // responses still flush, and idle connections fall to the sweep
  // immediately below.
  for (const auto& [id, conn] : connections_) {
    conn->draining = true;
  }
  SweepTimeouts(now);
}

void Reactor::HandleAccept() {
  while (listen_fd_ >= 0) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // drained
      metrics().accept_errors->Increment();
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds with a level-triggered listener: without help the
        // pending connection keeps the fd readable and the loop would
        // spin at 100% CPU re-failing accept. Burn the reserved spare
        // fd to accept + refuse the connection, then take it back.
        if (spare_fd_ >= 0) {
          ::close(spare_fd_);
          spare_fd_ = -1;
          const int doomed =
              ::accept4(listen_fd_, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (doomed >= 0) ::close(doomed);
          spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
          if (spare_fd_ >= 0) continue;  // keep refusing the backlog
        }
        // No spare left (another thread raced the freed slot): park
        // the listener and re-arm after a pause instead of spinning.
        GEMREC_LOG(Warning)
            << "reactor " << index_
            << " out of fds and out of spares; parking listener";
        loop_.Del(listen_fd_);
        listen_parked_ = true;
        listen_rearm_at_ =
            std::chrono::steady_clock::now() + kListenRearmDelay;
        break;
      }
      GEMREC_LOG(Warning) << "accept4: " << std::strerror(errno);
      break;
    }
    if (shared_.total_connections->load(std::memory_order_relaxed) >=
        options().max_connections) {
      metrics().conn_limit_rejects->Increment();
      GEMREC_LOG(Warning) << "connection limit "
                          << options().max_connections
                          << " reached; refusing fd " << fd;
      ::close(fd);
      continue;
    }
    shared_.total_connections->fetch_add(1, std::memory_order_relaxed);
    metrics().accepted->Increment();
    metrics().active_connections->Add(1);
    if (!peers_.empty()) {
      // Handoff fallback: this reactor is the only acceptor;
      // round-robin ownership across all reactors (including itself).
      Reactor* target = peers_[next_peer_++ % peers_.size()];
      if (target != this) {
        target->SubmitConnection(fd);
        continue;
      }
    }
    AdoptConnection(fd);
  }
}

void Reactor::AdoptConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options().so_sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options().so_sndbuf,
                 sizeof(options().so_sndbuf));
  }
  auto conn = std::make_unique<Connection>();
  conn->id = next_conn_id_++;
  conn->fd = fd;
  conn->last_activity = std::chrono::steady_clock::now();
  conn->interest = EPOLLIN;
  conn->draining = draining_;
  loop_.Add(fd, EPOLLIN, reinterpret_cast<uint64_t>(conn.get()));
  owned_total_->Increment();
  owned_connections_->Add(1);
  connections_.emplace(conn->id, std::move(conn));
}

void Reactor::DrainInbox() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(inbox_.mu);
    fds.swap(inbox_.fds);
  }
  for (const int fd : fds) AdoptConnection(fd);
}

void Reactor::HandleReadable(Connection* conn) {
  uint8_t buf[64 * 1024];
  const auto now = std::chrono::steady_clock::now();
  while (!conn->dead) {
    const ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r == 0) {  // peer closed its write half
      conn->dead = true;
      break;
    }
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn->dead = true;
      break;
    }
    metrics().bytes_received->Increment(static_cast<uint64_t>(r));
    conn->last_activity = now;
    if (const Status s =
            conn->decoder.Feed(buf, static_cast<size_t>(r));
        !s.ok()) {
      GEMREC_LOG(Debug) << "protocol error on conn " << conn->id << ": "
                        << s.ToString();
      metrics().protocol_errors->Increment();
      conn->dead = true;
      break;
    }
    Frame frame;
    while (!conn->dead && conn->decoder.Next(&frame)) {
      HandleFrame(conn, frame);
    }
    if (r < static_cast<ssize_t>(sizeof(buf))) break;  // socket drained
  }
  // Read-timeout anchor: a partial frame's clock starts when its first
  // bytes arrive and resets once the frame completes.
  if (!conn->dead && conn->decoder.mid_frame()) {
    if (!conn->has_partial) {
      conn->has_partial = true;
      conn->partial_since = now;
    }
  } else {
    conn->has_partial = false;
  }
}

void Reactor::HandleFrame(Connection* conn, const Frame& frame) {
  const FrameTag tag = frame.tag();
  switch (frame.type) {
    case MessageType::kPing: {
      metrics().pings->Increment();
      AppendFrame(MessageType::kPong, nullptr, 0, tag, &conn->write_buf);
      AfterQueue(conn);
      return;
    }
    case MessageType::kStatsRequest: {
      if (const Status s =
              DecodeStatsRequest(frame.payload.data(), frame.payload.size());
          !s.ok()) {
        metrics().bad_requests->Increment();
        SendError(conn, ErrorCode::kBadRequest, s.message(), tag);
        return;
      }
      // Served unconditionally — no admission control, no drain
      // refusal: an operator asking "why is this server shedding /
      // draining" must get an answer from exactly that server. Routed
      // through StatsAsync because a coordinator backend must fan the
      // request out to its shards off-thread; a local service answers
      // synchronously, so the completion is drained later this same
      // loop iteration. Holds conn->in_flight (not the admission
      // budget) so a draining connection survives until the answer
      // flushes.
      metrics().stats_requests->Increment();
      ++conn->in_flight;
      const uint64_t conn_id = conn->id;
      std::shared_ptr<CompletionQueue> cq = completions_;
      shared_.service->StatsAsync(
          [cq, conn_id, tag](obs::MetricsSnapshot snapshot) {
            std::lock_guard<std::mutex> lock(cq->mu);
            if (cq->closed) return;
            const bool was_empty = cq->items.empty();
            Completion completion;
            completion.conn_id = conn_id;
            completion.tag = tag;
            completion.is_stats = true;
            completion.stats = std::move(snapshot);
            cq->items.push_back(std::move(completion));
            if (was_empty && cq->loop != nullptr) cq->loop->Wakeup();
          });
      return;
    }
    case MessageType::kQueryRequest: {
      metrics().requests->Increment();
      if (draining_) {
        metrics().drain_rejects->Increment();
        SendError(conn, ErrorCode::kShuttingDown, "server draining", tag);
        return;
      }
      serving::QueryRequest request;
      if (const Status s = DecodeQueryRequest(
              frame.payload.data(), frame.payload.size(), &request);
          !s.ok()) {
        metrics().bad_requests->Increment();
        SendError(conn, ErrorCode::kBadRequest, s.message(), tag);
        return;
      }
      // Admission control: the server's own budget of unanswered
      // requests (claim-then-check on the shared atomic keeps the
      // budget exact across reactors), then the service's real
      // saturation gauges. Both gates shed with a typed error the
      // client sees immediately — the request never enters a queue it
      // would wait in unboundedly.
      const uint32_t prior = shared_.total_in_flight->fetch_add(
          1, std::memory_order_relaxed);
      if (prior >= options().max_in_flight ||
          shared_.service->QueueDepth() + shared_.service->InFlight() >=
              options().max_service_saturation) {
        shared_.total_in_flight->fetch_sub(1, std::memory_order_relaxed);
        metrics().overload_sheds->Increment();
        SendError(conn, ErrorCode::kOverloaded, "server overloaded", tag);
        return;
      }
      ++conn->in_flight;
      const uint64_t conn_id = conn->id;
      // Round-trip anchor: decode time, so the histogram covers the
      // service queue wait, the search and the hop back to this thread.
      const auto received_at = std::chrono::steady_clock::now();
      std::shared_ptr<CompletionQueue> cq = completions_;
      shared_.service->SubmitAsync(
          request,
          [cq, conn_id, received_at, tag](serving::QueryResponse response) {
            std::lock_guard<std::mutex> lock(cq->mu);
            if (cq->closed) return;
            const bool was_empty = cq->items.empty();
            Completion completion;
            completion.conn_id = conn_id;
            completion.response = std::move(response);
            completion.received_at = received_at;
            completion.tag = tag;
            cq->items.push_back(std::move(completion));
            // One wakeup per burst: later completions piggyback on the
            // pending eventfd tick.
            if (was_empty && cq->loop != nullptr) cq->loop->Wakeup();
          });
      return;
    }
    case MessageType::kAttendance:
    case MessageType::kNewEvent: {
      metrics().ingest_requests->Increment();
      if (draining_) {
        metrics().drain_rejects->Increment();
        SendError(conn, ErrorCode::kShuttingDown, "server draining", tag);
        return;
      }
      if (shared_.ingest == nullptr) {
        metrics().bad_requests->Increment();
        SendError(conn, ErrorCode::kBadRequest,
                  "ingestion disabled on this server", tag);
        return;
      }
      serving::IngestRecord record;
      const Status s =
          frame.type == MessageType::kAttendance
              ? DecodeAttendance(frame.payload.data(),
                                 frame.payload.size(), &record)
              : DecodeNewEvent(frame.payload.data(), frame.payload.size(),
                               &record);
      if (!s.ok()) {
        metrics().bad_requests->Increment();
        SendError(conn, ErrorCode::kBadRequest, s.message(), tag);
        return;
      }
      // Write-side admission control lives in the queue itself
      // (max_pending); a full queue answers kOverloaded immediately —
      // the fail-fast twin of the read path's in-flight budget.
      const uint64_t conn_id = conn->id;
      const auto received_at = std::chrono::steady_clock::now();
      shared_.total_in_flight->fetch_add(1, std::memory_order_relaxed);
      ++conn->in_flight;
      std::shared_ptr<CompletionQueue> cq = completions_;
      const serving::IngestAdmission admission = shared_.ingest->SubmitAsync(
          std::move(record),
          [cq, conn_id, received_at, tag](Status status, uint64_t seq) {
            std::lock_guard<std::mutex> lock(cq->mu);
            if (cq->closed) return;
            const bool was_empty = cq->items.empty();
            Completion completion;
            completion.conn_id = conn_id;
            completion.received_at = received_at;
            completion.tag = tag;
            completion.is_ingest = true;
            completion.ingest_status = std::move(status);
            completion.ingest_seq = seq;
            cq->items.push_back(std::move(completion));
            if (was_empty && cq->loop != nullptr) cq->loop->Wakeup();
          });
      if (admission != serving::IngestAdmission::kAccepted) {
        // The ack callback never fires for a refused submission.
        shared_.total_in_flight->fetch_sub(1, std::memory_order_relaxed);
        --conn->in_flight;
        if (admission == serving::IngestAdmission::kQueueFull) {
          metrics().overload_sheds->Increment();
          SendError(conn, ErrorCode::kOverloaded, "ingest queue full", tag);
        } else {
          metrics().drain_rejects->Increment();
          SendError(conn, ErrorCode::kShuttingDown,
                    "ingestion shutting down", tag);
        }
      }
      return;
    }
    case MessageType::kQueryResponse:
    case MessageType::kPong:
    case MessageType::kError:
    case MessageType::kStatsResponse:
    case MessageType::kIngestAck:
      break;
  }
  metrics().bad_requests->Increment();
  SendError(conn, ErrorCode::kBadRequest, "unexpected message type", tag);
}

void Reactor::SendError(Connection* conn, ErrorCode code,
                        std::string_view msg, const FrameTag& tag) {
  AppendErrorFrame(code, msg, tag, &conn->write_buf);
  AfterQueue(conn);
}

void Reactor::AfterQueue(Connection* conn) {
  FlushWrites(conn);
  if (!conn->dead && conn->pending_write() > options().max_write_buffer) {
    metrics().slow_reader_disconnects->Increment();
    conn->dead = true;
  }
}

void Reactor::FlushWrites(Connection* conn) {
  while (conn->pending_write() > 0) {
    const ssize_t w =
        ::send(conn->fd, conn->write_buf.data() + conn->write_pos,
               conn->pending_write(), MSG_NOSIGNAL);
    if (w > 0) {
      conn->write_pos += static_cast<size_t>(w);
      metrics().bytes_sent->Increment(static_cast<uint64_t>(w));
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    conn->dead = true;  // EPIPE/ECONNRESET/...
    return;
  }
  if (conn->write_pos == conn->write_buf.size()) {
    conn->write_buf.clear();
    conn->write_pos = 0;
  } else if (conn->write_pos > (64u << 10)) {
    conn->write_buf.erase(
        conn->write_buf.begin(),
        conn->write_buf.begin() + static_cast<ptrdiff_t>(conn->write_pos));
    conn->write_pos = 0;
  }
}

void Reactor::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_->mu);
    batch.swap(completions_->items);
  }
  for (Completion& completion : batch) {
    if (!completion.is_stats) {
      // Stats answers never claimed the admission budget.
      const uint32_t prior = shared_.total_in_flight->fetch_sub(
          1, std::memory_order_relaxed);
      GEMREC_CHECK(prior > 0);
    }
    Connection* conn = FindConnection(completion.conn_id);
    if (conn == nullptr || conn->dead) {
      // The connection died (timeout, slow reader, protocol error)
      // while its request was being served.
      metrics().orphaned_responses->Increment();
      continue;
    }
    GEMREC_CHECK(conn->in_flight > 0);
    --conn->in_flight;
    if (completion.is_stats) {
      AppendStatsResponseFrame(completion.stats, completion.tag,
                               &conn->write_buf);
      AfterQueue(conn);
      if (conn->dead) {
        CloseConnection(conn);
      } else {
        UpdateInterest(conn);
      }
      continue;
    }
    if (completion.is_ingest) {
      if (completion.ingest_status.ok()) {
        AppendIngestAckFrame(completion.ingest_seq, completion.tag,
                             &conn->write_buf);
        metrics().ingest_acks->Increment();
        const auto elapsed =
            std::chrono::steady_clock::now() - completion.received_at;
        metrics().round_trip_us->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count()));
        AfterQueue(conn);
      } else {
        // Typed mapping: caller mistakes are kBadRequest, anything the
        // server did to itself (journal I/O, apply) is kInternal.
        const StatusCode code = completion.ingest_status.code();
        const ErrorCode wire_code =
            (code == StatusCode::kInvalidArgument ||
             code == StatusCode::kOutOfRange)
                ? ErrorCode::kBadRequest
                : ErrorCode::kInternal;
        if (wire_code == ErrorCode::kBadRequest) {
          metrics().bad_requests->Increment();
        }
        SendError(conn, wire_code, completion.ingest_status.message(),
                  completion.tag);
      }
      if (conn->dead) {
        CloseConnection(conn);
      } else {
        UpdateInterest(conn);
      }
      continue;
    }
    if (completion.response.rejected) {
      // The service refused the request racing its own Shutdown; the
      // client gets the same typed error as an up-front drain refusal
      // instead of an empty result it might mistake for a real answer.
      metrics().drain_rejects->Increment();
      SendError(conn, ErrorCode::kShuttingDown, "service shutting down",
                completion.tag);
    } else if (completion.response.bad_request) {
      // Semantically invalid against the live snapshot (out-of-range
      // user or group member) — only the backend can know. Same typed
      // error the wire decoder sends for malformed payloads.
      metrics().bad_requests->Increment();
      SendError(conn, ErrorCode::kBadRequest,
                "request invalid against the serving snapshot",
                completion.tag);
    } else if (completion.response.overloaded) {
      // OVERLOADED propagation: a coordinator whose shard answered
      // kOverloaded relays the same typed signal instead of passing
      // off a silently thinner answer as complete.
      metrics().overload_sheds->Increment();
      SendError(conn, ErrorCode::kOverloaded, "shard overloaded",
                completion.tag);
    } else {
      AppendQueryResponseFrame(completion.response, completion.tag,
                               &conn->write_buf);
      metrics().responses->Increment();
      const auto elapsed =
          std::chrono::steady_clock::now() - completion.received_at;
      metrics().round_trip_us->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count()));
      AfterQueue(conn);
    }
    if (conn->dead) {
      CloseConnection(conn);
    } else {
      UpdateInterest(conn);
    }
  }
}

void Reactor::SweepTimeouts(std::chrono::steady_clock::time_point now) {
  std::vector<uint64_t> doomed;
  for (const auto& [id, conn] : connections_) {
    if (conn->dead) {
      doomed.push_back(id);
      continue;
    }
    if (conn->draining) {
      // Drain completion for this connection: everything answered and
      // flushed — or the peer gets cut at the global drain deadline.
      if (conn->in_flight == 0 && conn->pending_write() == 0) {
        doomed.push_back(id);
      }
      continue;
    }
    if (conn->has_partial &&
        now - conn->partial_since >= options().read_timeout) {
      metrics().read_timeouts->Increment();
      doomed.push_back(id);
      continue;
    }
    if (!conn->has_partial && conn->in_flight == 0 &&
        conn->pending_write() == 0 &&
        now - conn->last_activity >= options().idle_timeout) {
      metrics().idle_timeouts->Increment();
      doomed.push_back(id);
    }
  }
  for (const uint64_t id : doomed) {
    if (Connection* conn = FindConnection(id)) CloseConnection(conn);
  }
}

int Reactor::PollTimeoutMs(
    std::chrono::steady_clock::time_point now) const {
  auto deadline = now + std::chrono::milliseconds(kMaxPollMs);
  for (const auto& [id, conn] : connections_) {
    if (conn->draining) continue;
    if (conn->has_partial) {
      deadline =
          std::min(deadline, conn->partial_since + options().read_timeout);
    } else if (conn->in_flight == 0 && conn->pending_write() == 0) {
      deadline =
          std::min(deadline, conn->last_activity + options().idle_timeout);
    }
  }
  if (draining_) deadline = std::min(deadline, drain_deadline_);
  if (listen_parked_) deadline = std::min(deadline, listen_rearm_at_);
  return std::min(kMaxPollMs, ToMillisCeil(deadline - now));
}

void Reactor::UpdateInterest(Connection* conn) {
  // Draining connections keep EPOLLIN: stats/ping probes must still be
  // readable (HandleFrame refuses everything else with kShuttingDown).
  uint32_t want = EPOLLIN;
  if (conn->pending_write() > 0) want |= EPOLLOUT;
  if (want != conn->interest) {
    loop_.Mod(conn->fd, want, reinterpret_cast<uint64_t>(conn));
    conn->interest = want;
  }
}

void Reactor::CloseConnection(Connection* conn) {
  loop_.Del(conn->fd);
  ::close(conn->fd);
  metrics().active_connections->Sub(1);
  shared_.total_connections->fetch_sub(1, std::memory_order_relaxed);
  owned_connections_->Sub(1);
  connections_.erase(conn->id);  // destroys *conn
}

}  // namespace gemrec::net
