#ifndef GEMREC_NET_EVENT_LOOP_H_
#define GEMREC_NET_EVENT_LOOP_H_

#include <sys/epoll.h>

#include <cstdint>
#include <vector>

namespace gemrec::net {

/// Thin epoll wrapper with a built-in wakeup channel. One thread (the
/// owner) calls Poll; any thread — including a signal handler, since
/// eventfd write(2) is async-signal-safe — may call Wakeup to make a
/// blocked Poll return early.
///
/// Registration tags: callers attach a uint64_t tag per fd (typically
/// a pointer or a small sentinel) and get it back in the epoll_event's
/// data.u64. The wakeup channel occupies kWakeupTag.
class EventLoop {
 public:
  static constexpr uint64_t kWakeupTag = 0;

  EventLoop();   // aborts if epoll/eventfd creation fails (no fds left)
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// epoll_ctl ADD/MOD/DEL. `events` is an EPOLLIN/EPOLLOUT/... mask.
  void Add(int fd, uint32_t events, uint64_t tag);
  void Mod(int fd, uint32_t events, uint64_t tag);
  void Del(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and fills `out` with
  /// ready events. Retries EINTR; returns the number of events.
  int Poll(int timeout_ms, std::vector<epoll_event>* out);

  /// Makes the current/next Poll return. Async-signal-safe.
  void Wakeup();

  /// Drains the wakeup channel (call when a kWakeupTag event fires so
  /// level-triggered epoll stops reporting it).
  void DrainWakeup();

 private:
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
};

}  // namespace gemrec::net

#endif  // GEMREC_NET_EVENT_LOOP_H_
