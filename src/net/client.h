#ifndef GEMREC_NET_CLIENT_H_
#define GEMREC_NET_CLIENT_H_

#include <chrono>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/wire.h"
#include "serving/recommendation_service.h"

namespace gemrec::net {

struct ClientOptions {
  std::chrono::milliseconds connect_timeout{5000};
  /// Per-recv/send timeout; a stalled server turns into an IoError
  /// instead of a hang.
  std::chrono::milliseconds io_timeout{5000};
  /// SO_RCVBUF before connect; 0 keeps the kernel default. Tests
  /// shrink it to act as a deliberately slow reader.
  int so_rcvbuf = 0;
};

/// One application-level reply: either a query response or a typed
/// server error (e.g. kOverloaded from admission control). Transport
/// and protocol failures surface as Status errors instead.
struct QueryOutcome {
  bool ok = false;
  serving::QueryResponse response;  // valid when ok
  ErrorCode error = ErrorCode::kInternal;  // valid when !ok
  std::string error_message;
};

/// One write-path reply: the journal sequence number of a durable,
/// applied record, or the server's typed refusal (kOverloaded when the
/// ingest queue shed the write, kBadRequest for bogus ids/signals).
struct IngestOutcome {
  bool ok = false;
  uint64_t seq = 0;                        // valid when ok
  ErrorCode error = ErrorCode::kInternal;  // valid when !ok
  std::string error_message;
};

/// One reply pulled off a pipelined connection: the frame id it
/// answers (echoed by the server from the matching SendTagged), plus
/// the outcome. `tagged` is false only when the peer answered with a
/// legacy v1 frame (no id to match on). A kStatsResponse (answering
/// SendStatsRequest on the same pipelined connection) arrives with
/// `is_stats` set and `stats` filled; `outcome` is meaningful
/// otherwise.
struct TaggedReply {
  uint64_t frame_id = 0;
  bool tagged = false;
  bool is_stats = false;
  obs::MetricsSnapshot stats;  // valid when is_stats
  QueryOutcome outcome;        // valid when !is_stats
};

/// Blocking client for the wire.h protocol — the reference peer used
/// by tests, the bench load generator, and one-liner scripting against
/// `gemrec serve --listen`. One socket; speaks wire v2 (every request
/// frame carries a u64 frame id the server echoes), so many requests
/// may be in flight at once and complete OUT OF ORDER: issue ids with
/// SendTagged, then match replies by TaggedReply::frame_id from
/// ReceiveAny. The lockstep verbs (Query/Send/Receive/...) are thin
/// wrappers that auto-assign ids and read one reply per request —
/// byte-compatible with how v1 callers used them.
///
/// Not thread-safe: one thread per client (open one client per
/// connection, as bench/net_throughput does).
class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      const ClientOptions& options = {});

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send + Receive in one call.
  Result<QueryOutcome> Query(const serving::QueryRequest& request);

  /// Writes one request frame (pipelining half; auto-assigned id).
  Status Send(const serving::QueryRequest& request);

  /// Reads the next response/error frame (whatever id it carries).
  Result<QueryOutcome> Receive();

  /// Pipelining/multiplexing half-pair. SendTagged writes one v2 query
  /// frame carrying the caller-chosen `frame_id`; ReceiveAny blocks
  /// for the NEXT response or error frame — in completion order, not
  /// send order — and surfaces its echoed id for the caller to match.
  Status SendTagged(const serving::QueryRequest& request,
                    uint64_t frame_id);
  Result<TaggedReply> ReceiveAny();

  /// Deadline-aware ReceiveAny: waits at most `timeout` for the next
  /// reply, poll-based — independent of (and typically much shorter
  /// than) the socket-level io_timeout. Returns Status::Timeout (NOT
  /// IoError) when the deadline elapses with no complete frame; the
  /// connection stays usable and buffered partial frames are kept, so
  /// the caller may simply wait again. `timeout` <= 0 drains without
  /// blocking: a buffered complete frame if one is ready, else
  /// Timeout. This is the coordinator's per-shard-deadline primitive:
  /// a parked shard costs exactly the deadline, never the io_timeout.
  Result<TaggedReply> ReceiveAny(std::chrono::milliseconds timeout);

  /// Writes one tagged kStatsRequest on the pipelined connection; the
  /// kStatsResponse arrives through ReceiveAny with `is_stats` set
  /// (completion order, like query replies).
  Status SendStatsRequest(uint64_t frame_id);

  /// Write path. Attend reports "user registered for event" (new_user
  /// folds in a cold user vector seeded by the event); PublishNewEvent
  /// streams a just-published event's fold-in signals. Both block for
  /// the kIngestAck — the record is durable and retrievable-after-
  /// next-publish once they return ok. The Send/Receive halves are
  /// split for pipelining, like queries.
  Result<IngestOutcome> Attend(ebsn::UserId user, ebsn::EventId event,
                               bool new_user = false);
  Result<IngestOutcome> PublishNewEvent(
      ebsn::EventId event, const embedding::NewEventSignals& signals);
  Status SendAttendance(ebsn::UserId user, ebsn::EventId event,
                        bool new_user = false);
  Status SendNewEvent(ebsn::EventId event,
                      const embedding::NewEventSignals& signals);
  Result<IngestOutcome> ReceiveIngestAck();

  /// Round-trips a ping frame (health check).
  Status Ping();

  /// Fetches the server's metrics snapshot (counters, gauges and
  /// latency histograms) via the kStats wire pair. Works even against
  /// a draining or overloaded server. Help strings stay server-side,
  /// so returned metrics carry empty `help`.
  Result<obs::MetricsSnapshot> Stats();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  Status SendAll(const uint8_t* data, size_t n);
  /// Blocks until one complete frame is decoded.
  Result<Frame> ReceiveFrame();
  /// Poll-based ReceiveFrame with a hard deadline (Status::Timeout).
  Result<Frame> ReceiveFrameWithin(std::chrono::milliseconds timeout);
  /// Maps one response/error/stats frame to a TaggedReply.
  Result<TaggedReply> DecodeReply(Frame frame);
  FrameTag NextTag() { return FrameTag{true, next_frame_id_++}; }

  int fd_ = -1;
  FrameDecoder decoder_;
  /// Auto-assigned ids for the lockstep wrappers; SendTagged callers
  /// choose their own id space (collisions with these are harmless —
  /// the server echoes blindly, matching is entirely client-side).
  uint64_t next_frame_id_ = 1;
};

}  // namespace gemrec::net

#endif  // GEMREC_NET_CLIENT_H_
