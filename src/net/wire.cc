#include "net/wire.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/crc32c.h"
#include "common/logging.h"

namespace gemrec::net {
namespace {

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

float BitsFloat(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

constexpr uint8_t kRequestFlagBypassCache = 1u << 0;
constexpr uint8_t kResponseFlagCacheHit = 1u << 0;
/// v2-only: the merge is missing at least one shard (see wire.h).
constexpr uint8_t kResponseFlagPartial = 1u << 1;
constexpr size_t kQueryRequestPayload = 17;   // user, n, filter_hash, flags
/// Extended request layout (non-partner kinds): the 17 legacy bytes +
/// u8 kind + u8 aggregator + u16 group count, then the member ids.
constexpr size_t kQueryRequestExtended = 21;
constexpr size_t kQueryRequestMemberStride = 4;
constexpr size_t kQueryResponseFixed = 13;    // epoch, flags, count
constexpr size_t kQueryResponseStride = 12;   // event, partner, score
constexpr size_t kQueryResponseBound = 4;     // fp32 ta_bound trailer (v2)
constexpr size_t kErrorFixed = 2;             // code; message is the rest
constexpr uint8_t kAttendanceFlagNewUser = 1u << 0;
constexpr size_t kAttendancePayload = 9;      // user, event, flags
constexpr size_t kNewEventFixed = 20;         // event, region, time, count
constexpr size_t kNewEventWordStride = 8;     // word id, weight bits
constexpr size_t kIngestAckPayload = 8;       // seq

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverloaded: return "Overloaded";
    case ErrorCode::kBadRequest: return "BadRequest";
    case ErrorCode::kShuttingDown: return "ShuttingDown";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

void AppendFrame(MessageType type, const uint8_t* payload, size_t n,
                 const FrameTag& tag, std::vector<uint8_t>* out) {
  GEMREC_CHECK(n <= kMaxPayload)
      << "frame payload " << n << " exceeds kMaxPayload";
  const size_t start = out->size();
  const size_t header = tag.tagged ? kTaggedHeaderSize : kHeaderSize;
  out->reserve(start + header + n + kTrailerSize);
  PutU32(kMagic, out);
  out->push_back(tag.tagged ? kWireVersion : kWireVersionV1);
  out->push_back(static_cast<uint8_t>(type));
  PutU16(0, out);  // reserved
  PutU32(static_cast<uint32_t>(n), out);
  if (tag.tagged) PutU64(tag.frame_id, out);
  if (n > 0) out->insert(out->end(), payload, payload + n);
  const uint32_t crc = Crc32c(out->data() + start, header + n);
  PutU32(crc, out);
}

void AppendFrame(MessageType type, const uint8_t* payload, size_t n,
                 std::vector<uint8_t>* out) {
  AppendFrame(type, payload, n, FrameTag{}, out);
}

std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  AppendFrame(type, payload.data(), payload.size(), &out);
  return out;
}

std::vector<uint8_t> EncodeTaggedFrame(MessageType type,
                                       const std::vector<uint8_t>& payload,
                                       uint64_t frame_id) {
  std::vector<uint8_t> out;
  AppendFrame(type, payload.data(), payload.size(),
              FrameTag{true, frame_id}, &out);
  return out;
}

void AppendQueryRequestFrame(const serving::QueryRequest& request,
                             const FrameTag& tag,
                             std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  const bool extended =
      request.kind != recommend::QueryKind::kPartner;
  payload.reserve(extended ? kQueryRequestExtended +
                                 kQueryRequestMemberStride *
                                     request.group.size()
                           : kQueryRequestPayload);
  PutU32(request.user, &payload);
  PutU32(request.n, &payload);
  PutU64(request.filter_hash, &payload);
  payload.push_back(request.bypass_cache ? kRequestFlagBypassCache : 0);
  // Partner requests keep the legacy 17-byte layout byte-for-byte;
  // only the new kinds emit the extension (which a legacy decoder
  // rejects with a typed error rather than misreading).
  if (extended) {
    payload.push_back(static_cast<uint8_t>(request.kind));
    payload.push_back(static_cast<uint8_t>(request.aggregator));
    GEMREC_CHECK(request.group.size() <= kMaxGroupMembers)
        << "group of " << request.group.size() << " exceeds "
        << kMaxGroupMembers;
    PutU16(static_cast<uint16_t>(request.group.size()), &payload);
    for (const ebsn::UserId m : request.group) PutU32(m, &payload);
  }
  AppendFrame(MessageType::kQueryRequest, payload.data(), payload.size(),
              tag, out);
}

void AppendQueryRequestFrame(const serving::QueryRequest& request,
                             std::vector<uint8_t>* out) {
  AppendQueryRequestFrame(request, FrameTag{}, out);
}

Status DecodeQueryRequest(const uint8_t* payload, size_t n,
                          serving::QueryRequest* out) {
  if (n != kQueryRequestPayload && n < kQueryRequestExtended) {
    return Status::InvalidArgument("query request payload must be " +
                                   std::to_string(kQueryRequestPayload) +
                                   " or >= " +
                                   std::to_string(kQueryRequestExtended) +
                                   " bytes, got " + std::to_string(n));
  }
  out->user = GetU32(payload);
  out->n = GetU32(payload + 4);
  out->filter_hash = GetU64(payload + 8);
  const uint8_t flags = payload[16];
  if ((flags & ~kRequestFlagBypassCache) != 0) {
    return Status::InvalidArgument("unknown query request flags");
  }
  out->bypass_cache = (flags & kRequestFlagBypassCache) != 0;
  out->kind = recommend::QueryKind::kPartner;
  out->aggregator = recommend::GroupAggregator::kSum;
  out->group.clear();
  if (n > kQueryRequestPayload) {
    // Extended layout. The kind byte must name a non-partner kind this
    // decoder knows: kPartner has exactly one canonical (legacy)
    // encoding, and a kind from the future is a typed error — the
    // caller must learn it is not understood, never receive a
    // silently-wrong partner answer.
    const uint8_t kind_byte = payload[17];
    const uint8_t agg_byte = payload[18];
    const uint16_t count = GetU16(payload + 19);
    if (kind_byte != static_cast<uint8_t>(recommend::QueryKind::kGroup) &&
        kind_byte !=
            static_cast<uint8_t>(recommend::QueryKind::kReciprocal)) {
      return Status::InvalidArgument("unsupported query kind " +
                                     std::to_string(kind_byte));
    }
    out->kind = static_cast<recommend::QueryKind>(kind_byte);
    if (agg_byte >
        static_cast<uint8_t>(recommend::GroupAggregator::kMin)) {
      return Status::InvalidArgument("unknown group aggregator " +
                                     std::to_string(agg_byte));
    }
    out->aggregator = static_cast<recommend::GroupAggregator>(agg_byte);
    if (out->kind == recommend::QueryKind::kGroup) {
      if (count == 0 || count > kMaxGroupMembers) {
        return Status::InvalidArgument(
            "group member count must be in [1, " +
            std::to_string(kMaxGroupMembers) + "], got " +
            std::to_string(count));
      }
    } else if (count != 0) {
      return Status::InvalidArgument(
          "non-group query carries group members");
    }
    if (n != kQueryRequestExtended +
                 kQueryRequestMemberStride * static_cast<size_t>(count)) {
      return Status::InvalidArgument(
          "extended query request length mismatch");
    }
    out->group.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      out->group.push_back(GetU32(payload + kQueryRequestExtended +
                                  kQueryRequestMemberStride * i));
    }
  }
  if (out->n == 0 || out->n > kMaxTopN) {
    return Status::InvalidArgument("query n must be in [1, " +
                                   std::to_string(kMaxTopN) + "], got " +
                                   std::to_string(out->n));
  }
  return Status::Ok();
}

void AppendQueryResponseFrame(const serving::QueryResponse& response,
                              const FrameTag& tag,
                              std::vector<uint8_t>* out) {
  // The partial flag and ta_bound trailer are v2-only: a v1 decoder
  // rejects unknown flag bits and unexpected payload lengths, so the
  // untagged (v1) encoder suppresses both.
  const bool v2 = tag.tagged;
  std::vector<uint8_t> payload;
  payload.reserve(kQueryResponseFixed +
                  kQueryResponseStride * response.items.size() +
                  (v2 ? kQueryResponseBound : 0));
  PutU64(response.epoch, &payload);
  uint8_t flags = response.cache_hit ? kResponseFlagCacheHit : 0;
  if (v2 && response.partial) flags |= kResponseFlagPartial;
  payload.push_back(flags);
  PutU32(static_cast<uint32_t>(response.items.size()), &payload);
  for (const recommend::Recommendation& item : response.items) {
    PutU32(item.event, &payload);
    PutU32(item.partner, &payload);
    PutU32(FloatBits(item.score), &payload);
  }
  if (v2) PutU32(FloatBits(response.ta_bound), &payload);
  AppendFrame(MessageType::kQueryResponse, payload.data(), payload.size(),
              tag, out);
}

void AppendQueryResponseFrame(const serving::QueryResponse& response,
                              std::vector<uint8_t>* out) {
  AppendQueryResponseFrame(response, FrameTag{}, out);
}

Status DecodeQueryResponse(const uint8_t* payload, size_t n,
                           serving::QueryResponse* out) {
  if (n < kQueryResponseFixed) {
    return Status::InvalidArgument("query response payload too short");
  }
  out->epoch = GetU64(payload);
  const uint8_t flags = payload[8];
  if ((flags & ~(kResponseFlagCacheHit | kResponseFlagPartial)) != 0) {
    return Status::InvalidArgument("unknown query response flags");
  }
  out->cache_hit = (flags & kResponseFlagCacheHit) != 0;
  out->partial = (flags & kResponseFlagPartial) != 0;
  const uint32_t count = GetU32(payload + 9);
  // Two accepted shapes, disambiguated by length alone: the legacy
  // item list, or the item list plus the 4-byte fp32 ta_bound trailer
  // (12c and 12c' + 4 can never coincide). Legacy answers carry no
  // bound — +inf, "this peer makes no completeness claim".
  const size_t legacy = kQueryResponseFixed +
                        kQueryResponseStride * size_t{count};
  if (n == legacy) {
    out->ta_bound = std::numeric_limits<float>::infinity();
  } else if (n == legacy + kQueryResponseBound) {
    out->ta_bound = BitsFloat(GetU32(payload + legacy));
  } else {
    return Status::InvalidArgument("query response length mismatch");
  }
  out->items.clear();
  out->items.reserve(count);
  const uint8_t* p = payload + kQueryResponseFixed;
  for (uint32_t i = 0; i < count; ++i, p += kQueryResponseStride) {
    out->items.push_back(recommend::Recommendation{
        GetU32(p), GetU32(p + 4), BitsFloat(GetU32(p + 8))});
  }
  out->stats = {};
  return Status::Ok();
}

void AppendErrorFrame(ErrorCode code, std::string_view message,
                      const FrameTag& tag, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  payload.reserve(kErrorFixed + message.size());
  PutU16(static_cast<uint16_t>(code), &payload);
  payload.insert(payload.end(), message.begin(), message.end());
  AppendFrame(MessageType::kError, payload.data(), payload.size(), tag,
              out);
}

void AppendErrorFrame(ErrorCode code, std::string_view message,
                      std::vector<uint8_t>* out) {
  AppendErrorFrame(code, message, FrameTag{}, out);
}

Status DecodeError(const uint8_t* payload, size_t n, ErrorCode* code,
                   std::string* message) {
  if (n < kErrorFixed) {
    return Status::InvalidArgument("error payload too short");
  }
  *code = static_cast<ErrorCode>(GetU16(payload));
  message->assign(reinterpret_cast<const char*>(payload) + kErrorFixed,
                  n - kErrorFixed);
  return Status::Ok();
}

void AppendStatsRequestFrame(const FrameTag& tag,
                             std::vector<uint8_t>* out) {
  AppendFrame(MessageType::kStatsRequest, nullptr, 0, tag, out);
}

void AppendStatsRequestFrame(std::vector<uint8_t>* out) {
  AppendStatsRequestFrame(FrameTag{}, out);
}

Status DecodeStatsRequest(const uint8_t* /*payload*/, size_t n) {
  if (n != 0) {
    return Status::InvalidArgument("stats request payload must be empty");
  }
  return Status::Ok();
}

void AppendStatsResponseFrame(const obs::MetricsSnapshot& snapshot,
                              const FrameTag& tag,
                              std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  PutU32(static_cast<uint32_t>(snapshot.metrics.size()), &payload);
  for (const obs::MetricValue& m : snapshot.metrics) {
    payload.push_back(static_cast<uint8_t>(m.type));
    GEMREC_CHECK(m.name.size() <= 0xFFFF);
    PutU16(static_cast<uint16_t>(m.name.size()), &payload);
    payload.insert(payload.end(), m.name.begin(), m.name.end());
    switch (m.type) {
      case obs::MetricType::kCounter:
        PutU64(m.counter, &payload);
        break;
      case obs::MetricType::kGauge:
        PutU64(static_cast<uint64_t>(m.gauge), &payload);
        break;
      case obs::MetricType::kHistogram: {
        PutU64(m.histogram.count, &payload);
        PutU64(m.histogram.sum, &payload);
        uint16_t nonzero = 0;
        for (const uint64_t b : m.histogram.buckets) {
          if (b != 0) ++nonzero;
        }
        PutU16(nonzero, &payload);
        for (uint32_t i = 0; i < obs::kHistogramBuckets; ++i) {
          if (m.histogram.buckets[i] == 0) continue;
          payload.push_back(static_cast<uint8_t>(i));
          PutU64(m.histogram.buckets[i], &payload);
        }
        break;
      }
    }
  }
  AppendFrame(MessageType::kStatsResponse, payload.data(), payload.size(),
              tag, out);
}

void AppendStatsResponseFrame(const obs::MetricsSnapshot& snapshot,
                              std::vector<uint8_t>* out) {
  AppendStatsResponseFrame(snapshot, FrameTag{}, out);
}

Status DecodeStatsResponse(const uint8_t* payload, size_t n,
                           obs::MetricsSnapshot* out) {
  size_t pos = 0;
  const auto need = [&](size_t bytes) {
    return pos + bytes <= n;
  };
  if (!need(4)) {
    return Status::InvalidArgument("stats response payload too short");
  }
  const uint32_t count = GetU32(payload);
  pos = 4;
  out->metrics.clear();
  out->metrics.reserve(std::min<uint32_t>(count, 1024));
  for (uint32_t i = 0; i < count; ++i) {
    if (!need(3)) {
      return Status::InvalidArgument("stats response truncated metric");
    }
    obs::MetricValue m;
    const uint8_t type = payload[pos];
    if (type < static_cast<uint8_t>(obs::MetricType::kCounter) ||
        type > static_cast<uint8_t>(obs::MetricType::kHistogram)) {
      return Status::InvalidArgument("stats response unknown metric type " +
                                     std::to_string(type));
    }
    m.type = static_cast<obs::MetricType>(type);
    const uint16_t name_len = GetU16(payload + pos + 1);
    pos += 3;
    if (!need(name_len)) {
      return Status::InvalidArgument("stats response truncated name");
    }
    m.name.assign(reinterpret_cast<const char*>(payload) + pos, name_len);
    pos += name_len;
    switch (m.type) {
      case obs::MetricType::kCounter:
        if (!need(8)) {
          return Status::InvalidArgument("stats response truncated counter");
        }
        m.counter = GetU64(payload + pos);
        pos += 8;
        break;
      case obs::MetricType::kGauge:
        if (!need(8)) {
          return Status::InvalidArgument("stats response truncated gauge");
        }
        m.gauge = static_cast<int64_t>(GetU64(payload + pos));
        pos += 8;
        break;
      case obs::MetricType::kHistogram: {
        if (!need(18)) {
          return Status::InvalidArgument(
              "stats response truncated histogram");
        }
        m.histogram.count = GetU64(payload + pos);
        m.histogram.sum = GetU64(payload + pos + 8);
        const uint16_t nonzero = GetU16(payload + pos + 16);
        pos += 18;
        if (nonzero > obs::kHistogramBuckets) {
          return Status::InvalidArgument(
              "stats response histogram bucket count " +
              std::to_string(nonzero) + " exceeds " +
              std::to_string(obs::kHistogramBuckets));
        }
        for (uint16_t b = 0; b < nonzero; ++b) {
          if (!need(9)) {
            return Status::InvalidArgument(
                "stats response truncated bucket");
          }
          const uint8_t index = payload[pos];
          if (index >= obs::kHistogramBuckets) {
            return Status::InvalidArgument(
                "stats response bucket index out of range");
          }
          m.histogram.buckets[index] = GetU64(payload + pos + 1);
          pos += 9;
        }
        break;
      }
    }
    out->metrics.push_back(std::move(m));
  }
  if (pos != n) {
    return Status::InvalidArgument("stats response trailing bytes");
  }
  return Status::Ok();
}

void AppendAttendanceFrame(ebsn::UserId user, ebsn::EventId event,
                           bool new_user, const FrameTag& tag,
                           std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  payload.reserve(kAttendancePayload);
  PutU32(user, &payload);
  PutU32(event, &payload);
  payload.push_back(new_user ? kAttendanceFlagNewUser : 0);
  AppendFrame(MessageType::kAttendance, payload.data(), payload.size(),
              tag, out);
}

void AppendAttendanceFrame(ebsn::UserId user, ebsn::EventId event,
                           bool new_user, std::vector<uint8_t>* out) {
  AppendAttendanceFrame(user, event, new_user, FrameTag{}, out);
}

Status DecodeAttendance(const uint8_t* payload, size_t n,
                        serving::IngestRecord* out) {
  if (n != kAttendancePayload) {
    return Status::InvalidArgument("attendance payload must be " +
                                   std::to_string(kAttendancePayload) +
                                   " bytes, got " + std::to_string(n));
  }
  const uint8_t flags = payload[8];
  if ((flags & ~kAttendanceFlagNewUser) != 0) {
    return Status::InvalidArgument("unknown attendance flags");
  }
  *out = serving::IngestRecord{};
  out->kind = serving::IngestKind::kAttendance;
  out->user = GetU32(payload);
  out->event = GetU32(payload + 4);
  out->new_user = (flags & kAttendanceFlagNewUser) != 0;
  return Status::Ok();
}

void AppendNewEventFrame(ebsn::EventId event,
                         const embedding::NewEventSignals& signals,
                         const FrameTag& tag, std::vector<uint8_t>* out) {
  GEMREC_CHECK(signals.words.size() <= kMaxIngestWords)
      << "new event carries " << signals.words.size() << " words";
  std::vector<uint8_t> payload;
  payload.reserve(kNewEventFixed + kNewEventWordStride * signals.words.size());
  PutU32(event, &payload);
  PutU32(signals.region, &payload);
  PutU64(static_cast<uint64_t>(signals.start_time), &payload);
  PutU32(static_cast<uint32_t>(signals.words.size()), &payload);
  for (const auto& [word, weight] : signals.words) {
    PutU32(word, &payload);
    PutU32(FloatBits(weight), &payload);
  }
  AppendFrame(MessageType::kNewEvent, payload.data(), payload.size(), tag,
              out);
}

void AppendNewEventFrame(ebsn::EventId event,
                         const embedding::NewEventSignals& signals,
                         std::vector<uint8_t>* out) {
  AppendNewEventFrame(event, signals, FrameTag{}, out);
}

Status DecodeNewEvent(const uint8_t* payload, size_t n,
                      serving::IngestRecord* out) {
  if (n < kNewEventFixed) {
    return Status::InvalidArgument("new event payload too short");
  }
  const uint32_t count = GetU32(payload + 16);
  if (count > kMaxIngestWords) {
    return Status::InvalidArgument(
        "new event word count " + std::to_string(count) + " exceeds " +
        std::to_string(kMaxIngestWords));
  }
  if (n != kNewEventFixed + kNewEventWordStride * size_t{count}) {
    return Status::InvalidArgument("new event payload length mismatch");
  }
  *out = serving::IngestRecord{};
  out->kind = serving::IngestKind::kNewEvent;
  out->event = GetU32(payload);
  out->signals.region = GetU32(payload + 4);
  out->signals.start_time = static_cast<int64_t>(GetU64(payload + 8));
  out->signals.words.reserve(count);
  const uint8_t* p = payload + kNewEventFixed;
  for (uint32_t i = 0; i < count; ++i, p += kNewEventWordStride) {
    out->signals.words.emplace_back(GetU32(p), BitsFloat(GetU32(p + 4)));
  }
  return Status::Ok();
}

void AppendIngestAckFrame(uint64_t seq, const FrameTag& tag,
                          std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  payload.reserve(kIngestAckPayload);
  PutU64(seq, &payload);
  AppendFrame(MessageType::kIngestAck, payload.data(), payload.size(), tag,
              out);
}

void AppendIngestAckFrame(uint64_t seq, std::vector<uint8_t>* out) {
  AppendIngestAckFrame(seq, FrameTag{}, out);
}

Status DecodeIngestAck(const uint8_t* payload, size_t n, uint64_t* seq) {
  if (n != kIngestAckPayload) {
    return Status::InvalidArgument("ingest ack payload must be " +
                                   std::to_string(kIngestAckPayload) +
                                   " bytes, got " + std::to_string(n));
  }
  *seq = GetU64(payload);
  return Status::Ok();
}

Status FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (!error_.ok()) return error_;
  buffer_.insert(buffer_.end(), data, data + n);
  error_ = Parse();
  return error_;
}

bool FrameDecoder::Next(Frame* out) {
  if (frames_.empty()) return false;
  *out = std::move(frames_.front());
  frames_.pop_front();
  return true;
}

Status FrameDecoder::Parse() {
  while (true) {
    const size_t avail = buffer_.size() - pos_;
    if (avail < kHeaderSize) break;
    const uint8_t* header = buffer_.data() + pos_;
    // Validate the header the moment it is complete — a corrupted
    // length field must not make the decoder wait for megabytes that
    // will never come.
    if (GetU32(header) != kMagic) {
      return Status::InvalidArgument("bad frame magic");
    }
    if (header[4] != kWireVersionV1 && header[4] != kWireVersion) {
      return Status::InvalidArgument("unsupported wire version " +
                                     std::to_string(header[4]));
    }
    const bool tagged = header[4] == kWireVersion;
    if (GetU16(header + 6) != 0) {
      return Status::InvalidArgument("nonzero reserved header bytes");
    }
    const uint32_t payload_size = GetU32(header + 8);
    if (payload_size > kMaxPayload) {
      return Status::InvalidArgument(
          "frame payload " + std::to_string(payload_size) +
          " exceeds limit " + std::to_string(kMaxPayload));
    }
    const size_t header_size = tagged ? kTaggedHeaderSize : kHeaderSize;
    const size_t total = header_size + payload_size + kTrailerSize;
    if (avail < total) break;
    const uint32_t want = Crc32c(header, header_size + payload_size);
    const uint32_t got = GetU32(header + header_size + payload_size);
    if (want != got) {
      return Status::InvalidArgument("frame CRC mismatch");
    }
    Frame frame;
    frame.type = static_cast<MessageType>(header[5]);
    frame.tagged = tagged;
    if (tagged) frame.frame_id = GetU64(header + kHeaderSize);
    frame.payload.assign(header + header_size,
                         header + header_size + payload_size);
    frames_.push_back(std::move(frame));
    pos_ += total;
  }
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > (64u << 10))) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return Status::Ok();
}

}  // namespace gemrec::net
