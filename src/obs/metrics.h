#ifndef GEMREC_OBS_METRICS_H_
#define GEMREC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gemrec::obs {

/// Metric kinds of the registry, mirroring the Prometheus data model:
/// counters only ever go up, gauges move both ways, histograms bucket
/// a value distribution (here: latencies in microseconds).
enum class MetricType : uint8_t {
  kCounter = 1,
  kGauge = 2,
  kHistogram = 3,
};

const char* MetricTypeName(MetricType type);

/// Stripe count for write-heavy metrics. Writers pick a stripe by a
/// thread-local round-robin token, so two threads hammering the same
/// counter (the TA hot loop, the epoll thread) land on different
/// cachelines and never contend on one atomic.
inline constexpr size_t kMetricStripes = 8;

/// Fixed log-spaced (power-of-two) histogram layout: bucket 0 holds
/// the value 0 and bucket i >= 1 holds values in [2^(i-1), 2^i - 1]
/// (the last bucket also absorbs everything above its lower bound).
/// 64 buckets cover the whole uint64 range, so recording never needs
/// a range check or a reconfiguration.
inline constexpr size_t kHistogramBuckets = 64;

/// Bucket index for a recorded value (== bit width of the value).
uint32_t HistogramBucketIndex(uint64_t value);

/// Inclusive upper bound of a bucket (0 for bucket 0, 2^i - 1 else).
uint64_t HistogramBucketUpperBound(uint32_t index);

/// Merged, plain-value view of one histogram — what snapshots carry,
/// what travels in kStatsResponse frames, and what percentiles are
/// computed from.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Nearest-rank percentile with linear interpolation inside the
  /// containing bucket; p in [0, 1]. Returns 0 for an empty histogram.
  double Percentile(double p) const;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// Element-wise difference (this - before): turns two cumulative
  /// snapshots into the distribution of one measurement window.
  HistogramData MinusBaseline(const HistogramData& before) const;
};

/// Monotonic counter, lock-free on the write path (striped relaxed
/// atomics, summed on read). Value() is weakly consistent: concurrent
/// increments may or may not be included, but nothing is ever lost.
class Counter {
 public:
  void Increment(uint64_t n = 1);
  uint64_t Value() const;

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Instantaneous level (queue depth, open connections). A single
/// relaxed atomic — gauges support Set, which cannot stripe, and none
/// of ours is written anywhere near the rates counters see.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram, lock-free on the write path: one
/// Record is two relaxed fetch_adds plus a bucket bump on the caller's
/// stripe. Snapshot() merges stripes with relaxed loads — weakly
/// consistent by design (a concurrent Record may land in count before
/// its bucket or vice versa), which monitoring tolerates and the hot
/// path must not pay fences for.
class Histogram {
 public:
  void Record(uint64_t value);
  HistogramData Snapshot() const;

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// One metric's merged values at snapshot time.
struct MetricValue {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  uint64_t counter = 0;    // valid for kCounter
  int64_t gauge = 0;       // valid for kGauge
  HistogramData histogram; // valid for kHistogram
};

/// Point-in-time view of every registered metric, in registration
/// order (which the text exposition format preserves).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// Lookup by exposition name; nullptr when absent.
  const MetricValue* Find(std::string_view name) const;
};

/// Process-wide-style registry of named metrics. Registration
/// (GetCounter/GetGauge/GetHistogram) takes a mutex and is meant for
/// startup; the returned pointers are stable for the registry's
/// lifetime and their write paths are lock-free. Re-registering an
/// existing name returns the existing metric (so a restarted
/// NetServer re-attaches to its service's counters instead of
/// colliding); asking for a different type under the same name is a
/// programming error.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name,
                          std::string_view help = "");

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(std::string_view name, std::string_view help,
                     MetricType type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
  std::unordered_map<std::string_view, Entry*> index_;
};

}  // namespace gemrec::obs

#endif  // GEMREC_OBS_METRICS_H_
