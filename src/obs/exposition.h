#ifndef GEMREC_OBS_EXPOSITION_H_
#define GEMREC_OBS_EXPOSITION_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace gemrec::obs {

/// Renders a snapshot in the Prometheus text exposition format, one
/// `name{label} value` line per sample, in registration order:
///
///   # HELP gemrec_service_queries_total Queries served.
///   # TYPE gemrec_service_queries_total counter
///   gemrec_service_queries_total 123
///   # TYPE gemrec_net_round_trip_us histogram
///   gemrec_net_round_trip_us_bucket{le="1"} 0
///   gemrec_net_round_trip_us_bucket{le="+Inf"} 9
///   gemrec_net_round_trip_us_sum 4031
///   gemrec_net_round_trip_us_count 9
///
/// Histogram buckets are cumulative (Prometheus `le` semantics) and
/// empty trailing buckets are elided; the `+Inf` bucket always closes
/// the series. The format is byte-locked by
/// tests/obs/exposition_test.cc — change it deliberately.
std::string RenderText(const MetricsSnapshot& snapshot);

/// Nearest-rank percentile of an ascending-sorted sample vector:
/// the smallest element with at least ceil(p * n) samples at or below
/// it. Unlike the old `samples[p * n]` indexing this never over-reads
/// the distribution (p50 of {a, b} is a, not b) and never indexes one
/// past the end for p = 1. Returns 0 for an empty vector.
double SamplePercentile(const std::vector<double>& sorted_samples,
                        double p);

}  // namespace gemrec::obs

#endif  // GEMREC_OBS_EXPOSITION_H_
