#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace gemrec::obs {
namespace {

/// Round-robin stripe assignment: each thread grabs one token the
/// first time it touches any striped metric and keeps it for life.
/// Cheaper and better-spread than hashing std::thread::id.
uint32_t ThisThreadStripe() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

}  // namespace

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

uint32_t HistogramBucketIndex(uint64_t value) {
  return std::min<uint32_t>(kHistogramBuckets - 1,
                            static_cast<uint32_t>(std::bit_width(value)));
}

uint64_t HistogramBucketUpperBound(uint32_t index) {
  if (index == 0) return 0;
  if (index >= 64) return ~uint64_t{0};
  return (uint64_t{1} << index) - 1;
}

double HistogramData::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest rank: the smallest value with at least ceil(p * count)
  // observations at or below it — the same convention the sample
  // percentile helper uses, so client- and server-side numbers agree.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] < rank) {
      cumulative += buckets[i];
      continue;
    }
    // Interpolate linearly inside the containing bucket.
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
    const double upper = static_cast<double>(HistogramBucketUpperBound(i));
    const double within =
        static_cast<double>(rank - cumulative) /
        static_cast<double>(buckets[i]);
    return lower + (upper - lower) * within;
  }
  return static_cast<double>(HistogramBucketUpperBound(kHistogramBuckets - 1));
}

HistogramData HistogramData::MinusBaseline(
    const HistogramData& before) const {
  HistogramData d;
  d.count = count - std::min(count, before.count);
  d.sum = sum - std::min(sum, before.sum);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] = buckets[i] - std::min(buckets[i], before.buckets[i]);
  }
  return d;
}

void Counter::Increment(uint64_t n) {
  stripes_[ThisThreadStripe()].value.fetch_add(n,
                                               std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Record(uint64_t value) {
  Stripe& stripe = stripes_[ThisThreadStripe()];
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(value, std::memory_order_relaxed);
  stripe.buckets[HistogramBucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  for (const Stripe& stripe : stripes_) {
    data.count += stripe.count.load(std::memory_order_relaxed);
    data.sum += stripe.sum.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      data.buckets[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return data;
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(
    std::string_view name, std::string_view help, MetricType type) {
  GEMREC_CHECK(!name.empty());
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(name); it != index_.end()) {
    GEMREC_CHECK(it->second->type == type)
        << "metric '" << it->second->name << "' registered as "
        << MetricTypeName(it->second->type) << ", requested as "
        << MetricTypeName(type);
    return it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name.assign(name);
  entry->help.assign(help);
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  index_.emplace(raw->name, raw);  // key views the entry's own string
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  return GetOrCreate(name, help, MetricType::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  return GetOrCreate(name, help, MetricType::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  return GetOrCreate(name, help, MetricType::kHistogram)->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricValue value;
    value.name = entry->name;
    value.help = entry->help;
    value.type = entry->type;
    switch (entry->type) {
      case MetricType::kCounter:
        value.counter = entry->counter->Value();
        break;
      case MetricType::kGauge:
        value.gauge = entry->gauge->Value();
        break;
      case MetricType::kHistogram:
        value.histogram = entry->histogram->Snapshot();
        break;
    }
    snapshot.metrics.push_back(std::move(value));
  }
  return snapshot;
}

}  // namespace gemrec::obs
