#include "obs/exposition.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gemrec::obs {
namespace {

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

void RenderHistogram(const MetricValue& m, std::string* out) {
  const HistogramData& h = m.histogram;
  // Highest nonzero bucket bounds the series; a fully-empty histogram
  // still emits the +Inf bucket so scrapers see a well-formed series.
  uint32_t last = 0;
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    if (h.buckets[i] != 0) last = i;
  }
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i <= last && h.count > 0; ++i) {
    cumulative += h.buckets[i];
    out->append(m.name);
    out->append("_bucket{le=\"");
    AppendU64(HistogramBucketUpperBound(i), out);
    out->append("\"} ");
    AppendU64(cumulative, out);
    out->push_back('\n');
  }
  out->append(m.name);
  out->append("_bucket{le=\"+Inf\"} ");
  AppendU64(h.count, out);
  out->push_back('\n');
  out->append(m.name);
  out->append("_sum ");
  AppendU64(h.sum, out);
  out->push_back('\n');
  out->append(m.name);
  out->append("_count ");
  AppendU64(h.count, out);
  out->push_back('\n');
}

}  // namespace

std::string RenderText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricValue& m : snapshot.metrics) {
    if (!m.help.empty()) {
      out.append("# HELP ");
      out.append(m.name);
      out.push_back(' ');
      out.append(m.help);
      out.push_back('\n');
    }
    out.append("# TYPE ");
    out.append(m.name);
    out.push_back(' ');
    out.append(MetricTypeName(m.type));
    out.push_back('\n');
    switch (m.type) {
      case MetricType::kCounter:
        out.append(m.name);
        out.push_back(' ');
        AppendU64(m.counter, &out);
        out.push_back('\n');
        break;
      case MetricType::kGauge:
        out.append(m.name);
        out.push_back(' ');
        AppendI64(m.gauge, &out);
        out.push_back('\n');
        break;
      case MetricType::kHistogram:
        RenderHistogram(m, &out);
        break;
    }
  }
  return out;
}

double SamplePercentile(const std::vector<double>& sorted_samples,
                        double p) {
  if (sorted_samples.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const size_t n = sorted_samples.size();
  const size_t rank = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(p * static_cast<double>(n))));
  return sorted_samples[std::min(n, rank) - 1];
}

}  // namespace gemrec::obs
