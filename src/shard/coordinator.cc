#include "shard/coordinator.h"

#include <string>
#include <utility>

namespace gemrec::shard {

CoordinatorBackend::CoordinatorBackend(std::vector<ShardEndpoint> shards,
                                       const CoordinatorOptions& options)
    : registry_(std::make_unique<obs::MetricsRegistry>()),
      router_(std::make_unique<ShardRouter>(std::move(shards),
                                            options.router,
                                            registry_.get())) {}

CoordinatorBackend::~CoordinatorBackend() { Stop(); }

Status CoordinatorBackend::Start() { return router_->Start(); }

void CoordinatorBackend::Stop() { router_->Stop(); }

void CoordinatorBackend::SubmitAsync(const serving::QueryRequest& request,
                                     ResponseCallback callback) {
  router_->SubmitQuery(request, std::move(callback));
}

size_t CoordinatorBackend::QueueDepth() const {
  return router_->QueueDepth();
}

size_t CoordinatorBackend::InFlight() const { return router_->InFlight(); }

obs::MetricsRegistry* CoordinatorBackend::metrics() const {
  return registry_.get();
}

void CoordinatorBackend::StatsAsync(StatsCallback callback) {
  // Own counters first (registration order preserved), then each
  // reachable shard's rollup with a {shard="i"} label suffix — merged
  // into ONE snapshot so the existing kStatsResponse codec (which
  // carries arbitrary metric names) ships the whole tier in one frame.
  obs::MetricsSnapshot own = registry_->Snapshot();
  router_->SubmitStats(
      [own = std::move(own), callback = std::move(callback)](
          std::vector<std::optional<obs::MetricsSnapshot>> shards) mutable {
        obs::MetricsSnapshot merged = std::move(own);
        for (size_t i = 0; i < shards.size(); ++i) {
          if (!shards[i].has_value()) continue;
          const std::string suffix =
              "{shard=\"" + std::to_string(i) + "\"}";
          for (obs::MetricValue& metric : shards[i]->metrics) {
            metric.name += suffix;
            merged.metrics.push_back(std::move(metric));
          }
        }
        callback(std::move(merged));
      });
}

}  // namespace gemrec::shard
