#include "shard/merger.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gemrec::shard {

MergeResult MergeTopK(const std::vector<ShardAnswer>& answers, size_t n) {
  MergeResult result;
  constexpr float kInf = std::numeric_limits<float>::infinity();

  // max over replying shards' unreturned bounds; -inf when every
  // replying shard exhausted its slice. `bound_known` drops to false
  // on a +inf bound (a legacy peer that sent no threshold).
  float max_shard_bound = -kInf;
  bool bound_known = true;
  size_t collected = 0;
  for (const ShardAnswer& answer : answers) {
    result.overloaded = result.overloaded || answer.overloaded;
    if (!answer.ok) {
      result.partial = true;
      continue;
    }
    result.epoch = std::max(result.epoch, answer.epoch);
    collected += answer.items.size();
    if (answer.ta_bound == kInf) bound_known = false;
    max_shard_bound = std::max(max_shard_bound, answer.ta_bound);
    result.items.insert(result.items.end(), answer.items.begin(),
                        answer.items.end());
  }

  // Deterministic global order: score descending, ties by (event,
  // partner) ascending — so N-shard merges reproduce the
  // single-instance ranking bit-for-bit whenever scores are distinct,
  // and reproducibly otherwise.
  std::sort(result.items.begin(), result.items.end(),
            [](const recommend::Recommendation& a,
               const recommend::Recommendation& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.event != b.event) return a.event < b.event;
              return a.partner < b.partner;
            });
  if (result.items.size() > n) result.items.resize(n);

  // Everything absent from `items` is either unreturned by its owning
  // shard (<= that shard's bound) or was dropped here (<= the merged
  // k-th score, which only matters when the merge actually dropped
  // something).
  const bool dropped = collected > result.items.size();
  const float kth =
      result.items.size() == n && n > 0 ? result.items.back().score : -kInf;
  if (result.partial || !bound_known) {
    result.ta_bound = kInf;
  } else {
    result.ta_bound = std::max(max_shard_bound, dropped ? kth : -kInf);
  }

  // Completeness certificate: full replies + known bounds. The
  // threshold-merge inequality kth >= max_shard_bound holds by
  // construction for full replies (each shard's bound is at most its
  // own n-th returned score); assert it rather than silently trusting
  // the algebra. Short merges (fewer than n items total) are complete
  // trivially — nothing was left anywhere.
  if (!result.partial && bound_known) {
    if (result.items.size() < n) {
      result.certified = true;
    } else {
      GEMREC_DCHECK(!(kth < max_shard_bound))
          << "threshold-merge soundness violated: merged k-th " << kth
          << " < shard bound " << max_shard_bound;
      result.certified = !(kth < max_shard_bound);
    }
  }
  return result;
}

}  // namespace gemrec::shard
