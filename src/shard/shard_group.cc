#include "shard/shard_group.h"

#include <utility>

#include "common/logging.h"

namespace gemrec::shard {

ShardGroup::ShardGroup(const embedding::EmbeddingStore& store,
                       std::vector<ebsn::EventId> events,
                       uint32_t num_users,
                       const ShardGroupOptions& options)
    : store_(store),
      events_(std::move(events)),
      num_users_(num_users),
      options_(options) {
  GEMREC_CHECK(options_.num_shards >= 1);
  stacks_.resize(options_.num_shards);
}

ShardGroup::~ShardGroup() { Stop(); }

Status ShardGroup::Start() {
  GEMREC_CHECK(!started_) << "ShardGroup started twice";
  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    GEMREC_RETURN_IF_ERROR(StartShard(i, options_.server.port));
  }
  started_ = true;
  return Status::Ok();
}

Status ShardGroup::StartShard(uint32_t index, uint16_t port) {
  Stack& stack = stacks_[index];
  serving::SnapshotOptions snapshot_options = options_.snapshot;
  snapshot_options.shard = ShardSpec{index, options_.num_shards};
  auto snapshot = std::make_shared<serving::ModelSnapshot>(
      store_, events_, num_users_, snapshot_options);
  stack.service =
      std::make_unique<serving::RecommendationService>(options_.service);
  stack.service->Publish(std::move(snapshot));
  net::ServerOptions server_options = options_.server;
  server_options.port = port;
  stack.server = std::make_unique<net::NetServer>(stack.service.get(),
                                                  server_options);
  const Status started = stack.server->Start();
  if (!started.ok()) {
    stack.server.reset();
    stack.service.reset();
    return started;
  }
  stack.port = stack.server->port();
  return Status::Ok();
}

void ShardGroup::Stop() {
  for (uint32_t i = 0; i < stacks_.size(); ++i) StopShard(i);
  started_ = false;
}

void ShardGroup::StopShard(uint32_t index) {
  Stack& stack = stacks_[index];
  // Server before service: the server still submits into the service
  // until its reactors have drained.
  stack.server.reset();
  if (stack.service) stack.service->Shutdown();
  stack.service.reset();
}

Status ShardGroup::RestartShard(uint32_t index) {
  GEMREC_CHECK(started_);
  const uint16_t port = stacks_[index].port;
  GEMREC_CHECK(port != 0) << "shard " << index << " never started";
  StopShard(index);
  // Rebind the SAME port (ServerOptions::bind_retries rides out a
  // TIME_WAIT remnant) so a coordinator's fixed-endpoint breaker
  // re-probe reconnects without reconfiguration.
  return StartShard(index, port);
}

std::vector<ShardEndpoint> ShardGroup::endpoints() const {
  std::vector<ShardEndpoint> out;
  out.reserve(stacks_.size());
  for (const Stack& stack : stacks_) {
    out.push_back(
        ShardEndpoint{options_.server.listen_address, stack.port});
  }
  return out;
}

uint16_t ShardGroup::port(uint32_t index) const {
  return stacks_[index].port;
}

}  // namespace gemrec::shard
