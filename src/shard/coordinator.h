#ifndef GEMREC_SHARD_COORDINATOR_H_
#define GEMREC_SHARD_COORDINATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "serving/query_backend.h"
#include "shard/shard_router.h"

namespace gemrec::shard {

struct CoordinatorOptions {
  RouterOptions router;
};

/// The scatter-gather serving tier's QueryBackend: plugs a ShardRouter
/// into the unmodified NetServer front-end, so `gemrec coordinate`
/// speaks the exact same wire protocol as `gemrec serve` — clients
/// cannot tell the difference except for the v2 partial flag when a
/// shard is degraded.
///
/// Queries fan out over the shards and come back merged (merger.h);
/// kStatsRequest answers are the coordinator's own registry (fan-out
/// counters, breaker state, per-shard RPC histograms) plus every
/// reachable shard's snapshot with a {shard="i"} suffix appended to
/// each metric name — one scrape sees the whole tier. Stats ride the
/// async StatsAsync path, so they are answered even while the
/// front-end drains.
class CoordinatorBackend : public serving::QueryBackend {
 public:
  explicit CoordinatorBackend(std::vector<ShardEndpoint> shards,
                              const CoordinatorOptions& options = {});
  ~CoordinatorBackend() override;

  /// Connects the router to the shards (breaker-open for unreachable
  /// ones; error only when none answers) and starts its thread.
  Status Start();

  /// Stops the router: pending queries complete rejected. Idempotent.
  void Stop();

  void SubmitAsync(const serving::QueryRequest& request,
                   ResponseCallback callback) override;
  size_t QueueDepth() const override;
  size_t InFlight() const override;
  obs::MetricsRegistry* metrics() const override;
  void StatsAsync(StatsCallback callback) override;

  size_t num_shards() const { return router_->num_shards(); }

 private:
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<ShardRouter> router_;
};

}  // namespace gemrec::shard

#endif  // GEMREC_SHARD_COORDINATOR_H_
