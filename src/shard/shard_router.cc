#include "shard/shard_router.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "net/server.h"

namespace gemrec::shard {
namespace {

/// Failed-slot answer for shard `index` (slice missing from the merge).
ShardAnswer FailedAnswer(uint32_t index) {
  ShardAnswer answer;
  answer.shard = index;
  answer.ok = false;
  return answer;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us < 0 ? 0 : static_cast<uint64_t>(us);
}

}  // namespace

Status ParseShardEndpoints(const std::string& spec,
                           std::vector<ShardEndpoint>* out) {
  out->clear();
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t comma = spec.find(',', begin);
    if (comma == std::string::npos) comma = spec.size();
    const std::string piece = spec.substr(begin, comma - begin);
    if (piece.empty()) {
      return Status::InvalidArgument("empty shard endpoint in '" + spec +
                                     "'");
    }
    ShardEndpoint endpoint;
    GEMREC_RETURN_IF_ERROR(
        net::ParseHostPort(piece, &endpoint.host, &endpoint.port));
    out->push_back(std::move(endpoint));
    begin = comma + 1;
  }
  if (out->empty()) {
    return Status::InvalidArgument("no shard endpoints in '" + spec + "'");
  }
  return Status::Ok();
}

ShardRouter::ShardRouter(std::vector<ShardEndpoint> shards,
                         const RouterOptions& options,
                         obs::MetricsRegistry* registry)
    : options_(options), registry_(registry) {
  GEMREC_CHECK(!shards.empty()) << "router needs at least one shard";
  GEMREC_CHECK(registry_ != nullptr);
  options_.breaker_threshold = std::max(1u, options_.breaker_threshold);
  if (options_.breaker_backoff.count() <= 0) {
    options_.breaker_backoff = std::chrono::milliseconds(1);
  }
  shards_.reserve(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    ShardState state;
    state.endpoint = std::move(shards[i]);
    state.backoff = options_.breaker_backoff;
    state.rpc_us = registry_->GetHistogram(
        "gemrec_shard_rpc_us{shard=\"" + std::to_string(i) + "\"}",
        "Coordinator-observed per-shard RPC latency (send to decoded "
        "reply), microseconds.");
    shards_.push_back(std::move(state));
  }
  queries_total_ = registry_->GetCounter(
      "gemrec_shard_queries_total",
      "Queries fanned out by the shard coordinator.");
  partial_results_total_ = registry_->GetCounter(
      "gemrec_shard_partial_results_total",
      "Merged responses missing at least one shard's slice (deadline "
      "miss, breaker-open or dead shard).");
  shard_bad_requests_total_ = registry_->GetCounter(
      "gemrec_shard_bad_requests_total",
      "Shard replies that were typed kBadRequest — usually a legacy "
      "shard rejecting a query kind it predates; the merge degrades "
      "to a typed partial.");
  deadline_misses_total_ = registry_->GetCounter(
      "gemrec_shard_deadline_misses_total",
      "Per-shard answers that missed the coordinator's shard_deadline.");
  evictions_total_ = registry_->GetCounter(
      "gemrec_shard_evictions_total",
      "Breaker openings: shard connections dropped after consecutive "
      "failures.");
  reconnects_total_ = registry_->GetCounter(
      "gemrec_shard_reconnects_total",
      "Successful breaker re-probes (shard connections re-established).");
}

ShardRouter::~ShardRouter() { Stop(); }

Status ShardRouter::Start() {
  GEMREC_CHECK(!started_) << "ShardRouter started twice";
  const auto now = std::chrono::steady_clock::now();
  size_t connected = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = shards_[i];
    auto client = net::Client::Connect(shard.endpoint.host,
                                       shard.endpoint.port, options_.client);
    if (client.ok()) {
      shard.client = std::move(client).value();
      ++connected;
    } else {
      GEMREC_LOG(Warning) << "shard " << i << " ("
                          << shard.endpoint.host << ":"
                          << shard.endpoint.port
                          << ") unreachable at startup: "
                          << client.status().message()
                          << "; breaker open, will re-probe";
      shard.evicted = true;
      shard.consecutive_failures = options_.breaker_threshold;
      shard.reprobe_at = now + shard.backoff;
    }
  }
  if (connected == 0) {
    return Status::IoError("no shard reachable at startup");
  }
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].client) RegisterClientFd(i);
  }
  thread_ = std::thread([this] { Loop(); });
  started_ = true;
  return Status::Ok();
}

void ShardRouter::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(inbox_.mu);
    if (inbox_.closed) return;
    inbox_.closed = true;
  }
  loop_.Wakeup();
  if (thread_.joinable()) thread_.join();
}

void ShardRouter::SubmitQuery(const serving::QueryRequest& request,
                              QueryCallback callback) {
  {
    std::lock_guard<std::mutex> lock(inbox_.mu);
    if (!inbox_.closed) {
      inbox_.queries.emplace_back(request, std::move(callback));
      loop_.Wakeup();
      return;
    }
  }
  serving::QueryResponse response;
  response.rejected = true;
  callback(std::move(response));
}

void ShardRouter::SubmitStats(StatsCallback callback) {
  {
    std::lock_guard<std::mutex> lock(inbox_.mu);
    if (!inbox_.closed) {
      inbox_.stats.push_back(std::move(callback));
      loop_.Wakeup();
      return;
    }
  }
  callback(std::vector<std::optional<obs::MetricsSnapshot>>(
      shards_.size(), std::nullopt));
}

size_t ShardRouter::QueueDepth() const {
  auto* self = const_cast<ShardRouter*>(this);
  std::lock_guard<std::mutex> lock(self->inbox_.mu);
  return inbox_.queries.size() + inbox_.stats.size();
}

size_t ShardRouter::InFlight() const {
  return in_flight_.load(std::memory_order_relaxed);
}

void ShardRouter::RegisterClientFd(uint32_t index) {
  // Tag = shard index + 1 (kWakeupTag occupies 0).
  loop_.Add(shards_[index].client->fd(), EPOLLIN,
            static_cast<uint64_t>(index) + 1);
}

void ShardRouter::UnregisterClientFd(uint32_t index) {
  loop_.Del(shards_[index].client->fd());
}

void ShardRouter::Loop() {
  std::vector<epoll_event> events;
  bool stopping = false;
  while (true) {
    auto now = std::chrono::steady_clock::now();
    loop_.Poll(NextTimeoutMs(now), &events);
    now = std::chrono::steady_clock::now();
    for (const epoll_event& ev : events) {
      if (ev.data.u64 == net::EventLoop::kWakeupTag) {
        loop_.DrainWakeup();
        continue;
      }
      const auto index = static_cast<uint32_t>(ev.data.u64 - 1);
      // A stale event for a connection evicted earlier this batch:
      // the fd is gone from the epoll set, but the event array may
      // still carry it.
      if (index >= shards_.size() || !shards_[index].client) continue;
      DrainShard(index, now);
    }
    DrainInbox(now);
    SweepDeadlines(now);
    SweepReprobes(now);
    {
      std::lock_guard<std::mutex> lock(inbox_.mu);
      stopping = inbox_.closed && inbox_.queries.empty() &&
                 inbox_.stats.empty();
    }
    if (stopping) break;
  }
  // Shutdown: every pending query gets a typed rejection (the reactor
  // maps rejected -> SHUTTING_DOWN), every stats fan-out completes
  // with what it has.
  finished_.clear();
  for (auto& [id, query] : pending_) {
    serving::QueryResponse response;
    response.rejected = true;
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    query.callback(std::move(response));
  }
  pending_.clear();
  for (auto& [id, stats] : pending_stats_) {
    stats.callback(std::move(stats.snapshots));
  }
  pending_stats_.clear();
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].client) {
      UnregisterClientFd(i);
      shards_[i].client.reset();
    }
  }
}

void ShardRouter::DrainInbox(std::chrono::steady_clock::time_point now) {
  std::vector<std::pair<serving::QueryRequest, QueryCallback>> queries;
  std::vector<StatsCallback> stats;
  {
    std::lock_guard<std::mutex> lock(inbox_.mu);
    queries.swap(inbox_.queries);
    stats.swap(inbox_.stats);
  }
  for (auto& [request, callback] : queries) {
    DispatchQuery(std::move(request), std::move(callback), now);
  }
  for (auto& callback : stats) {
    DispatchStats(std::move(callback), now);
  }
}

void ShardRouter::DispatchQuery(serving::QueryRequest request,
                                QueryCallback callback,
                                std::chrono::steady_clock::time_point now) {
  queries_total_->Increment();
  const uint64_t id = next_id_++;
  PendingQuery query;
  query.request = request;
  query.callback = std::move(callback);
  query.answers.resize(shards_.size());
  query.waiting.assign(shards_.size(), 0);
  query.sent_at.resize(shards_.size());
  query.deadline.resize(shards_.size());

  for (uint32_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = shards_[i];
    query.answers[i] = FailedAnswer(i);
    if (!shard.client) continue;  // breaker open: slice missing
    const Status sent = shard.client->SendTagged(request, id);
    if (!sent.ok()) {
      StrikeShard(i, /*connection_broken=*/true, now);
      continue;
    }
    query.waiting[i] = 1;
    query.sent_at[i] = now;
    query.deadline[i] = now + options_.shard_deadline;
    ++query.outstanding;
  }

  if (query.outstanding == 0) {
    // Every shard down: degrade immediately to an (empty) typed
    // partial result rather than erroring — stats/answers from zero
    // shards is still an answer, and the breaker re-probes recover.
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    CompleteQuery(id, std::move(query));
    return;
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  pending_.emplace(id, std::move(query));
}

void ShardRouter::DispatchStats(StatsCallback callback,
                                std::chrono::steady_clock::time_point now) {
  const uint64_t id = next_id_++;
  PendingStats stats;
  stats.callback = std::move(callback);
  stats.snapshots.assign(shards_.size(), std::nullopt);
  stats.waiting.assign(shards_.size(), 0);
  stats.deadline.resize(shards_.size());

  for (uint32_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = shards_[i];
    if (!shard.client) continue;
    const Status sent = shard.client->SendStatsRequest(id);
    if (!sent.ok()) {
      StrikeShard(i, /*connection_broken=*/true, now);
      continue;
    }
    stats.waiting[i] = 1;
    stats.deadline[i] = now + options_.shard_deadline;
    ++stats.outstanding;
  }

  if (stats.outstanding == 0) {
    stats.callback(std::move(stats.snapshots));
    return;
  }
  pending_stats_.emplace(id, std::move(stats));
}

void ShardRouter::DrainShard(uint32_t index,
                             std::chrono::steady_clock::time_point now) {
  ShardState& shard = shards_[index];
  while (shard.client) {
    auto reply = shard.client->ReceiveAny(std::chrono::milliseconds(0));
    if (!reply.ok()) {
      if (reply.status().code() == StatusCode::kTimeout) break;
      // Transport failure (peer closed, protocol violation): the
      // connection is unusable regardless of the strike count.
      GEMREC_LOG(Warning) << "shard " << index << " connection error: "
                          << reply.status().message();
      StrikeShard(index, /*connection_broken=*/true, now);
      break;
    }
    HandleReply(index, std::move(reply).value(), now);
  }
  CompleteFinished();
}

void ShardRouter::HandleReply(uint32_t index, net::TaggedReply reply,
                              std::chrono::steady_clock::time_point now) {
  ShardState& shard = shards_[index];
  // Any decoded reply proves the shard alive and keeps the breaker
  // closed — even a typed error (an OVERLOADED shard is healthy, just
  // shedding).
  shard.consecutive_failures = 0;

  auto query_it = pending_.find(reply.frame_id);
  if (query_it != pending_.end()) {
    PendingQuery& query = query_it->second;
    if (!query.waiting[index]) return;  // duplicate/stale; drop
    query.waiting[index] = 0;
    --query.outstanding;
    shard.rpc_us->Record(ElapsedUs(query.sent_at[index], now));
    ShardAnswer& answer = query.answers[index];
    if (reply.is_stats) {
      // A stats frame answering a query id would be a server bug;
      // treat the slot as failed rather than trusting it.
      answer.ok = false;
    } else if (reply.outcome.ok) {
      answer.ok = true;
      answer.items = std::move(reply.outcome.response.items);
      answer.ta_bound = reply.outcome.response.ta_bound;
      answer.epoch = reply.outcome.response.epoch;
    } else {
      answer.ok = false;
      answer.overloaded =
          reply.outcome.error == net::ErrorCode::kOverloaded;
      if (reply.outcome.error == net::ErrorCode::kBadRequest) {
        // A legacy shard that predates the query-kind extension
        // rejects the longer payload; its slice is simply missing and
        // the merge becomes a typed partial.
        shard_bad_requests_total_->Increment();
      }
    }
    if (query.outstanding == 0) finished_.push_back(query_it->first);
    return;
  }

  auto stats_it = pending_stats_.find(reply.frame_id);
  if (stats_it != pending_stats_.end()) {
    PendingStats& stats = stats_it->second;
    if (!stats.waiting[index]) return;
    stats.waiting[index] = 0;
    --stats.outstanding;
    if (reply.is_stats) {
      stats.snapshots[index] = std::move(reply.stats);
    }
    if (stats.outstanding == 0) finished_.push_back(stats_it->first);
    return;
  }
  // Late reply for a query already completed (deadline fired first):
  // nothing to do — the RPC histogram only tracks in-deadline answers.
}

void ShardRouter::SweepDeadlines(
    std::chrono::steady_clock::time_point now) {
  // Phase 1: mark misses and collect the shards struck, WITHOUT
  // evicting mid-iteration (EvictShard walks the same maps).
  std::vector<uint32_t> struck;
  auto miss = [&](std::vector<uint8_t>& waiting,
                  const std::vector<std::chrono::steady_clock::time_point>&
                      deadline,
                  size_t& outstanding, uint64_t id) {
    for (uint32_t i = 0; i < waiting.size(); ++i) {
      if (!waiting[i] || now < deadline[i]) continue;
      waiting[i] = 0;
      --outstanding;
      deadline_misses_total_->Increment();
      struck.push_back(i);
      if (outstanding == 0) finished_.push_back(id);
    }
  };
  for (auto& [id, query] : pending_) {
    miss(query.waiting, query.deadline, query.outstanding, id);
  }
  for (auto& [id, stats] : pending_stats_) {
    miss(stats.waiting, stats.deadline, stats.outstanding, id);
  }
  CompleteFinished();
  for (const uint32_t index : struck) {
    StrikeShard(index, /*connection_broken=*/false, now);
  }
}

void ShardRouter::StrikeShard(uint32_t index, bool connection_broken,
                              std::chrono::steady_clock::time_point now) {
  ShardState& shard = shards_[index];
  if (shard.evicted) return;
  ++shard.consecutive_failures;
  if (connection_broken ||
      shard.consecutive_failures >= options_.breaker_threshold) {
    EvictShard(index, now);
  }
}

void ShardRouter::EvictShard(uint32_t index,
                             std::chrono::steady_clock::time_point now) {
  ShardState& shard = shards_[index];
  if (shard.evicted && !shard.client) return;
  evictions_total_->Increment();
  GEMREC_LOG(Warning) << "shard " << index << " breaker open after "
                      << shard.consecutive_failures
                      << " consecutive failure(s); re-probe in "
                      << shard.backoff.count() << "ms";
  if (shard.client) {
    UnregisterClientFd(index);
    shard.client.reset();
  }
  shard.evicted = true;
  shard.reprobe_at = now + shard.backoff;

  // Every slot still waiting on this shard fails now — queries keep
  // their other shards' answers and degrade to partial.
  for (auto& [id, query] : pending_) {
    if (!query.waiting[index]) continue;
    query.waiting[index] = 0;
    --query.outstanding;
    if (query.outstanding == 0) finished_.push_back(id);
  }
  for (auto& [id, stats] : pending_stats_) {
    if (!stats.waiting[index]) continue;
    stats.waiting[index] = 0;
    --stats.outstanding;
    if (stats.outstanding == 0) finished_.push_back(id);
  }
  CompleteFinished();
}

void ShardRouter::SweepReprobes(std::chrono::steady_clock::time_point now) {
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = shards_[i];
    if (!shard.evicted || now < shard.reprobe_at) continue;
    auto client = net::Client::Connect(shard.endpoint.host,
                                       shard.endpoint.port, options_.client);
    if (client.ok()) {
      shard.client = std::move(client).value();
      shard.evicted = false;
      shard.consecutive_failures = 0;
      shard.backoff = options_.breaker_backoff;
      RegisterClientFd(i);
      reconnects_total_->Increment();
      GEMREC_LOG(Info) << "shard " << i << " breaker closed (re-probe "
                       << "succeeded)";
    } else {
      shard.backoff = std::min(
          std::chrono::milliseconds(static_cast<int64_t>(
              static_cast<double>(shard.backoff.count()) *
              options_.breaker_backoff_multiplier)),
          options_.breaker_backoff_max);
      shard.reprobe_at = now + shard.backoff;
    }
  }
}

void ShardRouter::CompleteFinished() {
  while (!finished_.empty()) {
    const uint64_t id = finished_.back();
    finished_.pop_back();
    auto query_it = pending_.find(id);
    if (query_it != pending_.end()) {
      PendingQuery query = std::move(query_it->second);
      pending_.erase(query_it);
      CompleteQuery(id, std::move(query));
      continue;
    }
    auto stats_it = pending_stats_.find(id);
    if (stats_it != pending_stats_.end()) {
      PendingStats stats = std::move(stats_it->second);
      pending_stats_.erase(stats_it);
      CompleteStats(id, std::move(stats));
    }
  }
}

void ShardRouter::CompleteQuery(uint64_t id, PendingQuery query) {
  (void)id;
  MergeResult merged = MergeTopK(query.answers, query.request.n);
  if (merged.partial) partial_results_total_->Increment();
  serving::QueryResponse response;
  response.items = std::move(merged.items);
  response.epoch = merged.epoch;
  response.partial = merged.partial;
  response.overloaded = merged.overloaded;
  response.ta_bound = merged.ta_bound;
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  query.callback(std::move(response));
}

void ShardRouter::CompleteStats(uint64_t id, PendingStats stats) {
  (void)id;
  stats.callback(std::move(stats.snapshots));
}

int ShardRouter::NextTimeoutMs(
    std::chrono::steady_clock::time_point now) const {
  auto nearest = std::chrono::steady_clock::time_point::max();
  for (const auto& [id, query] : pending_) {
    for (uint32_t i = 0; i < query.waiting.size(); ++i) {
      if (query.waiting[i]) nearest = std::min(nearest, query.deadline[i]);
    }
  }
  for (const auto& [id, stats] : pending_stats_) {
    for (uint32_t i = 0; i < stats.waiting.size(); ++i) {
      if (stats.waiting[i]) nearest = std::min(nearest, stats.deadline[i]);
    }
  }
  for (const ShardState& shard : shards_) {
    if (shard.evicted) nearest = std::min(nearest, shard.reprobe_at);
  }
  if (nearest == std::chrono::steady_clock::time_point::max()) return -1;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      nearest - now)
                      .count();
  if (ms <= 0) return 0;
  // +1 rounds up so a deadline 0.4ms away does not busy-spin.
  return static_cast<int>(std::min<int64_t>(ms + 1, 60'000));
}

}  // namespace gemrec::shard
