#ifndef GEMREC_SHARD_MERGER_H_
#define GEMREC_SHARD_MERGER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "recommend/recommender.h"

namespace gemrec::shard {

/// One shard's contribution to a scatter-gather query.
struct ShardAnswer {
  uint32_t shard = 0;
  /// A decoded kQueryResponse arrived before the deadline. False for
  /// evicted, dead, deadline-missed and typed-error shards — their
  /// slice of the space is simply missing from the merge.
  bool ok = false;
  /// The shard answered with a typed kOverloaded error.
  bool overloaded = false;
  /// Top-n of the shard's slice, descending score.
  std::vector<recommend::Recommendation> items;
  /// The shard's TA unreturned-score bound (QueryResponse::ta_bound):
  /// every pair of its slice NOT in `items` scores at most this.
  /// +inf = unknown (legacy peer), -inf = nothing was left out.
  float ta_bound = std::numeric_limits<float>::infinity();
  uint64_t epoch = 0;
};

/// Outcome of merging N shard answers into one top-n.
struct MergeResult {
  /// Global top-n over the replying shards, descending score; ties
  /// broken deterministically by (event, partner) ascending.
  std::vector<recommend::Recommendation> items;
  /// At least one shard's slice is missing (its ShardAnswer has
  /// ok == false).
  bool partial = false;
  /// Some shard answered a typed OVERLOADED error.
  bool overloaded = false;
  /// The threshold-merge completeness proof held: every shard
  /// replied, every reply carried a finite-or--inf bound, and the
  /// merged k-th score dominates every shard's unreturned bound — so
  /// `items` provably equals the unsharded top-n (modulo score ties).
  bool certified = false;
  /// Coordinator-level unreturned bound: a sound upper bound on every
  /// candidate pair (across all slices) not in `items`. +inf when any
  /// slice is missing or carried no bound.
  float ta_bound = std::numeric_limits<float>::infinity();
  /// max over replying shards (all shards serve the same artifact
  /// generation, so this is the freshest epoch observed).
  uint64_t epoch = 0;
};

/// Merges per-shard top-k lists, carrying each shard's returned TA
/// threshold, into the global top-n.
///
/// Completeness argument (DESIGN.md section 16): the shards' slices
/// partition the candidate space, so any pair absent from the merge is
/// either (a) unreturned by its owning shard — bounded above by that
/// shard's ta_bound — or (b) returned but ranked below the merged
/// k-th score. When every shard replied, merged-kth >= max_i ta_bound_i
/// therefore proves no absent pair can displace a merged one. The
/// inequality in fact always holds for full replies (each shard's
/// bound is at most its own n-th returned score, and the merged k-th
/// is at least any dropped item's score), so MergeTopK asserts it as a
/// soundness check; `certified` reports whether the proof applied.
MergeResult MergeTopK(const std::vector<ShardAnswer>& answers, size_t n);

}  // namespace gemrec::shard

#endif  // GEMREC_SHARD_MERGER_H_
