#ifndef GEMREC_SHARD_SHARD_ROUTER_H_
#define GEMREC_SHARD_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "obs/metrics.h"
#include "serving/query_backend.h"
#include "shard/merger.h"

namespace gemrec::shard {

/// Address of one shard's serve stack.
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Parses "host:p1,host:p2,..." (the `gemrec coordinate --shards`
/// syntax) into endpoints.
Status ParseShardEndpoints(const std::string& spec,
                           std::vector<ShardEndpoint>* out);

struct RouterOptions {
  /// Per-(query, shard) answer budget. A shard that misses it gets its
  /// slot marked failed (the merge degrades to a typed partial result)
  /// and one consecutive-failure strike — the query is NEVER held
  /// hostage by one parked shard.
  std::chrono::milliseconds shard_deadline{250};
  /// Consecutive failures (deadline misses, io errors, failed sends)
  /// before the breaker opens: the shard's connection is dropped and
  /// fan-out skips it until a re-probe succeeds.
  uint32_t breaker_threshold = 3;
  /// First re-probe delay after eviction; doubles (capped) while the
  /// shard stays down.
  std::chrono::milliseconds breaker_backoff{250};
  double breaker_backoff_multiplier = 2.0;
  std::chrono::milliseconds breaker_backoff_max{5000};
  /// Per-shard connection knobs. connect_timeout bounds the re-probe
  /// (which runs inline on the router thread — a blocking connect, but
  /// bounded and only attempted once per backoff window).
  net::ClientOptions client;
};

/// Scatter-gather fan-out engine of the coordinator tier: one
/// persistent tagged GMNP v2 connection per shard, all multiplexed on
/// a single epoll thread. Queries fan out with a shared frame id,
/// per-shard replies are collected in completion order via
/// nonblocking drains (Client::ReceiveAny(0ms)), and the merged top-k
/// (merger.h) is delivered through the submitted callback once every
/// shard has answered, failed, or missed its deadline — so one dead
/// or parked shard can never stall the others, only degrade the
/// result to a typed partial.
///
/// Failure handling is breaker-style per shard: consecutive failures
/// open the breaker (connection dropped, fan-out skips the shard);
/// re-probes with exponential backoff close it again once the shard
/// answers TCP. All of it is observable: gemrec_shard_queries_total,
/// gemrec_shard_partial_results_total, gemrec_shard_deadline_misses_
/// total, gemrec_shard_evictions_total, gemrec_shard_reconnects_total
/// and a per-shard gemrec_shard_rpc_us{shard="i"} latency histogram.
///
/// Thread model: SubmitQuery/SubmitStats are callable from any thread
/// (mutex-guarded inbox + eventfd wakeup); callbacks fire on the
/// router thread and must not block (the reactor bridge just pushes a
/// completion and wakes its own loop).
class ShardRouter {
 public:
  using QueryCallback = std::function<void(serving::QueryResponse)>;
  /// One snapshot per shard, in shard order; nullopt = shard did not
  /// answer (evicted, dead, or missed the deadline).
  using StatsCallback = std::function<void(
      std::vector<std::optional<obs::MetricsSnapshot>>)>;

  /// `registry` must outlive the router.
  ShardRouter(std::vector<ShardEndpoint> shards,
              const RouterOptions& options,
              obs::MetricsRegistry* registry);
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Connects to the shards and spawns the router thread. Unreachable
  /// shards start with their breaker open (re-probed on the usual
  /// backoff schedule); only ALL shards unreachable is an error.
  Status Start();

  /// Completes every pending query with rejected=true, closes the
  /// shard connections and joins the router thread. Idempotent.
  void Stop();

  /// Fans the query out over the live shards and calls `callback`
  /// exactly once with the merged response (possibly partial). After
  /// Stop, completes immediately with rejected=true.
  void SubmitQuery(const serving::QueryRequest& request,
                   QueryCallback callback);

  /// Fans a kStatsRequest out over the live shards; `callback` gets
  /// one optional snapshot per shard.
  void SubmitStats(StatsCallback callback);

  /// Submitted but not yet claimed by the router thread.
  size_t QueueDepth() const;
  /// Claimed, awaiting shard replies.
  size_t InFlight() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct ShardState {
    ShardEndpoint endpoint;
    std::unique_ptr<net::Client> client;  // null while breaker open
    uint32_t consecutive_failures = 0;
    bool evicted = false;
    std::chrono::milliseconds backoff{0};
    std::chrono::steady_clock::time_point reprobe_at;
    obs::Histogram* rpc_us = nullptr;
  };

  struct PendingQuery {
    serving::QueryRequest request;
    QueryCallback callback;
    std::vector<ShardAnswer> answers;
    /// 1 = sent, awaiting reply (the deadline/sent_at slots are
    /// meaningful only while waiting).
    std::vector<uint8_t> waiting;
    std::vector<std::chrono::steady_clock::time_point> sent_at;
    std::vector<std::chrono::steady_clock::time_point> deadline;
    size_t outstanding = 0;
  };

  struct PendingStats {
    StatsCallback callback;
    std::vector<std::optional<obs::MetricsSnapshot>> snapshots;
    std::vector<uint8_t> waiting;
    std::vector<std::chrono::steady_clock::time_point> deadline;
    size_t outstanding = 0;
  };

  void Loop();
  void DrainInbox(std::chrono::steady_clock::time_point now);
  void DispatchQuery(serving::QueryRequest request, QueryCallback callback,
                     std::chrono::steady_clock::time_point now);
  void DispatchStats(StatsCallback callback,
                     std::chrono::steady_clock::time_point now);
  /// Drains every complete frame buffered on shard `index` without
  /// blocking; a transport error evicts the shard.
  void DrainShard(uint32_t index,
                  std::chrono::steady_clock::time_point now);
  void HandleReply(uint32_t index, net::TaggedReply reply,
                   std::chrono::steady_clock::time_point now);
  /// Marks deadline misses, strikes the shards involved, opens
  /// breakers past the threshold, completes finished queries.
  void SweepDeadlines(std::chrono::steady_clock::time_point now);
  /// Attempts to reconnect evicted shards whose backoff elapsed.
  void SweepReprobes(std::chrono::steady_clock::time_point now);
  /// One failure strike; opens the breaker at the threshold.
  /// `connection_broken` forces an immediate eviction (the transport
  /// is unusable regardless of the count).
  void StrikeShard(uint32_t index, bool connection_broken,
                   std::chrono::steady_clock::time_point now);
  /// Opens the breaker: drops the connection, schedules the re-probe
  /// and fails every pending slot still waiting on the shard.
  void EvictShard(uint32_t index,
                  std::chrono::steady_clock::time_point now);
  void RegisterClientFd(uint32_t index);
  void UnregisterClientFd(uint32_t index);
  /// Completes and erases every pending entry whose outstanding count
  /// reached zero.
  void CompleteFinished();
  void CompleteQuery(uint64_t id, PendingQuery query);
  void CompleteStats(uint64_t id, PendingStats stats);
  /// Poll timeout until the nearest deadline or re-probe.
  int NextTimeoutMs(std::chrono::steady_clock::time_point now) const;

  std::vector<ShardState> shards_;
  RouterOptions options_;
  obs::MetricsRegistry* registry_;

  obs::Counter* queries_total_ = nullptr;
  obs::Counter* partial_results_total_ = nullptr;
  obs::Counter* shard_bad_requests_total_ = nullptr;
  obs::Counter* deadline_misses_total_ = nullptr;
  obs::Counter* evictions_total_ = nullptr;
  obs::Counter* reconnects_total_ = nullptr;

  net::EventLoop loop_;

  struct Inbox {
    std::mutex mu;
    std::vector<std::pair<serving::QueryRequest, QueryCallback>> queries;
    std::vector<StatsCallback> stats;
    bool closed = false;
  };
  Inbox inbox_;

  /// Coordinator-assigned frame ids, shared id-space for queries and
  /// stats (the SAME id goes to every shard — separate connections,
  /// so no collision is possible).
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, PendingQuery> pending_;
  std::unordered_map<uint64_t, PendingStats> pending_stats_;
  /// Ids whose outstanding count hit zero mid-sweep; completed (and
  /// erased) together afterwards so no code path mutates the maps
  /// while another is iterating them.
  std::vector<uint64_t> finished_;

  std::atomic<size_t> in_flight_{0};

  std::thread thread_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace gemrec::shard

#endif  // GEMREC_SHARD_SHARD_ROUTER_H_
