#ifndef GEMREC_SHARD_PARTITIONER_H_
#define GEMREC_SHARD_PARTITIONER_H_

#include <cstdint>
#include <string>

#include "ebsn/types.h"

namespace gemrec::shard {

/// Which disjoint slice of the candidate-pair space one shard serves.
///
/// The partition is a pure function of the (event, partner) pair id —
/// no coordination, no assignment tables: every shard process given
/// the same model artifacts and the same `count` derives the same
/// disjoint cover, and the union over index = 0..count-1 is exactly
/// the unsharded space. `count <= 1` means "the whole space"
/// (single-instance serving is the degenerate one-shard case).
struct ShardSpec {
  uint32_t index = 0;
  uint32_t count = 1;

  bool unsharded() const { return count <= 1; }
  bool valid() const { return count >= 1 && index < count; }
};

/// Full-avalanche pair-id hash (splitmix64 finalizer, the same mix the
/// result cache uses for shard selection). Modulo-`count` placement
/// needs every output bit to depend on every input bit: the raw
/// (event << 32 | partner) key varies only in the low word across
/// partners of one event, and an unmixed modulo would send an event's
/// whole partner row to shards in lockstep.
inline uint64_t PairHash(ebsn::EventId event, ebsn::UserId partner) {
  uint64_t h =
      (static_cast<uint64_t>(event) << 32) | static_cast<uint64_t>(partner);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// True iff `spec` owns the pair. Deterministic; for a fixed pair the
/// owning index is PairHash % count, so the N specs partition the
/// space into disjoint ranges whose union is the whole space.
inline bool OwnsPair(const ShardSpec& spec, ebsn::EventId event,
                     ebsn::UserId partner) {
  if (spec.unsharded()) return true;
  return PairHash(event, partner) % spec.count == spec.index;
}

/// Event-granular partition for workloads that rank whole events
/// (group queries): every shard holds the full embedding store, so
/// the split happens at query time by event id rather than at build
/// time by pair id. Reuses PairHash with an out-of-band partner
/// sentinel so the event cover is independent of the pair cover (an
/// event's pairs may live on other shards than the event itself —
/// both covers are disjoint and complete on their own).
inline bool OwnsEvent(const ShardSpec& spec, ebsn::EventId event) {
  if (spec.unsharded()) return true;
  return PairHash(event, ebsn::kInvalidId) % spec.count == spec.index;
}

/// Parses "i/N" (e.g. "0/4") into a spec; returns false on malformed
/// text, N == 0, or i >= N. "0/1" is the explicit unsharded spec.
inline bool ParseShardSpec(const std::string& text, ShardSpec* out) {
  const size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= text.size()) {
    return false;
  }
  uint64_t index = 0;
  uint64_t count = 0;
  for (size_t i = 0; i < slash; ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    index = index * 10 + static_cast<uint64_t>(c - '0');
    if (index > UINT32_MAX) return false;
  }
  for (size_t i = slash + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    count = count * 10 + static_cast<uint64_t>(c - '0');
    if (count > UINT32_MAX) return false;
  }
  if (count == 0 || index >= count) return false;
  out->index = static_cast<uint32_t>(index);
  out->count = static_cast<uint32_t>(count);
  return true;
}

}  // namespace gemrec::shard

#endif  // GEMREC_SHARD_PARTITIONER_H_
