#ifndef GEMREC_SHARD_SHARD_GROUP_H_
#define GEMREC_SHARD_SHARD_GROUP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "ebsn/types.h"
#include "embedding/embedding_store.h"
#include "net/server.h"
#include "serving/model_snapshot.h"
#include "serving/recommendation_service.h"
#include "shard/shard_router.h"

namespace gemrec::shard {

struct ShardGroupOptions {
  uint32_t num_shards = 2;
  /// Per-shard serve-stack knobs. snapshot.shard is overwritten per
  /// shard ({i, num_shards}); server.port should stay 0 (ephemeral) —
  /// restarts rebind whatever port each shard originally got.
  serving::ServiceOptions service;
  serving::SnapshotOptions snapshot;
  net::ServerOptions server;
};

/// In-process test/bench harness: boots N REAL serve stacks — each a
/// ModelSnapshot built over its ShardSpec slice, a
/// RecommendationService and a NetServer on an ephemeral 127.0.0.1
/// port — from one embedding store. What a coordinator talks to here
/// is byte-for-byte what it talks to across machines; nothing is
/// mocked.
///
/// StopShard kills one stack (connections die mid-load — the breaker
/// test's fault injector); RestartShard rebuilds the stack and rebinds
/// the SAME port, so the coordinator's fixed-endpoint re-probe finds
/// the shard again.
class ShardGroup {
 public:
  /// Copies `store` (restarts rebuild snapshots from the copy).
  ShardGroup(const embedding::EmbeddingStore& store,
             std::vector<ebsn::EventId> events, uint32_t num_users,
             const ShardGroupOptions& options);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  /// Builds + starts every shard stack.
  Status Start();
  void Stop();

  /// Shard addresses in shard order — feed straight into a
  /// CoordinatorBackend or `gemrec coordinate --shards`.
  std::vector<ShardEndpoint> endpoints() const;
  uint16_t port(uint32_t index) const;

  /// Tears one stack down (its connections reset).
  void StopShard(uint32_t index);
  /// Rebuilds the stack and rebinds the shard's previous port.
  Status RestartShard(uint32_t index);

  uint32_t num_shards() const { return options_.num_shards; }

 private:
  struct Stack {
    std::unique_ptr<serving::RecommendationService> service;
    std::unique_ptr<net::NetServer> server;
    uint16_t port = 0;
  };

  Status StartShard(uint32_t index, uint16_t port);

  embedding::EmbeddingStore store_;
  std::vector<ebsn::EventId> events_;
  uint32_t num_users_;
  ShardGroupOptions options_;
  std::vector<Stack> stacks_;
  bool started_ = false;
};

}  // namespace gemrec::shard

#endif  // GEMREC_SHARD_SHARD_GROUP_H_
