#include "recommend/query_kinds.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace gemrec::recommend {
namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/// Sorts the first min(n + 1, size) entries and derives the
/// unreturned-bound + truncation shared by both exhaustive oracles:
/// one slot past the cut is enough to know the best dropped score.
std::vector<Recommendation> FinishExhaustive(
    std::vector<Recommendation> all, size_t n, float* bound_out) {
  const size_t sorted = std::min(all.size(), n + 1);
  std::partial_sort(all.begin(), all.begin() + sorted, all.end(),
                    RecommendationOrder);
  float bound = kNegInf;
  if (all.size() > n) bound = all[n].score;
  all.resize(std::min(all.size(), n));
  if (bound_out != nullptr) *bound_out = bound;
  return all;
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPartner: return "partner";
    case QueryKind::kGroup: return "group";
    case QueryKind::kReciprocal: return "reciprocal";
  }
  return "unknown";
}

const char* GroupAggregatorName(GroupAggregator agg) {
  switch (agg) {
    case GroupAggregator::kSum: return "sum";
    case GroupAggregator::kMin: return "min";
  }
  return "unknown";
}

bool ParseQueryKind(const std::string& text, QueryKind* out) {
  if (text == "partner") {
    *out = QueryKind::kPartner;
  } else if (text == "group") {
    *out = QueryKind::kGroup;
  } else if (text == "reciprocal") {
    *out = QueryKind::kReciprocal;
  } else {
    return false;
  }
  return true;
}

bool ParseGroupAggregator(const std::string& text, GroupAggregator* out) {
  if (text == "sum") {
    *out = GroupAggregator::kSum;
  } else if (text == "min") {
    *out = GroupAggregator::kMin;
  } else {
    return false;
  }
  return true;
}

float PairwiseScore(const GemModel& model, ebsn::UserId user,
                    ebsn::UserId partner, ebsn::EventId event) {
  // Associates as (A + B) + C, the exact order TaSearch::pair_score
  // assembles the same three partial sums in.
  return model.ScoreUserEvent(user, event) +
         model.ScoreUserUser(user, partner) +
         model.ScoreUserEvent(partner, event);
}

float DirectedScore(const GemModel& model, ebsn::UserId viewer,
                    ebsn::UserId peer, ebsn::EventId event) {
  return model.ScoreUserEvent(viewer, event) +
         model.ScoreUserUser(viewer, peer);
}

float ReciprocalScore(const GemModel& model, ebsn::UserId user,
                      ebsn::UserId partner, ebsn::EventId event) {
  return std::min(DirectedScore(model, user, partner, event),
                  DirectedScore(model, partner, user, event));
}

float GroupEventScore(const GemModel& model, ebsn::UserId user,
                      const std::vector<ebsn::UserId>& members,
                      ebsn::EventId event, GroupAggregator agg) {
  GEMREC_CHECK(!members.empty()) << "group query with no members";
  if (agg == GroupAggregator::kSum) {
    float acc = 0.0f;
    for (const ebsn::UserId m : members) {
      acc += PairwiseScore(model, user, m, event);
    }
    return acc;
  }
  float worst = PairwiseScore(model, user, members[0], event);
  for (size_t i = 1; i < members.size(); ++i) {
    worst = std::min(worst, PairwiseScore(model, user, members[i], event));
  }
  return worst;
}

void ReciprocalQueryVector(const GemModel& model, ebsn::UserId u,
                           size_t point_dim, std::vector<float>* out) {
  const uint32_t k = model.dim();
  GEMREC_CHECK(point_dim == 2 * static_cast<size_t>(k) + 1);
  out->resize(point_dim);
  const float* uv = model.UserVec(u);
  std::copy(uv, uv + k, out->data());
  std::copy(uv, uv + k, out->data() + k);
  (*out)[2 * k] = 0.0f;
}

bool RecommendationOrder(const Recommendation& a, const Recommendation& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.event != b.event) return a.event < b.event;
  return a.partner < b.partner;
}

std::vector<Recommendation> GroupTopEvents(
    const GemModel& model, const std::vector<ebsn::EventId>& events,
    ebsn::UserId user, const std::vector<ebsn::UserId>& members,
    GroupAggregator agg, size_t n, float* bound_out) {
  std::vector<Recommendation> all;
  all.reserve(events.size());
  for (const ebsn::EventId x : events) {
    all.push_back(Recommendation{
        x, ebsn::kInvalidId, GroupEventScore(model, user, members, x, agg)});
  }
  return FinishExhaustive(std::move(all), n, bound_out);
}

std::vector<Recommendation> ReciprocalTopPairs(
    const GemModel& model, const TransformedSpace& space, ebsn::UserId user,
    size_t n, float* bound_out) {
  std::vector<Recommendation> all;
  all.reserve(space.num_points());
  for (size_t i = 0; i < space.num_points(); ++i) {
    const CandidatePair& pair = space.pair(i);
    if (pair.partner == user) continue;
    all.push_back(Recommendation{
        pair.event, pair.partner,
        ReciprocalScore(model, user, pair.partner, pair.event)});
  }
  return FinishExhaustive(std::move(all), n, bound_out);
}

std::vector<Recommendation> ReciprocalSearch(
    const GemModel& model, const TaSearch& searcher,
    const TransformedSpace& space, ebsn::UserId user, size_t n,
    ReciprocalScratch* scratch, float* bound_out, SearchStats* stats_out) {
  GEMREC_CHECK(scratch != nullptr);
  std::vector<Recommendation> result;
  if (n == 0 || space.num_points() == 0) {
    if (bound_out != nullptr) *bound_out = kNegInf;
    if (stats_out != nullptr) *stats_out = SearchStats{};
    return result;
  }
  ReciprocalQueryVector(model, user, space.point_dim(), &scratch->query);

  SearchStats cumulative;
  size_t m = std::max<size_t>(4 * n, 64);
  while (true) {
    SearchStats fwd_stats;
    searcher.SearchInto(scratch->query, m, /*exclude_partner=*/user,
                        &scratch->hits, &fwd_stats, &scratch->ta);
    cumulative.points_examined += fwd_stats.points_examined;
    cumulative.sorted_accesses += fwd_stats.sorted_accesses;
    cumulative.examined_fraction = fwd_stats.examined_fraction;

    std::vector<Recommendation>& rescored = scratch->rescored;
    rescored.clear();
    rescored.reserve(scratch->hits.size());
    for (const SearchHit& hit : scratch->hits) {
      rescored.push_back(Recommendation{
          hit.pair.event, hit.pair.partner,
          ReciprocalScore(model, user, hit.pair.partner, hit.pair.event)});
    }
    std::sort(rescored.begin(), rescored.end(), RecommendationOrder);

    // Fewer hits than requested means the forward search enumerated
    // every non-excluded pair; nothing is unexamined.
    const bool exhausted = scratch->hits.size() < m;
    const float fwd_bound = fwd_stats.unreturned_bound;
    const float nth =
        rescored.size() >= n ? rescored[n - 1].score : kNegInf;
    // Unexamined pairs satisfy r <= d_forward <= fwd_bound, so a
    // strictly larger n-th reciprocal score certifies the top n.
    if (exhausted || (rescored.size() >= n && nth > fwd_bound)) {
      const float dropped =
          rescored.size() > n ? rescored[n].score : kNegInf;
      const float bound =
          exhausted ? dropped : std::max(dropped, fwd_bound);
      rescored.resize(std::min(rescored.size(), n));
      result = rescored;
      cumulative.unreturned_bound = bound;
      if (bound_out != nullptr) *bound_out = bound;
      if (stats_out != nullptr) *stats_out = cumulative;
      return result;
    }
    m *= 2;
  }
}

}  // namespace gemrec::recommend
