#include "recommend/batch_ta_search.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/vec_math.h"

namespace gemrec::recommend {
namespace {

/// Chunk width: one bit per query in the shared visited mask.
constexpr size_t kMaxChunk = 64;
/// Sorted-list steps a live query takes before yielding to the next.
constexpr size_t kWalkQuantum = 64;

}  // namespace

BatchTaSearch::BatchTaSearch(const QuantizedSpace* quant)
    : quant_(quant),
      index_(&quant->index()),
      space_(&quant->index().space()),
      latent_dim_(quant->latent_dim()) {
  GEMREC_CHECK(quant != nullptr);
}

void BatchTaSearch::SearchBatch(const BatchQuery* queries, size_t count,
                                std::vector<SearchHit>* results,
                                BatchSearchStats* stats,
                                Workspace* workspace,
                                SearchStats* per_query_stats) const {
  GEMREC_CHECK(workspace != nullptr);
  BatchSearchStats local;
  for (size_t start = 0; start < count; start += kMaxChunk) {
    const size_t chunk = std::min(kMaxChunk, count - start);
    SearchChunk(queries + start, chunk, results + start, &local, workspace,
                per_query_stats ? per_query_stats + start : nullptr);
  }
  const size_t num_points = space_->num_points();
  local.examined_fraction =
      (num_points == 0 || count == 0)
          ? 0.0
          : static_cast<double>(local.points_examined) /
                (static_cast<double>(num_points) *
                 static_cast<double>(count));
  if (stats != nullptr) *stats = local;
}

void BatchTaSearch::SearchChunk(const BatchQuery* queries, size_t count,
                                std::vector<SearchHit>* results,
                                BatchSearchStats* stats, Workspace* ws,
                                SearchStats* per_query_stats) const {
  GEMREC_DCHECK(count <= kMaxChunk);
  Stopwatch total_timer;
  uint64_t rerank_us = 0;

  const size_t num_points = space_->num_points();
  const uint32_t k = latent_dim_;
  const size_t num_events = index_->num_events();
  const size_t num_partners = index_->num_partners();
  const auto& event_pairs = index_->event_pairs();
  const auto& partner_pairs = index_->partner_pairs();
  const uint32_t* pair_event_idx = index_->pair_event_idx().data();
  const uint32_t* pair_partner_idx = index_->pair_partner_idx().data();
  const uint32_t* c_sorted = index_->c_sorted().data();
  const float* c_values = quant_->c_values().data();
  const float* c_sorted_values = quant_->c_sorted_values().data();
  const bool int8_mode =
      quant_->precision() == QuantizedSpace::Precision::kInt8;

  for (size_t q = 0; q < count; ++q) results[q].clear();
  if (per_query_stats != nullptr) {
    for (size_t q = 0; q < count; ++q) per_query_stats[q] = SearchStats{};
  }
  if (num_points == 0 || count == 0) {
    stats->quantize_scan_us +=
        static_cast<uint64_t>(total_timer.ElapsedMicros());
    return;
  }

  // --- Stage 1: quantize queries, then batched components. ---
  ws->event_q8.resize(kMaxChunk * k);
  ws->partner_q8.resize(kMaxChunk * k);
  ws->event_q16.resize(kMaxChunk * k);
  ws->partner_q16.resize(kMaxChunk * k);
  ws->qq.resize(kMaxChunk);
  for (size_t q = 0; q < count; ++q) {
    ws->qq[q] = quant_->QuantizeQuery(
        queries[q].query, ws->event_q8.data() + q * k,
        ws->partner_q8.data() + q * k, ws->event_q16.data() + q * k,
        ws->partner_q16.data() + q * k);
  }

  // Group rows outer, queries inner: each compact code row is read once
  // per batch, and the chunk's query codes stay resident in L1. The
  // raw integer dot is kept alongside the fp32 component as a packed
  // (dot << 32 | group) ordering key: bias + scale * float(dot) with
  // scale >= 0 is monotone in the dot, so descending-key order IS
  // descending-component order, with no float comparator needed.
  ws->event_comp.resize(kMaxChunk * num_events);
  ws->partner_comp.resize(kMaxChunk * num_partners);
  ws->event_keys.resize(kMaxChunk * num_events);
  ws->partner_keys.resize(kMaxChunk * num_partners);
  float* event_comp = ws->event_comp.data();
  float* partner_comp = ws->partner_comp.data();
  uint64_t* event_keys = ws->event_keys.data();
  uint64_t* partner_keys = ws->partner_keys.data();
  if (int8_mode) {
    for (size_t e = 0; e < num_events; ++e) {
      const int8_t* row = quant_->EventCodes8(e);
      for (size_t q = 0; q < count; ++q) {
        const int32_t dot = DotQ8(ws->event_q8.data() + q * k, row, k);
        event_comp[q * num_events + e] =
            ws->qq[q].event_bias +
            ws->qq[q].event_scale * static_cast<float>(dot);
        event_keys[q * num_events + e] =
            (static_cast<uint64_t>(static_cast<uint32_t>(dot)) << 32) | e;
      }
    }
    for (size_t u = 0; u < num_partners; ++u) {
      const int8_t* row = quant_->PartnerCodes8(u);
      for (size_t q = 0; q < count; ++q) {
        const int32_t dot = DotQ8(ws->partner_q8.data() + q * k, row, k);
        partner_comp[q * num_partners + u] =
            ws->qq[q].partner_bias +
            ws->qq[q].partner_scale * static_cast<float>(dot);
        partner_keys[q * num_partners + u] =
            (static_cast<uint64_t>(static_cast<uint32_t>(dot)) << 32) | u;
      }
    }
  } else {
    for (size_t e = 0; e < num_events; ++e) {
      const int16_t* row = quant_->EventCodes16(e);
      for (size_t q = 0; q < count; ++q) {
        const int32_t dot = DotQ16(ws->event_q16.data() + q * k, row, k);
        event_comp[q * num_events + e] =
            ws->qq[q].event_bias +
            ws->qq[q].event_scale * static_cast<float>(dot);
        event_keys[q * num_events + e] =
            (static_cast<uint64_t>(static_cast<uint32_t>(dot)) << 32) | e;
      }
    }
    for (size_t u = 0; u < num_partners; ++u) {
      const int16_t* row = quant_->PartnerCodes16(u);
      for (size_t q = 0; q < count; ++q) {
        const int32_t dot = DotQ16(ws->partner_q16.data() + q * k, row, k);
        partner_comp[q * num_partners + u] =
            ws->qq[q].partner_bias +
            ws->qq[q].partner_scale * static_cast<float>(dot);
        partner_keys[q * num_partners + u] =
            (static_cast<uint64_t>(static_cast<uint32_t>(dot)) << 32) | u;
      }
    }
  }

  // --- Stage 2: per-query lazy A/B list orders. O(groups) heapify
  // now; the walk pops the next-best group only when it reaches it. A
  // full sort would order thousands of partner groups per query when
  // the threshold typically fires after a few dozen prefix positions.
  for (size_t q = 0; q < count; ++q) {
    uint64_t* ek = event_keys + q * num_events;
    std::make_heap(ek, ek + num_events);
    uint64_t* pk = partner_keys + q * num_partners;
    std::make_heap(pk, pk + num_partners);
  }

  // --- Stage 3: round-robin widened-threshold TA walk. ---
  if (ws->seen_gen.size() < num_points) {
    ws->seen_gen.assign(num_points, 0);
    ws->seen_bits.assign(num_points, 0);
    ws->generation = 0;
  }
  if (++ws->generation == 0) {
    std::fill(ws->seen_gen.begin(), ws->seen_gen.end(), 0u);
    ws->generation = 1;
  }
  const uint32_t generation = ws->generation;
  uint32_t* seen_gen = ws->seen_gen.data();
  uint64_t* seen_bits = ws->seen_bits.data();

  ws->cursors.resize(kMaxChunk);
  if (ws->examined.size() < kMaxChunk) ws->examined.resize(kMaxChunk);
  if (ws->heaps.size() < kMaxChunk) {
    ws->heaps.resize(kMaxChunk, TopK<uint32_t>(1));
  }

  size_t active = 0;
  for (size_t q = 0; q < count; ++q) {
    Workspace::Cursor& cur = ws->cursors[q];
    cur = Workspace::Cursor{};
    cur.want = std::min(queries[q].n,
                        index_->ResultsPossible(queries[q].exclude_partner));
    cur.epsilon2 = 2.0f * ws->qq[q].epsilon;
    cur.c_weight = ws->qq[q].c_weight;
    cur.stop_bound = -std::numeric_limits<float>::infinity();
    cur.done = queries[q].n == 0 || cur.want == 0;
    ws->examined[q].clear();
    if (!cur.done) {
      ws->heaps[q].Reset(queries[q].n);
      ++active;
    }
  }

  size_t examined_total = 0;
  size_t sorted_accesses = 0;
  while (active > 0) {
    for (size_t q = 0; q < count; ++q) {
      Workspace::Cursor& cur = ws->cursors[q];
      if (cur.done) continue;
      const float* ec = event_comp + q * num_events;
      const float* pc = partner_comp + q * num_partners;
      uint64_t* ek = event_keys + q * num_events;
      uint64_t* pk = partner_keys + q * num_partners;
      // i-th best group of a lazily popped list: pop_heap moves each
      // successive max to the array's back, so the descending prefix
      // is read back-to-front. Amortized O(log groups) per new
      // position, free for positions already popped.
      const auto nth_event = [&](size_t i) {
        while (cur.a_filled <= i) {
          std::pop_heap(ek, ek + num_events - cur.a_filled);
          ++cur.a_filled;
        }
        return static_cast<uint32_t>(ek[num_events - 1 - i]);
      };
      const auto nth_partner = [&](size_t i) {
        while (cur.b_filled <= i) {
          std::pop_heap(pk, pk + num_partners - cur.b_filled);
          ++cur.b_filled;
        }
        return static_cast<uint32_t>(pk[num_partners - 1 - i]);
      };
      TopK<uint32_t>& heap = ws->heaps[q];
      std::vector<uint32_t>& examined = ws->examined[q];
      const ebsn::UserId exclude = queries[q].exclude_partner;
      const uint64_t bit = 1ull << q;

      auto examine = [&](uint32_t id) {
        if (seen_gen[id] != generation) {
          seen_gen[id] = generation;
          seen_bits[id] = 0;
        }
        if (seen_bits[id] & bit) return;
        seen_bits[id] |= bit;
        ++examined_total;
        ++cur.examined;
        if (space_->pair(id).partner == exclude) return;
        examined.push_back(id);
        heap.Push(id, ec[pair_event_idx[id]] + pc[pair_partner_idx[id]] +
                          cur.c_weight * c_values[id]);
      };

      for (size_t step = 0; step < kWalkQuantum; ++step) {
        const bool a_live = cur.a_group < num_events;
        const bool b_live = cur.b_group < num_partners;
        const bool c_live = cur.c_cursor < num_points;
        const float ha = a_live ? ec[nth_event(cur.a_group)] : 0.0f;
        const float hb = b_live ? pc[nth_partner(cur.b_group)] : 0.0f;
        const float hc =
            c_live ? cur.c_weight * c_sorted_values[cur.c_cursor] : 0.0f;
        // Widened stop: only when the n-th best *approximate* score
        // clears the bound by 2*epsilon is the true top-n guaranteed
        // to be inside the examined set (DESIGN.md section 13).
        if (heap.size() >= cur.want &&
            heap.Threshold() >= ha + hb + hc + cur.epsilon2) {
          // An unexamined pair's TRUE score is at most its approximate
          // score (<= ha+hb+hc, list monotonicity) plus one epsilon.
          cur.stop_bound = ha + hb + hc + 0.5f * cur.epsilon2;
          cur.done = true;
          break;
        }
        if (!a_live && !b_live && !c_live) {
          cur.done = true;
          break;
        }
        ++sorted_accesses;
        ++cur.sorted_accesses;
        if (a_live && ha >= hb && ha >= hc) {
          const auto& pairs = event_pairs[nth_event(cur.a_group)];
          examine(pairs[cur.a_offset]);
          if (++cur.a_offset >= pairs.size()) {
            cur.a_offset = 0;
            ++cur.a_group;
          }
        } else if (b_live && hb >= hc) {
          const auto& pairs = partner_pairs[nth_partner(cur.b_group)];
          examine(pairs[cur.b_offset]);
          if (++cur.b_offset >= pairs.size()) {
            cur.b_offset = 0;
            ++cur.b_group;
          }
        } else if (c_live) {
          examine(c_sorted[cur.c_cursor]);
          ++cur.c_cursor;
        } else if (a_live) {
          const auto& pairs = event_pairs[nth_event(cur.a_group)];
          examine(pairs[cur.a_offset]);
          if (++cur.a_offset >= pairs.size()) {
            cur.a_offset = 0;
            ++cur.a_group;
          }
        } else {
          const auto& pairs = partner_pairs[nth_partner(cur.b_group)];
          examine(pairs[cur.b_offset]);
          if (++cur.b_offset >= pairs.size()) {
            cur.b_offset = 0;
            ++cur.b_group;
          }
        }
      }

      if (cur.done) {
        --active;
        // --- Stage 4: exact fp32 re-rank of this query's survivors.
        // The approximate heap has served its purpose (the stopping
        // rule); reuse it for the exact scores.
        Stopwatch rr;
        heap.Reset(std::max<size_t>(queries[q].n, 1));
        const float* query = queries[q].query;
        const size_t point_dim = space_->point_dim();
        for (uint32_t id : examined) {
          heap.Push(id, Dot(query, space_->Point(id), point_dim));
        }
        const auto& entries = heap.SortDescendingInPlace();
        std::vector<SearchHit>& out = results[q];
        out.reserve(entries.size());
        for (const auto& e : entries) {
          out.push_back(SearchHit{e.score, e.id, space_->pair(e.id)});
        }
        stats->reranked += examined.size();
        rerank_us += static_cast<uint64_t>(rr.ElapsedMicros());
        if (per_query_stats != nullptr) {
          SearchStats& qs = per_query_stats[q];
          qs.points_examined = cur.examined;
          qs.sorted_accesses = cur.sorted_accesses;
          qs.examined_fraction =
              static_cast<double>(cur.examined) /
              static_cast<double>(num_points);
          // Unreturned-score bound over TRUE scores: the widened-stop
          // threshold covers unexamined pairs; when the exact re-rank
          // filled all n slots, its n-th score covers examined pairs
          // that were evicted.
          qs.unreturned_bound = cur.stop_bound;
          if (!entries.empty() && entries.size() >= queries[q].n) {
            qs.unreturned_bound =
                std::max(qs.unreturned_bound, entries.back().score);
          }
        }
      }
    }
  }

  stats->points_examined += examined_total;
  stats->sorted_accesses += sorted_accesses;
  stats->rerank_us += rerank_us;
  const uint64_t total_us =
      static_cast<uint64_t>(total_timer.ElapsedMicros());
  stats->quantize_scan_us += total_us > rerank_us ? total_us - rerank_us : 0;
}

}  // namespace gemrec::recommend
