#include "recommend/candidate_index.h"

#include "common/top_k.h"
#include "common/vec_math.h"

namespace gemrec::recommend {

std::vector<std::vector<ebsn::EventId>> TopKEventsPerUser(
    const GemModel& model, const std::vector<ebsn::EventId>& events,
    uint32_t num_users, uint32_t top_k) {
  const uint32_t dim = model.dim();
  std::vector<std::vector<ebsn::EventId>> result(num_users);
  for (uint32_t u = 0; u < num_users; ++u) {
    const float* uv = model.UserVec(u);
    TopK<ebsn::EventId> best(top_k);
    for (ebsn::EventId x : events) {
      best.Push(x, Dot(uv, model.EventVec(x), dim));
    }
    auto entries = best.TakeSortedDescending();
    result[u].reserve(entries.size());
    for (const auto& e : entries) result[u].push_back(e.id);
  }
  return result;
}

std::vector<CandidatePair> BuildCandidatePairs(
    const GemModel& model, const std::vector<ebsn::EventId>& events,
    uint32_t num_users, uint32_t top_k) {
  std::vector<CandidatePair> pairs;
  if (top_k == 0 || top_k >= events.size()) {
    pairs.reserve(static_cast<size_t>(num_users) * events.size());
    for (uint32_t u = 0; u < num_users; ++u) {
      for (ebsn::EventId x : events) {
        pairs.push_back(CandidatePair{x, u});
      }
    }
    return pairs;
  }
  const auto per_user = TopKEventsPerUser(model, events, num_users, top_k);
  pairs.reserve(static_cast<size_t>(num_users) * top_k);
  for (uint32_t u = 0; u < num_users; ++u) {
    for (ebsn::EventId x : per_user[u]) {
      pairs.push_back(CandidatePair{x, u});
    }
  }
  return pairs;
}

}  // namespace gemrec::recommend
