#include "recommend/candidate_index.h"

#include <limits>

#include "common/logging.h"
#include "common/top_k.h"
#include "common/vec_math.h"

namespace gemrec::recommend {

std::vector<std::vector<ebsn::EventId>> TopKEventsPerUser(
    const GemModel& model, const std::vector<ebsn::EventId>& events,
    uint32_t num_users, uint32_t top_k, ThreadPool* pool) {
  const uint32_t dim = model.dim();
  std::vector<std::vector<ebsn::EventId>> result(num_users);
  // Each shard writes only result[u]: no sharing, and the per-user
  // ranking is the same code as the serial path, so the output is
  // bit-identical regardless of the pool (pinned by candidate_index
  // tests).
  auto rank_user = [&](size_t u) {
    const float* uv = model.UserVec(static_cast<uint32_t>(u));
    TopK<ebsn::EventId> best(top_k);
    for (ebsn::EventId x : events) {
      best.Push(x, Dot(uv, model.EventVec(x), dim));
    }
    auto entries = best.TakeSortedDescending();
    result[u].reserve(entries.size());
    for (const auto& e : entries) result[u].push_back(e.id);
  };
  if (pool != nullptr && num_users > 1) {
    pool->ParallelFor(num_users, rank_user);
  } else {
    for (uint32_t u = 0; u < num_users; ++u) rank_user(u);
  }
  return result;
}

std::vector<CandidatePair> BuildCandidatePairs(
    const GemModel& model, const std::vector<ebsn::EventId>& events,
    uint32_t num_users, uint32_t top_k, ThreadPool* pool) {
  std::vector<CandidatePair> pairs;
  if (top_k == 0 || top_k >= events.size()) {
    // Unpruned Table-VI space: |U| · |X| pairs. Guard the size product
    // before reserving (a large synthetic sweep can overflow size_t)
    // and make the quadratic blow-up visible in logs.
    const size_t num_events = events.size();
    if (num_events > 0) {
      GEMREC_CHECK(static_cast<size_t>(num_users) <=
                   std::numeric_limits<size_t>::max() / num_events)
          << "candidate pair count |U|*|X| overflows size_t: " << num_users
          << " users * " << num_events << " events";
    }
    const size_t total = static_cast<size_t>(num_users) * num_events;
    GEMREC_LOG(Warning)
        << "BuildCandidatePairs: top_k=" << top_k
        << " disables pruning; materializing all " << total
        << " event-partner pairs (" << num_users << " users x "
        << num_events << " events)";
    pairs.reserve(total);
    for (uint32_t u = 0; u < num_users; ++u) {
      for (ebsn::EventId x : events) {
        pairs.push_back(CandidatePair{x, u});
      }
    }
    return pairs;
  }
  const auto per_user =
      TopKEventsPerUser(model, events, num_users, top_k, pool);
  pairs.reserve(static_cast<size_t>(num_users) * top_k);
  for (uint32_t u = 0; u < num_users; ++u) {
    for (ebsn::EventId x : per_user[u]) {
      pairs.push_back(CandidatePair{x, u});
    }
  }
  return pairs;
}

}  // namespace gemrec::recommend
