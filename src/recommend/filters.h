#ifndef GEMREC_RECOMMEND_FILTERS_H_
#define GEMREC_RECOMMEND_FILTERS_H_

#include <cstdint>
#include <vector>

#include "ebsn/dataset.h"
#include "ebsn/types.h"

namespace gemrec::ebsn {
struct GeoPoint;
}  // namespace gemrec::ebsn

namespace gemrec::recommend {

/// Declarative event filter for carving the recommendable pool before
/// it is handed to EventPartnerRecommender (e.g. "weekend events within
/// 5 km starting in the next two weeks"). Unset fields do not filter.
struct EventFilter {
  /// Keep events with start_time in [not_before, not_after] (0 = off).
  int64_t not_before = 0;
  int64_t not_after = 0;
  /// 0 = any, 1 = weekdays only, 2 = weekends only.
  enum class Weekpart : uint8_t { kAny = 0, kWeekdayOnly, kWeekendOnly };
  Weekpart weekpart = Weekpart::kAny;
  /// Keep events whose venue lies within `radius_km` of `center`
  /// (radius_km <= 0 = off).
  ebsn::GeoPoint center;
  double radius_km = 0.0;
  /// Keep events whose start hour lies in [hour_from, hour_to)
  /// (wrapping across midnight allowed; equal bounds = off).
  uint32_t hour_from = 0;
  uint32_t hour_to = 0;

  /// True if the event passes every active criterion.
  bool Matches(const ebsn::Dataset& dataset, ebsn::EventId event) const;
};

/// Applies the filter to a candidate event list.
std::vector<ebsn::EventId> FilterEvents(
    const ebsn::Dataset& dataset,
    const std::vector<ebsn::EventId>& events, const EventFilter& filter);

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_FILTERS_H_
