#include "recommend/recommender.h"

#include "common/logging.h"

namespace gemrec::recommend {

EventPartnerRecommender::EventPartnerRecommender(
    const GemModel* model, const std::vector<ebsn::EventId>& events,
    uint32_t num_users, const RecommenderOptions& options)
    : model_(model), options_(options) {
  GEMREC_CHECK(model != nullptr);
  auto pairs = BuildCandidatePairs(*model, events, num_users,
                                   options.top_k_events_per_partner);
  space_ = std::make_unique<TransformedSpace>(*model, std::move(pairs));
  if (options.backend == SearchBackend::kThresholdAlgorithm) {
    ta_ = std::make_unique<TaSearch>(space_.get());
  } else {
    brute_force_ = std::make_unique<BruteForceSearch>(space_.get());
  }
}

std::vector<Recommendation> EventPartnerRecommender::Recommend(
    ebsn::UserId u, size_t n, SearchStats* stats) const {
  std::vector<float> query;
  space_->QueryVector(*model_, u, &query);
  std::vector<SearchHit> hits;
  if (ta_ != nullptr) {
    hits = ta_->Search(query, n, /*exclude_partner=*/u, stats);
  } else {
    hits = brute_force_->Search(query, n, /*exclude_partner=*/u, stats);
  }
  std::vector<Recommendation> out;
  out.reserve(hits.size());
  for (const auto& h : hits) {
    out.push_back(Recommendation{h.pair.event, h.pair.partner, h.score});
  }
  return out;
}

}  // namespace gemrec::recommend
