#ifndef GEMREC_RECOMMEND_BATCH_TA_SEARCH_H_
#define GEMREC_RECOMMEND_BATCH_TA_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/top_k.h"
#include "ebsn/types.h"
#include "recommend/quantized_space.h"
#include "recommend/space_index.h"
#include "recommend/ta_search.h"

namespace gemrec::recommend {

/// One query of a batch.
struct BatchQuery {
  /// (2K+1)-dim nonnegative fp32 query, TransformedSpace layout.
  const float* query = nullptr;
  size_t n = 0;
  ebsn::UserId exclude_partner = 0;
};

/// Aggregate instrumentation of one SearchBatch call.
struct BatchSearchStats {
  /// Distinct (query, pair) examinations across the batch.
  size_t points_examined = 0;
  /// Total sorted-list positions consumed across the batch.
  size_t sorted_accesses = 0;
  /// Pairs re-scored in exact fp32 across the batch.
  size_t reranked = 0;
  /// points_examined / (num_points * batch size).
  double examined_fraction = 0.0;
  /// Time in the quantized stage: query quantization, batched
  /// component dot products, per-query list heapify, and the TA walk.
  uint64_t quantize_scan_us = 0;
  /// Time re-scoring survivors in exact fp32.
  uint64_t rerank_us = 0;
};

/// Multi-query TA over the quantized space, with an exact fp32 re-rank.
///
/// Given a batch of queries, this runs the same aggregate-list TA as
/// TaSearch but restructured around the batch:
///
///   1. Component stage: every query is quantized once, then the
///      compact code matrices are walked *once* — group rows outer,
///      queries inner — so each event/partner row is read from cache
///      for the whole batch instead of once per query. Components are
///      integer dot products (DotQ8/DotQ16, AVX2-dispatched) scaled
///      back to fp32.
///   2. Per-query lazy list orders: the A and B group lists are NOT
///      fully sorted. Each query max-heapifies packed
///      (integer-dot << 32 | group) keys — O(groups), branch-cheap
///      uint64 compares — and the walk pops the next-best group on
///      demand. TA consumes only a short sorted prefix before its
///      threshold fires, so full introsorts (the dominant per-query
///      cost at thousands of partner groups) would be ~95% wasted work.
///   3. Round-robin TA walk: each live query advances its best list a
///      fixed quantum, then yields; queries retire as they stop. The
///      visited set is one generation-stamped uint64 bitmask shared by
///      the whole chunk (bit q = "query q examined this pair"), so
///      batch-64 costs the same memory as a single query.
///   4. Exact re-rank: every pair a query examined is re-scored with
///      the full-width fp32 Dot over the original point matrix, and the
///      top-n of those exact scores is returned.
///
/// Exactness: approximate scores are within epsilon of exact ones
/// (QuantizedSpace::QuantizedQuery), so a query only stops once its
/// n-th best approximate score clears the list-head bound by 2*epsilon
/// — at that point no unexamined pair can beat the true n-th best, and
/// the exact re-rank over the examined set returns precisely the
/// brute-force top-n (modulo ties). Batches of more than 64 queries are
/// processed in chunks of 64.
///
/// Steady-state SearchBatch calls through a warm Workspace perform no
/// heap allocation (pinned by tests/recommend/ta_alloc_test).
class BatchTaSearch {
 public:
  /// Reusable cross-batch workspace; grows on first use and keeps its
  /// storage. Not safe for concurrent use.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class BatchTaSearch;
    struct Cursor {
      size_t a_group, a_offset, b_group, b_offset, c_cursor;
      size_t a_filled, b_filled;  // sorted-prefix length popped so far
      size_t want;
      size_t examined, sorted_accesses;  // this query's own counts
      float epsilon2;  // 2 * epsilon, the threshold widening
      float c_weight;
      /// True-score bound on unexamined pairs, captured when the
      /// widened threshold fires (-inf if the walk ran to exhaustion).
      float stop_bound;
      bool done;
    };
    std::vector<uint8_t> event_q8, partner_q8;     // query codes, int8 mode
    std::vector<int16_t> event_q16, partner_q16;   // query codes, int16 mode
    std::vector<QuantizedSpace::QuantizedQuery> qq;
    std::vector<float> event_comp, partner_comp;   // [query][group]
    /// Per-query (dot << 32 | group) keys: a max-heap in the front,
    /// the popped descending prefix growing from the back.
    std::vector<uint64_t> event_keys, partner_keys;
    std::vector<uint32_t> seen_gen;
    std::vector<uint64_t> seen_bits;
    uint32_t generation = 0;
    std::vector<Cursor> cursors;
    std::vector<std::vector<uint32_t>> examined;
    std::vector<TopK<uint32_t>> heaps;
  };

  /// `quant` (and the SpaceIndex it wraps) must outlive the searcher.
  explicit BatchTaSearch(const QuantizedSpace* quant);

  const SpaceIndex& index() const { return *index_; }

  /// Runs `count` queries; fills results[i] with queries[i]'s exact
  /// top-n (descending score). Result vectors are cleared, not shrunk,
  /// so warm callers stay allocation-free. `stats` may be null;
  /// `per_query_stats`, when non-null, must point at `count` entries
  /// and receives each query's own examine counts.
  void SearchBatch(const BatchQuery* queries, size_t count,
                   std::vector<SearchHit>* results,
                   BatchSearchStats* stats, Workspace* workspace,
                   SearchStats* per_query_stats = nullptr) const;

 private:
  void SearchChunk(const BatchQuery* queries, size_t count,
                   std::vector<SearchHit>* results,
                   BatchSearchStats* stats, Workspace* ws,
                   SearchStats* per_query_stats) const;

  const QuantizedSpace* quant_;
  const SpaceIndex* index_;
  const TransformedSpace* space_;
  uint32_t latent_dim_;
};

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_BATCH_TA_SEARCH_H_
