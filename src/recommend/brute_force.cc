#include "recommend/brute_force.h"

#include "common/logging.h"
#include "common/top_k.h"
#include "common/vec_math.h"

namespace gemrec::recommend {

BruteForceSearch::BruteForceSearch(const TransformedSpace* space)
    : space_(space) {
  GEMREC_CHECK(space != nullptr);
}

std::vector<SearchHit> BruteForceSearch::Search(
    const std::vector<float>& query, size_t n,
    ebsn::UserId exclude_partner, SearchStats* stats) const {
  GEMREC_CHECK(query.size() == space_->point_dim());
  const size_t num_points = space_->num_points();
  std::vector<SearchHit> out;
  SearchStats local_stats;
  if (num_points == 0 || n == 0) {
    if (stats != nullptr) *stats = local_stats;
    return out;
  }
  const uint32_t dim = space_->point_dim();
  TopK<uint32_t> heap(n);
  for (size_t i = 0; i < num_points; ++i) {
    if (space_->pair(i).partner == exclude_partner) continue;
    heap.Push(static_cast<uint32_t>(i),
              Dot(query.data(), space_->Point(i), dim));
  }
  local_stats.points_examined = num_points;
  local_stats.examined_fraction = 1.0;
  auto entries = heap.TakeSortedDescending();
  out.reserve(entries.size());
  for (const auto& e : entries) {
    out.push_back(SearchHit{e.score, e.id, space_->pair(e.id)});
  }
  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace gemrec::recommend
