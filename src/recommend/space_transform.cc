#include "recommend/space_transform.h"

#include <cstring>

#include "common/logging.h"
#include "common/vec_math.h"

namespace gemrec::recommend {

TransformedSpace::TransformedSpace(const GemModel& model,
                                   std::vector<CandidatePair> pairs)
    : point_dim_(2 * model.dim() + 1),
      pairs_(std::move(pairs)),
      points_(pairs_.size(), 2 * model.dim() + 1) {
  const uint32_t k = model.dim();
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const float* x = model.EventVec(pairs_[i].event);
    const float* u = model.UserVec(pairs_[i].partner);
    float* p = points_.Row(i);
    std::memcpy(p, x, k * sizeof(float));
    std::memcpy(p + k, u, k * sizeof(float));
    p[2 * k] = Dot(u, x, k);
  }
}

void TransformedSpace::QueryVector(const GemModel& model, ebsn::UserId u,
                                   std::vector<float>* out) const {
  const uint32_t k = model.dim();
  out->resize(point_dim_);
  const float* uv = model.UserVec(u);
  std::memcpy(out->data(), uv, k * sizeof(float));
  std::memcpy(out->data() + k, uv, k * sizeof(float));
  (*out)[2 * k] = 1.0f;
}

}  // namespace gemrec::recommend
