#ifndef GEMREC_RECOMMEND_GEM_MODEL_H_
#define GEMREC_RECOMMEND_GEM_MODEL_H_

#include <string>

#include "common/vec_math.h"
#include "embedding/embedding_store.h"
#include "recommend/rec_model.h"

namespace gemrec::recommend {

/// RecModel adapter over a trained GEM embedding store: all pairwise
/// scores are inner products in the shared latent space.
class GemModel : public RecModel {
 public:
  /// `store` must outlive the model.
  GemModel(const embedding::EmbeddingStore* store, std::string name)
      : store_(store), name_(std::move(name)) {}

  std::string Name() const override { return name_; }

  float ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const override {
    return Dot(UserVec(u), EventVec(x), store_->dim());
  }

  float ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const override {
    return Dot(UserVec(u), UserVec(v), store_->dim());
  }

  const float* UserVec(ebsn::UserId u) const {
    return store_->VectorOf(graph::NodeType::kUser, u);
  }
  const float* EventVec(ebsn::EventId x) const {
    return store_->VectorOf(graph::NodeType::kEvent, x);
  }
  uint32_t dim() const { return store_->dim(); }
  const embedding::EmbeddingStore& store() const { return *store_; }

 private:
  const embedding::EmbeddingStore* store_;
  std::string name_;
};

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_GEM_MODEL_H_
