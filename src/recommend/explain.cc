#include "recommend/explain.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/vec_math.h"
#include "ebsn/time_slots.h"
#include "graph/bipartite_graph.h"

namespace gemrec::recommend {

std::string Explanation::ToString() const {
  std::ostringstream os;
  os << "score " << total_score << " = user-event "
     << user_event_affinity << " + partner-event "
     << partner_event_affinity << " + social " << social_affinity
     << "\n";
  os << "partner: "
     << (already_friends ? "existing friend" : "potential friend")
     << "\n";
  os << "strongest content matches:";
  for (const auto& [word, affinity] : top_words) {
    os << " word#" << word << "(" << affinity << ")";
  }
  os << "\nregion affinity: " << region_affinity << "\ntime:";
  for (const auto& [slot, affinity] : time_affinities) {
    os << " " << ebsn::TimeSlotName(slot) << "(" << affinity << ")";
  }
  return os.str();
}

Explanation ExplainRecommendation(const GemModel& model,
                                  const ebsn::Dataset& dataset,
                                  const graph::EbsnGraphs& graphs,
                                  ebsn::UserId user, ebsn::EventId event,
                                  ebsn::UserId partner,
                                  size_t top_words_limit) {
  Explanation explanation;
  explanation.user_event_affinity = model.ScoreUserEvent(user, event);
  explanation.partner_event_affinity =
      model.ScoreUserEvent(partner, event);
  explanation.social_affinity = model.ScoreUserUser(user, partner);
  explanation.total_score = explanation.user_event_affinity +
                            explanation.partner_event_affinity +
                            explanation.social_affinity;
  explanation.already_friends = dataset.AreFriends(user, partner);

  const uint32_t dim = model.dim();
  const float* uv = model.UserVec(user);
  const auto& store = model.store();

  // Content: affinity of the user to each distinct word of the event.
  std::set<ebsn::WordId> words(dataset.event(event).words.begin(),
                               dataset.event(event).words.end());
  for (ebsn::WordId w : words) {
    const float affinity =
        Dot(uv, store.VectorOf(graph::NodeType::kWord, w), dim);
    explanation.top_words.emplace_back(w, affinity);
  }
  std::sort(explanation.top_words.begin(), explanation.top_words.end(),
            [](const auto& a, const auto& b) {
              return a.second > b.second;
            });
  if (explanation.top_words.size() > top_words_limit) {
    explanation.top_words.resize(top_words_limit);
  }

  // Context: region and time-slot affinities.
  const ebsn::RegionId region = graphs.event_region[event];
  explanation.region_affinity =
      Dot(uv, store.VectorOf(graph::NodeType::kLocation, region), dim);
  for (ebsn::TimeSlotId slot :
       ebsn::TimeSlotsFor(dataset.event(event).start_time)) {
    explanation.time_affinities.emplace_back(
        slot, Dot(uv, store.VectorOf(graph::NodeType::kTime, slot), dim));
  }
  return explanation;
}

}  // namespace gemrec::recommend
