#include "recommend/ta_search.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/vec_math.h"

namespace gemrec::recommend {
namespace {

/// Default workspace for the wrapper API. Thread-local so concurrent
/// readers (e.g. a serving pool) never contend or share buffers.
thread_local TaSearch::Scratch t_default_scratch;

}  // namespace

TaSearch::TaSearch(const TransformedSpace* space)
    : owned_index_(std::make_unique<SpaceIndex>(space)),
      index_(owned_index_.get()),
      space_(space),
      latent_dim_(owned_index_->latent_dim()) {}

TaSearch::TaSearch(const SpaceIndex* index)
    : index_(index),
      space_(&index->space()),
      latent_dim_(index->latent_dim()) {
  GEMREC_CHECK(index != nullptr);
}

std::vector<SearchHit> TaSearch::Search(const std::vector<float>& query,
                                        size_t n,
                                        ebsn::UserId exclude_partner,
                                        SearchStats* stats) const {
  std::vector<SearchHit> out;
  SearchInto(query, n, exclude_partner, &out, stats, nullptr);
  return out;
}

void TaSearch::SearchInto(const std::vector<float>& query, size_t n,
                          ebsn::UserId exclude_partner,
                          std::vector<SearchHit>* out, SearchStats* stats,
                          Scratch* scratch) const {
  GEMREC_CHECK(out != nullptr);
  GEMREC_CHECK(query.size() == space_->point_dim());
  if (scratch == nullptr) scratch = &t_default_scratch;
  const size_t num_points = space_->num_points();
  SearchStats local_stats;
  out->clear();

  auto finish = [&]() {
    local_stats.examined_fraction =
        num_points == 0 ? 0.0
                        : static_cast<double>(local_stats.points_examined) /
                              static_cast<double>(num_points);
    if (stats != nullptr) *stats = local_stats;
  };

  if (num_points == 0 || n == 0) {
    finish();
    return;
  }

  const uint32_t k = latent_dim_;
  const uint32_t c_dim = 2 * k;
  const float c_weight = query[c_dim];

  const auto& event_pairs = index_->event_pairs();
  const auto& partner_pairs = index_->partner_pairs();
  const auto& pair_event_idx = index_->pair_event_idx();
  const auto& pair_partner_idx = index_->pair_partner_idx();
  const auto& c_sorted = index_->c_sorted();
  const size_t num_events = index_->num_events();
  const size_t num_partners = index_->num_partners();

  // Per-group aggregate components: A over the event block, B over the
  // partner block. Computed from any representative pair of the group
  // (those coordinates are identical across the group by construction).
  // resize() allocates only on the first query through this scratch.
  scratch->event_component.resize(num_events);
  float* event_component = scratch->event_component.data();
  for (size_t e = 0; e < num_events; ++e) {
    const float* p = space_->Point(event_pairs[e].front());
    event_component[e] = Dot(query.data(), p, k);
  }
  scratch->partner_component.resize(num_partners);
  float* partner_component = scratch->partner_component.data();
  for (size_t u = 0; u < num_partners; ++u) {
    const float* p = space_->Point(partner_pairs[u].front());
    partner_component[u] = Dot(query.data() + k, p + k, k);
  }
  auto pair_score = [&](uint32_t id, uint32_t event_idx,
                        uint32_t partner_idx) {
    return event_component[event_idx] + partner_component[partner_idx] +
           c_weight * space_->Point(id)[c_dim];
  };

  // Query-time orderings of the A and B lists (in-place introsort; no
  // scratch buffer, unlike stable_sort).
  scratch->event_order.resize(num_events);
  std::vector<uint32_t>& event_order = scratch->event_order;
  std::iota(event_order.begin(), event_order.end(), 0);
  std::sort(event_order.begin(), event_order.end(),
            [&](uint32_t a, uint32_t b) {
              return event_component[a] > event_component[b];
            });
  scratch->partner_order.resize(num_partners);
  std::vector<uint32_t>& partner_order = scratch->partner_order;
  std::iota(partner_order.begin(), partner_order.end(), 0);
  std::sort(partner_order.begin(), partner_order.end(),
            [&](uint32_t a, uint32_t b) {
              return partner_component[a] > partner_component[b];
            });

  // O(1) census via the index-built partner map: every pair is a
  // candidate except those of the excluded partner.
  const size_t want =
      std::min(n, index_->ResultsPossible(exclude_partner));
  if (want == 0) {
    finish();
    return;
  }

  TopK<uint32_t>& heap = scratch->heap;
  heap.Reset(n);
  // Generation-stamped visited set: bumping the generation invalidates
  // every mark from earlier queries without touching the array.
  if (scratch->seen_gen.size() < num_points) {
    scratch->seen_gen.assign(num_points, 0);
    scratch->generation = 0;
  }
  if (++scratch->generation == 0) {  // wrapped: hard reset
    std::fill(scratch->seen_gen.begin(), scratch->seen_gen.end(), 0);
    scratch->generation = 1;
  }
  const uint32_t generation = scratch->generation;
  uint32_t* seen = scratch->seen_gen.data();

  auto examine = [&](uint32_t id) {
    if (seen[id] == generation) return;
    seen[id] = generation;
    ++local_stats.points_examined;
    if (space_->pair(id).partner == exclude_partner) return;
    heap.Push(id, pair_score(id, pair_event_idx[id], pair_partner_idx[id]));
  };

  // Three-list TA with best-first scheduling: cursors into the A-, B-
  // and C-ordered enumerations of pairs; the unseen-pair bound is
  // A_next + B_next + C_next.
  size_t a_group = 0;      // index into event_order
  size_t a_offset = 0;     // within the group's pair list
  size_t b_group = 0;
  size_t b_offset = 0;
  size_t c_cursor = 0;

  auto a_head = [&]() {
    return a_group < event_order.size()
               ? event_component[event_order[a_group]]
               : 0.0f;
  };
  auto b_head = [&]() {
    return b_group < partner_order.size()
               ? partner_component[partner_order[b_group]]
               : 0.0f;
  };
  auto c_head = [&]() {
    return c_cursor < num_points
               ? c_weight * space_->Point(c_sorted[c_cursor])[c_dim]
               : 0.0f;
  };

  // -inf until the threshold break fires; stays -inf on exhaustion
  // (every pair was examined, so no unexamined pair needs a bound).
  float stop_bound = -std::numeric_limits<float>::infinity();
  while (true) {
    const float ha = a_head();
    const float hb = b_head();
    const float hc = c_head();
    if (heap.size() >= want &&
        heap.Threshold() >= ha + hb + hc) {
      stop_bound = ha + hb + hc;
      break;
    }
    if (a_group >= event_order.size() &&
        b_group >= partner_order.size() && c_cursor >= num_points) {
      break;  // everything consumed
    }
    // Best-first: advance the list with the largest head.
    if (ha >= hb && ha >= hc && a_group < event_order.size()) {
      const auto& pairs = event_pairs[event_order[a_group]];
      examine(pairs[a_offset]);
      ++local_stats.sorted_accesses;
      if (++a_offset >= pairs.size()) {
        a_offset = 0;
        ++a_group;
      }
    } else if (hb >= hc && b_group < partner_order.size()) {
      const auto& pairs = partner_pairs[partner_order[b_group]];
      examine(pairs[b_offset]);
      ++local_stats.sorted_accesses;
      if (++b_offset >= pairs.size()) {
        b_offset = 0;
        ++b_group;
      }
    } else if (c_cursor < num_points) {
      examine(c_sorted[c_cursor]);
      ++local_stats.sorted_accesses;
      ++c_cursor;
    } else {
      // Preferred list exhausted; fall back to any remaining one.
      if (a_group < event_order.size()) {
        const auto& pairs = event_pairs[event_order[a_group]];
        examine(pairs[a_offset]);
        ++local_stats.sorted_accesses;
        if (++a_offset >= pairs.size()) {
          a_offset = 0;
          ++a_group;
        }
      } else if (b_group < partner_order.size()) {
        const auto& pairs = partner_pairs[partner_order[b_group]];
        examine(pairs[b_offset]);
        ++local_stats.sorted_accesses;
        if (++b_offset >= pairs.size()) {
          b_offset = 0;
          ++b_group;
        }
      }
    }
  }

  // Unreturned-score bound: the stop threshold covers unexamined pairs;
  // a full heap's minimum covers examined-but-evicted pairs. (want < n
  // never fills the heap beyond what exists, so the second term stays
  // inactive exactly when nothing was evicted.)
  local_stats.unreturned_bound = stop_bound;
  if (heap.full()) {
    local_stats.unreturned_bound =
        std::max(local_stats.unreturned_bound, heap.Threshold());
  }

  const auto& entries = heap.SortDescendingInPlace();
  out->reserve(entries.size());
  for (const auto& e : entries) {
    out->push_back(SearchHit{e.score, e.id, space_->pair(e.id)});
  }
  finish();
}

}  // namespace gemrec::recommend
