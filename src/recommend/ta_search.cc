#include "recommend/ta_search.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "common/top_k.h"
#include "common/vec_math.h"

namespace gemrec::recommend {

TaSearch::TaSearch(const TransformedSpace* space) : space_(space) {
  GEMREC_CHECK(space != nullptr);
  GEMREC_CHECK(space->point_dim() % 2 == 1);
  latent_dim_ = (space->point_dim() - 1) / 2;
  const size_t n = space_->num_points();

  std::unordered_map<ebsn::EventId, uint32_t> event_index;
  std::unordered_map<ebsn::UserId, uint32_t> partner_index;
  for (size_t i = 0; i < n; ++i) {
    const CandidatePair& pair = space_->pair(i);
    auto [eit, einserted] = event_index.try_emplace(
        pair.event, static_cast<uint32_t>(events_.size()));
    if (einserted) {
      events_.push_back(pair.event);
      event_pairs_.emplace_back();
    }
    event_pairs_[eit->second].push_back(static_cast<uint32_t>(i));

    auto [pit, pinserted] = partner_index.try_emplace(
        pair.partner, static_cast<uint32_t>(partners_.size()));
    if (pinserted) {
      partners_.push_back(pair.partner);
      partner_pairs_.emplace_back();
    }
    partner_pairs_[pit->second].push_back(static_cast<uint32_t>(i));
  }

  c_sorted_.resize(n);
  std::iota(c_sorted_.begin(), c_sorted_.end(), 0);
  const uint32_t c_dim = 2 * latent_dim_;
  std::stable_sort(c_sorted_.begin(), c_sorted_.end(),
                   [&](uint32_t a, uint32_t b) {
                     return space_->Point(a)[c_dim] >
                            space_->Point(b)[c_dim];
                   });
}

std::vector<SearchHit> TaSearch::Search(const std::vector<float>& query,
                                        size_t n,
                                        ebsn::UserId exclude_partner,
                                        SearchStats* stats) const {
  GEMREC_CHECK(query.size() == space_->point_dim());
  const size_t num_points = space_->num_points();
  SearchStats local_stats;
  std::vector<SearchHit> out;

  auto finish = [&]() {
    local_stats.examined_fraction =
        num_points == 0 ? 0.0
                        : static_cast<double>(local_stats.points_examined) /
                              static_cast<double>(num_points);
    if (stats != nullptr) *stats = local_stats;
  };

  if (num_points == 0 || n == 0) {
    finish();
    return out;
  }

  const uint32_t k = latent_dim_;
  const uint32_t c_dim = 2 * k;
  const float c_weight = query[c_dim];

  // Per-group aggregate components: A over the event block, B over the
  // partner block. Computed from any representative pair of the group
  // (those coordinates are identical across the group by construction).
  std::vector<float> event_component(events_.size());
  for (size_t e = 0; e < events_.size(); ++e) {
    const float* p = space_->Point(event_pairs_[e].front());
    event_component[e] = Dot(query.data(), p, k);
  }
  std::vector<float> partner_component(partners_.size());
  for (size_t u = 0; u < partners_.size(); ++u) {
    const float* p = space_->Point(partner_pairs_[u].front());
    partner_component[u] = Dot(query.data() + k, p + k, k);
  }
  auto pair_score = [&](uint32_t id, uint32_t event_idx,
                        uint32_t partner_idx) {
    return event_component[event_idx] + partner_component[partner_idx] +
           c_weight * space_->Point(id)[c_dim];
  };

  // Query-time orderings of the A and B lists.
  std::vector<uint32_t> event_order(events_.size());
  std::iota(event_order.begin(), event_order.end(), 0);
  std::sort(event_order.begin(), event_order.end(),
            [&](uint32_t a, uint32_t b) {
              return event_component[a] > event_component[b];
            });
  std::vector<uint32_t> partner_order(partners_.size());
  std::iota(partner_order.begin(), partner_order.end(), 0);
  std::sort(partner_order.begin(), partner_order.end(),
            [&](uint32_t a, uint32_t b) {
              return partner_component[a] > partner_component[b];
            });

  // Inverse maps so a pair's components are O(1) during random access.
  std::vector<uint32_t> pair_event_idx(num_points);
  for (size_t e = 0; e < events_.size(); ++e) {
    for (uint32_t id : event_pairs_[e]) {
      pair_event_idx[id] = static_cast<uint32_t>(e);
    }
  }
  std::vector<uint32_t> pair_partner_idx(num_points);
  for (size_t u = 0; u < partners_.size(); ++u) {
    for (uint32_t id : partner_pairs_[u]) {
      pair_partner_idx[id] = static_cast<uint32_t>(u);
    }
  }

  size_t results_possible = 0;
  for (size_t i = 0; i < num_points; ++i) {
    if (space_->pair(i).partner != exclude_partner) ++results_possible;
  }
  const size_t want = std::min(n, results_possible);
  if (want == 0) {
    finish();
    return out;
  }

  TopK<uint32_t> heap(n);
  std::vector<uint8_t> seen(num_points, 0);

  auto examine = [&](uint32_t id) {
    if (seen[id] != 0) return;
    seen[id] = 1;
    ++local_stats.points_examined;
    if (space_->pair(id).partner == exclude_partner) return;
    heap.Push(id,
              pair_score(id, pair_event_idx[id], pair_partner_idx[id]));
  };

  // Three-list TA with best-first scheduling: cursors into the A-, B-
  // and C-ordered enumerations of pairs; the unseen-pair bound is
  // A_next + B_next + C_next.
  size_t a_group = 0;      // index into event_order
  size_t a_offset = 0;     // within the group's pair list
  size_t b_group = 0;
  size_t b_offset = 0;
  size_t c_cursor = 0;

  auto a_head = [&]() {
    return a_group < event_order.size()
               ? event_component[event_order[a_group]]
               : 0.0f;
  };
  auto b_head = [&]() {
    return b_group < partner_order.size()
               ? partner_component[partner_order[b_group]]
               : 0.0f;
  };
  auto c_head = [&]() {
    return c_cursor < num_points
               ? c_weight * space_->Point(c_sorted_[c_cursor])[c_dim]
               : 0.0f;
  };

  while (true) {
    const float ha = a_head();
    const float hb = b_head();
    const float hc = c_head();
    if (heap.size() >= want &&
        heap.Threshold() >= ha + hb + hc) {
      break;
    }
    if (a_group >= event_order.size() &&
        b_group >= partner_order.size() && c_cursor >= num_points) {
      break;  // everything consumed
    }
    // Best-first: advance the list with the largest head.
    if (ha >= hb && ha >= hc && a_group < event_order.size()) {
      const auto& pairs = event_pairs_[event_order[a_group]];
      examine(pairs[a_offset]);
      ++local_stats.sorted_accesses;
      if (++a_offset >= pairs.size()) {
        a_offset = 0;
        ++a_group;
      }
    } else if (hb >= hc && b_group < partner_order.size()) {
      const auto& pairs = partner_pairs_[partner_order[b_group]];
      examine(pairs[b_offset]);
      ++local_stats.sorted_accesses;
      if (++b_offset >= pairs.size()) {
        b_offset = 0;
        ++b_group;
      }
    } else if (c_cursor < num_points) {
      examine(c_sorted_[c_cursor]);
      ++local_stats.sorted_accesses;
      ++c_cursor;
    } else {
      // Preferred list exhausted; fall back to any remaining one.
      if (a_group < event_order.size()) {
        const auto& pairs = event_pairs_[event_order[a_group]];
        examine(pairs[a_offset]);
        ++local_stats.sorted_accesses;
        if (++a_offset >= pairs.size()) {
          a_offset = 0;
          ++a_group;
        }
      } else if (b_group < partner_order.size()) {
        const auto& pairs = partner_pairs_[partner_order[b_group]];
        examine(pairs[b_offset]);
        ++local_stats.sorted_accesses;
        if (++b_offset >= pairs.size()) {
          b_offset = 0;
          ++b_group;
        }
      }
    }
  }

  auto entries = heap.TakeSortedDescending();
  out.reserve(entries.size());
  for (const auto& e : entries) {
    out.push_back(SearchHit{e.score, e.id, space_->pair(e.id)});
  }
  finish();
  return out;
}

}  // namespace gemrec::recommend
