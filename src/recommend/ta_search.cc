#include "recommend/ta_search.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/vec_math.h"

namespace gemrec::recommend {
namespace {

/// Default workspace for the wrapper API. Thread-local so concurrent
/// readers (e.g. a serving pool) never contend or share buffers.
thread_local TaSearch::Scratch t_default_scratch;

}  // namespace

TaSearch::TaSearch(const TransformedSpace* space) : space_(space) {
  GEMREC_CHECK(space != nullptr);
  GEMREC_CHECK(space->point_dim() % 2 == 1);
  latent_dim_ = (space->point_dim() - 1) / 2;
  const size_t n = space_->num_points();

  std::unordered_map<ebsn::EventId, uint32_t> event_index;
  for (size_t i = 0; i < n; ++i) {
    const CandidatePair& pair = space_->pair(i);
    auto [eit, einserted] = event_index.try_emplace(
        pair.event, static_cast<uint32_t>(events_.size()));
    if (einserted) {
      events_.push_back(pair.event);
      event_pairs_.emplace_back();
    }
    event_pairs_[eit->second].push_back(static_cast<uint32_t>(i));

    auto [pit, pinserted] = partner_index_.try_emplace(
        pair.partner, static_cast<uint32_t>(partners_.size()));
    if (pinserted) {
      partners_.push_back(pair.partner);
      partner_pairs_.emplace_back();
    }
    partner_pairs_[pit->second].push_back(static_cast<uint32_t>(i));
  }

  // Inverse maps so a pair's components are O(1) during random access.
  // Query-independent, so built here instead of per Search call.
  pair_event_idx_.resize(n);
  for (size_t e = 0; e < events_.size(); ++e) {
    for (uint32_t id : event_pairs_[e]) {
      pair_event_idx_[id] = static_cast<uint32_t>(e);
    }
  }
  pair_partner_idx_.resize(n);
  for (size_t u = 0; u < partners_.size(); ++u) {
    for (uint32_t id : partner_pairs_[u]) {
      pair_partner_idx_[id] = static_cast<uint32_t>(u);
    }
  }

  c_sorted_.resize(n);
  std::iota(c_sorted_.begin(), c_sorted_.end(), 0);
  const uint32_t c_dim = 2 * latent_dim_;
  std::stable_sort(c_sorted_.begin(), c_sorted_.end(),
                   [&](uint32_t a, uint32_t b) {
                     return space_->Point(a)[c_dim] >
                            space_->Point(b)[c_dim];
                   });
}

std::vector<SearchHit> TaSearch::Search(const std::vector<float>& query,
                                        size_t n,
                                        ebsn::UserId exclude_partner,
                                        SearchStats* stats) const {
  std::vector<SearchHit> out;
  SearchInto(query, n, exclude_partner, &out, stats, nullptr);
  return out;
}

void TaSearch::SearchInto(const std::vector<float>& query, size_t n,
                          ebsn::UserId exclude_partner,
                          std::vector<SearchHit>* out, SearchStats* stats,
                          Scratch* scratch) const {
  GEMREC_CHECK(out != nullptr);
  GEMREC_CHECK(query.size() == space_->point_dim());
  if (scratch == nullptr) scratch = &t_default_scratch;
  const size_t num_points = space_->num_points();
  SearchStats local_stats;
  out->clear();

  auto finish = [&]() {
    local_stats.examined_fraction =
        num_points == 0 ? 0.0
                        : static_cast<double>(local_stats.points_examined) /
                              static_cast<double>(num_points);
    if (stats != nullptr) *stats = local_stats;
  };

  if (num_points == 0 || n == 0) {
    finish();
    return;
  }

  const uint32_t k = latent_dim_;
  const uint32_t c_dim = 2 * k;
  const float c_weight = query[c_dim];

  // Per-group aggregate components: A over the event block, B over the
  // partner block. Computed from any representative pair of the group
  // (those coordinates are identical across the group by construction).
  // resize() allocates only on the first query through this scratch.
  scratch->event_component.resize(events_.size());
  float* event_component = scratch->event_component.data();
  for (size_t e = 0; e < events_.size(); ++e) {
    const float* p = space_->Point(event_pairs_[e].front());
    event_component[e] = Dot(query.data(), p, k);
  }
  scratch->partner_component.resize(partners_.size());
  float* partner_component = scratch->partner_component.data();
  for (size_t u = 0; u < partners_.size(); ++u) {
    const float* p = space_->Point(partner_pairs_[u].front());
    partner_component[u] = Dot(query.data() + k, p + k, k);
  }
  auto pair_score = [&](uint32_t id, uint32_t event_idx,
                        uint32_t partner_idx) {
    return event_component[event_idx] + partner_component[partner_idx] +
           c_weight * space_->Point(id)[c_dim];
  };

  // Query-time orderings of the A and B lists (in-place introsort; no
  // scratch buffer, unlike stable_sort).
  scratch->event_order.resize(events_.size());
  std::vector<uint32_t>& event_order = scratch->event_order;
  std::iota(event_order.begin(), event_order.end(), 0);
  std::sort(event_order.begin(), event_order.end(),
            [&](uint32_t a, uint32_t b) {
              return event_component[a] > event_component[b];
            });
  scratch->partner_order.resize(partners_.size());
  std::vector<uint32_t>& partner_order = scratch->partner_order;
  std::iota(partner_order.begin(), partner_order.end(), 0);
  std::sort(partner_order.begin(), partner_order.end(),
            [&](uint32_t a, uint32_t b) {
              return partner_component[a] > partner_component[b];
            });

  // O(1) census via the constructor-built partner index: every pair is
  // a candidate except those of the excluded partner.
  size_t results_possible = num_points;
  if (auto it = partner_index_.find(exclude_partner);
      it != partner_index_.end()) {
    results_possible -= partner_pairs_[it->second].size();
  }
  const size_t want = std::min(n, results_possible);
  if (want == 0) {
    finish();
    return;
  }

  TopK<uint32_t>& heap = scratch->heap;
  heap.Reset(n);
  // Generation-stamped visited set: bumping the generation invalidates
  // every mark from earlier queries without touching the array.
  if (scratch->seen_gen.size() < num_points) {
    scratch->seen_gen.assign(num_points, 0);
    scratch->generation = 0;
  }
  if (++scratch->generation == 0) {  // wrapped: hard reset
    std::fill(scratch->seen_gen.begin(), scratch->seen_gen.end(), 0);
    scratch->generation = 1;
  }
  const uint32_t generation = scratch->generation;
  uint32_t* seen = scratch->seen_gen.data();

  auto examine = [&](uint32_t id) {
    if (seen[id] == generation) return;
    seen[id] = generation;
    ++local_stats.points_examined;
    if (space_->pair(id).partner == exclude_partner) return;
    heap.Push(id,
              pair_score(id, pair_event_idx_[id], pair_partner_idx_[id]));
  };

  // Three-list TA with best-first scheduling: cursors into the A-, B-
  // and C-ordered enumerations of pairs; the unseen-pair bound is
  // A_next + B_next + C_next.
  size_t a_group = 0;      // index into event_order
  size_t a_offset = 0;     // within the group's pair list
  size_t b_group = 0;
  size_t b_offset = 0;
  size_t c_cursor = 0;

  auto a_head = [&]() {
    return a_group < event_order.size()
               ? event_component[event_order[a_group]]
               : 0.0f;
  };
  auto b_head = [&]() {
    return b_group < partner_order.size()
               ? partner_component[partner_order[b_group]]
               : 0.0f;
  };
  auto c_head = [&]() {
    return c_cursor < num_points
               ? c_weight * space_->Point(c_sorted_[c_cursor])[c_dim]
               : 0.0f;
  };

  while (true) {
    const float ha = a_head();
    const float hb = b_head();
    const float hc = c_head();
    if (heap.size() >= want &&
        heap.Threshold() >= ha + hb + hc) {
      break;
    }
    if (a_group >= event_order.size() &&
        b_group >= partner_order.size() && c_cursor >= num_points) {
      break;  // everything consumed
    }
    // Best-first: advance the list with the largest head.
    if (ha >= hb && ha >= hc && a_group < event_order.size()) {
      const auto& pairs = event_pairs_[event_order[a_group]];
      examine(pairs[a_offset]);
      ++local_stats.sorted_accesses;
      if (++a_offset >= pairs.size()) {
        a_offset = 0;
        ++a_group;
      }
    } else if (hb >= hc && b_group < partner_order.size()) {
      const auto& pairs = partner_pairs_[partner_order[b_group]];
      examine(pairs[b_offset]);
      ++local_stats.sorted_accesses;
      if (++b_offset >= pairs.size()) {
        b_offset = 0;
        ++b_group;
      }
    } else if (c_cursor < num_points) {
      examine(c_sorted_[c_cursor]);
      ++local_stats.sorted_accesses;
      ++c_cursor;
    } else {
      // Preferred list exhausted; fall back to any remaining one.
      if (a_group < event_order.size()) {
        const auto& pairs = event_pairs_[event_order[a_group]];
        examine(pairs[a_offset]);
        ++local_stats.sorted_accesses;
        if (++a_offset >= pairs.size()) {
          a_offset = 0;
          ++a_group;
        }
      } else if (b_group < partner_order.size()) {
        const auto& pairs = partner_pairs_[partner_order[b_group]];
        examine(pairs[b_offset]);
        ++local_stats.sorted_accesses;
        if (++b_offset >= pairs.size()) {
          b_offset = 0;
          ++b_group;
        }
      }
    }
  }

  const auto& entries = heap.SortDescendingInPlace();
  out->reserve(entries.size());
  for (const auto& e : entries) {
    out->push_back(SearchHit{e.score, e.id, space_->pair(e.id)});
  }
  finish();
}

}  // namespace gemrec::recommend
