#ifndef GEMREC_RECOMMEND_SPACE_TRANSFORM_H_
#define GEMREC_RECOMMEND_SPACE_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "ebsn/types.h"
#include "recommend/gem_model.h"

namespace gemrec::recommend {

/// One candidate event-partner pair.
struct CandidatePair {
  ebsn::EventId event = ebsn::kInvalidId;
  ebsn::UserId partner = ebsn::kInvalidId;
};

/// The paper's space transformation (§IV): every event-partner pair
/// (x, u') maps to the point
///     p_{xu'} = (x̄, ū', ū'ᵀx̄)                     ∈ R^{2K+1}
/// and a query user u maps to
///     q_u = (ū, ū, 1)                              ∈ R^{2K+1}
/// so the joint score of Eqn 8,
///     ūᵀx̄ + ū'ᵀx̄ + ūᵀū',
/// becomes the plain inner product q_uᵀ p_{xu'} — which standard
/// top-n dot-product retrieval (TA) can process.
///
/// Points are materialized offline, as in the paper (space cost
/// O(#pairs · K)).
class TransformedSpace {
 public:
  /// Materializes the points for the given candidate pairs.
  TransformedSpace(const GemModel& model,
                   std::vector<CandidatePair> pairs);

  uint32_t point_dim() const { return point_dim_; }  // 2K+1
  size_t num_points() const { return pairs_.size(); }
  const std::vector<CandidatePair>& pairs() const { return pairs_; }
  const CandidatePair& pair(size_t i) const { return pairs_[i]; }

  const float* Point(size_t i) const { return points_.Row(i); }

  /// Fills `out` (size 2K+1) with the query point q_u.
  void QueryVector(const GemModel& model, ebsn::UserId u,
                   std::vector<float>* out) const;

 private:
  uint32_t point_dim_;
  std::vector<CandidatePair> pairs_;
  Matrix points_;
};

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_SPACE_TRANSFORM_H_
