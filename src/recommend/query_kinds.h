#ifndef GEMREC_RECOMMEND_QUERY_KINDS_H_
#define GEMREC_RECOMMEND_QUERY_KINDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ebsn/types.h"
#include "recommend/gem_model.h"
#include "recommend/recommender.h"
#include "recommend/space_transform.h"
#include "recommend/ta_search.h"

namespace gemrec::recommend {

/// The workload a query asks for. Wire values are frozen (they travel
/// in v2 request frames); add new kinds at the end only.
enum class QueryKind : uint8_t {
  /// The paper's joint event-partner ranking: top-n (event, partner)
  /// pairs under f(u, u', x) = u·x + u'·x + u·u' (Eqn 8).
  kPartner = 0,
  /// Group-event ranking: given u and a fixed partner set G, top-n
  /// events under S(x) = agg_{u' in G} f(u, u', x). Results carry
  /// partner = kInvalidId (the partners are the request's group).
  kGroup = 1,
  /// Reciprocal partner ranking: top-n (event, partner) pairs under
  /// r(u, u', x) = min(d(u -> u', x), d(u' -> u, x)) where the
  /// directed score d(a -> b, x) = a·x + a·b keeps only the terms the
  /// viewer a cares about — both sides must want the match.
  kReciprocal = 2,
};

/// How a group query folds its per-member pairwise terms.
enum class GroupAggregator : uint8_t {
  kSum = 0,  // social welfare: the group's total utility
  kMin = 1,  // least-misery: the unhappiest member decides
};

const char* QueryKindName(QueryKind kind);
const char* GroupAggregatorName(GroupAggregator agg);
/// Parses the CLI spellings ("partner", "group", "reciprocal" /
/// "sum", "min"); returns false on anything else.
bool ParseQueryKind(const std::string& text, QueryKind* out);
bool ParseGroupAggregator(const std::string& text, GroupAggregator* out);

/// Eqn 8 pairwise score, assembled exactly the way the TA engine
/// assembles it over the transformed space (A + B + C as three partial
/// sums) so offline oracles and served answers agree bitwise.
float PairwiseScore(const GemModel& model, ebsn::UserId user,
                    ebsn::UserId partner, ebsn::EventId event);

/// Directed score d(viewer -> peer, event) = viewer·event +
/// viewer·peer: the two Eqn 8 terms that involve the viewer. Equals
/// q·p over the transformed space for the query (viewer, viewer, 0) —
/// bitwise, because TA assembles q·p as Dot(q, p, K) +
/// Dot(q + K, p + K, K) + 0·C and the space stores verbatim embedding
/// rows.
float DirectedScore(const GemModel& model, ebsn::UserId viewer,
                    ebsn::UserId peer, ebsn::EventId event);

/// min of the two directed scores; symmetric in (user, partner).
float ReciprocalScore(const GemModel& model, ebsn::UserId user,
                      ebsn::UserId partner, ebsn::EventId event);

/// Aggregated group score S(x) = agg_{m in members} f(user, m, x).
/// Member order is part of the contract: kSum accumulates in the given
/// order, so every replica (and the oracle) produces identical floats.
/// `members` must be non-empty.
float GroupEventScore(const GemModel& model, ebsn::UserId user,
                      const std::vector<ebsn::UserId>& members,
                      ebsn::EventId event, GroupAggregator agg);

/// Fills the forward directed-retrieval query (u, u, 0): zeroing the
/// C coordinate drops the peer's own event-interest term, turning the
/// stock TA/batch engines into exact d(u -> ·, ·) retrievers. All
/// coordinates stay nonnegative (rectified embeddings), so the TA
/// bound argument is unchanged.
void ReciprocalQueryVector(const GemModel& model, ebsn::UserId u,
                           size_t point_dim, std::vector<float>* out);

/// Canonical result order shared by the oracles, the serve paths and
/// the shard merger: score descending, ties by (event, partner)
/// ascending — N-shard merges reproduce it bit-for-bit.
bool RecommendationOrder(const Recommendation& a, const Recommendation& b);

/// Exhaustive group-event ranking over `events` (the oracle, and the
/// serve-path scan — group scoring has no sorted-list structure to
/// prune with, so serving runs this same code over its event slice).
/// `bound_out`, when non-null, receives a sound upper bound on the
/// score of every event NOT returned: the best dropped score, or -inf
/// when nothing was dropped (SearchStats::unreturned_bound
/// convention).
std::vector<Recommendation> GroupTopEvents(
    const GemModel& model, const std::vector<ebsn::EventId>& events,
    ebsn::UserId user, const std::vector<ebsn::UserId>& members,
    GroupAggregator agg, size_t n, float* bound_out = nullptr);

/// Exhaustive reciprocal ranking over a transformed space (the
/// oracle). Pairs with partner == user are excluded, mirroring the
/// partner serve path. Bound semantics as in GroupTopEvents.
std::vector<Recommendation> ReciprocalTopPairs(
    const GemModel& model, const TransformedSpace& space, ebsn::UserId user,
    size_t n, float* bound_out = nullptr);

/// Reusable buffers for ReciprocalSearch (allocation-free steady
/// state, like TaSearch::Scratch).
struct ReciprocalScratch {
  TaSearch::Scratch ta;
  std::vector<float> query;
  std::vector<SearchHit> hits;
  std::vector<Recommendation> rescored;
};

/// Certified reciprocal top-n via iterative deepening over the exact
/// TA engine:
///
///   m = max(4n, 64); forward-search top-m with query (u, u, 0);
///   rescore every hit with the exact reciprocal min; keep the top n
///   under RecommendationOrder; stop when the n-th reciprocal score
///   strictly exceeds the forward search's unreturned bound (no
///   unexamined pair can reach the top n, since r <= d_forward), or
///   the space is exhausted; else double m.
///
/// Termination: m doubles past the space size, at which point the
/// forward search exhausts and the ranking is exact by enumeration.
///
/// `bound_out` receives max(best dropped reciprocal score, forward
/// unreturned bound at the stopping m) — a sound upper bound on every
/// unreturned pair's reciprocal score, and never above the n-th
/// returned score (so the shard merger's completeness certificate
/// kth >= max shard bound holds). -inf when nothing was left out.
///
/// `stats_out`, when non-null, receives the final forward search's
/// stats (cumulative examined/sorted counters across deepening
/// rounds).
std::vector<Recommendation> ReciprocalSearch(
    const GemModel& model, const TaSearch& searcher,
    const TransformedSpace& space, ebsn::UserId user, size_t n,
    ReciprocalScratch* scratch, float* bound_out = nullptr,
    SearchStats* stats_out = nullptr);

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_QUERY_KINDS_H_
