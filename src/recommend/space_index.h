#ifndef GEMREC_RECOMMEND_SPACE_INDEX_H_
#define GEMREC_RECOMMEND_SPACE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ebsn/types.h"
#include "recommend/space_transform.h"

namespace gemrec::recommend {

/// Query-independent structure of a TransformedSpace, extracted from
/// TaSearch so every searcher over the same space (exact TA, the
/// quantized batch path, and QuantizedSpace's per-group compaction)
/// shares one O(n log n) preprocessing pass instead of each rebuilding
/// it:
///   * distinct events/partners with their pair-index lists (the
///     "groups" whose aggregate components A and B the TA walks),
///   * pair -> group inverse maps for O(1) random-access scoring,
///   * the pair order sorted by the materialized C coordinate
///     descending (the one sorted list that is query-independent),
///   * the partner census used by the exclusion filter.
///
/// Immutable after construction; `space` must outlive the index.
class SpaceIndex {
 public:
  explicit SpaceIndex(const TransformedSpace* space);

  const TransformedSpace& space() const { return *space_; }
  /// K: the latent dimension (point_dim == 2K + 1).
  uint32_t latent_dim() const { return latent_dim_; }

  size_t num_events() const { return events_.size(); }
  size_t num_partners() const { return partners_.size(); }

  const std::vector<ebsn::EventId>& events() const { return events_; }
  const std::vector<ebsn::UserId>& partners() const { return partners_; }
  const std::vector<std::vector<uint32_t>>& event_pairs() const {
    return event_pairs_;
  }
  const std::vector<std::vector<uint32_t>>& partner_pairs() const {
    return partner_pairs_;
  }
  const std::vector<uint32_t>& pair_event_idx() const {
    return pair_event_idx_;
  }
  const std::vector<uint32_t>& pair_partner_idx() const {
    return pair_partner_idx_;
  }
  const std::vector<uint32_t>& c_sorted() const { return c_sorted_; }

  /// Number of candidate pairs whose partner is NOT `exclude_partner`
  /// (O(1) via the partner census): the count of results a top-n query
  /// can possibly return.
  size_t ResultsPossible(ebsn::UserId exclude_partner) const {
    size_t possible = space_->num_points();
    if (auto it = partner_index_.find(exclude_partner);
        it != partner_index_.end()) {
      possible -= partner_pairs_[it->second].size();
    }
    return possible;
  }

 private:
  const TransformedSpace* space_;
  uint32_t latent_dim_;

  std::vector<ebsn::EventId> events_;
  std::vector<std::vector<uint32_t>> event_pairs_;
  std::vector<ebsn::UserId> partners_;
  std::vector<std::vector<uint32_t>> partner_pairs_;
  std::unordered_map<ebsn::UserId, uint32_t> partner_index_;
  std::vector<uint32_t> pair_event_idx_;
  std::vector<uint32_t> pair_partner_idx_;
  std::vector<uint32_t> c_sorted_;
};

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_SPACE_INDEX_H_
