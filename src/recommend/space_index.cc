#include "recommend/space_index.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace gemrec::recommend {

SpaceIndex::SpaceIndex(const TransformedSpace* space) : space_(space) {
  GEMREC_CHECK(space != nullptr);
  GEMREC_CHECK(space->point_dim() % 2 == 1);
  latent_dim_ = (space->point_dim() - 1) / 2;
  const size_t n = space_->num_points();

  std::unordered_map<ebsn::EventId, uint32_t> event_index;
  for (size_t i = 0; i < n; ++i) {
    const CandidatePair& pair = space_->pair(i);
    auto [eit, einserted] = event_index.try_emplace(
        pair.event, static_cast<uint32_t>(events_.size()));
    if (einserted) {
      events_.push_back(pair.event);
      event_pairs_.emplace_back();
    }
    event_pairs_[eit->second].push_back(static_cast<uint32_t>(i));

    auto [pit, pinserted] = partner_index_.try_emplace(
        pair.partner, static_cast<uint32_t>(partners_.size()));
    if (pinserted) {
      partners_.push_back(pair.partner);
      partner_pairs_.emplace_back();
    }
    partner_pairs_[pit->second].push_back(static_cast<uint32_t>(i));
  }

  // Inverse maps so a pair's components are O(1) during random access.
  pair_event_idx_.resize(n);
  for (size_t e = 0; e < events_.size(); ++e) {
    for (uint32_t id : event_pairs_[e]) {
      pair_event_idx_[id] = static_cast<uint32_t>(e);
    }
  }
  pair_partner_idx_.resize(n);
  for (size_t u = 0; u < partners_.size(); ++u) {
    for (uint32_t id : partner_pairs_[u]) {
      pair_partner_idx_[id] = static_cast<uint32_t>(u);
    }
  }

  c_sorted_.resize(n);
  std::iota(c_sorted_.begin(), c_sorted_.end(), 0);
  const uint32_t c_dim = 2 * latent_dim_;
  std::stable_sort(c_sorted_.begin(), c_sorted_.end(),
                   [&](uint32_t a, uint32_t b) {
                     return space_->Point(a)[c_dim] >
                            space_->Point(b)[c_dim];
                   });
}

}  // namespace gemrec::recommend
