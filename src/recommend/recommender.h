#ifndef GEMREC_RECOMMEND_RECOMMENDER_H_
#define GEMREC_RECOMMEND_RECOMMENDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ebsn/types.h"
#include "recommend/brute_force.h"
#include "recommend/candidate_index.h"
#include "recommend/gem_model.h"
#include "recommend/space_transform.h"
#include "recommend/ta_search.h"

namespace gemrec::recommend {

/// Retrieval backend of the online stage.
enum class SearchBackend : uint8_t {
  kThresholdAlgorithm = 0,  // GEM-TA
  kBruteForce = 1,          // GEM-BF
};

struct RecommenderOptions {
  /// Pruning level: keep only each partner's top-k events (0 = keep
  /// every event-partner pair).
  uint32_t top_k_events_per_partner = 0;
  SearchBackend backend = SearchBackend::kThresholdAlgorithm;
};

/// A joint event-partner recommendation.
struct Recommendation {
  ebsn::EventId event = ebsn::kInvalidId;
  ebsn::UserId partner = ebsn::kInvalidId;
  float score = 0.0f;
};

/// End-to-end online recommender (§IV): offline it prunes the
/// candidate space, transforms every surviving event-partner pair into
/// the (2K+1)-dim space and builds the retrieval index; online,
/// Recommend(u, n) returns the top-n pairs under Eqn 8.
class EventPartnerRecommender {
 public:
  /// `model` must outlive the recommender. `events` is the
  /// recommendable event set (e.g. upcoming events); candidate partners
  /// are all users.
  EventPartnerRecommender(const GemModel* model,
                          const std::vector<ebsn::EventId>& events,
                          uint32_t num_users,
                          const RecommenderOptions& options);

  /// Top-n event-partner pairs for user u (never pairing u with
  /// herself). `stats` optionally receives search instrumentation.
  std::vector<Recommendation> Recommend(ebsn::UserId u, size_t n,
                                        SearchStats* stats = nullptr) const;

  size_t num_candidate_pairs() const { return space_->num_points(); }
  const TransformedSpace& space() const { return *space_; }
  const RecommenderOptions& options() const { return options_; }

 private:
  const GemModel* model_;
  RecommenderOptions options_;
  std::unique_ptr<TransformedSpace> space_;
  std::unique_ptr<TaSearch> ta_;
  std::unique_ptr<BruteForceSearch> brute_force_;
};

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_RECOMMENDER_H_
