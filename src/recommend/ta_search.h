#ifndef GEMREC_RECOMMEND_TA_SEARCH_H_
#define GEMREC_RECOMMEND_TA_SEARCH_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/top_k.h"
#include "ebsn/types.h"
#include "recommend/space_index.h"
#include "recommend/space_transform.h"

namespace gemrec::recommend {

/// One retrieved event-partner pair.
struct SearchHit {
  float score = 0.0f;
  uint32_t point_index = 0;
  CandidatePair pair;
};

/// Instrumentation of a top-n query.
struct SearchStats {
  /// Distinct points fully scored (random accesses).
  size_t points_examined = 0;
  /// Total sorted-list positions consumed.
  size_t sorted_accesses = 0;
  /// points_examined / num_points.
  double examined_fraction = 0.0;
  /// Sound upper bound on the score of every candidate pair NOT in the
  /// returned list: max(TA stopping threshold at the break, and — when
  /// the heap filled to n — the n-th returned score, which bounds pairs
  /// that were examined but dropped). -inf when the search ran the
  /// space to exhaustion with a non-full heap (nothing was left out).
  /// A sharded coordinator merges per-shard top-k lists and certifies
  /// completeness when the merged k-th score >= every shard's bound.
  float unreturned_bound = -std::numeric_limits<float>::infinity();
};

/// Fagin's Threshold Algorithm over the transformed event-partner
/// space (§IV: "the TA-based algorithm has the nice property of
/// returning top-n recommendations by examining the minimum number of
/// event-partner pairs"), in the aggregate-list form the paper's cited
/// LCARS retrieval [Yin et al., KDD'13] uses.
///
/// For a query q_u = (ū, ū, 1), a pair point p_{xu'} = (x̄, ū', ū'ᵀx̄)
/// scores q·p = A(x) + B(u') + C(x, u') with three monotone components
///   A(x)  = ūᵀx̄        (depends on the event only),
///   B(u') = ūᵀū'        (depends on the partner only),
///   C     = ū'ᵀx̄        (materialized offline as the pair's last
///                         coordinate).
/// TA runs over three sorted lists — events by A (query time), partners
/// by B (query time), pairs by C (precomputed) — with the standard
/// stopping threshold A_next + B_next + C_next. This is exact: every
/// unseen pair is bounded above by the threshold. The aggregate form
/// prunes where a coordinate-per-list TA cannot: each event coordinate
/// value repeats once per partner, so per-coordinate thresholds decay
/// ~|U| times slower than the aggregate ones.
///
/// Correctness requires nonnegative query coordinates, which the
/// ReLU-projected embeddings (plus the constant 1) guarantee.
///
/// Performance contract: everything query-independent — pair→group
/// inverse maps, the C-sorted order, the partner census — is built once
/// in the constructor. Per-query state lives in a reusable Scratch, so
/// a steady-state SearchInto call performs no heap allocation.
class TaSearch {
 public:
  /// Reusable per-query workspace. A default-constructed Scratch grows
  /// to the searcher's size on the first query and keeps its storage,
  /// so subsequent queries through it allocate nothing. A Scratch may
  /// be shared across TaSearch instances (it re-grows as needed) but
  /// must not be used concurrently.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class TaSearch;
    std::vector<float> event_component;
    std::vector<float> partner_component;
    std::vector<uint32_t> event_order;
    std::vector<uint32_t> partner_order;
    /// seen_gen[i] == generation marks pair i as examined this query;
    /// bumping the generation clears the whole bitmap in O(1).
    std::vector<uint32_t> seen_gen;
    uint32_t generation = 0;
    TopK<uint32_t> heap{1};
  };

  /// `space` must outlive the searcher. Preprocessing builds a private
  /// SpaceIndex: groups pairs by event and by partner, sorts pairs by
  /// C, and builds the pair→group inverse maps (O(n log n)).
  explicit TaSearch(const TransformedSpace* space);

  /// Shares a prebuilt index instead of building one (ModelSnapshot
  /// builds the index once for the exact and quantized searchers).
  /// `index` must outlive the searcher.
  explicit TaSearch(const SpaceIndex* index);

  /// The query-independent space structure this searcher walks.
  const SpaceIndex& index() const { return *index_; }

  /// Returns the top-n pairs by q·p, excluding pairs whose partner is
  /// `exclude_partner` (a user cannot be her own partner). Exact: the
  /// result equals brute force up to ties. Convenience wrapper over
  /// SearchInto using a thread-local Scratch.
  std::vector<SearchHit> Search(const std::vector<float>& query, size_t n,
                                ebsn::UserId exclude_partner,
                                SearchStats* stats = nullptr) const;

  /// Allocation-free form: clears and fills `*out` (capacity is kept
  /// across calls). `scratch == nullptr` uses a thread-local Scratch.
  /// In steady state (warm scratch, warm out capacity) this performs
  /// zero heap allocations — pinned by tests/recommend/ta_alloc_test.
  void SearchInto(const std::vector<float>& query, size_t n,
                  ebsn::UserId exclude_partner,
                  std::vector<SearchHit>* out,
                  SearchStats* stats = nullptr,
                  Scratch* scratch = nullptr) const;

 private:
  /// Set only by the convenience constructor; index_ always points at
  /// the structure in use (owned or shared).
  std::unique_ptr<SpaceIndex> owned_index_;
  const SpaceIndex* index_;
  const TransformedSpace* space_;
  uint32_t latent_dim_;  // K (point_dim == 2K + 1)
};

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_TA_SEARCH_H_
