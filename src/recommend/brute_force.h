#ifndef GEMREC_RECOMMEND_BRUTE_FORCE_H_
#define GEMREC_RECOMMEND_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "ebsn/types.h"
#include "recommend/ta_search.h"

namespace gemrec::recommend {

/// The naive GEM-BF retrieval: scores every candidate point by the full
/// inner product q·p and keeps the top n. Exact by construction; used
/// as the baseline of Table VI and as the oracle in TA tests.
class BruteForceSearch {
 public:
  /// `space` must outlive the searcher.
  explicit BruteForceSearch(const TransformedSpace* space);

  std::vector<SearchHit> Search(const std::vector<float>& query, size_t n,
                                ebsn::UserId exclude_partner,
                                SearchStats* stats = nullptr) const;

 private:
  const TransformedSpace* space_;
};

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_BRUTE_FORCE_H_
