#include "recommend/quantized_space.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace gemrec::recommend {
namespace {

/// Code ranges. 7 bits for int8 keeps DotQ8's adjacent-pair products
/// inside int16 (2 * 127^2 < 32767, no maddubs saturation); 11 bits for
/// int16 keeps a <=512-dim int32 accumulation exact (512 * 2047^2 <
/// 2^31). See the kernel contracts in common/vec_math.h.
constexpr int kInt8Levels = 127;
constexpr int kInt16Levels = 2047;

/// Dimensions whose value range is below this are treated as constant:
/// scale 0, all codes 0, and the (tiny) residual range charged to the
/// error bound directly. Also the divide-by-zero guard for all-zero or
/// constant columns.
constexpr float kFlatRange = 1e-12f;

/// Relative-error ceiling for auto-selecting int8. Deliberately tight:
/// a wider epsilon inflates the examined set and the exact re-rank, so
/// unless int8 is nearly free of error the int16 codes win overall.
constexpr float kInt8RelTol = 2e-3f;

}  // namespace

QuantizedSpace::QuantizedSpace(const SpaceIndex* index)
    : QuantizedSpace(index, Options{}) {}

QuantizedSpace::QuantizedSpace(const SpaceIndex* index, Options options)
    : index_(index), latent_dim_(index->latent_dim()) {
  GEMREC_CHECK(index != nullptr);
  // The scalar DotQ16 contract is exact only up to 512 dimensions.
  GEMREC_CHECK(latent_dim_ <= 512);
  const TransformedSpace& space = index_->space();
  const size_t num_points = space.num_points();
  const uint32_t c_dim = 2 * latent_dim_;

  // C stays exact: compact per-pair fp32, plus a copy in C-descending
  // rank order so the TA's C-list walk is a sequential read.
  c_values_.resize(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    c_values_[i] = space.Point(i)[c_dim];
  }
  c_sorted_values_.resize(num_points);
  const std::vector<uint32_t>& c_sorted = index_->c_sorted();
  for (size_t r = 0; r < num_points; ++r) {
    c_sorted_values_[r] = c_values_[c_sorted[r]];
  }

  // Estimate the int8 relative error against a worst-case reference
  // query. Queries are (u, u, 1) with u a ReLU'd user embedding, and
  // partner rows are the same embeddings for other users, so the
  // per-dimension partner column maxima stand in for the largest query
  // a deployment can produce.
  BuildHalfParams(/*partner_half=*/false, kInt8Levels, &event_params_);
  BuildHalfParams(/*partner_half=*/true, kInt8Levels, &partner_params_);
  const uint32_t k = latent_dim_;
  std::vector<float> qref(k, 0.0f);
  for (size_t u = 0; u < index_->num_partners(); ++u) {
    const float* p = space.Point(index_->partner_pairs()[u].front());
    for (uint32_t d = 0; d < k; ++d) {
      qref[d] = std::max(qref[d], p[k + d]);
    }
  }
  float err8 = 0.0f;
  float score_ref = 0.0f;
  for (bool partner_half : {false, true}) {
    const HalfParams& hp = partner_half ? partner_params_ : event_params_;
    float wmax = 0.0f;
    for (uint32_t d = 0; d < k; ++d) {
      err8 += qref[d] * hp.half_err[d];
      wmax = std::max(wmax, qref[d] * hp.scale[d]);
      // Column max = min + levels * scale for non-flat dims.
      score_ref +=
          qref[d] * (hp.min[d] + static_cast<float>(kInt8Levels) *
                                     hp.scale[d]);
    }
    // Row code sums are bounded by k * levels; the conservative bound
    // (instead of the encoded rows' true max) further biases toward
    // int16, which is the intent.
    err8 += 0.5f * (wmax / static_cast<float>(kInt8Levels)) *
            static_cast<float>(k) * static_cast<float>(kInt8Levels);
  }
  float c_abs_max = 0.0f;
  for (float c : c_values_) c_abs_max = std::max(c_abs_max, std::abs(c));
  score_ref += c_abs_max;
  rel_err8_estimate_ = score_ref > 0.0f ? err8 / score_ref : 0.0f;

  switch (options.force) {
    case Options::Force::kInt8:
      precision_ = Precision::kInt8;
      break;
    case Options::Force::kInt16:
      precision_ = Precision::kInt16;
      break;
    case Options::Force::kAuto:
      precision_ = rel_err8_estimate_ <= kInt8RelTol ? Precision::kInt8
                                                     : Precision::kInt16;
      break;
  }

  if (precision_ == Precision::kInt8) {
    max_event_row_sum_ =
        EncodeRows(/*partner_half=*/false, event_params_, &event_codes8_);
    max_partner_row_sum_ =
        EncodeRows(/*partner_half=*/true, partner_params_, &partner_codes8_);
  } else {
    BuildHalfParams(/*partner_half=*/false, kInt16Levels, &event_params_);
    BuildHalfParams(/*partner_half=*/true, kInt16Levels, &partner_params_);
    max_event_row_sum_ =
        EncodeRows(/*partner_half=*/false, event_params_, &event_codes16_);
    max_partner_row_sum_ = EncodeRows(/*partner_half=*/true, partner_params_,
                                      &partner_codes16_);
  }
}

void QuantizedSpace::BuildHalfParams(bool partner_half, int levels,
                                     HalfParams* out) {
  const TransformedSpace& space = index_->space();
  const uint32_t k = latent_dim_;
  const uint32_t base = partner_half ? k : 0;
  const auto& groups =
      partner_half ? index_->partner_pairs() : index_->event_pairs();

  out->min.assign(k, 0.0f);
  out->scale.assign(k, 0.0f);
  out->half_err.assign(k, 0.0f);
  if (groups.empty()) return;

  std::vector<float> col_max(k, -std::numeric_limits<float>::infinity());
  std::vector<float> col_min(k, std::numeric_limits<float>::infinity());
  for (const auto& pairs : groups) {
    const float* p = space.Point(pairs.front()) + base;
    for (uint32_t d = 0; d < k; ++d) {
      col_min[d] = std::min(col_min[d], p[d]);
      col_max[d] = std::max(col_max[d], p[d]);
    }
  }
  for (uint32_t d = 0; d < k; ++d) {
    out->min[d] = col_min[d];
    const float range = col_max[d] - col_min[d];
    if (range < kFlatRange) {
      // Constant (or all-zero) column: no division, codes stay 0, and
      // the residual spread — at most `range` — goes straight into the
      // per-dimension bound.
      out->scale[d] = 0.0f;
      out->half_err[d] = range;
    } else {
      out->scale[d] = range / static_cast<float>(levels);
      out->half_err[d] = 0.5f * out->scale[d];
    }
  }
}

template <typename Code>
int64_t QuantizedSpace::EncodeRows(bool partner_half,
                                   const HalfParams& params,
                                   std::vector<Code>* codes) {
  const TransformedSpace& space = index_->space();
  const uint32_t k = latent_dim_;
  const uint32_t base = partner_half ? k : 0;
  const auto& groups =
      partner_half ? index_->partner_pairs() : index_->event_pairs();
  const long levels =
      sizeof(Code) == 1 ? kInt8Levels : kInt16Levels;

  codes->assign(groups.size() * k, Code{0});
  int64_t max_row_sum = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    const float* p = space.Point(groups[g].front()) + base;
    Code* row = codes->data() + g * k;
    int64_t row_sum = 0;
    for (uint32_t d = 0; d < k; ++d) {
      long code = 0;
      if (params.scale[d] > 0.0f) {
        code = std::lround((p[d] - params.min[d]) / params.scale[d]);
        code = std::clamp(code, 0L, levels);
      }
      row[d] = static_cast<Code>(code);
      row_sum += code;
    }
    max_row_sum = std::max(max_row_sum, row_sum);
  }
  return max_row_sum;
}

QuantizedSpace::QuantizedQuery QuantizedSpace::QuantizeQuery(
    const float* query, uint8_t* event_codes8, uint8_t* partner_codes8,
    int16_t* event_codes16, int16_t* partner_codes16) const {
  const uint32_t k = latent_dim_;
  QuantizedQuery out;
  out.c_weight = query[2 * k];

  const long levels =
      precision_ == Precision::kInt8 ? kInt8Levels : kInt16Levels;
  for (bool partner_half : {false, true}) {
    const HalfParams& hp = partner_half ? partner_params_ : event_params_;
    const float* q = query + (partner_half ? k : 0);
    const int64_t max_row_sum =
        partner_half ? max_partner_row_sum_ : max_event_row_sum_;

    float bias = 0.0f;
    float wmax = 0.0f;
    float point_err = 0.0f;
    for (uint32_t d = 0; d < k; ++d) {
      GEMREC_DCHECK(q[d] >= 0.0f);  // ReLU'd embeddings + constant 1
      bias += q[d] * hp.min[d];
      wmax = std::max(wmax, q[d] * hp.scale[d]);
      point_err += q[d] * hp.half_err[d];
    }

    float sw = 0.0f;
    float query_err = 0.0f;
    if (wmax > 0.0f) {
      sw = wmax / static_cast<float>(levels);
      query_err = 0.5f * sw * static_cast<float>(max_row_sum);
    }
    // Folded query codes: round(q_d * scale_d / sw), zero when the
    // whole half is flat (sw == 0; bias then carries the component).
    for (uint32_t d = 0; d < k; ++d) {
      long code = 0;
      if (sw > 0.0f) {
        code = std::lround(q[d] * hp.scale[d] / sw);
        code = std::clamp(code, 0L, levels);
      }
      if (precision_ == Precision::kInt8) {
        (partner_half ? partner_codes8 : event_codes8)[d] =
            static_cast<uint8_t>(code);
      } else {
        (partner_half ? partner_codes16 : event_codes16)[d] =
            static_cast<int16_t>(code);
      }
    }

    if (partner_half) {
      out.partner_scale = sw;
      out.partner_bias = bias;
    } else {
      out.event_scale = sw;
      out.event_bias = bias;
    }
    out.epsilon += point_err + query_err;
  }
  return out;
}

}  // namespace gemrec::recommend
