#ifndef GEMREC_RECOMMEND_EXPLAIN_H_
#define GEMREC_RECOMMEND_EXPLAIN_H_

#include <string>
#include <vector>

#include "ebsn/dataset.h"
#include "graph/graph_builder.h"
#include "recommend/gem_model.h"

namespace gemrec::recommend {

/// Why a (event, partner) pair was recommended to a user: the Eqn-8
/// score split into its three pairwise terms, plus the content and
/// context signals that tie the user to the event in the shared latent
/// space. Production recommenders need this for UI surfaces ("because
/// you like jazz and Alex is free on Saturdays") and for debugging.
struct Explanation {
  float total_score = 0.0f;
  /// ūᵀx̄ — the target user's own preference for the event.
  float user_event_affinity = 0.0f;
  /// ū'ᵀx̄ — the partner's preference for the event.
  float partner_event_affinity = 0.0f;
  /// ūᵀū' — the social proximity of user and partner.
  float social_affinity = 0.0f;

  /// The event's content words with the highest latent affinity to the
  /// user (word id + affinity), strongest first.
  std::vector<std::pair<ebsn::WordId, float>> top_words;
  /// Latent affinity between the user and the event's region node.
  float region_affinity = 0.0f;
  /// Latent affinity between the user and each of the event's three
  /// time slots (slot id + affinity).
  std::vector<std::pair<ebsn::TimeSlotId, float>> time_affinities;
  /// True if the pair are already friends in the dataset.
  bool already_friends = false;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Builds the explanation for recommending (event, partner) to `user`.
/// `graphs` supplies the event->region mapping; `top_words_limit`
/// bounds the content list.
Explanation ExplainRecommendation(const GemModel& model,
                                  const ebsn::Dataset& dataset,
                                  const graph::EbsnGraphs& graphs,
                                  ebsn::UserId user, ebsn::EventId event,
                                  ebsn::UserId partner,
                                  size_t top_words_limit = 5);

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_EXPLAIN_H_
