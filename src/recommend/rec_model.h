#ifndef GEMREC_RECOMMEND_REC_MODEL_H_
#define GEMREC_RECOMMEND_REC_MODEL_H_

#include <string>

#include "ebsn/types.h"

namespace gemrec::recommend {

/// Common scoring interface every recommender (GEM and all baselines)
/// implements, so the evaluation protocols of §V-B run unchanged over
/// all of them.
///
/// The joint event-partner score follows the paper's pairwise
/// decomposition (Eqn 8): the triple (u, u', x) decomposes into
/// (u,x) + (u',x) + (u,u'). Models with a genuinely different joint
/// scoring rule (e.g. CFAPR-E) override ScoreTriple.
class RecModel {
 public:
  virtual ~RecModel() = default;

  virtual std::string Name() const = 0;

  /// Preference of user u for event x (higher = better). Only the
  /// ranking matters.
  virtual float ScoreUserEvent(ebsn::UserId u, ebsn::EventId x) const = 0;

  /// Social affinity between users u and v.
  virtual float ScoreUserUser(ebsn::UserId u, ebsn::UserId v) const = 0;

  /// Joint score of recommending (partner, event) to user u.
  virtual float ScoreTriple(ebsn::UserId u, ebsn::UserId partner,
                            ebsn::EventId x) const {
    return ScoreUserEvent(u, x) + ScoreUserEvent(partner, x) +
           ScoreUserUser(u, partner);
  }
};

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_REC_MODEL_H_
