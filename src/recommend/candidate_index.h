#ifndef GEMREC_RECOMMEND_CANDIDATE_INDEX_H_
#define GEMREC_RECOMMEND_CANDIDATE_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "ebsn/types.h"
#include "recommend/gem_model.h"
#include "recommend/space_transform.h"

namespace gemrec::recommend {

/// The paper's search-space pruning (§IV): instead of all |U| · |X|
/// event-partner pairs, keep only each potential partner's top-k
/// events (by the partner's own preference ū'ᵀx̄) — a partner tends to
/// refuse invitations to events she is not interested in, so pairs
/// outside her top-k are unpromising. The candidate count drops from
/// O(|U|·|X|) to O(|U|·k).
///
/// `events` is the recommendable (e.g. upcoming/test) event set;
/// `top_k == 0` or `top_k >= events.size()` keeps every pair (the
/// unpruned space of Table VI) — this materializes all |U| · |X|
/// pairs, so it logs a warning and checks against size_t overflow.
///
/// `pool` optionally parallelizes the per-user scoring loop (caller
/// participates; output is identical to the serial result).
std::vector<CandidatePair> BuildCandidatePairs(
    const GemModel& model, const std::vector<ebsn::EventId>& events,
    uint32_t num_users, uint32_t top_k, ThreadPool* pool = nullptr);

/// Per-partner top-k events, exposed separately for tests and for the
/// pruning study (Fig. 7). Users are independent, so `pool` shards the
/// loop over users; each user's ranking is computed exactly as in the
/// serial path, making the result bit-identical for any thread count.
std::vector<std::vector<ebsn::EventId>> TopKEventsPerUser(
    const GemModel& model, const std::vector<ebsn::EventId>& events,
    uint32_t num_users, uint32_t top_k, ThreadPool* pool = nullptr);

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_CANDIDATE_INDEX_H_
