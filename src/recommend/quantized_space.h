#ifndef GEMREC_RECOMMEND_QUANTIZED_SPACE_H_
#define GEMREC_RECOMMEND_QUANTIZED_SPACE_H_

#include <cstdint>
#include <vector>

#include "recommend/space_index.h"

namespace gemrec::recommend {

/// Quantized companion of a TransformedSpace, built once per model
/// snapshot. The exact TA's cost at scale is dominated by scattered
/// reads over the full point matrix (2K+1 floats per pair, hundreds of
/// MB at ~10^6 pairs). This structure replaces that traffic with three
/// compact arrays sized to the *group* structure, not the pair count:
///
///   * event codes:   num_events   x K integer codes (the first K
///     coordinates of each event group's representative point),
///   * partner codes: num_partners x K integer codes (coordinates
///     [K, 2K) of each partner group's representative point),
///   * C values:      one fp32 per pair, stored twice — indexed by pair
///     id for scoring, and in C-descending rank order so the TA's C
///     walk is a sequential read.
///
/// Codes use per-dimension asymmetric affine quantization
///     code_d = round((v_d - min_d) / scale_d)
/// into [0, 127] (int8 mode) or [0, 2047] (int16 mode). The 7-/11-bit
/// ranges are deliberate: they keep the SIMD kernels' intermediate
/// products inside int16 (DotQ8's maddubs pairs) and the scalar int32
/// accumulator exact (see common/vec_math.h contracts). The C
/// coordinate stays fp32: it is a single value per pair, so compaction
/// — not bit-width — is the win, and keeping it exact removes one term
/// from the error bound.
///
/// A query q folds into the code domain as w_d = q_d * scale_d >= 0,
/// itself quantized with a single per-half scale; the approximate
/// component is then an integer dot product plus a per-query bias
/// (Sum q_d * min_d). QuantizeQuery returns, alongside the codes, a
/// rigorous one-sided bound `epsilon` on |approx - exact| for any pair,
/// which BatchTaSearch uses to widen the TA stopping threshold so that
/// no true top-n candidate is ever pruned (DESIGN.md section 13).
///
/// Precision is chosen at build time: int8 when the estimated relative
/// component error against a worst-case reference query is tiny, int16
/// otherwise (the bias is toward int16 — a tighter epsilon keeps the
/// examined set, and therefore the exact re-rank, near the exact TA's).
///
/// Immutable after construction; `index` must outlive this object.
class QuantizedSpace {
 public:
  enum class Precision : uint8_t { kInt8, kInt16 };

  struct Options {
    /// kAuto picks by estimated relative error; the others force a
    /// precision (used by tests to cover both kernel paths).
    enum class Force : uint8_t { kAuto, kInt8, kInt16 };
    Force force = Force::kAuto;
  };

  /// Per-query constants produced by QuantizeQuery.
  struct QuantizedQuery {
    /// Scale of the folded event-/partner-half query codes (sw): the
    /// approximate component is bias + sw * IntegerDot(codes, codes).
    float event_scale = 0.0f;
    float partner_scale = 0.0f;
    /// Sum_d q_d * min_d over the half's dimensions.
    float event_bias = 0.0f;
    float partner_bias = 0.0f;
    /// q[2K]: the exact fp32 weight of the C coordinate.
    float c_weight = 0.0f;
    /// One-sided bound: |approx_score - exact_score| <= epsilon for
    /// every pair in the space.
    float epsilon = 0.0f;
  };

  explicit QuantizedSpace(const SpaceIndex* index);
  QuantizedSpace(const SpaceIndex* index, Options options);

  const SpaceIndex& index() const { return *index_; }
  Precision precision() const { return precision_; }
  uint32_t latent_dim() const { return latent_dim_; }
  size_t num_events() const { return index_->num_events(); }
  size_t num_partners() const { return index_->num_partners(); }

  /// Quantizes a (2K+1)-dim nonnegative fp32 query. Exactly one pair of
  /// output buffers is written, matching precision(); each must hold
  /// latent_dim() entries (they may be null in the other mode). Event
  /// codes pair with EventCodes*, partner codes with PartnerCodes*.
  QuantizedQuery QuantizeQuery(const float* query, uint8_t* event_codes8,
                               uint8_t* partner_codes8,
                               int16_t* event_codes16,
                               int16_t* partner_codes16) const;

  /// Row pointers into the compact code matrices (K codes per row).
  /// The 8-bit variants are valid only when precision() == kInt8, the
  /// 16-bit ones only when precision() == kInt16.
  const int8_t* EventCodes8(size_t e) const {
    return event_codes8_.data() + e * latent_dim_;
  }
  const int8_t* PartnerCodes8(size_t u) const {
    return partner_codes8_.data() + u * latent_dim_;
  }
  const int16_t* EventCodes16(size_t e) const {
    return event_codes16_.data() + e * latent_dim_;
  }
  const int16_t* PartnerCodes16(size_t u) const {
    return partner_codes16_.data() + u * latent_dim_;
  }

  /// Exact fp32 C coordinate by pair id.
  const std::vector<float>& c_values() const { return c_values_; }
  /// C coordinates in the index's c_sorted() rank order (sequential
  /// walk companion: c_sorted_values()[r] is the C of c_sorted()[r]).
  const std::vector<float>& c_sorted_values() const {
    return c_sorted_values_;
  }

  /// Max over group rows of the sum of that row's codes; the query-
  /// rounding half of the epsilon bound (see QuantizeQuery).
  int64_t max_event_code_row_sum() const { return max_event_row_sum_; }
  int64_t max_partner_code_row_sum() const { return max_partner_row_sum_; }

  /// The relative error estimate kAuto used to pick the precision
  /// (estimated int8 bound / reference score magnitude; 0 when the
  /// space is empty or degenerate).
  float int8_relative_error_estimate() const { return rel_err8_estimate_; }

 private:
  struct HalfParams {
    std::vector<float> min;       // K per-dimension zero points
    std::vector<float> scale;     // K per-dimension scales (0 if flat)
    std::vector<float> half_err;  // per-dim one-sided rounding bound
  };

  void BuildHalfParams(bool partner_half, int levels, HalfParams* out);
  template <typename Code>
  int64_t EncodeRows(bool partner_half, const HalfParams& params,
                     std::vector<Code>* codes);

  const SpaceIndex* index_;
  uint32_t latent_dim_;
  Precision precision_ = Precision::kInt16;
  float rel_err8_estimate_ = 0.0f;

  HalfParams event_params_;
  HalfParams partner_params_;
  std::vector<int8_t> event_codes8_;
  std::vector<int8_t> partner_codes8_;
  std::vector<int16_t> event_codes16_;
  std::vector<int16_t> partner_codes16_;
  int64_t max_event_row_sum_ = 0;
  int64_t max_partner_row_sum_ = 0;

  std::vector<float> c_values_;
  std::vector<float> c_sorted_values_;
};

}  // namespace gemrec::recommend

#endif  // GEMREC_RECOMMEND_QUANTIZED_SPACE_H_
