#include "recommend/filters.h"

#include "ebsn/time_slots.h"

namespace gemrec::recommend {

bool EventFilter::Matches(const ebsn::Dataset& dataset,
                          ebsn::EventId event) const {
  const ebsn::Event& e = dataset.event(event);
  if (not_before != 0 && e.start_time < not_before) return false;
  if (not_after != 0 && e.start_time > not_after) return false;

  if (weekpart != Weekpart::kAny) {
    const bool weekend = ebsn::IsWeekend(e.start_time);
    if (weekpart == Weekpart::kWeekendOnly && !weekend) return false;
    if (weekpart == Weekpart::kWeekdayOnly && weekend) return false;
  }

  if (radius_km > 0.0) {
    if (ebsn::HaversineKm(dataset.EventLocation(event), center) >
        radius_km) {
      return false;
    }
  }

  if (hour_from != hour_to) {
    const uint32_t hour = ebsn::HourOfDay(e.start_time);
    if (hour_from < hour_to) {
      if (hour < hour_from || hour >= hour_to) return false;
    } else {
      // Wrapping window, e.g. [22, 4).
      if (hour < hour_from && hour >= hour_to) return false;
    }
  }
  return true;
}

std::vector<ebsn::EventId> FilterEvents(
    const ebsn::Dataset& dataset,
    const std::vector<ebsn::EventId>& events,
    const EventFilter& filter) {
  std::vector<ebsn::EventId> out;
  out.reserve(events.size());
  for (ebsn::EventId x : events) {
    if (filter.Matches(dataset, x)) out.push_back(x);
  }
  return out;
}

}  // namespace gemrec::recommend
