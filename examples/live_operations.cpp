// Live operations: what an EBSN runs *between* nightly retrains.
//
//   1. train GEM-A offline and checkpoint it to disk;
//   2. reload the checkpoint (as the serving process would);
//   3. a brand-new event is published -> fold its vector in online
//      from content + venue + time, without retraining (milliseconds);
//   4. serve joint event-partner recommendations including the new
//      event, with human-readable explanations.

#include <cmath>
#include <cstdio>

#include "ebsn/split.h"
#include "ebsn/synthetic.h"
#include "ebsn/tfidf.h"
#include "embedding/online_update.h"
#include "embedding/serialization.h"
#include "embedding/trainer.h"
#include "graph/graph_builder.h"
#include "recommend/explain.h"
#include "recommend/recommender.h"

int main() {
  using namespace gemrec;  // NOLINT: example brevity

  // ---- Offline: train and checkpoint. ------------------------------
  ebsn::SyntheticConfig config;
  config.num_users = 600;
  config.num_events = 400;
  config.num_venues = 60;
  config.seed = 17;
  ebsn::SyntheticData data = ebsn::GenerateSynthetic(config);
  const ebsn::Dataset& dataset = data.dataset;
  ebsn::ChronologicalSplit split(dataset);
  auto graphs = graph::BuildEbsnGraphs(dataset, split, {});
  if (!graphs.ok()) return 1;
  auto options = embedding::TrainerOptions::GemA();
  options.num_samples = 400000;
  embedding::JointTrainer trainer(&graphs.value(), options);
  trainer.Train();
  const std::string checkpoint = "/tmp/gemrec_live_model.bin";
  if (!embedding::SaveEmbeddingStore(trainer.store(), checkpoint).ok()) {
    return 1;
  }
  std::printf("checkpointed trained model to %s\n", checkpoint.c_str());

  // ---- Serving process: reload the checkpoint. ----------------------
  auto store = embedding::LoadEmbeddingStore(checkpoint);
  if (!store.ok()) return 1;
  recommend::GemModel model(&store.value(), "GEM-A");

  // ---- A new event is published. ------------------------------------
  // Pretend the *last* test event was just created: wipe its vector
  // and rebuild it purely online from its signals.
  const ebsn::EventId fresh = split.test_events().back();
  const ebsn::Event& event = dataset.event(fresh);
  float* v = store->VectorOf(graph::NodeType::kEvent, fresh);
  std::vector<float> offline_vector(v, v + store->dim());

  embedding::NewEventSignals signals;
  {
    // TF-IDF weights against the full corpus (a serving system keeps
    // the document-frequency table around).
    std::vector<std::vector<ebsn::WordId>> docs(dataset.num_events());
    for (uint32_t x = 0; x < dataset.num_events(); ++x) {
      docs[x] = dataset.event(x).words;
    }
    const auto tfidf = ebsn::ComputeTfIdf(docs, dataset.vocab_size());
    for (const auto& ww : tfidf[fresh]) {
      signals.words.push_back({ww.word, static_cast<float>(ww.weight)});
    }
  }
  signals.region = graphs->event_region[fresh];
  signals.start_time = event.start_time;

  if (!embedding::FoldInColdEvent(&store.value(), fresh, signals, {})
           .ok()) {
    return 1;
  }
  std::printf("folded in new event %u from %zu words + region + time\n",
              fresh, signals.words.size());

  // How close did the online fold-in get to the offline vector?
  float dot = 0.0f;
  float n1 = 0.0f;
  float n2 = 0.0f;
  for (uint32_t f = 0; f < store->dim(); ++f) {
    dot += v[f] * offline_vector[f];
    n1 += v[f] * v[f];
    n2 += offline_vector[f] * offline_vector[f];
  }
  std::printf("cosine(online fold-in, offline training) = %.3f\n",
              dot / std::max(1e-9f, std::sqrt(n1) * std::sqrt(n2)));

  // ---- Serve recommendations involving the fresh event. -------------
  recommend::RecommenderOptions rec_options;
  rec_options.top_k_events_per_partner = 15;
  recommend::EventPartnerRecommender recommender(
      &model, split.test_events(), dataset.num_users(), rec_options);
  const ebsn::UserId user = 11;
  std::printf("\ntop-3 joint recommendations for user %u:\n", user);
  for (const auto& r : recommender.Recommend(user, 3)) {
    std::printf("\nevent %u with partner %u (score %.3f)\n", r.event,
                r.partner, r.score);
    const auto explanation = recommend::ExplainRecommendation(
        model, dataset, graphs.value(), user, r.event, r.partner);
    std::printf("%s\n", explanation.ToString().c_str());
  }
  return 0;
}
