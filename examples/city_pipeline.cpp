// Full city pipeline: the offline workflow an EBSN operator would run.
//
//   generate (or crawl) -> persist to TSV -> reload -> train GEM-A ->
//   evaluate both tasks -> report accuracy.
//
// Demonstrates the persistence API (ebsn::SaveDataset/LoadDataset),
// the Status/Result error-handling style, and the evaluation
// protocols.

#include <cstdio>

#include "ebsn/io.h"
#include "ebsn/split.h"
#include "ebsn/synthetic.h"
#include "embedding/trainer.h"
#include "eval/ground_truth.h"
#include "eval/protocol.h"
#include "graph/graph_builder.h"
#include "recommend/gem_model.h"

int main() {
  using namespace gemrec;  // NOLINT: example brevity

  // Generate and persist a city (stands in for a crawl dump).
  ebsn::SyntheticConfig config = ebsn::SyntheticConfig::Shanghai(0.4);
  ebsn::SyntheticData data = ebsn::GenerateSynthetic(config);
  const std::string dir = "/tmp/gemrec_city_pipeline";
  if (Status s = ebsn::SaveDataset(data.dataset, dir); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("persisted city to %s\n", dir.c_str());

  // Reload — from here on, everything works off the TSV dump.
  auto loaded = ebsn::LoadDataset(dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const ebsn::Dataset& dataset = loaded.value();
  const auto stats = dataset.Stats();
  std::printf("reloaded: %zu users, %zu events, %zu attendances, "
              "%zu friendships\n",
              stats.num_users, stats.num_events, stats.num_attendances,
              stats.num_friendships);

  ebsn::ChronologicalSplit split(dataset);
  auto graphs = graph::BuildEbsnGraphs(dataset, split, {});
  if (!graphs.ok()) {
    std::fprintf(stderr, "graphs failed: %s\n",
                 graphs.status().ToString().c_str());
    return 1;
  }

  auto options = embedding::TrainerOptions::GemA();
  options.num_samples = 300000;
  embedding::JointTrainer trainer(&graphs.value(), options);
  trainer.Train();
  recommend::GemModel model(&trainer.store(), "GEM-A");

  eval::ProtocolOptions protocol;
  protocol.max_cases = 300;
  const auto event_result =
      eval::EvaluateColdStartEvents(model, dataset, split, protocol);
  std::printf("\ncold-start event recommendation (%zu cases):\n",
              event_result.num_cases);
  for (size_t i = 0; i < event_result.cutoffs.size(); ++i) {
    std::printf("  Accuracy@%-2zu = %.3f\n", event_result.cutoffs[i],
                event_result.accuracy[i]);
  }

  const auto truth = eval::BuildPartnerGroundTruth(dataset, split);
  const auto partner_result =
      eval::EvaluateEventPartner(model, dataset, split, truth, protocol);
  std::printf("\njoint event-partner recommendation (%zu cases from "
              "%zu ground-truth triples):\n",
              partner_result.num_cases, truth.size());
  for (size_t i = 0; i < partner_result.cutoffs.size(); ++i) {
    std::printf("  Accuracy@%-2zu = %.3f\n", partner_result.cutoffs[i],
                partner_result.accuracy[i]);
  }
  return 0;
}
