// Quickstart: the smallest end-to-end use of the library.
//
//   1. generate a small synthetic event-based social network,
//   2. split it chronologically (future events are cold-start),
//   3. build the five bipartite graphs and train GEM-A,
//   4. ask for top-5 joint event-partner recommendations for a user.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "ebsn/split.h"
#include "ebsn/synthetic.h"
#include "embedding/trainer.h"
#include "graph/graph_builder.h"
#include "recommend/recommender.h"

int main() {
  using namespace gemrec;  // NOLINT: example brevity

  // 1. A small city: 500 users, 300 events with text/venue/time.
  ebsn::SyntheticConfig config;
  config.num_users = 500;
  config.num_events = 300;
  config.num_venues = 60;
  config.seed = 1;
  ebsn::SyntheticData data = ebsn::GenerateSynthetic(config);
  const ebsn::Dataset& dataset = data.dataset;
  std::printf("dataset: %u users, %u events, %zu attendances\n",
              dataset.num_users(), dataset.num_events(),
              dataset.attendances().size());

  // 2. Chronological 70/10/20 split; test events are in the future.
  ebsn::ChronologicalSplit split(dataset);

  // 3. Five bipartite graphs + joint embedding training (GEM-A).
  auto graphs = graph::BuildEbsnGraphs(dataset, split, {});
  if (!graphs.ok()) {
    std::fprintf(stderr, "graph build failed: %s\n",
                 graphs.status().ToString().c_str());
    return 1;
  }
  auto options = embedding::TrainerOptions::GemA();
  options.num_samples = 300000;
  embedding::JointTrainer trainer(&graphs.value(), options);
  trainer.Train();
  recommend::GemModel model(&trainer.store(), "GEM-A");

  // 4. Joint event-partner recommendations for user 42 over the
  //    upcoming (test) events, with top-k pruning and TA retrieval.
  recommend::RecommenderOptions rec_options;
  rec_options.top_k_events_per_partner = 20;
  recommend::EventPartnerRecommender recommender(
      &model, split.test_events(), dataset.num_users(), rec_options);

  const ebsn::UserId user = 42;
  std::printf("\ntop-5 event-partner recommendations for user %u:\n",
              user);
  for (const auto& r : recommender.Recommend(user, 5)) {
    std::printf("  attend event %4u with partner %4u   (score %.3f)\n",
                r.event, r.partner, r.score);
  }
  return 0;
}
