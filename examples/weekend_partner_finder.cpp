// Weekend partner finder: the paper's motivating use case — "most of
// young people boast Facebook friends that number in the hundreds but
// in reality they often stay alone as they have nobody to hang out
// with". For a target user we recommend *weekend* event-partner pairs,
// and show whether each suggested partner is an existing friend or a
// potential friend (GEM does not restrict partners to friends).

#include <cstdio>

#include "ebsn/split.h"
#include "ebsn/synthetic.h"
#include "ebsn/time_slots.h"
#include "embedding/trainer.h"
#include "graph/graph_builder.h"
#include "recommend/recommender.h"

int main() {
  using namespace gemrec;  // NOLINT: example brevity

  ebsn::SyntheticConfig config;
  config.num_users = 600;
  config.num_events = 400;
  config.num_venues = 70;
  config.seed = 11;
  ebsn::SyntheticData data = ebsn::GenerateSynthetic(config);
  const ebsn::Dataset& dataset = data.dataset;
  ebsn::ChronologicalSplit split(dataset);

  auto graphs = graph::BuildEbsnGraphs(dataset, split, {});
  if (!graphs.ok()) return 1;
  auto options = embedding::TrainerOptions::GemA();
  options.num_samples = 300000;
  embedding::JointTrainer trainer(&graphs.value(), options);
  trainer.Train();
  recommend::GemModel model(&trainer.store(), "GEM-A");

  // Restrict the recommendable pool to upcoming *weekend* events.
  std::vector<ebsn::EventId> weekend_events;
  for (ebsn::EventId x : split.test_events()) {
    if (ebsn::IsWeekend(dataset.event(x).start_time)) {
      weekend_events.push_back(x);
    }
  }
  std::printf("%zu upcoming weekend events out of %zu upcoming "
              "events\n", weekend_events.size(),
              split.test_events().size());
  if (weekend_events.empty()) return 0;

  recommend::RecommenderOptions rec_options;
  rec_options.top_k_events_per_partner = 15;
  recommend::EventPartnerRecommender recommender(
      &model, weekend_events, dataset.num_users(), rec_options);

  const ebsn::UserId user = 99;
  std::printf("\nweekend plans for user %u (%zu friends):\n", user,
              dataset.FriendsOf(user).size());
  for (const auto& r : recommender.Recommend(user, 8)) {
    const ebsn::Event& event = dataset.event(r.event);
    const auto slots = ebsn::TimeSlotsFor(event.start_time);
    std::printf("  %s %s: event %4u with %-17s %4u  (score %.3f)\n",
                ebsn::TimeSlotName(slots[1]),
                ebsn::TimeSlotName(slots[0]), r.event,
                dataset.AreFriends(user, r.partner)
                    ? "friend"
                    : "potential friend",
                r.partner, r.score);
  }
  return 0;
}
