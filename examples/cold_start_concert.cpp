// Cold-start scenario: a brand-new concert is announced — no one has
// registered yet, so collaborative signals are empty. GEM still ranks
// it for users because the event's *content words*, *venue region* and
// *start time* all have trained embeddings, and the new event's vector
// is learned from those (the paper's central cold-start argument).
//
// This example trains on a city, then scores every user against one
// held-out "concert" event and prints the best-matched audience,
// comparing against a popularity baseline that is blind to content.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/top_k.h"
#include "ebsn/split.h"
#include "ebsn/synthetic.h"
#include "ebsn/time_slots.h"
#include "embedding/trainer.h"
#include "graph/graph_builder.h"
#include "recommend/gem_model.h"

int main() {
  using namespace gemrec;  // NOLINT: example brevity

  ebsn::SyntheticConfig config;
  config.num_users = 600;
  config.num_events = 400;
  config.num_venues = 80;
  config.seed = 7;
  ebsn::SyntheticData data = ebsn::GenerateSynthetic(config);
  const ebsn::Dataset& dataset = data.dataset;
  ebsn::ChronologicalSplit split(dataset);

  auto graphs = graph::BuildEbsnGraphs(dataset, split, {});
  if (!graphs.ok()) return 1;
  auto options = embedding::TrainerOptions::GemA();
  options.num_samples = 300000;
  embedding::JointTrainer trainer(&graphs.value(), options);
  trainer.Train();
  recommend::GemModel model(&trainer.store(), "GEM-A");

  // Pick the "concert": a test event (zero visible registrations).
  const ebsn::EventId concert = split.test_events().front();
  const ebsn::Event& event = dataset.event(concert);
  std::printf("new event %u: venue %u, %s at %s, %zu content words, "
              "0 visible registrations\n",
              concert, event.venue,
              ebsn::TimeSlotName(ebsn::TimeSlotsFor(event.start_time)[1]),
              ebsn::TimeSlotName(ebsn::TimeSlotsFor(event.start_time)[0]),
              event.words.size());

  // Rank all users for this event by the learned embeddings.
  TopK<ebsn::UserId> audience(10);
  for (ebsn::UserId u = 0; u < dataset.num_users(); ++u) {
    audience.Push(u, model.ScoreUserEvent(u, concert));
  }
  std::printf("\nbest-matched audience (GEM-A, content/venue/time "
              "driven):\n");
  size_t actual_attendees = 0;
  for (const auto& entry : audience.TakeSortedDescending()) {
    const bool attends = dataset.Attends(entry.id, concert);
    actual_attendees += attends ? 1 : 0;
    std::printf("  user %4u  score %.3f  %s\n", entry.id, entry.score,
                attends ? "<- actually registered (held-out)" : "");
  }
  std::printf("\n%zu of the top-10 turn out to be actual (held-out) "
              "registrants.\n", actual_attendees);

  // Popularity baseline: most active users, blind to the event.
  TopK<ebsn::UserId> popular(10);
  for (ebsn::UserId u = 0; u < dataset.num_users(); ++u) {
    popular.Push(u, static_cast<float>(dataset.EventsOf(u).size()));
  }
  size_t popular_hits = 0;
  for (const auto& entry : popular.TakeSortedDescending()) {
    if (dataset.Attends(entry.id, concert)) ++popular_hits;
  }
  std::printf("popularity baseline finds %zu of its top-10 among the "
              "registrants.\n", popular_hits);
  return 0;
}
