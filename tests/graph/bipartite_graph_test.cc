#include "graph/bipartite_graph.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace gemrec::graph {
namespace {

BipartiteGraph MakeGraph() {
  BipartiteGraph g(NodeType::kUser, 3, NodeType::kEvent, 4);
  g.AddEdge(0, 0, 1.0);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 1, 1.0);
  g.AddEdge(2, 3, 4.0);
  g.Seal();
  return g;
}

TEST(BipartiteGraphTest, BasicAccessors) {
  BipartiteGraph g = MakeGraph();
  EXPECT_EQ(g.type_a(), NodeType::kUser);
  EXPECT_EQ(g.type_b(), NodeType::kEvent);
  EXPECT_EQ(g.num_a(), 3u);
  EXPECT_EQ(g.num_b(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 8.0);
}

TEST(BipartiteGraphTest, WeightedDegrees) {
  BipartiteGraph g = MakeGraph();
  EXPECT_DOUBLE_EQ(g.DegreeA(0), 3.0);
  EXPECT_DOUBLE_EQ(g.DegreeA(1), 1.0);
  EXPECT_DOUBLE_EQ(g.DegreeA(2), 4.0);
  EXPECT_DOUBLE_EQ(g.DegreeB(1), 3.0);
  EXPECT_DOUBLE_EQ(g.DegreeB(2), 0.0);
}

TEST(BipartiteGraphTest, HasEdge) {
  BipartiteGraph g = MakeGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 2));
}

TEST(BipartiteGraphTest, EdgeSamplingFollowsWeights) {
  BipartiteGraph g = MakeGraph();
  Rng rng(1);
  std::map<std::pair<uint32_t, uint32_t>, int> counts;
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    const Edge& e = g.SampleEdge(&rng);
    ++counts[{e.a, e.b}];
  }
  // Edge (2,3) has weight 4/8 of the mass.
  EXPECT_NEAR((counts[{2, 3}]) / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR((counts[{0, 1}]) / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR((counts[{0, 0}]) / static_cast<double>(n), 0.125, 0.02);
}

TEST(BipartiteGraphTest, NoiseSamplingFollowsDegreePower) {
  BipartiteGraph g = MakeGraph();
  Rng rng(2);
  std::map<uint32_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[g.SampleNoiseB(&rng)];
  // Node 2 on side B has degree 0 -> never sampled.
  EXPECT_EQ(counts[2], 0);
  // Frequencies ∝ d^0.75: d_B = {1, 3, 0, 4}.
  const double z = std::pow(1.0, 0.75) + std::pow(3.0, 0.75) +
                   std::pow(4.0, 0.75);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / z, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n),
              std::pow(3.0, 0.75) / z, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n),
              std::pow(4.0, 0.75) / z, 0.01);
}

TEST(BipartiteGraphTest, NoiseSamplingSideA) {
  BipartiteGraph g = MakeGraph();
  Rng rng(3);
  std::map<uint32_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[g.SampleNoiseA(&rng)];
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], 0);
  // Highest-degree side-A node is most likely.
  EXPECT_GT(counts[2], counts[1]);
}

TEST(BipartiteGraphTest, SealIsIdempotent) {
  BipartiteGraph g = MakeGraph();
  g.Seal();
  g.Seal();
  EXPECT_TRUE(g.sealed());
}

TEST(BipartiteGraphTest, AddEdgeAfterSealRequiresReseal) {
  BipartiteGraph g = MakeGraph();
  g.AddEdge(1, 2, 1.0);
  EXPECT_FALSE(g.sealed());
  g.Seal();
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(BipartiteGraphTest, SelfTypeGraphForSocialNetwork) {
  BipartiteGraph g(NodeType::kUser, 3, NodeType::kUser, 3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 0, 2.0);
  g.Seal();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_DOUBLE_EQ(g.DegreeA(0), 2.0);
  EXPECT_DOUBLE_EQ(g.DegreeB(0), 2.0);
}

TEST(BipartiteGraphTest, NodeTypeNames) {
  EXPECT_STREQ(NodeTypeName(NodeType::kUser), "user");
  EXPECT_STREQ(NodeTypeName(NodeType::kEvent), "event");
  EXPECT_STREQ(NodeTypeName(NodeType::kLocation), "location");
  EXPECT_STREQ(NodeTypeName(NodeType::kTime), "time");
  EXPECT_STREQ(NodeTypeName(NodeType::kWord), "word");
}

TEST(BipartiteGraphDeathTest, OutOfRangeEdgeRejected) {
  BipartiteGraph g(NodeType::kUser, 2, NodeType::kEvent, 2);
  EXPECT_DEATH(g.AddEdge(2, 0, 1.0), "out of range");
  EXPECT_DEATH(g.AddEdge(0, 5, 1.0), "out of range");
}

TEST(BipartiteGraphDeathTest, NonPositiveWeightRejected) {
  BipartiteGraph g(NodeType::kUser, 2, NodeType::kEvent, 2);
  EXPECT_DEATH(g.AddEdge(0, 0, 0.0), "positive");
}

TEST(BipartiteGraphDeathTest, SamplingEmptyGraphRejected) {
  BipartiteGraph g(NodeType::kUser, 2, NodeType::kEvent, 2);
  g.Seal();
  Rng rng(1);
  EXPECT_DEATH(g.SampleEdge(&rng), "empty");
}

}  // namespace
}  // namespace gemrec::graph
