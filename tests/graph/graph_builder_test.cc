#include "graph/graph_builder.h"

#include <gtest/gtest.h>

#include "ebsn/synthetic.h"
#include "ebsn/time_slots.h"

namespace gemrec::graph {
namespace {

class GraphBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ebsn::SyntheticConfig config;
    config.num_users = 200;
    config.num_events = 150;
    config.num_venues = 30;
    config.num_topics = 5;
    config.vocab_size = 400;
    config.seed = 21;
    data_ = std::make_unique<ebsn::SyntheticData>(
        ebsn::GenerateSynthetic(config));
    split_ = std::make_unique<ebsn::ChronologicalSplit>(data_->dataset);
  }

  const ebsn::Dataset& dataset() const { return data_->dataset; }

  std::unique_ptr<ebsn::SyntheticData> data_;
  std::unique_ptr<ebsn::ChronologicalSplit> split_;
};

TEST_F(GraphBuilderTest, BuildsAllFiveGraphsSealed) {
  auto graphs_or = BuildEbsnGraphs(dataset(), *split_, {});
  ASSERT_TRUE(graphs_or.ok());
  const EbsnGraphs& graphs = graphs_or.value();
  for (const BipartiteGraph* g : graphs.All()) {
    ASSERT_NE(g, nullptr);
    EXPECT_TRUE(g->sealed());
  }
  EXPECT_EQ(graphs.All().size(), 5u);
}

TEST_F(GraphBuilderTest, UserEventGraphExcludesHeldOutAttendance) {
  auto graphs = BuildEbsnGraphs(dataset(), *split_, {});
  ASSERT_TRUE(graphs.ok());
  const size_t training_attendances =
      split_->AttendancesIn(dataset(), ebsn::Split::kTraining).size();
  EXPECT_EQ(graphs->user_event->num_edges(), training_attendances);
  // Spot-check: no user-event edge references a test event.
  for (const Edge& e : graphs->user_event->edges()) {
    EXPECT_TRUE(split_->IsTraining(e.b));
  }
}

TEST_F(GraphBuilderTest, ContentGraphsCoverAllEventsIncludingTest) {
  auto graphs = BuildEbsnGraphs(dataset(), *split_, {});
  ASSERT_TRUE(graphs.ok());
  // Every event (cold-start included) must have location and time
  // edges — that is how their embeddings get learned.
  std::vector<int> loc_degree(dataset().num_events(), 0);
  for (const Edge& e : graphs->event_location->edges()) {
    ++loc_degree[e.a];
  }
  std::vector<int> time_degree(dataset().num_events(), 0);
  for (const Edge& e : graphs->event_time->edges()) ++time_degree[e.a];
  for (uint32_t x = 0; x < dataset().num_events(); ++x) {
    EXPECT_EQ(loc_degree[x], 1) << "event " << x;
    EXPECT_EQ(time_degree[x], 3) << "event " << x;
  }
}

TEST_F(GraphBuilderTest, EventTimeEdgesMatchTimeSlots) {
  auto graphs = BuildEbsnGraphs(dataset(), *split_, {});
  ASSERT_TRUE(graphs.ok());
  for (uint32_t x = 0; x < std::min(20u, dataset().num_events()); ++x) {
    const auto slots =
        ebsn::TimeSlotsFor(dataset().event(x).start_time);
    for (ebsn::TimeSlotId slot : slots) {
      EXPECT_TRUE(graphs->event_time->HasEdge(x, slot));
    }
  }
}

TEST_F(GraphBuilderTest, UserUserGraphIsMirrored) {
  auto graphs = BuildEbsnGraphs(dataset(), *split_, {});
  ASSERT_TRUE(graphs.ok());
  EXPECT_EQ(graphs->user_user->num_edges(),
            2 * dataset().friendships().size());
  for (const auto& f : dataset().friendships()) {
    EXPECT_TRUE(graphs->user_user->HasEdge(f.a, f.b));
    EXPECT_TRUE(graphs->user_user->HasEdge(f.b, f.a));
  }
}

TEST_F(GraphBuilderTest, UserUserWeightIsOnePlusCommonTrainingEvents) {
  auto graphs = BuildEbsnGraphs(dataset(), *split_, {});
  ASSERT_TRUE(graphs.ok());
  for (const Edge& e : graphs->user_user->edges()) {
    // Weight = 1 + common training events <= 1 + all common events.
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight,
              1.0 + static_cast<double>(
                        dataset().CommonEventCount(e.a, e.b)));
  }
}

TEST_F(GraphBuilderTest, RemovedFriendshipsAreExcluded) {
  ASSERT_FALSE(dataset().friendships().empty());
  const auto& f = dataset().friendships().front();
  GraphBuilderOptions options;
  options.removed_friendships.insert(PackUserPair(f.a, f.b));
  auto graphs = BuildEbsnGraphs(dataset(), *split_, options);
  ASSERT_TRUE(graphs.ok());
  EXPECT_FALSE(graphs->user_user->HasEdge(f.a, f.b));
  EXPECT_FALSE(graphs->user_user->HasEdge(f.b, f.a));
  EXPECT_EQ(graphs->user_user->num_edges(),
            2 * (dataset().friendships().size() - 1));
}

TEST_F(GraphBuilderTest, EventWordWeightsArePositiveTfIdf) {
  auto graphs = BuildEbsnGraphs(dataset(), *split_, {});
  ASSERT_TRUE(graphs.ok());
  EXPECT_GT(graphs->event_word->num_edges(), 0u);
  for (const Edge& e : graphs->event_word->edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LT(e.b, dataset().vocab_size());
  }
}

TEST_F(GraphBuilderTest, RegionsAreDenseAndCoverAllEvents) {
  auto graphs = BuildEbsnGraphs(dataset(), *split_, {});
  ASSERT_TRUE(graphs.ok());
  EXPECT_GT(graphs->num_regions, 0u);
  ASSERT_EQ(graphs->event_region.size(), dataset().num_events());
  for (ebsn::RegionId r : graphs->event_region) {
    EXPECT_LT(r, graphs->num_regions);
  }
}

TEST_F(GraphBuilderTest, PackUserPairIsOrderInvariant) {
  EXPECT_EQ(PackUserPair(3, 9), PackUserPair(9, 3));
  EXPECT_NE(PackUserPair(3, 9), PackUserPair(3, 8));
}

TEST(GraphBuilderErrorTest, UnfinalizedDatasetRejected) {
  ebsn::Dataset d;
  d.set_num_users(1);
  d.AddVenue(ebsn::Venue{0, {0, 0}});
  d.AddEvent(ebsn::Event{0, 0, 0, {}, -1});
  // Intentionally not finalized, and split built from a copy.
  ebsn::Dataset d2;
  d2.set_num_users(1);
  d2.AddVenue(ebsn::Venue{0, {0, 0}});
  d2.AddEvent(ebsn::Event{0, 0, 0, {}, -1});
  ASSERT_TRUE(d2.Finalize().ok());
  ebsn::ChronologicalSplit split(d2);
  auto result = BuildEbsnGraphs(d, split, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gemrec::graph
