// Property sweep over randomly generated bipartite graphs: structural
// invariants that must hold for any graph the builder can produce.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"

namespace gemrec::graph {
namespace {

BipartiteGraph RandomGraph(uint64_t seed) {
  Rng rng(seed);
  const uint32_t na = 2 + static_cast<uint32_t>(rng.UniformInt(40));
  const uint32_t nb = 2 + static_cast<uint32_t>(rng.UniformInt(40));
  BipartiteGraph g(NodeType::kUser, na, NodeType::kEvent, nb);
  const int edges = 1 + static_cast<int>(rng.UniformInt(120));
  std::map<std::pair<uint32_t, uint32_t>, bool> used;
  for (int e = 0; e < edges; ++e) {
    const uint32_t a = static_cast<uint32_t>(rng.UniformInt(na));
    const uint32_t b = static_cast<uint32_t>(rng.UniformInt(nb));
    if (used[{a, b}]) continue;
    used[{a, b}] = true;
    g.AddEdge(a, b, 0.1 + rng.UniformDouble() * 5.0);
  }
  g.Seal();
  return g;
}

class GraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphPropertyTest, DegreeSumsEqualTotalWeightOnBothSides) {
  BipartiteGraph g = RandomGraph(GetParam());
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (uint32_t a = 0; a < g.num_a(); ++a) sum_a += g.DegreeA(a);
  for (uint32_t b = 0; b < g.num_b(); ++b) sum_b += g.DegreeB(b);
  EXPECT_NEAR(sum_a, g.total_weight(), 1e-9);
  EXPECT_NEAR(sum_b, g.total_weight(), 1e-9);
}

TEST_P(GraphPropertyTest, EveryStoredEdgeIsQueryable) {
  BipartiteGraph g = RandomGraph(GetParam());
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(g.HasEdge(e.a, e.b));
    EXPECT_GT(g.DegreeA(e.a), 0.0);
    EXPECT_GT(g.DegreeB(e.b), 0.0);
  }
}

TEST_P(GraphPropertyTest, SampledEdgesAreStoredEdges) {
  BipartiteGraph g = RandomGraph(GetParam());
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    const Edge& e = g.SampleEdge(&rng);
    EXPECT_TRUE(g.HasEdge(e.a, e.b));
  }
}

TEST_P(GraphPropertyTest, NoiseNodesHavePositiveDegree) {
  BipartiteGraph g = RandomGraph(GetParam());
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GT(g.DegreeB(g.SampleNoiseB(&rng)), 0.0);
    EXPECT_GT(g.DegreeA(g.SampleNoiseA(&rng)), 0.0);
  }
}

TEST_P(GraphPropertyTest, EdgeSamplingFrequencyTracksWeight) {
  BipartiteGraph g = RandomGraph(GetParam());
  if (g.num_edges() < 2) return;
  Rng rng(GetParam() + 3000);
  // Compare the heaviest edge's empirical frequency to its share.
  size_t heaviest = 0;
  for (size_t i = 1; i < g.num_edges(); ++i) {
    if (g.edges()[i].weight > g.edges()[heaviest].weight) heaviest = i;
  }
  const double expected =
      g.edges()[heaviest].weight / g.total_weight();
  const int n = 30000;
  int count = 0;
  const Edge* target = &g.edges()[heaviest];
  for (int i = 0; i < n; ++i) {
    const Edge& e = g.SampleEdge(&rng);
    if (e.a == target->a && e.b == target->b) ++count;
  }
  EXPECT_NEAR(count / static_cast<double>(n), expected,
              5.0 * std::sqrt(expected / n) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace gemrec::graph
