// Crash-safety proofs for the streaming ingestion write path (DESIGN.md
// §14): SIGKILL at every byte offset inside a journal append, every
// prefix truncation, every single-byte corruption, the
// crash-between-checkpoint-and-truncation double-replay window, and an
// end-to-end kill of the full IngestionQueue stack. The invariant under
// test throughout: an ACKNOWLEDGED write is never lost, and a torn or
// corrupt tail only ever discards unacknowledged bytes.
//
// Own binary (fault_test): it forks children, kills them, and mutates
// IngestJournal's process-global write hooks.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serving/ingest_journal.h"
#include "serving/ingestion_queue.h"
#include "serving/recommendation_service.h"
#include "serving/snapshot_builder.h"

namespace gemrec::serving {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kUsers = 8;
constexpr uint32_t kEventRows = 12;
constexpr uint32_t kInitialEvents = 9;
constexpr uint32_t kDim = 6;
constexpr size_t kJournalHeader = 12;

// Fold-in-capable store: full kTime matrix (TimeSlotsFor ids live in
// [0, 33)) plus small location/word vocabularies.
embedding::EmbeddingStore IngestStore(uint64_t seed) {
  embedding::EmbeddingStore store(
      kDim, std::array<uint32_t, 5>{kUsers, kEventRows, 4, 33, 20});
  Rng rng(seed);
  for (size_t t = 0; t < embedding::EmbeddingStore::kNumTypes; ++t) {
    store.MatrixOf(static_cast<graph::NodeType>(t))
        .FillAbsGaussian(&rng, 0.2, 0.3);
  }
  return store;
}

std::vector<ebsn::EventId> InitialPool() {
  std::vector<ebsn::EventId> events(kInitialEvents);
  for (uint32_t x = 0; x < kInitialEvents; ++x) events[x] = x;
  return events;
}

// Deterministic record stream shared by the crashing child and the
// parent's offline reference (1-based).
IngestRecord RecordAt(uint64_t i) {
  IngestRecord r;
  r.seq = i;
  if (i % 4 == 0) {
    r.kind = IngestKind::kNewEvent;
    r.event = static_cast<ebsn::EventId>(kInitialEvents +
                                         (i / 4 - 1) % (kEventRows -
                                                        kInitialEvents));
    r.signals.region = static_cast<uint32_t>(i % 4);
    r.signals.start_time = 1700000000 + static_cast<int64_t>(i) * 3600;
    r.signals.words = {{static_cast<uint32_t>(i % 20), 1.0f},
                       {static_cast<uint32_t>((i * 7 + 1) % 20), 0.5f}};
  } else {
    r.kind = IngestKind::kAttendance;
    r.user = static_cast<ebsn::UserId>((i * 3) % kUsers);
    r.event = static_cast<ebsn::EventId>((i * 5) % kInitialEvents);
    r.new_user = (i % 5 == 2);
  }
  return r;
}

void ExpectStoresBitExact(const embedding::EmbeddingStore& a,
                          const embedding::EmbeddingStore& b) {
  ASSERT_EQ(a.dim(), b.dim());
  for (size_t t = 0; t < embedding::EmbeddingStore::kNumTypes; ++t) {
    const auto type = static_cast<graph::NodeType>(t);
    ASSERT_EQ(a.CountOf(type), b.CountOf(type));
    for (uint32_t r = 0; r < a.CountOf(type); ++r) {
      ASSERT_EQ(std::memcmp(a.VectorOf(type, r), b.VectorOf(type, r),
                            a.dim() * sizeof(float)),
                0)
          << "node type " << t << " row " << r;
    }
  }
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<uint64_t> ReadAckedSeqs(int fd) {
  std::vector<uint64_t> seqs;
  uint64_t seq = 0;
  while (::read(fd, &seq, sizeof(seq)) == sizeof(seq)) {
    seqs.push_back(seq);
  }
  return seqs;
}

class IngestJournalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("gemrec_ingest_fault_" + std::to_string(::getpid()) + "_" +
            info->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    IngestJournal::SetWriteChunkForTesting(0);
    IngestJournal::SetWriteObserverForTesting(nullptr);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

TEST_F(IngestJournalFaultTest, SigkillAtEveryOffsetLosesNoAckedAppend) {
  // Children append records one at a time, reporting each successful
  // (= fsynced) append through a pipe, while the write observer kills
  // the process once the journal file offset crosses the threshold.
  // Sweeping the threshold across several records' worth of bytes
  // places the kill at every byte position inside an append.
  constexpr uint64_t kRecords = 6;
  size_t total = kJournalHeader;
  for (uint64_t i = 1; i <= kRecords; ++i) {
    std::vector<uint8_t> encoded;
    IngestJournal::EncodeRecord(RecordAt(i), &encoded);
    total += encoded.size();
  }

  for (size_t threshold = kJournalHeader + 1; threshold <= total + 1;
       threshold += 7) {
    const fs::path sub = dir_ / ("t" + std::to_string(threshold));
    fs::create_directories(sub);
    const std::string path = (sub / "journal").string();

    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      ::close(pipe_fds[0]);
      auto journal = IngestJournal::Open(path);
      if (!journal.ok()) _exit(2);
      // Hooks armed only after Open so the kill always lands inside a
      // record append, never the header write.
      IngestJournal::SetWriteChunkForTesting(1);
      IngestJournal::SetWriteObserverForTesting(
          [threshold](size_t bytes_written) {
            if (bytes_written >= threshold) raise(SIGKILL);
          });
      for (uint64_t i = 1; i <= kRecords; ++i) {
        if (!journal->AppendOne(RecordAt(i)).ok()) _exit(3);
        // Acked: the record is on disk past an fdatasync.
        const uint64_t seq = i;
        if (::write(pipe_fds[1], &seq, sizeof(seq)) !=
            static_cast<ssize_t>(sizeof(seq))) {
          _exit(4);
        }
      }
      _exit(0);  // threshold beyond the file: no kill fired
    }
    ::close(pipe_fds[1]);
    const std::vector<uint64_t> acked = ReadAckedSeqs(pipe_fds[0]);
    ::close(pipe_fds[0]);
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    if (WIFSIGNALED(wstatus)) {
      ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
    } else {
      ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "child setup failed";
    }

    // Zero acknowledged-write loss: every acked seq replays, in order.
    auto replay = IngestJournal::Replay(path, 0);
    ASSERT_TRUE(replay.ok())
        << "threshold " << threshold << ": " << replay.status().ToString();
    ASSERT_GE(replay->records.size(), acked.size())
        << "threshold " << threshold << " lost acked records";
    for (size_t i = 0; i < replay->records.size(); ++i) {
      ASSERT_EQ(replay->records[i].seq, i + 1)
          << "threshold " << threshold;
    }

    // Recovery: Open truncates whatever tail the kill tore, and the
    // journal accepts appends again.
    auto reopened = IngestJournal::Open(path);
    ASSERT_TRUE(reopened.ok())
        << "threshold " << threshold << ": "
        << reopened.status().ToString();
    const uint64_t next = reopened->last_seq() + 1;
    ASSERT_TRUE(reopened->AppendOne(RecordAt(next)).ok());
    auto after = IngestJournal::Replay(path, 0);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after->clean) << "threshold " << threshold;
    EXPECT_EQ(after->records.back().seq, next);
  }
}

TEST_F(IngestJournalFaultTest, EveryPrefixTruncationDropsOnlyTheTail) {
  const std::string path = (dir_ / "journal").string();
  std::vector<size_t> boundaries = {kJournalHeader};
  {
    auto journal = IngestJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(journal->AppendOne(RecordAt(i)).ok());
      std::vector<uint8_t> encoded;
      IngestJournal::EncodeRecord(RecordAt(i), &encoded);
      boundaries.push_back(boundaries.back() + encoded.size());
    }
  }
  const std::vector<uint8_t> good = ReadFileBytes(path);
  ASSERT_EQ(good.size(), boundaries.back())
      << "EncodeRecord and Append disagree on record sizes";

  const std::string corrupt = (dir_ / "truncated").string();
  for (size_t len = 0; len <= good.size(); ++len) {
    WriteFileBytes(corrupt,
                   std::vector<uint8_t>(good.begin(), good.begin() + len));
    auto replay = IngestJournal::Replay(corrupt, 0);
    if (len == 0) {
      // Truncated to nothing: Replay has no header to trust, but Open
      // legitimately re-initializes an empty file as a fresh journal.
      EXPECT_FALSE(replay.ok());
      auto fresh = IngestJournal::Open(corrupt);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      EXPECT_EQ(fresh->last_seq(), 0u);
      fs::remove(corrupt);  // drop the fresh header before the next len
      continue;
    }
    if (len < kJournalHeader) {
      // Partial header: hard error, never a silently-empty journal.
      EXPECT_FALSE(replay.ok()) << "len " << len;
      EXPECT_FALSE(IngestJournal::Open(corrupt).ok()) << "len " << len;
      continue;
    }
    ASSERT_TRUE(replay.ok()) << "len " << len << ": "
                             << replay.status().ToString();
    size_t complete = 0;
    size_t last_boundary = kJournalHeader;
    for (size_t b = 1; b < boundaries.size(); ++b) {
      if (boundaries[b] <= len) {
        complete = b;
        last_boundary = boundaries[b];
      }
    }
    EXPECT_EQ(replay->records.size(), complete) << "len " << len;
    EXPECT_EQ(replay->clean, len == last_boundary) << "len " << len;
    EXPECT_EQ(replay->dropped_bytes, len - last_boundary) << "len " << len;
  }

  // Reopening a mid-record truncation restores appendability.
  const size_t torn = boundaries[1] + 5;
  WriteFileBytes(corrupt,
                 std::vector<uint8_t>(good.begin(), good.begin() + torn));
  auto reopened = IngestJournal::Open(corrupt);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->last_seq(), 1u);
  ASSERT_TRUE(reopened->AppendOne(RecordAt(2)).ok());
  auto after = IngestJournal::Replay(corrupt, 0);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->clean);
  EXPECT_EQ(after->records.size(), 2u);
}

TEST_F(IngestJournalFaultTest, EveryByteCorruptionEndsTheValidPrefix) {
  const std::string path = (dir_ / "journal").string();
  std::vector<size_t> boundaries = {kJournalHeader};
  {
    auto journal = IngestJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(journal->AppendOne(RecordAt(i)).ok());
      std::vector<uint8_t> encoded;
      IngestJournal::EncodeRecord(RecordAt(i), &encoded);
      boundaries.push_back(boundaries.back() + encoded.size());
    }
  }
  const std::vector<uint8_t> good = ReadFileBytes(path);

  const std::string corrupt = (dir_ / "flipped").string();
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<uint8_t> bytes = good;
    bytes[i] ^= 0xFF;
    WriteFileBytes(corrupt, bytes);
    auto replay = IngestJournal::Replay(corrupt, 0);
    if (i < kJournalHeader) {
      EXPECT_FALSE(replay.ok()) << "byte " << i;
      continue;
    }
    // The record containing the flipped byte (and everything after it)
    // is dropped; records before it replay intact.
    size_t intact = 0;
    while (boundaries[intact + 1] <= i) ++intact;
    ASSERT_TRUE(replay.ok()) << "byte " << i << ": "
                             << replay.status().ToString();
    EXPECT_EQ(replay->records.size(), intact) << "byte " << i;
    EXPECT_FALSE(replay->clean) << "byte " << i;
    for (size_t r = 0; r < replay->records.size(); ++r) {
      EXPECT_EQ(replay->records[r].seq, r + 1) << "byte " << i;
    }
  }
}

TEST_F(IngestJournalFaultTest, CrashBetweenCheckpointAndTruncationReplaysOnce) {
  // The double-replay window: a checkpoint lands on disk but the
  // process dies before the journal reset. Recovery must apply each
  // record exactly once — the checkpoint's watermark filters the
  // journal records already baked into it.
  const embedding::EmbeddingStore base = IngestStore(51);
  SnapshotOptions snapshot_options;
  snapshot_options.top_k_events_per_partner = 0;
  IngestionQueueOptions iq;
  iq.journal_path = (dir_ / "journal").string();
  iq.checkpoint_base = (dir_ / "checkpoint").string();

  // Timeline 1 applies records 1..3, then "crashes" right after the
  // checkpoint save, before the journal truncation.
  SnapshotBuilder builder1(base, InitialPool(), kUsers, snapshot_options);
  {
    RecommendationService service(ServiceOptions{});
    IngestionQueue queue(&service, &builder1, iq);
    ASSERT_TRUE(queue.Start().ok());
    for (uint64_t i = 1; i <= 3; ++i) {
      auto seq = queue.Submit(RecordAt(i));
      ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    }
    queue.Flush();
    queue.Shutdown();
  }
  ASSERT_TRUE(SaveIngestCheckpoint(iq.checkpoint_base,
                                   *builder1.staging_store(),
                                   builder1.event_pool(), 3)
                  .ok());
  // The journal still holds 1..3 — exactly the crash window.
  {
    auto replay = IngestJournal::Replay(iq.journal_path, 0);
    ASSERT_TRUE(replay.ok());
    ASSERT_EQ(replay->records.size(), 3u);
  }

  // Timeline 2 recovers: checkpoint loads, journal records 1..3 are
  // filtered by the watermark — zero double-applies.
  SnapshotBuilder builder2(base, InitialPool(), kUsers, snapshot_options);
  {
    RecommendationService service(ServiceOptions{});
    IngestionQueue queue(&service, &builder2, iq);
    ASSERT_TRUE(queue.Start().ok());
    EXPECT_EQ(queue.replayed(), 0u)
        << "watermark-covered records were double-applied";
    ExpectStoresBitExact(*builder2.staging_store(),
                         *builder1.staging_store());
    for (uint64_t i = 4; i <= 6; ++i) {
      auto seq = queue.Submit(RecordAt(i));
      ASSERT_TRUE(seq.ok()) << seq.status().ToString();
      EXPECT_EQ(*seq, i) << "recovered seq counter restarted";
    }
    queue.Flush();
    queue.Shutdown();
  }

  // Timeline 3 crashes again before any new checkpoint: recovery =
  // checkpoint(3) + journal replay of 4..6 only.
  SnapshotBuilder builder3(base, InitialPool(), kUsers, snapshot_options);
  {
    RecommendationService service(ServiceOptions{});
    IngestionQueue queue(&service, &builder3, iq);
    ASSERT_TRUE(queue.Start().ok());
    EXPECT_EQ(queue.replayed(), 3u);
    queue.Shutdown();
  }
  ExpectStoresBitExact(*builder3.staging_store(),
                       *builder2.staging_store());

  // Offline reference: records 1..6 applied exactly once.
  SnapshotBuilder reference(base, InitialPool(), kUsers, snapshot_options);
  std::vector<ebsn::EventId> pool = reference.event_pool();
  for (uint64_t i = 1; i <= 6; ++i) {
    const IngestRecord record = RecordAt(i);
    if (record.kind == IngestKind::kNewEvent) {
      ASSERT_TRUE(
          reference.FoldInEvent(record.event, record.signals, iq.foldin)
              .ok());
      if (std::find(pool.begin(), pool.end(), record.event) ==
          pool.end()) {
        pool.push_back(record.event);
        reference.set_event_pool(pool);
      }
    } else if (record.new_user) {
      embedding::NewUserSignals signals;
      signals.attended_events.push_back(record.event);
      ASSERT_TRUE(
          reference.FoldInUser(record.user, signals, iq.foldin).ok());
    } else {
      ASSERT_TRUE(
          reference.RecordAttendance(record.user, record.event, iq.nudge)
              .ok());
    }
  }
  ExpectStoresBitExact(*builder3.staging_store(),
                       *reference.staging_store());
  EXPECT_EQ(builder3.event_pool(), reference.event_pool());
}

TEST_F(IngestJournalFaultTest, QueueKilledMidStreamRecoversEveryAckedWrite) {
  // End-to-end: the full IngestionQueue stack (validation, group
  // commit, fold-in, ack) is SIGKILLed while streaming; a fresh queue
  // over the same journal must recover a contiguous record prefix that
  // covers every ack the dead process emitted, and the recovered store
  // must equal the offline application of that prefix.
  constexpr uint64_t kRecords = 10;
  SnapshotOptions snapshot_options;
  snapshot_options.top_k_events_per_partner = 0;
  ServiceOptions service_options;
  service_options.num_workers = 1;

  size_t total = kJournalHeader;
  for (uint64_t i = 1; i <= kRecords; ++i) {
    std::vector<uint8_t> encoded;
    IngestJournal::EncodeRecord(RecordAt(i), &encoded);
    total += encoded.size();
  }

  for (size_t threshold = kJournalHeader + 3; threshold <= total;
       threshold += 41) {
    const fs::path sub = dir_ / ("t" + std::to_string(threshold));
    fs::create_directories(sub);
    IngestionQueueOptions iq;
    iq.journal_path = (sub / "journal").string();

    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      ::close(pipe_fds[0]);
      const embedding::EmbeddingStore base = IngestStore(52);
      SnapshotBuilder builder(base, InitialPool(), kUsers,
                              snapshot_options);
      RecommendationService service(service_options);
      IngestionQueue queue(&service, &builder, iq);
      if (!queue.Start().ok()) _exit(2);
      IngestJournal::SetWriteChunkForTesting(1);
      IngestJournal::SetWriteObserverForTesting(
          [threshold](size_t bytes_written) {
            if (bytes_written >= threshold) raise(SIGKILL);
          });
      const int ack_fd = pipe_fds[1];
      for (uint64_t i = 1; i <= kRecords; ++i) {
        // Ack callbacks run on the ingest thread, strictly after the
        // group commit's fdatasync — so every seq read from the pipe
        // names a durable record.
        (void)queue.SubmitAsync(
            RecordAt(i), [ack_fd](Status status, uint64_t seq) {
              if (status.ok()) {
                (void)::write(ack_fd, &seq, sizeof(seq));
              }
            });
      }
      queue.Flush();
      _exit(0);
    }
    ::close(pipe_fds[1]);
    const std::vector<uint64_t> acked = ReadAckedSeqs(pipe_fds[0]);
    ::close(pipe_fds[0]);
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    if (WIFSIGNALED(wstatus)) {
      ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
    } else {
      ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "child setup failed";
    }

    // The journal holds a contiguous prefix 1..K covering every ack
    // (K can exceed the acks: a record fully written but killed before
    // its ack is unacknowledged, replaying it is allowed and correct).
    auto replay = IngestJournal::Replay(iq.journal_path, 0);
    ASSERT_TRUE(replay.ok())
        << "threshold " << threshold << ": " << replay.status().ToString();
    const uint64_t recovered = replay->records.size();
    for (uint64_t i = 0; i < recovered; ++i) {
      ASSERT_EQ(replay->records[i].seq, i + 1)
          << "threshold " << threshold;
    }
    uint64_t max_acked = 0;
    for (const uint64_t seq : acked) max_acked = std::max(max_acked, seq);
    ASSERT_GE(recovered, max_acked)
        << "threshold " << threshold << " lost an acknowledged write";

    // Recovery replays onto a fresh base and must land bitwise on the
    // offline application of the same prefix.
    const embedding::EmbeddingStore base = IngestStore(52);
    SnapshotBuilder builder(base, InitialPool(), kUsers,
                            snapshot_options);
    RecommendationService service(service_options);
    IngestionQueue queue(&service, &builder, iq);
    ASSERT_TRUE(queue.Start().ok());
    EXPECT_EQ(queue.replayed(), recovered) << "threshold " << threshold;
    queue.Shutdown();

    SnapshotBuilder reference(base, InitialPool(), kUsers,
                              snapshot_options);
    std::vector<ebsn::EventId> pool = reference.event_pool();
    for (uint64_t i = 1; i <= recovered; ++i) {
      const IngestRecord record = RecordAt(i);
      if (record.kind == IngestKind::kNewEvent) {
        ASSERT_TRUE(
            reference.FoldInEvent(record.event, record.signals, iq.foldin)
                .ok());
        if (std::find(pool.begin(), pool.end(), record.event) ==
            pool.end()) {
          pool.push_back(record.event);
          reference.set_event_pool(pool);
        }
      } else if (record.new_user) {
        embedding::NewUserSignals signals;
        signals.attended_events.push_back(record.event);
        ASSERT_TRUE(
            reference.FoldInUser(record.user, signals, iq.foldin).ok());
      } else {
        ASSERT_TRUE(reference
                        .RecordAttendance(record.user, record.event,
                                          iq.nudge)
                        .ok());
      }
    }
    ExpectStoresBitExact(*builder.staging_store(),
                         *reference.staging_store());
  }
}

}  // namespace
}  // namespace gemrec::serving
