// Graceful-degradation coverage for the serve reload loop (ISSUE 3
// tentpole): a corrupt, missing or shape-incompatible model artifact
// must never take the service down or change what it answers — the
// live snapshot keeps serving, the failure counter grows, retries wait
// out a capped exponential backoff, and a repaired artifact restores
// the normal publish path.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "embedding/serialization.h"
#include "serving/model_reloader.h"
#include "serving/recommendation_service.h"
#include "serving/snapshot_builder.h"

namespace gemrec::serving {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;

constexpr uint32_t kUsers = 12;
constexpr uint32_t kEvents = 10;
constexpr uint32_t kDim = 6;

embedding::EmbeddingStore RandomStore(uint32_t num_users,
                                      uint32_t num_events, uint64_t seed) {
  embedding::EmbeddingStore store(
      kDim, std::array<uint32_t, 5>{num_users, num_events, 1, 1, 1});
  Rng rng(seed);
  store.MatrixOf(graph::NodeType::kUser).FillAbsGaussian(&rng, 0.2, 0.3);
  store.MatrixOf(graph::NodeType::kEvent).FillAbsGaussian(&rng, 0.2, 0.3);
  return store;
}

std::vector<ebsn::EventId> AllEvents(uint32_t num_events) {
  std::vector<ebsn::EventId> events(num_events);
  for (uint32_t x = 0; x < num_events; ++x) events[x] = x;
  return events;
}

void ExpectSameItems(const QueryResponse& a, const QueryResponse& b) {
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].event, b.items[i].event);
    EXPECT_EQ(a.items[i].partner, b.items[i].partner);
    EXPECT_EQ(a.items[i].score, b.items[i].score);
  }
}

class ReloadDegradationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("gemrec_reload_" + std::to_string(::getpid()) + "_" +
            info->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "model.bin").string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void FlipByteAt(size_t offset) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(ReloadDegradationTest, CorruptArtifactNeverDropsLiveSnapshot) {
  const embedding::EmbeddingStore initial = RandomStore(kUsers, kEvents, 1);
  SnapshotBuilder builder(initial, AllEvents(kEvents), kUsers, {});
  ServiceOptions service_options;
  service_options.num_workers = 2;
  RecommendationService service(service_options);

  std::vector<milliseconds> sleeps;
  ReloaderOptions reloader_options;
  reloader_options.initial_backoff = milliseconds(10);
  reloader_options.max_backoff = milliseconds(40);
  reloader_options.max_attempts = 3;
  reloader_options.sleep_fn = [&](milliseconds d) { sleeps.push_back(d); };
  ModelReloader reloader(&service, &builder, reloader_options);

  // First reload from a healthy artifact publishes epoch 1.
  ASSERT_TRUE(embedding::SaveEmbeddingStore(initial, path_).ok());
  ASSERT_TRUE(reloader.ReloadWithRetry(path_).ok());
  ASSERT_NE(service.CurrentSnapshot(), nullptr);
  EXPECT_EQ(service.CurrentSnapshot()->epoch(), 1u);

  QueryRequest request;
  request.user = 5;
  request.n = 4;
  request.filter_hash = service.CurrentSnapshot()->pool_hash();
  request.bypass_cache = true;
  const QueryResponse baseline = service.Query(request);
  ASSERT_FALSE(baseline.items.empty());

  // Corrupt the artifact mid-payload: every retry fails, each failure
  // is counted, the backoff schedule is 10ms then 20ms (two sleeps for
  // three attempts), and the served snapshot never changes.
  FlipByteAt(50);
  const Status degraded = reloader.ReloadWithRetry(path_);
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(service.stats().reload_failures, 3u);
  EXPECT_EQ(reloader.consecutive_failures(), 3u);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], milliseconds(10));
  EXPECT_EQ(sleeps[1], milliseconds(20));
  EXPECT_EQ(service.CurrentSnapshot()->epoch(), 1u);
  EXPECT_EQ(service.stats().publishes, 1u);

  // The service still answers, identically to before the corruption.
  const QueryResponse during_outage = service.Query(request);
  EXPECT_EQ(during_outage.epoch, 1u);
  ExpectSameItems(baseline, during_outage);

  // A repaired artifact recovers: new epoch, counters reset.
  const embedding::EmbeddingStore repaired =
      RandomStore(kUsers, kEvents, 2);
  ASSERT_TRUE(embedding::SaveEmbeddingStore(repaired, path_).ok());
  ASSERT_TRUE(reloader.ReloadWithRetry(path_).ok());
  EXPECT_EQ(reloader.consecutive_failures(), 0u);
  EXPECT_EQ(reloader.current_backoff(), milliseconds::zero());
  EXPECT_EQ(service.CurrentSnapshot()->epoch(), 2u);
  // Failure counter is cumulative (monitoring counts total incidents).
  EXPECT_EQ(service.stats().reload_failures, 3u);
  const QueryResponse after_recovery = service.Query(request);
  EXPECT_EQ(after_recovery.epoch, 2u);
}

TEST_F(ReloadDegradationTest, MissingArtifactBackoffIsCappedExponential) {
  const embedding::EmbeddingStore initial = RandomStore(kUsers, kEvents, 3);
  SnapshotBuilder builder(initial, AllEvents(kEvents), kUsers, {});
  RecommendationService service(ServiceOptions{});

  ReloaderOptions reloader_options;
  reloader_options.initial_backoff = milliseconds(10);
  reloader_options.max_backoff = milliseconds(40);
  reloader_options.max_attempts = 1;
  reloader_options.sleep_fn = [](milliseconds) {};
  ModelReloader reloader(&service, &builder, reloader_options);

  EXPECT_EQ(reloader.current_backoff(), milliseconds::zero());
  const std::string missing = (dir_ / "nope.bin").string();
  const milliseconds expected[] = {
      milliseconds(10), milliseconds(20), milliseconds(40),
      milliseconds(40), milliseconds(40), milliseconds(40)};
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_FALSE(reloader.ReloadFromFile(missing).ok());
    EXPECT_EQ(reloader.current_backoff(), expected[i]) << "failure " << i;
  }
  // A very long outage must not overflow the shifted multiplier.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(reloader.ReloadFromFile(missing).ok());
  }
  EXPECT_EQ(reloader.current_backoff(), milliseconds(40));
  EXPECT_EQ(service.stats().reload_failures, 106u);
  // No snapshot was ever published — and none was dropped either.
  EXPECT_EQ(service.CurrentSnapshot(), nullptr);
}

TEST_F(ReloadDegradationTest, ShapeIncompatibleArtifactIsRejected) {
  const embedding::EmbeddingStore initial = RandomStore(kUsers, kEvents, 4);
  SnapshotBuilder builder(initial, AllEvents(kEvents), kUsers, {});
  RecommendationService service(ServiceOptions{});

  ReloaderOptions reloader_options;
  reloader_options.sleep_fn = [](milliseconds) {};
  ModelReloader reloader(&service, &builder, reloader_options);

  ASSERT_TRUE(embedding::SaveEmbeddingStore(initial, path_).ok());
  ASSERT_TRUE(reloader.ReloadFromFile(path_).ok());
  const uint64_t epoch = service.CurrentSnapshot()->epoch();

  // Checksums pass — the file is healthy — but the store is too small
  // for the serving pool: fewer events than the pool references.
  const embedding::EmbeddingStore too_few_events =
      RandomStore(kUsers, kEvents / 2, 5);
  ASSERT_TRUE(embedding::SaveEmbeddingStore(too_few_events, path_).ok());
  Status status = reloader.ReloadFromFile(path_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.CurrentSnapshot()->epoch(), epoch);

  // And fewer users than the service serves.
  const embedding::EmbeddingStore too_few_users =
      RandomStore(kUsers / 2, kEvents, 6);
  ASSERT_TRUE(embedding::SaveEmbeddingStore(too_few_users, path_).ok());
  status = reloader.ReloadFromFile(path_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.CurrentSnapshot()->epoch(), epoch);
  EXPECT_EQ(service.stats().reload_failures, 2u);

  // A compatible (larger) artifact is fine.
  const embedding::EmbeddingStore grown =
      RandomStore(kUsers + 3, kEvents + 2, 7);
  ASSERT_TRUE(embedding::SaveEmbeddingStore(grown, path_).ok());
  ASSERT_TRUE(reloader.ReloadFromFile(path_).ok());
  EXPECT_EQ(service.CurrentSnapshot()->epoch(), epoch + 1);
}

}  // namespace
}  // namespace gemrec::serving
